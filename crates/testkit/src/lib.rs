//! # sgm-testkit
//!
//! Workspace-wide correctness tooling for the SGM-PINN reproduction —
//! a *dev-dependency only* crate, never linked into release artefacts.
//!
//! The paper's claims rest on three numerical pillars: autodiff-exact
//! PDE residuals, effective-resistance estimates driving LRD clustering,
//! and Algorithm 1's proportional cluster sampling. Each pillar gets a
//! dedicated oracle here:
//!
//! * [`mms`] — method-of-manufactured-solutions oracles: closed-form
//!   fields with symbolically known residuals for every PDE in
//!   `sgm-physics`, so losses are checked *to tolerance*, not just
//!   "decreases".
//! * [`gradcheck`] — central-difference gradient checking plus a
//!   scalar-generic MLP evaluator ([`gradcheck::Scalar`]) usable with
//!   `f64`, dual numbers and nested forward-over-forward pairs
//!   ([`gradcheck::Lift`]), giving an autodiff path fully independent of
//!   both the production batched backward pass and the reverse tape.
//! * [`fault`] — deterministic fault injection for the background
//!   rebuild worker: scripted delay / drop / panic actions behind the
//!   production `BackgroundBuilder` API.
//! * [`sweep`] — seeded property sweeps over `Rng64` with automatic
//!   greedy failure-case shrinking (the workspace's offline stand-in for
//!   proptest).
//! * [`telemetry`] — schema validation for the `sgm-obs` run-telemetry
//!   JSONL format, plus the `validate_telemetry` bin CI uses to gate
//!   instrumented runs.
//!
//! Statistical acceptance tests (chi-square / KS) build on the
//! `sgm_linalg::stats` utilities; the integration suites under
//! `crates/testkit/tests/` assert the empirical SGM / MIS / RAR draw
//! frequencies against Algorithm 1's proportional ratios at fixed seeds.

pub mod fault;
pub mod gradcheck;
pub mod mms;
pub mod sweep;
pub mod telemetry;

pub use fault::{FaultAction, FaultPlan};
pub use gradcheck::{central_diff_grad, max_rel_err, Lift, Scalar};
pub use mms::MmsCase;
pub use sweep::Sweep;
pub use telemetry::{validate_run_log, TelemetrySummary};
