//! Finite-difference gradient checking and scalar-generic network
//! evaluation.
//!
//! The production path (`sgm-nn`'s batched forward/backward) and the
//! reverse tape (`sgm-autodiff::tape`) are two implementations; a
//! correctness argument needs a third that shares code with neither.
//! This module provides it: a [`Scalar`] abstraction over plain floats,
//! dual numbers and the forward-over-forward pair [`Lift`], plus a
//! textbook central-difference differentiator. An MLP evaluated with
//! `Lift<Dual2>` yields `∂/∂θ_j` of `(u, u_x, u_xx)` in a single scalar
//! pass — the "nested dual" path used by the gradient-check suite.

use sgm_autodiff::dual::Dual2;
use sgm_nn::activation::Activation;
use sgm_nn::mlp::{Mlp, MlpConfig};

/// Central-difference gradient of `f` at `x`, with per-coordinate step
/// `h_i = rel_h · (1 + |x_i|)`.
///
/// `rel_h ≈ 6e-6` balances truncation against cancellation for
/// double-precision smooth functions (error ~1e-10 relative).
pub fn central_diff_grad(mut f: impl FnMut(&[f64]) -> f64, x: &[f64], rel_h: f64) -> Vec<f64> {
    let mut xp = x.to_vec();
    (0..x.len())
        .map(|i| {
            let h = rel_h * (1.0 + x[i].abs());
            xp[i] = x[i] + h;
            let fp = f(&xp);
            xp[i] = x[i] - h;
            let fm = f(&xp);
            xp[i] = x[i];
            (fp - fm) / (2.0 * h)
        })
        .collect()
}

/// Maximum semi-relative error `max_i |a_i − b_i| / (1 + |b_i|)` — the
/// metric the acceptance criteria's "≤ 1e-6 relative" refers to (the
/// `1 +` guards against zero crossings).
///
/// # Panics
/// Panics on length mismatch.
pub fn max_rel_err(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs() / (1.0 + y.abs()))
        .fold(0.0, f64::max)
}

/// The scalar field an MLP can be evaluated over. Only the primitives
/// the network needs: ring operations, mixing with `f64` constants, and
/// the transcendental kernels behind every [`Activation`] (`silu` is
/// derived via `σ(z) = (1 + tanh(z/2))/2`, `cos` via `sin(x + π/2)`).
pub trait Scalar: Copy {
    /// Lifts a constant.
    fn from_f64(v: f64) -> Self;
    /// Primal value (for diagnostics and result extraction).
    fn value(&self) -> f64;
    fn add(self, o: Self) -> Self;
    fn sub(self, o: Self) -> Self;
    fn mul(self, o: Self) -> Self;
    fn neg(self) -> Self;
    /// `self · c` for a plain constant `c`.
    fn scale(self, c: f64) -> Self;
    /// `self + c` for a plain constant `c`.
    fn shift(self, c: f64) -> Self;
    fn tanh_s(self) -> Self;
    fn sin_s(self) -> Self;
    fn exp_s(self) -> Self;
}

impl Scalar for f64 {
    fn from_f64(v: f64) -> Self {
        v
    }
    fn value(&self) -> f64 {
        *self
    }
    fn add(self, o: Self) -> Self {
        self + o
    }
    fn sub(self, o: Self) -> Self {
        self - o
    }
    fn mul(self, o: Self) -> Self {
        self * o
    }
    fn neg(self) -> Self {
        -self
    }
    fn scale(self, c: f64) -> Self {
        self * c
    }
    fn shift(self, c: f64) -> Self {
        self + c
    }
    fn tanh_s(self) -> Self {
        self.tanh()
    }
    fn sin_s(self) -> Self {
        self.sin()
    }
    fn exp_s(self) -> Self {
        self.exp()
    }
}

impl Scalar for Dual2 {
    fn from_f64(v: f64) -> Self {
        Dual2::constant(v)
    }
    fn value(&self) -> f64 {
        self.v
    }
    fn add(self, o: Self) -> Self {
        self + o
    }
    fn sub(self, o: Self) -> Self {
        self - o
    }
    fn mul(self, o: Self) -> Self {
        self * o
    }
    fn neg(self) -> Self {
        -self
    }
    fn scale(self, c: f64) -> Self {
        self * c
    }
    fn shift(self, c: f64) -> Self {
        self + c
    }
    fn tanh_s(self) -> Self {
        self.tanh()
    }
    fn sin_s(self) -> Self {
        self.sin()
    }
    fn exp_s(self) -> Self {
        self.exp()
    }
}

/// A forward-mode pair `(v, dv/ds)` over any [`Scalar`] base — nesting
/// `Lift<Dual2>` differentiates in a parameter direction *while* the
/// inner dual differentiates twice in an input direction, so one
/// evaluation yields `∂/∂θ (u, u_x, u_xx)`.
#[derive(Debug, Clone, Copy)]
pub struct Lift<T> {
    /// Primal component.
    pub v: T,
    /// Tangent component (derivative in the lifted direction).
    pub d: T,
}

impl<T: Scalar> Lift<T> {
    /// A value with zero tangent.
    pub fn constant(v: T) -> Self {
        Lift {
            v,
            d: T::from_f64(0.0),
        }
    }

    /// The differentiation variable (unit tangent).
    pub fn variable(v: T) -> Self {
        Lift {
            v,
            d: T::from_f64(1.0),
        }
    }
}

impl<T: Scalar> Scalar for Lift<T> {
    fn from_f64(v: f64) -> Self {
        Lift::constant(T::from_f64(v))
    }
    fn value(&self) -> f64 {
        self.v.value()
    }
    fn add(self, o: Self) -> Self {
        Lift {
            v: self.v.add(o.v),
            d: self.d.add(o.d),
        }
    }
    fn sub(self, o: Self) -> Self {
        Lift {
            v: self.v.sub(o.v),
            d: self.d.sub(o.d),
        }
    }
    fn mul(self, o: Self) -> Self {
        Lift {
            v: self.v.mul(o.v),
            d: self.v.mul(o.d).add(self.d.mul(o.v)),
        }
    }
    fn neg(self) -> Self {
        Lift {
            v: self.v.neg(),
            d: self.d.neg(),
        }
    }
    fn scale(self, c: f64) -> Self {
        Lift {
            v: self.v.scale(c),
            d: self.d.scale(c),
        }
    }
    fn shift(self, c: f64) -> Self {
        Lift {
            v: self.v.shift(c),
            d: self.d,
        }
    }
    fn tanh_s(self) -> Self {
        let t = self.v.tanh_s();
        // d tanh = 1 − tanh².
        Lift {
            v: t,
            d: self.d.mul(t.mul(t).neg().shift(1.0)),
        }
    }
    fn sin_s(self) -> Self {
        // cos(x) = sin(x + π/2).
        Lift {
            v: self.v.sin_s(),
            d: self
                .d
                .mul(self.v.shift(std::f64::consts::FRAC_PI_2).sin_s()),
        }
    }
    fn exp_s(self) -> Self {
        let e = self.v.exp_s();
        Lift {
            v: e,
            d: self.d.mul(e),
        }
    }
}

/// Applies an activation using only [`Scalar`] primitives.
pub fn apply_act<T: Scalar>(act: Activation, z: T) -> T {
    match act {
        Activation::Tanh => z.tanh_s(),
        Activation::Sin => z.sin_s(),
        // silu(z) = z · σ(z), σ(z) = (1 + tanh(z/2)) / 2.
        Activation::SiLu => z.mul(z.scale(0.5).tanh_s().shift(1.0).scale(0.5)),
        Activation::Identity => z,
    }
}

/// `(fan_in, fan_out)` per layer for a plain (non-Fourier) MLP.
pub fn layer_sizes(cfg: &MlpConfig) -> Vec<(usize, usize)> {
    let mut sizes = vec![(cfg.input_dim, cfg.hidden_width)];
    for _ in 1..cfg.hidden_layers {
        sizes.push((cfg.hidden_width, cfg.hidden_width));
    }
    sizes.push((cfg.hidden_width, cfg.output_dim));
    sizes
}

/// Scalar-generic MLP forward pass: weights stored row-major per layer
/// (`w[o·fan_in + i]`) followed by biases, matching `Mlp::params()`.
/// Fourier features are not supported (assert).
///
/// # Panics
/// Panics on Fourier configs or mismatched `params`/`x` lengths.
pub fn eval_mlp<T: Scalar>(cfg: &MlpConfig, params: &[T], x: &[T]) -> Vec<T> {
    assert!(cfg.fourier.is_none(), "fourier nets not supported");
    assert_eq!(x.len(), cfg.input_dim, "input length");
    let sizes = layer_sizes(cfg);
    let mut act: Vec<T> = x.to_vec();
    let mut off = 0;
    for (li, &(fan_in, fan_out)) in sizes.iter().enumerate() {
        let w = &params[off..off + fan_in * fan_out];
        let b = &params[off + fan_in * fan_out..off + fan_in * fan_out + fan_out];
        off += fan_in * fan_out + fan_out;
        let mut next = Vec::with_capacity(fan_out);
        for o in 0..fan_out {
            let mut z = b[o];
            for (i, &a) in act.iter().enumerate() {
                z = z.add(w[o * fan_in + i].mul(a));
            }
            next.push(if li + 1 == sizes.len() {
                z
            } else {
                apply_act(cfg.activation, z)
            });
        }
        act = next;
    }
    assert_eq!(off, params.len(), "param length");
    act
}

/// Nested forward-over-forward evaluation: returns
/// `(u, ∂u/∂θ_j)` as `Dual2` triples `(val, ∂/∂x_d, ∂²/∂x_d²)` for one
/// output, one input diff dimension and one parameter index — the fully
/// independent oracle for parameter gradients of derivative-dependent
/// (PINN) losses.
pub fn nested_param_derivs(
    net: &Mlp,
    x: &[f64],
    diff_dim: usize,
    output: usize,
    param_j: usize,
) -> (Dual2, Dual2) {
    let cfg = net.config();
    let params: Vec<Lift<Dual2>> = net
        .params()
        .iter()
        .enumerate()
        .map(|(k, &p)| {
            if k == param_j {
                Lift::variable(Dual2::constant(p))
            } else {
                Lift::constant(Dual2::constant(p))
            }
        })
        .collect();
    let xs: Vec<Lift<Dual2>> = x
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            Lift::constant(if i == diff_dim {
                Dual2::variable(v)
            } else {
                Dual2::constant(v)
            })
        })
        .collect();
    let out = eval_mlp(cfg, &params, &xs);
    (out[output].v, out[output].d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgm_linalg::dense::Matrix;
    use sgm_linalg::rng::Rng64;

    #[test]
    fn lift_over_f64_matches_closed_forms() {
        for &x in &[-1.3, -0.2, 0.0, 0.7, 2.1] {
            let v = Lift::<f64>::variable(x);
            let s = v.sin_s();
            assert!((s.v - x.sin()).abs() < 1e-15);
            assert!((s.d - x.cos()).abs() < 1e-12);
            let t = v.tanh_s();
            assert!((t.d - (1.0 - x.tanh().powi(2))).abs() < 1e-14);
            let e = v.exp_s();
            assert!((e.d - x.exp()).abs() < 1e-12);
            // Product rule through silu.
            let si = apply_act(Activation::SiLu, v);
            let sig = 1.0 / (1.0 + (-x).exp());
            let dsilu = sig * (1.0 + x * (1.0 - sig));
            assert!((si.d - dsilu).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn eval_mlp_matches_production_forward() {
        for act in [
            Activation::SiLu,
            Activation::Tanh,
            Activation::Sin,
            Activation::Identity,
        ] {
            let cfg = MlpConfig {
                input_dim: 2,
                output_dim: 2,
                hidden_width: 5,
                hidden_layers: 2,
                activation: act,
                fourier: None,
            };
            let mut rng = Rng64::new(9);
            let net = Mlp::new(&cfg, &mut rng);
            let x = [0.4, -0.3];
            let want = net.forward(&Matrix::from_rows(&[&x]));
            let params: Vec<f64> = net.params();
            let got = eval_mlp(&cfg, &params, &x);
            for (o, &g) in got.iter().enumerate() {
                assert!((g - want.get(0, o)).abs() < 1e-12, "{act:?} output {o}");
            }
        }
    }

    #[test]
    fn central_diff_matches_analytic_gradient() {
        let f = |p: &[f64]| p[0].sin() * p[1].exp() + p[0] * p[0];
        let x = [0.8, -0.4];
        let g = central_diff_grad(f, &x, 6e-6);
        let want = [
            x[0].cos() * x[1].exp() + 2.0 * x[0],
            x[0].sin() * x[1].exp(),
        ];
        assert!(max_rel_err(&g, &want) < 1e-9);
    }
}
