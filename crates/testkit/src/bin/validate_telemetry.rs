//! CLI wrapper around [`sgm_testkit::telemetry::validate_run_log`] for
//! shell pipelines and CI:
//!
//! ```sh
//! cargo run -p sgm-testkit --bin validate_telemetry -- run.jsonl \
//!     --require-span background_rebuild --require-metric sgm_train_iterations_total \
//!     --min-records 1 --require-cross-thread
//! ```
//!
//! Exits non-zero (with the offending line or missing requirement on
//! stderr) when any file fails schema validation or a `--require-*`
//! assertion; prints a one-line summary per file otherwise.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut paths: Vec<String> = Vec::new();
    let mut require_spans: Vec<String> = Vec::new();
    let mut require_metrics: Vec<String> = Vec::new();
    let mut min_records = 0usize;
    let mut require_cross_thread = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--require-span" => {
                require_spans.push(args.next().expect("--require-span needs a name"))
            }
            "--require-metric" => {
                require_metrics.push(args.next().expect("--require-metric needs a name"))
            }
            "--min-records" => {
                min_records = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--min-records needs a count")
            }
            "--require-cross-thread" => require_cross_thread = true,
            _ => paths.push(a),
        }
    }
    if paths.is_empty() {
        eprintln!(
            "usage: validate_telemetry <run.jsonl>... [--require-span NAME]... \
             [--require-metric NAME]... [--min-records N] [--require-cross-thread]"
        );
        return ExitCode::from(2);
    }
    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        let summary = match sgm_testkit::telemetry::validate_run_log(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{path}: INVALID — {e}");
                failed = true;
                continue;
            }
        };
        for name in &require_spans {
            if !summary.span_names.contains(name) {
                eprintln!(
                    "{path}: missing required span `{name}` (have: {:?})",
                    summary.span_names
                );
                failed = true;
            }
        }
        for name in &require_metrics {
            if !summary.metric_names.contains(name) {
                eprintln!("{path}: missing required metric `{name}`");
                failed = true;
            }
        }
        if summary.records < min_records {
            eprintln!(
                "{path}: {} record(s), need at least {min_records}",
                summary.records
            );
            failed = true;
        }
        if require_cross_thread && summary.cross_thread_spans == 0 {
            eprintln!("{path}: no cross-thread-parented spans found");
            failed = true;
        }
        println!(
            "{path}: ok — {} metrics, {} records, {} spans ({} cross-thread), cats {:?}",
            summary.metrics,
            summary.records,
            summary.spans,
            summary.cross_thread_spans,
            summary.span_cats.keys().collect::<Vec<_>>()
        );
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
