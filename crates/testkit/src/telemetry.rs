//! Schema validation for run-telemetry JSONL files (the `SGM_RUN_LOG`
//! output of `sgm_obs::RunLog`).
//!
//! The run-log format is the contract between the instrumented binaries
//! and every downstream consumer (`run_report`, CI's observability
//! gate, ad-hoc jq). [`validate_run_log`] checks a document line by
//! line — one `meta` line first, then `metric` / `record` / `span`
//! lines with the field types each consumer relies on — and returns a
//! [`TelemetrySummary`] so tests can additionally assert *what* was
//! captured (e.g. "a `background_rebuild` span exists and is parented
//! across threads"). The `validate_telemetry` bin wraps this for shell
//! use.

use sgm_json::Value;
use std::collections::{BTreeMap, BTreeSet};

/// Counts and names extracted while validating a run log.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TelemetrySummary {
    /// Metric lines by kind (`counter`, `gauge`, `histogram`).
    pub metrics: usize,
    /// Convergence-record lines.
    pub records: usize,
    /// Span lines.
    pub spans: usize,
    /// Distinct metric names seen.
    pub metric_names: BTreeSet<String>,
    /// Distinct span names seen.
    pub span_names: BTreeSet<String>,
    /// Span count per `cat` label.
    pub span_cats: BTreeMap<String, usize>,
    /// Spans whose parent lives on a different thread (the
    /// cross-thread parenting the background rebuild worker relies on).
    pub cross_thread_spans: usize,
}

fn req_num(v: &Value, key: &str, line: usize) -> Result<f64, String> {
    v.req_f64(key).map_err(|e| format!("line {line}: {e}"))
}

fn req_str(v: &Value, key: &str, line: usize) -> Result<String, String> {
    v.req_str(key)
        .map(str::to_string)
        .map_err(|e| format!("line {line}: {e}"))
}

/// Validates a whole JSONL telemetry document.
///
/// # Errors
/// Returns a message naming the first offending line when the document
/// is empty, a line fails to parse, the first line is not `meta`, a
/// line's `type` is unknown, or a typed line is missing required
/// fields.
pub fn validate_run_log(text: &str) -> Result<TelemetrySummary, String> {
    let mut summary = TelemetrySummary::default();
    // tid of every span id, for the cross-thread parent count.
    let mut span_tid: BTreeMap<u64, u64> = BTreeMap::new();
    let mut parents: Vec<(u64, u64)> = Vec::new(); // (parent id, child tid)
    let mut saw_meta = false;
    let mut nonempty = 0usize;
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        nonempty += 1;
        let v = Value::parse(raw).map_err(|e| format!("line {line}: {e}"))?;
        let ty = req_str(&v, "type", line)?;
        if nonempty == 1 && ty != "meta" {
            return Err(format!("line {line}: first line must be meta, got `{ty}`"));
        }
        match ty.as_str() {
            "meta" => {
                if saw_meta {
                    return Err(format!("line {line}: duplicate meta line"));
                }
                saw_meta = true;
                req_str(&v, "run", line)?;
            }
            "metric" => {
                summary.metrics += 1;
                let name = req_str(&v, "name", line)?;
                summary.metric_names.insert(name);
                match req_str(&v, "kind", line)?.as_str() {
                    "counter" | "gauge" => {
                        req_num(&v, "value", line)?;
                    }
                    "histogram" => {
                        for key in ["count", "sum", "min", "max", "mean"] {
                            req_num(&v, key, line)?;
                        }
                        let buckets = v
                            .req("buckets")
                            .ok()
                            .and_then(Value::as_arr)
                            .ok_or_else(|| format!("line {line}: histogram without buckets"))?;
                        for b in buckets {
                            let pair = b.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                                format!("line {line}: bucket is not a [lower, count] pair")
                            })?;
                            if pair.iter().any(|x| x.as_f64().is_none()) {
                                return Err(format!("line {line}: non-numeric bucket entry"));
                            }
                        }
                    }
                    other => return Err(format!("line {line}: unknown metric kind `{other}`")),
                }
            }
            "record" => {
                summary.records += 1;
                for key in ["iteration", "seconds", "train_loss"] {
                    req_num(&v, key, line)?;
                }
                v.req("val_errors")
                    .ok()
                    .and_then(Value::as_arr)
                    .ok_or_else(|| format!("line {line}: record without val_errors array"))?;
            }
            "span" => {
                summary.spans += 1;
                let name = req_str(&v, "name", line)?;
                let cat = req_str(&v, "cat", line)?;
                summary.span_names.insert(name);
                *summary.span_cats.entry(cat).or_insert(0) += 1;
                for key in ["tid", "id", "parent", "start_ns", "dur_ns"] {
                    req_num(&v, key, line)?;
                }
                let id = req_num(&v, "id", line)? as u64;
                if id == 0 {
                    return Err(format!(
                        "line {line}: span id 0 is reserved for `no parent`"
                    ));
                }
                let tid = req_num(&v, "tid", line)? as u64;
                span_tid.insert(id, tid);
                let parent = req_num(&v, "parent", line)? as u64;
                if parent != 0 {
                    parents.push((parent, tid));
                }
            }
            other => return Err(format!("line {line}: unknown line type `{other}`")),
        }
    }
    if nonempty == 0 {
        return Err("empty telemetry document".into());
    }
    for (parent, child_tid) in parents {
        if let Some(&ptid) = span_tid.get(&parent) {
            if ptid != child_tid {
                summary.cross_thread_spans += 1;
            }
        }
        // A parent id with no span line is legal: the parent may have
        // been dropped by a level change or an earlier drain.
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = concat!(
        "{\"type\":\"meta\",\"run\":\"t\",\"method\":\"sgm\"}\n",
        "{\"type\":\"metric\",\"kind\":\"counter\",\"name\":\"c\",\"value\":3}\n",
        "{\"type\":\"metric\",\"kind\":\"histogram\",\"name\":\"h\",\"count\":1,",
        "\"sum\":5,\"min\":5,\"max\":5,\"mean\":5,\"buckets\":[[5,1]]}\n",
        "{\"type\":\"record\",\"iteration\":0,\"seconds\":0.1,\"train_loss\":1.0,",
        "\"val_errors\":[0.5]}\n",
        "{\"type\":\"span\",\"name\":\"a\",\"cat\":\"engine\",\"tid\":0,\"id\":1,",
        "\"parent\":0,\"start_ns\":0,\"dur_ns\":10}\n",
        "{\"type\":\"span\",\"name\":\"b\",\"cat\":\"sampler\",\"tid\":1,\"id\":2,",
        "\"parent\":1,\"start_ns\":2,\"dur_ns\":5}\n",
    );

    #[test]
    fn valid_document_summarises() {
        let s = validate_run_log(GOOD).expect("valid");
        assert_eq!(s.metrics, 2);
        assert_eq!(s.records, 1);
        assert_eq!(s.spans, 2);
        assert!(s.span_names.contains("b"));
        assert_eq!(s.span_cats.get("sampler"), Some(&1));
        // Span b (tid 1) is parented under span a (tid 0).
        assert_eq!(s.cross_thread_spans, 1);
    }

    #[test]
    fn rejects_missing_meta_and_bad_lines() {
        assert!(validate_run_log("").is_err());
        assert!(validate_run_log("{\"type\":\"record\"}").is_err());
        let err = validate_run_log("{\"type\":\"meta\",\"run\":\"t\"}\nnot json")
            .expect_err("parse failure");
        assert!(err.starts_with("line 2:"), "{err}");
        let err = validate_run_log("{\"type\":\"meta\",\"run\":\"t\"}\n{\"type\":\"mystery\"}")
            .expect_err("unknown type");
        assert!(err.contains("unknown line type"), "{err}");
    }
}
