//! Seeded property sweeps with automatic failure-case shrinking — the
//! workspace's offline stand-in for proptest/quickcheck.
//!
//! A [`Sweep`] generates cases from a fixed-seed `Rng64` (so every
//! failure is reproducible by construction), checks a property over
//! each, and on failure greedily shrinks the case through a
//! caller-supplied candidate generator before reporting the *minimal*
//! failing input together with the seed. Panics inside the property are
//! caught and treated as failures, so `assert!`-style checks shrink
//! just like `Err` returns.

use sgm_linalg::rng::Rng64;
use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A seeded, shrinking property-test runner.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Seed of the case-generating `Rng64` (reported on failure).
    pub seed: u64,
    /// Number of generated cases to check.
    pub cases: usize,
    /// Cap on shrink attempts once a failure is found.
    pub max_shrink_steps: usize,
}

impl Sweep {
    /// A sweep over `cases` cases from seed `seed`, with the default
    /// shrink budget of 1000 attempts.
    pub fn new(seed: u64, cases: usize) -> Self {
        Sweep {
            seed,
            cases,
            max_shrink_steps: 1000,
        }
    }

    /// Runs the sweep: `gen` draws a case from the seeded rng, `check`
    /// decides it, and `shrink` proposes strictly simpler candidates for
    /// a failing case (return an empty vec when no simplification
    /// applies). The first failure is greedily shrunk — repeatedly
    /// replaced by its first still-failing candidate — and reported.
    ///
    /// # Panics
    /// Panics with the minimal failing case, its error, the originating
    /// seed and case index when the property fails.
    pub fn run<C, G, S, P>(&self, mut gen: G, shrink: S, check: P)
    where
        C: Debug,
        G: FnMut(&mut Rng64) -> C,
        S: Fn(&C) -> Vec<C>,
        P: Fn(&C) -> Result<(), String>,
    {
        let mut rng = Rng64::new(self.seed);
        for case_no in 0..self.cases {
            let case = gen(&mut rng);
            let Err(err) = run_check(&check, &case) else {
                continue;
            };
            let (min_case, min_err, steps) = self.shrink_failure(case, err, &shrink, &check);
            panic!(
                "property failed (seed {:#x}, case {case_no}/{}):\n  minimal case \
                 (after {steps} shrink steps): {min_case:?}\n  error: {min_err}",
                self.seed, self.cases,
            );
        }
    }

    /// Greedy shrink loop: take the first failing candidate, repeat.
    fn shrink_failure<C, S, P>(
        &self,
        case: C,
        err: String,
        shrink: &S,
        check: &P,
    ) -> (C, String, usize)
    where
        C: Debug,
        S: Fn(&C) -> Vec<C>,
        P: Fn(&C) -> Result<(), String>,
    {
        let mut cur = case;
        let mut cur_err = err;
        let mut steps = 0;
        'outer: while steps < self.max_shrink_steps {
            for cand in shrink(&cur) {
                steps += 1;
                if let Err(e) = run_check(check, &cand) {
                    cur = cand;
                    cur_err = e;
                    continue 'outer;
                }
                if steps >= self.max_shrink_steps {
                    break;
                }
            }
            break;
        }
        (cur, cur_err, steps)
    }
}

/// Runs the property, converting panics into `Err` so they shrink too.
fn run_check<C>(check: &impl Fn(&C) -> Result<(), String>, case: &C) -> Result<(), String> {
    match catch_unwind(AssertUnwindSafe(|| check(case))) {
        Ok(r) => r,
        Err(payload) => Err(payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .map_or_else(
                || "panicked (non-string payload)".to_string(),
                |m| format!("panicked: {m}"),
            )),
    }
}

/// Standard shrinker for a float: toward zero and halves.
pub fn shrink_f64(x: f64) -> Vec<f64> {
    if x == 0.0 || !x.is_finite() {
        return Vec::new();
    }
    let mut out = vec![0.0];
    if x.abs() >= 1e-12 {
        out.push(x / 2.0);
    }
    if x.fract() != 0.0 {
        out.push(x.trunc());
    }
    out
}

/// Standard shrinker for a vector: drop halves, then single elements.
pub fn shrink_vec<T: Clone>(xs: &[T]) -> Vec<Vec<T>> {
    let n = xs.len();
    if n == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    if n > 1 {
        out.push(xs[..n / 2].to_vec());
        out.push(xs[n / 2..].to_vec());
    }
    for i in 0..n {
        let mut shorter = xs.to_vec();
        shorter.remove(i);
        out.push(shorter);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_checks_every_case() {
        let mut seen = 0;
        Sweep::new(7, 40).run(
            |rng| rng.uniform(),
            |_| Vec::new(),
            |x| {
                if (0.0..1.0).contains(x) {
                    Ok(())
                } else {
                    Err(format!("{x} out of range"))
                }
            },
        );
        // `run` takes gen by value each call; count via the generator.
        Sweep::new(8, 40).run(
            |rng| {
                seen += 1;
                rng.uniform()
            },
            |_| Vec::new(),
            |_| Ok(()),
        );
        assert_eq!(seen, 40);
    }

    #[test]
    fn failing_property_is_shrunk_to_the_boundary() {
        // Property: x < 100. Generator draws large values; shrinking by
        // halves must land exactly on the smallest failing power-of-two
        // path value, proving the shrink loop drives toward minimality.
        let result = catch_unwind(AssertUnwindSafe(|| {
            Sweep::new(11, 10).run(
                |rng| 1000 + rng.below(1000),
                |&x| {
                    if x > 100 {
                        vec![x / 2, x - 1]
                    } else {
                        Vec::new()
                    }
                },
                |&x| {
                    if x < 100 {
                        Ok(())
                    } else {
                        Err(format!("{x} >= 100"))
                    }
                },
            );
        }));
        let msg = *result
            .expect_err("property must fail")
            .downcast::<String>()
            .expect("string panic");
        // Greedy halving from ~1000-2000 with a -1 fallback always
        // bottoms out at exactly 100.
        assert!(msg.contains("minimal case"), "{msg}");
        assert!(msg.contains(": 100"), "not shrunk to boundary: {msg}");
        assert!(msg.contains("seed 0xb"), "seed missing: {msg}");
    }

    #[test]
    fn panics_inside_the_property_shrink_like_errors() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            Sweep::new(3, 5).run(
                |rng| rng.below(64) + 64,
                |&x| if x > 0 { vec![x / 2] } else { Vec::new() },
                |&x| {
                    assert!(x < 4, "too big: {x}");
                    Ok(())
                },
            );
        }));
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("panicked: too big:"), "{msg}");
        // Halving bottoms out at the smallest failing value on the
        // halving path: 4..=7 depending on the draw (x/2 of the minimum
        // must pass, so the minimum is < 8).
        let min: u64 = msg
            .split("too big: ")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .expect("minimal value in message");
        assert!((4..8).contains(&min), "not shrunk to minimum: {msg}");
    }

    #[test]
    fn shrinkers_propose_simpler_cases() {
        assert!(shrink_f64(0.0).is_empty());
        assert!(shrink_f64(8.5).contains(&0.0));
        assert!(shrink_f64(8.5).contains(&8.0));
        let v = shrink_vec(&[1, 2, 3, 4]);
        assert!(v.contains(&vec![1, 2]));
        assert!(v.contains(&vec![3, 4]));
        assert!(v.contains(&vec![2, 3, 4]));
        assert!(shrink_vec::<u8>(&[]).is_empty());
    }
}
