//! Method-of-manufactured-solutions (MMS) oracles.
//!
//! Each [`MmsCase`] pairs a PDE from `sgm-physics` with closed-form
//! fields whose residuals are *symbolically* known — either an exact
//! solution (residual ≡ 0) or a manufactured field with a hand-derived
//! nonzero residual. The fields are pushed through second-order dual
//! numbers (`Dual2`), so the derivative sets handed to
//! [`Pde::residuals`] are exact to machine precision and the comparison
//! checks the residual *algebra*, not an approximation of it.

use sgm_autodiff::dual::Dual2;
use sgm_linalg::dense::Matrix;
use sgm_nn::mlp::BatchDerivatives;
use sgm_physics::pde::{BurgersConfig, HeatConfig, HelmholtzConfig, NsConfig, Pde, PoissonConfig};

/// Field closure type: `(x0, x1) → output`, evaluated over duals.
pub type Field = Box<dyn Fn(Dual2, Dual2) -> Dual2>;

/// Exact derivative sets of analytic fields at `pts`, built with one
/// `Dual2` pass per input dimension (dim 0 varies `x0`, dim 1 varies
/// `x1`) — the NN-free stand-in for `Mlp::forward_with_derivs`.
pub fn derivs_of(fields: &[Field], pts: &[(f64, f64)]) -> BatchDerivatives {
    let mut out = BatchDerivatives::zeros(pts.len(), fields.len(), 2);
    for (i, &(x, y)) in pts.iter().enumerate() {
        for (k, f) in fields.iter().enumerate() {
            let fx = f(Dual2::variable(x), Dual2::constant(y));
            let fy = f(Dual2::constant(x), Dual2::variable(y));
            out.values.set(i, k, fx.v);
            out.jac[0].set(i, k, fx.d);
            out.jac[1].set(i, k, fy.d);
            out.hess[0].set(i, k, fx.dd);
            out.hess[1].set(i, k, fy.dd);
        }
    }
    out
}

/// A manufactured-solution test case: analytic fields + the residual
/// values they must produce under `pde`.
pub struct MmsCase {
    /// Case name for failure messages.
    pub name: &'static str,
    /// The PDE system under test.
    pub pde: Pde,
    /// One analytic field per network output, over duals.
    pub fields: Vec<Field>,
    /// Symbolically known residuals at a point: `(x0, x1) → r_k` per
    /// residual equation (all zeros for exact solutions).
    pub expected: Box<dyn Fn(f64, f64) -> Vec<f64>>,
    /// Evaluation points (chosen away from singularities).
    pub pts: Vec<(f64, f64)>,
    /// Absolute tolerance for `|computed − expected|`.
    pub tol: f64,
}

impl MmsCase {
    /// Residuals of the analytic fields at every point,
    /// `pts.len() × num_residuals`.
    pub fn residual_matrix(&self) -> Matrix {
        let d = derivs_of(&self.fields, &self.pts);
        let x = Matrix::from_rows(
            &self
                .pts
                .iter()
                .map(|&(a, b)| [a, b])
                .collect::<Vec<_>>()
                .iter()
                .map(|r| &r[..])
                .collect::<Vec<_>>(),
        );
        self.pde.residuals(&x, &d)
    }

    /// Checks every residual at every point against the symbolic oracle.
    ///
    /// # Errors
    /// Returns the first violation with point, residual name, computed
    /// and expected values.
    pub fn check(&self) -> Result<(), String> {
        let r = self.residual_matrix();
        let names = self.pde.residual_names();
        for (i, &(x, y)) in self.pts.iter().enumerate() {
            let want = (self.expected)(x, y);
            assert_eq!(want.len(), self.pde.num_residuals(), "oracle arity");
            for (k, &w) in want.iter().enumerate() {
                let got = r.get(i, k);
                if (got - w).abs() > self.tol {
                    return Err(format!(
                        "{}: residual `{}` at ({x}, {y}): computed {got}, \
                         symbolic oracle {w} (|Δ| = {:e} > tol {:e})",
                        self.name,
                        names[k],
                        (got - w).abs(),
                        self.tol,
                    ));
                }
            }
        }
        Ok(())
    }
}

const PI: f64 = std::f64::consts::PI;
/// Viscosity of the stationary-shock Burgers case (must be a constant:
/// PDE configs take fn pointers, not closures).
pub const BURGERS_SHOCK_NU: f64 = 0.07;
/// Wavenumber of the Helmholtz plane-wave case.
pub const HELMHOLTZ_K: f64 = 3.0;
/// Circulation constant of the Navier–Stokes source-flow case.
pub const NS_SOURCE_C: f64 = 0.8;

fn poisson_sine_forcing(p: &[f64]) -> f64 {
    2.0 * PI * PI * (PI * p[0]).sin() * (PI * p[1]).sin()
}

fn zero_fn(_p: &[f64]) -> f64 {
    0.0
}

fn unit_conductivity(_p: &[f64]) -> f64 {
    1.0
}

fn zero_grad2(_p: &[f64]) -> [f64; 2] {
    [0.0, 0.0]
}

fn conductivity_1px(p: &[f64]) -> f64 {
    1.0 + p[0]
}

fn conductivity_1px_grad(_p: &[f64]) -> [f64; 2] {
    [1.0, 0.0]
}

/// Source that makes `T = sin(πx)sin(πy)` solve steady heat conduction
/// with `κ = 1 + x`: `q = κ·2π²T − π·cos(πx)sin(πy)`.
fn heat_mms_source(p: &[f64]) -> f64 {
    let (x, y) = (p[0], p[1]);
    (1.0 + x) * 2.0 * PI * PI * (PI * x).sin() * (PI * y).sin()
        - PI * (PI * x).cos() * (PI * y).sin()
}

fn interior_grid() -> Vec<(f64, f64)> {
    let mut pts = Vec::new();
    for i in 1..5 {
        for j in 1..5 {
            pts.push((f64::from(i) * 0.2, f64::from(j) * 0.2 - 0.03));
        }
    }
    pts
}

fn exact(n: usize) -> Box<dyn Fn(f64, f64) -> Vec<f64>> {
    Box::new(move |_, _| vec![0.0; n])
}

/// Poisson, exact: `u = sin(πx)sin(πy)` with `f = 2π²u` ⇒ residual 0.
pub fn poisson_sine() -> MmsCase {
    MmsCase {
        name: "poisson_sine",
        pde: Pde::Poisson(PoissonConfig {
            forcing: poisson_sine_forcing,
        }),
        fields: vec![Box::new(|x, y| (x * PI).sin() * (y * PI).sin())],
        expected: exact(1),
        pts: interior_grid(),
        tol: 1e-9,
    }
}

/// Poisson, manufactured *nonzero* residual: `u = sin(x)cos(y)`, `f = 0`
/// ⇒ residual `∇²u = −2 sin(x)cos(y)` — catches oracles that only ever
/// see zeros.
pub fn poisson_nonzero() -> MmsCase {
    MmsCase {
        name: "poisson_nonzero",
        pde: Pde::Poisson(PoissonConfig { forcing: zero_fn }),
        fields: vec![Box::new(|x, y| x.sin() * y.cos())],
        expected: Box::new(|x, y| vec![-2.0 * x.sin() * y.cos()]),
        pts: interior_grid(),
        tol: 1e-10,
    }
}

/// Burgers, exact rarefaction: `u = x/(1+t)` has `u_xx = 0` and
/// `u_t + u·u_x = −x/(1+t)² + x/(1+t)² = 0` for any ν.
pub fn burgers_rarefaction() -> MmsCase {
    MmsCase {
        name: "burgers_rarefaction",
        pde: Pde::Burgers(BurgersConfig { nu: 0.05 }),
        fields: vec![Box::new(|x, t| x * (t + 1.0).powi(-1))],
        expected: exact(1),
        pts: vec![(0.3, 0.0), (-0.7, 0.4), (0.9, 1.0), (-0.2, 0.25)],
        tol: 1e-10,
    }
}

/// Burgers, exact stationary viscous shock: `u = −tanh(x/(2ν))` solves
/// `u·u_x = ν·u_xx` with `u_t = 0`.
pub fn burgers_shock() -> MmsCase {
    MmsCase {
        name: "burgers_shock",
        pde: Pde::Burgers(BurgersConfig {
            nu: BURGERS_SHOCK_NU,
        }),
        fields: vec![Box::new(|x, _t| {
            -(x * (1.0 / (2.0 * BURGERS_SHOCK_NU))).tanh()
        })],
        expected: exact(1),
        pts: vec![(0.1, 0.2), (-0.15, 0.8), (0.0, 0.5), (0.3, 0.0)],
        tol: 1e-9,
    }
}

/// Heat with uniform conductivity, exact: harmonic `T = x² − y²`,
/// `q = 0` ⇒ residual 0 (reduces to Laplace).
pub fn heat_harmonic() -> MmsCase {
    MmsCase {
        name: "heat_harmonic",
        pde: Pde::Heat(HeatConfig {
            conductivity: unit_conductivity,
            conductivity_grad: zero_grad2,
            source: zero_fn,
        }),
        fields: vec![Box::new(|x, y| x * x - y * y)],
        expected: exact(1),
        pts: interior_grid(),
        tol: 1e-10,
    }
}

/// Heat with varying conductivity `κ = 1 + x`, manufactured source so
/// that `T = sin(πx)sin(πy)` is exact — exercises the `κ_x·T_x` term.
pub fn heat_varying_k() -> MmsCase {
    MmsCase {
        name: "heat_varying_k",
        pde: Pde::Heat(HeatConfig {
            conductivity: conductivity_1px,
            conductivity_grad: conductivity_1px_grad,
            source: heat_mms_source,
        }),
        fields: vec![Box::new(|x, y| (x * PI).sin() * (y * PI).sin())],
        expected: exact(1),
        pts: interior_grid(),
        tol: 1e-9,
    }
}

/// Helmholtz, exact plane wave: `u = sin(k(x + y)/√2)` satisfies
/// `∇²u + k²u = 0`.
pub fn helmholtz_plane_wave() -> MmsCase {
    let a = HELMHOLTZ_K / std::f64::consts::SQRT_2;
    MmsCase {
        name: "helmholtz_plane_wave",
        pde: Pde::Helmholtz(HelmholtzConfig {
            wavenumber: HELMHOLTZ_K,
            forcing: zero_fn,
        }),
        fields: vec![Box::new(move |x, y| ((x + y) * a).sin())],
        expected: exact(1),
        pts: interior_grid(),
        tol: 1e-9,
    }
}

/// Navier–Stokes (laminar), exact potential source flow on an annulus:
/// `u = Cx/r²`, `v = Cy/r²`, `p = −C²/(2r²)`. The velocity components
/// are harmonic, so the viscous terms vanish and the Euler balance
/// closes; continuity is `∇²(C ln r) = 0`. Valid for any ν.
pub fn ns_source_flow() -> MmsCase {
    let c = NS_SOURCE_C;
    let u: Field = Box::new(move |x, y| x * (x * x + y * y).powi(-1) * c);
    let v: Field = Box::new(move |x, y| y * (x * x + y * y).powi(-1) * c);
    let p: Field = Box::new(move |x, y| (x * x + y * y).powi(-1) * (-c * c / 2.0));
    MmsCase {
        name: "ns_source_flow",
        pde: Pde::NavierStokes(NsConfig {
            nu: 0.1,
            zero_eq: None,
        }),
        fields: vec![u, v, p],
        expected: exact(3),
        // Annulus points, r ∈ [0.58, 1.58] — away from the r = 0 pole.
        pts: vec![
            (1.2, 0.3),
            (0.9, -1.0),
            (-1.5, 0.5),
            (0.4, 0.7),
            (-0.6, -0.8),
        ],
        tol: 1e-9,
    }
}

/// Every oracle case, for exhaustive sweeps.
pub fn all_cases() -> Vec<MmsCase> {
    vec![
        poisson_sine(),
        poisson_nonzero(),
        burgers_rarefaction(),
        burgers_shock(),
        heat_harmonic(),
        heat_varying_k(),
        helmholtz_plane_wave(),
        ns_source_flow(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivs_of_matches_hand_derivatives() {
        let f: Field = Box::new(|x, y| (x * 2.0).sin() * y + x * x * y);
        let d = derivs_of(&[f], &[(0.4, 0.9)]);
        let (x, y) = (0.4f64, 0.9f64);
        assert!((d.values.get(0, 0) - ((2.0 * x).sin() * y + x * x * y)).abs() < 1e-14);
        assert!((d.jac[0].get(0, 0) - (2.0 * (2.0 * x).cos() * y + 2.0 * x * y)).abs() < 1e-13);
        assert!((d.jac[1].get(0, 0) - ((2.0 * x).sin() + x * x)).abs() < 1e-14);
        assert!((d.hess[0].get(0, 0) - (-4.0 * (2.0 * x).sin() * y + 2.0 * y)).abs() < 1e-13);
        assert!(d.hess[1].get(0, 0).abs() < 1e-14);
    }

    #[test]
    fn a_wrong_field_is_rejected() {
        // Sanity: the oracle actually discriminates. Perturb the Poisson
        // field so it no longer satisfies the PDE.
        let mut case = poisson_sine();
        case.fields = vec![Box::new(|x, y| (x * PI).sin() * (y * PI).sin() + x * x)];
        let err = case.check().expect_err("perturbed field must fail");
        assert!(err.contains("poisson_sine"), "error names the case: {err}");
        assert!(
            err.contains("symbolic oracle"),
            "error shows both values: {err}"
        );
    }
}
