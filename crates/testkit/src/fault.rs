//! Deterministic fault injection for the background rebuild worker.
//!
//! [`FaultPlan`] scripts a sequence of [`FaultAction`]s consumed one per
//! rebuild request by a worker spawned through the *production*
//! `BackgroundBuilder::spawn_with_worker` hook — the builder, channels
//! and death-detection paths under test are exactly the shipped ones;
//! only the work function is scripted. Exhausting the script falls back
//! to normal computation, so a plan only describes the interesting
//! prefix.
//!
//! Delays are modelled with rendezvous gates rather than sleeps: a
//! [`FaultAction::HoldThenCompute`] worker blocks on a channel until the
//! test releases (or drops) its [`Gate`], making "the rebuild is slow"
//! a deterministic, schedule-independent state instead of a race.

use sgm_core::background::{BackgroundBuilder, RebuildOutput, RebuildRequest, RebuildWorker};
use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, Sender};

/// Releases a held [`FaultAction::HoldThenCompute`] rebuild. Dropping
/// the gate releases it too (the worker treats a closed channel the
/// same as an explicit release).
#[derive(Debug)]
pub struct Gate(Sender<()>);

impl Gate {
    /// Lets the held rebuild proceed.
    pub fn release(self) {
        let _ = self.0.send(());
    }
}

/// One scripted behaviour of the rebuild worker for one request.
#[derive(Debug)]
pub enum FaultAction {
    /// Behave normally: run the real S1+S2 rebuild and return it.
    Compute,
    /// Block until the paired [`Gate`] is released (or dropped), then
    /// compute normally — models a slow rebuild.
    HoldThenCompute(Receiver<()>),
    /// Consume the request and return nothing — models a lost result.
    Drop,
    /// Panic with the given message — models a worker crash. The message
    /// must be recoverable through `WorkerDied::panic`.
    Panic(String),
}

impl FaultAction {
    /// A `HoldThenCompute` action plus the [`Gate`] that releases it.
    pub fn gated() -> (Gate, FaultAction) {
        let (tx, rx) = channel();
        (Gate(tx), FaultAction::HoldThenCompute(rx))
    }
}

/// A scripted sequence of worker behaviours.
#[derive(Debug)]
pub struct FaultPlan {
    actions: VecDeque<FaultAction>,
}

impl FaultPlan {
    /// Builds a plan from the actions to apply, in request order.
    pub fn new(actions: impl IntoIterator<Item = FaultAction>) -> Self {
        FaultPlan {
            actions: actions.into_iter().collect(),
        }
    }

    /// Spawns a `BackgroundBuilder` whose worker follows this script,
    /// computing normally once the script is exhausted. Computation runs
    /// through a real [`RebuildWorker`], so incremental requests exercise
    /// the production delta engine — and a scripted crash takes that
    /// engine's state down with the thread, exactly like a real one.
    pub fn spawn(self) -> BackgroundBuilder {
        let mut script = self.actions;
        let mut worker = RebuildWorker::new();
        BackgroundBuilder::spawn_with_worker(move |req: &RebuildRequest| -> Option<RebuildOutput> {
            let action = script.pop_front().unwrap_or(FaultAction::Compute);
            match action {
                FaultAction::Compute => Some(worker.run(req)),
                FaultAction::HoldThenCompute(gate) => {
                    // Released or dropped — either way, proceed.
                    let _ = gate.recv();
                    Some(worker.run(req))
                }
                FaultAction::Drop => None,
                FaultAction::Panic(msg) => panic!("{msg}"),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgm_graph::knn::{KnnConfig, KnnStrategy};
    use sgm_graph::lrd::LrdConfig;
    use sgm_graph::points::PointCloud;
    use sgm_linalg::rng::Rng64;
    use std::sync::Arc;

    fn request(seed: u64) -> RebuildRequest {
        let mut rng = Rng64::new(seed);
        RebuildRequest {
            cloud: Arc::new(PointCloud::uniform_box(120, 2, 0.0, 1.0, &mut rng)),
            knn: KnnConfig {
                k: 5,
                strategy: KnnStrategy::Grid,
                ..KnnConfig::default()
            },
            lrd: LrdConfig::default(),
            incremental: None,
        }
    }

    #[test]
    fn gated_rebuild_is_held_until_release() {
        let (gate, action) = FaultAction::gated();
        let mut b = FaultPlan::new([action]).spawn();
        assert!(b.request(request(1)).unwrap());
        // While the gate is held the result must not materialise.
        for _ in 0..50 {
            assert!(b.try_take().unwrap().is_none());
            std::thread::yield_now();
        }
        gate.release();
        let out = b.take_blocking().expect("released rebuild completes");
        assert_eq!(out.clustering.num_nodes(), 120);
        assert!(!b.is_dead());
    }

    #[test]
    fn dropped_gate_also_releases() {
        let (gate, action) = FaultAction::gated();
        let mut b = FaultPlan::new([action]).spawn();
        assert!(b.request(request(2)).unwrap());
        drop(gate);
        assert!(b.take_blocking().is_ok());
    }

    #[test]
    fn panic_action_kills_the_worker_with_its_message() {
        let mut b = FaultPlan::new([FaultAction::Panic("scripted crash".into())]).spawn();
        assert!(b.request(request(3)).unwrap());
        let err = b.take_blocking().unwrap_err();
        assert_eq!(err.panic.as_deref(), Some("scripted crash"));
        assert!(b.is_dead());
    }

    #[test]
    fn exhausted_script_computes_normally() {
        let mut b = FaultPlan::new([]).spawn();
        assert!(b.request(request(4)).unwrap());
        let out = b.take_blocking().expect("default action is Compute");
        assert_eq!(out.clustering.num_nodes(), 120);
    }
}
