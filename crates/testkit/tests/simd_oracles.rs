//! Kernel-oracle sweeps for the `sgm_linalg::simd` dispatch tiers.
//!
//! Every SIMD kernel is audited two ways, per the ISSUE-4 contract:
//!
//! 1. **Oracle agreement** — against an *independent* naive computation
//!    (`gemm_reference`, plain summation loops, triplet SpMV) that shares
//!    no code with the production kernels. The scalar tier must match the
//!    sequential oracles bit-for-bit where the kernel preserves the naive
//!    association (GEMM, SpMV row sums, all elementwise kernels); strided
//!    reductions (dot/dist2) match within the FMA-free reassociation
//!    bound.
//! 2. **Cross-tier divergence** — scalar vs AVX2 results differ only by
//!    FMA contraction rounding, bounded by `1e-12` *relative to the
//!    term-magnitude sum* (the cancellation-safe yardstick: a plain
//!    relative bound is unattainable when adversarial mixed-sign inputs
//!    cancel catastrophically, yet the absolute FMA error still scales
//!    with the term magnitudes, not the result).
//!
//! Sizes sweep the adversarial lane boundaries (0, 1, lane−1, lane,
//! lane+1, large odd); values sweep subnormals, signed zeros and wildly
//! mixed signs/magnitudes via the shared generator below.

use sgm_linalg::dense::{gemm, gemm_reference, Matrix};
use sgm_linalg::rng::Rng64;
use sgm_linalg::simd::{self, SimdTier};
use sgm_linalg::Csr;
use sgm_testkit::sweep::Sweep;

/// Adversarial lengths around the 4-lane boundary plus a large odd size.
const SIZES: &[usize] = &[0, 1, 3, 4, 5, 8, 13, 1023];

/// Draws one adversarial f64: mixed signs, huge/tiny magnitudes,
/// subnormals and signed zeros all appear.
fn adversarial(rng: &mut Rng64) -> f64 {
    match rng.next_u64() % 8 {
        0 => 0.0,
        1 => -0.0,
        2 => f64::MIN_POSITIVE / 2.0,  // subnormal
        3 => -f64::MIN_POSITIVE / 4.0, // subnormal
        4 => rng.gaussian() * 1e100,
        5 => rng.gaussian() * 1e-100,
        _ => rng.gaussian(),
    }
}

fn adv_vec(rng: &mut Rng64, n: usize) -> Vec<f64> {
    (0..n).map(|_| adversarial(rng)).collect()
}

/// Shrinker: halve the vectors (pairwise, keeping them same-length).
fn shrink_pair(case: &(Vec<f64>, Vec<f64>)) -> Vec<(Vec<f64>, Vec<f64>)> {
    let n = case.0.len();
    if n == 0 {
        return Vec::new();
    }
    let h = n / 2;
    vec![
        (case.0[..h].to_vec(), case.1[..h].to_vec()),
        (case.0[h..].to_vec(), case.1[h..].to_vec()),
    ]
}

/// `|got - want| ≤ 1e-12 · (mag + tiny)` with `mag` the term-magnitude
/// sum of the reduction — the cancellation-safe divergence bound.
fn close(got: f64, want: f64, mag: f64) -> Result<(), String> {
    // Exact-match fast path also covers inf/nan agreement on overflow.
    if got.to_bits() == want.to_bits() || (got - want).abs() <= 1e-12 * (mag + 1e-300) {
        Ok(())
    } else {
        Err(format!("{got} vs {want} (mag {mag})"))
    }
}

#[test]
fn dot_matches_oracle_and_tiers_agree() {
    let mut size_i = 0;
    Sweep::new(0xD07, 64).run(
        |rng| {
            let n = SIZES[size_i % SIZES.len()];
            size_i += 1;
            (adv_vec(rng, n), adv_vec(rng, n))
        },
        shrink_pair,
        |(a, b)| {
            // Independent oracle: sequential Kahan-free naive sum.
            let want: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let mag: f64 = a.iter().zip(b).map(|(x, y)| (x * y).abs()).sum();
            let mut per_tier = Vec::new();
            for &t in simd::available_tiers() {
                let got = simd::with_tier(t, || simd::dot(a, b));
                close(got, want, mag).map_err(|e| format!("{t:?} vs oracle: {e}"))?;
                per_tier.push((t, got));
            }
            for (t, got) in &per_tier[1..] {
                close(*got, per_tier[0].1, mag).map_err(|e| format!("{t:?} vs scalar: {e}"))?;
            }
            Ok(())
        },
    );
}

#[test]
fn axpy_matches_oracle_bitwise_per_tier() {
    let mut size_i = 0;
    Sweep::new(0xA9, 64).run(
        |rng| {
            let n = SIZES[size_i % SIZES.len()];
            size_i += 1;
            (adv_vec(rng, n), adv_vec(rng, n + 1)) // last elem of .1 is alpha
        },
        |case| {
            if case.0.is_empty() {
                return Vec::new();
            }
            let h = case.0.len() / 2;
            vec![(
                case.0[..h].to_vec(),
                case.1[..h].iter().chain(case.1.last()).copied().collect(),
            )]
        },
        |(x, y_alpha)| {
            let (alpha, y0) = (*y_alpha.last().unwrap(), &y_alpha[..x.len()]);
            // axpy is elementwise: each tier must match the naive update
            // bit-for-bit except for the AVX2 FMA contraction, which we
            // check element-relative.
            for &t in simd::available_tiers() {
                let mut y = y0.to_vec();
                simd::with_tier(t, || simd::axpy(alpha, x, &mut y));
                for i in 0..x.len() {
                    let want = y0[i] + alpha * x[i];
                    let mag = y0[i].abs() + (alpha * x[i]).abs();
                    if t == SimdTier::Scalar && y[i].to_bits() != want.to_bits() {
                        return Err(format!("scalar axpy[{i}]: {} vs {want}", y[i]));
                    }
                    close(y[i], want, mag).map_err(|e| format!("{t:?} axpy[{i}]: {e}"))?;
                }
            }
            Ok(())
        },
    );
}

#[test]
fn dist2_and_batch_match_naive_knn_oracle() {
    let dims = [1usize, 2, 3, 4, 7];
    let mut case_i = 0;
    Sweep::new(0xD15, 48).run(
        |rng| {
            let dim = dims[case_i % dims.len()];
            let n = SIZES[case_i % SIZES.len()];
            case_i += 1;
            (adv_vec(rng, n * dim), adv_vec(rng, dim))
        },
        |_| Vec::new(),
        |(points, q)| {
            let dim = q.len();
            let n = points.len() / dim;
            // Independent oracle: the naive kNN distance loop.
            let naive = |p: &[f64]| -> f64 {
                let mut s = 0.0;
                for k in 0..dim {
                    let d = p[k] - q[k];
                    s += d * d;
                }
                s
            };
            for &t in simd::available_tiers() {
                let mut out = vec![0.0; n];
                simd::with_tier(t, || simd::dist2_batch(points, dim, q, &mut out));
                for j in 0..n {
                    let p = &points[j * dim..(j + 1) * dim];
                    let want = naive(p);
                    let mag: f64 = p
                        .iter()
                        .zip(q)
                        .map(|(a, b)| {
                            let d = a - b;
                            d * d
                        })
                        .sum();
                    close(out[j], want, mag).map_err(|e| format!("{t:?} batch[{j}]: {e}"))?;
                    let single = simd::with_tier(t, || simd::dist2(p, q));
                    close(single, want, mag).map_err(|e| format!("{t:?} dist2[{j}]: {e}"))?;
                }
            }
            Ok(())
        },
    );
}

#[test]
fn spmv_matches_triplet_oracle_per_tier() {
    let mut case_i = 0;
    Sweep::new(0x59, 32).run(
        |rng| {
            let rows = [1usize, 2, 5, 9, 33][case_i % 5];
            let cols = [1usize, 3, 4, 8, 65][case_i % 5];
            case_i += 1;
            // Random sparsity incl. empty rows and rows of every lane-tail length.
            let mut triplets = Vec::new();
            for r in 0..rows {
                let nnz = (rng.next_u64() % 7) as usize; // 0..=6 per row
                for _ in 0..nnz {
                    let c = (rng.next_u64() % cols as u64) as usize;
                    triplets.push((r, c, adversarial(rng)));
                }
            }
            let x = adv_vec(rng, cols);
            (rows, cols, triplets, x)
        },
        |_| Vec::new(),
        |(rows, cols, triplets, x)| {
            let a = Csr::from_triplets(*rows, *cols, triplets);
            // Independent oracle: dense accumulation from the triplets
            // (duplicates sum, in insertion order per (r,c) — matches
            // from_triplets' coalescing), evaluated with a naive loop.
            let mut dense = vec![0.0; rows * cols];
            for &(r, c, v) in triplets {
                dense[r * cols + c] += v;
            }
            let want: Vec<f64> = (0..*rows)
                .map(|r| {
                    let mut s = 0.0;
                    for c in 0..*cols {
                        s += dense[r * cols + c] * x[c];
                    }
                    s
                })
                .collect();
            for &t in simd::available_tiers() {
                let mut y = vec![0.0; *rows];
                simd::with_tier(t, || a.mul_vec(x, &mut y));
                for r in 0..*rows {
                    let mag: f64 = (0..*cols).map(|c| (dense[r * cols + c] * x[c]).abs()).sum();
                    close(y[r], want[r], mag).map_err(|e| format!("{t:?} row {r}: {e}"))?;
                }
            }
            Ok(())
        },
    );
}

#[test]
fn gemm_matches_reference_oracle_per_tier() {
    let shapes = [
        (1usize, 1usize, 1usize),
        (2, 3, 1),
        (3, 4, 4),
        (5, 5, 5),
        (17, 9, 33),
        (31, 64, 7),
    ];
    let mut case_i = 0;
    Sweep::new(0x6E, 24).run(
        |rng| {
            let (m, k, n) = shapes[case_i % shapes.len()];
            case_i += 1;
            (
                m,
                k,
                n,
                adv_vec(rng, m * k),
                adv_vec(rng, k * n),
                adv_vec(rng, m * n),
            )
        },
        |_| Vec::new(),
        |(m, k, n, av, bv, cv)| {
            let a = Matrix::from_vec(*m, *k, av.clone());
            let b = Matrix::from_vec(*k, *n, bv.clone());
            let c0 = Matrix::from_vec(*m, *n, cv.clone());
            let mut want = c0.clone();
            gemm_reference(0.9, &a, &b, -0.4, &mut want);
            for &t in simd::available_tiers() {
                let mut c = c0.clone();
                simd::with_tier(t, || gemm(0.9, &a, &b, -0.4, &mut c));
                for i in 0..*m {
                    for j in 0..*n {
                        let got = c.get(i, j);
                        let w = want.get(i, j);
                        if t == SimdTier::Scalar {
                            // Documented invariant: the scalar tier is
                            // bit-equal to the naive reference kernel.
                            if got.to_bits() != w.to_bits() {
                                return Err(format!("scalar gemm[{i},{j}]: {got} vs {w}"));
                            }
                        } else {
                            let mag: f64 = (0..*k)
                                .map(|p| (0.9 * a.get(i, p) * b.get(p, j)).abs())
                                .sum::<f64>()
                                + (0.4 * c0.get(i, j)).abs();
                            close(got, w, mag).map_err(|e| format!("{t:?} gemm[{i},{j}]: {e}"))?;
                        }
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn adam_update_matches_naive_oracle_per_tier() {
    let mut size_i = 0;
    Sweep::new(0xADA, 40).run(
        |rng| {
            let n = SIZES[size_i % SIZES.len()];
            size_i += 1;
            (
                adv_vec(rng, n),
                (0..n).map(|_| rng.gaussian()).collect::<Vec<f64>>(),
                (0..n).map(|_| rng.gaussian() * 0.1).collect::<Vec<f64>>(),
                (0..n)
                    .map(|_| rng.gaussian().abs() * 0.01)
                    .collect::<Vec<f64>>(),
            )
        },
        |_| Vec::new(),
        |(g, p0, m0, v0)| {
            let n = g.len();
            let (b1, b2, bc1, bc2, lr, eps) = (0.9, 0.999, 0.271, 0.0297, 1e-3, 1e-8);
            // Independent oracle: the pre-SIMD per-element update.
            let mut pw = p0.clone();
            let mut mw = m0.clone();
            let mut vw = v0.clone();
            for i in 0..n {
                mw[i] = b1 * mw[i] + (1.0 - b1) * g[i];
                vw[i] = b2 * vw[i] + (1.0 - b2) * g[i] * g[i];
                let mh = mw[i] / bc1;
                let vh = vw[i] / bc2;
                pw[i] -= lr * mh / (vh.sqrt() + eps);
            }
            for &t in simd::available_tiers() {
                let (mut p, mut m, mut v) = (p0.clone(), m0.clone(), v0.clone());
                simd::with_tier(t, || {
                    simd::adam_update(&mut p, g, &mut m, &mut v, b1, b2, bc1, bc2, lr, eps)
                });
                for i in 0..n {
                    close(m[i], mw[i], mw[i].abs().max(g[i].abs()))
                        .map_err(|e| format!("{t:?} m[{i}]: {e}"))?;
                    close(v[i], vw[i], vw[i].abs().max(g[i] * g[i]))
                        .map_err(|e| format!("{t:?} v[{i}]: {e}"))?;
                    close(p[i], pw[i], pw[i].abs().max(1.0))
                        .map_err(|e| format!("{t:?} p[{i}]: {e}"))?;
                }
            }
            Ok(())
        },
    );
}

#[test]
fn transpose_matches_naive_oracle_bitwise_per_tier() {
    // Pure data movement: every tier must match the naive double loop
    // bit-for-bit, including adversarial floats (subnormals survive a
    // shuffle unchanged) and non-multiple-of-4 shapes.
    let mut shape_i = 0;
    const SHAPES: &[(usize, usize)] = &[(0, 3), (1, 1), (3, 4), (4, 4), (5, 7), (8, 8), (13, 6)];
    Sweep::new(0x7A5, 40).run(
        |rng| {
            let (rows, cols) = SHAPES[shape_i % SHAPES.len()];
            shape_i += 1;
            (rows, cols, adv_vec(rng, rows * cols))
        },
        |_| Vec::new(),
        |&(rows, cols, ref src)| {
            let mut want = vec![0.0; rows * cols];
            for r in 0..rows {
                for c in 0..cols {
                    want[c * rows + r] = src[r * cols + c];
                }
            }
            for &t in simd::available_tiers() {
                let mut dst = vec![0.0; rows * cols];
                simd::with_tier(t, || simd::transpose(src, rows, cols, &mut dst));
                for (i, (got, exp)) in dst.iter().zip(&want).enumerate() {
                    if got.to_bits() != exp.to_bits() {
                        return Err(format!("{t:?} {rows}x{cols} [{i}]: {got} vs {exp}"));
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn bgemm_accum_matches_per_lane_oracle() {
    // The batched multi-instance GEMM: lane l of every (row, col) cell
    // is an independent ascending-k accumulation chain. The naive
    // triple loop below shares no code with the kernel; the scalar tier
    // must match it bit-for-bit, vector tiers within the FMA bound.
    let shapes = [
        (1usize, 1usize, 1usize),
        (2, 3, 1),
        (3, 7, 5),
        (5, 4, 9),
        (13, 9, 3),
    ];
    let mut case_i = 0;
    Sweep::new(0xB6E, 24).run(
        |rng| {
            let (m, kd, n) = shapes[case_i % shapes.len()];
            let lanes = [8usize, 16][case_i % 2];
            case_i += 1;
            (
                lanes,
                m,
                kd,
                n,
                adv_vec(rng, m * kd * lanes),
                adv_vec(rng, kd * n * lanes),
                adv_vec(rng, m * n * lanes),
            )
        },
        |_| Vec::new(),
        |&(lanes, m, kd, n, ref a, ref b, ref c0)| {
            let mut want = c0.clone();
            for r in 0..m {
                for j in 0..n {
                    for l in 0..lanes {
                        let mut acc = c0[(r * n + j) * lanes + l];
                        for k in 0..kd {
                            acc += a[(r * kd + k) * lanes + l] * b[(k * n + j) * lanes + l];
                        }
                        want[(r * n + j) * lanes + l] = acc;
                    }
                }
            }
            for &t in simd::available_tiers() {
                let mut c = c0.clone();
                simd::with_tier(t, || simd::bgemm_accum(lanes, a, b, &mut c, m, kd, n));
                for i in 0..c.len() {
                    if t == SimdTier::Scalar {
                        if c[i].to_bits() != want[i].to_bits() {
                            return Err(format!("scalar bgemm[{i}]: {} vs {}", c[i], want[i]));
                        }
                    } else {
                        let (r, j, l) = (i / (n * lanes), (i / lanes) % n, i % lanes);
                        let mag: f64 = (0..kd)
                            .map(|k| {
                                (a[(r * kd + k) * lanes + l] * b[(k * n + j) * lanes + l]).abs()
                            })
                            .sum::<f64>()
                            + c0[i].abs();
                        close(c[i], want[i], mag).map_err(|e| format!("{t:?} bgemm[{i}]: {e}"))?;
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn adam_update_multi_matches_per_lane_oracle() {
    // The multi-instance Adam step: element i uses lane i % lanes'
    // bias corrections and learning rate. Odd multiples of the lane
    // width exercise every remainder path.
    let mut case_i = 0;
    Sweep::new(0xADB, 32).run(
        |rng| {
            let lanes = [8usize, 16][case_i % 2];
            let n = lanes * [1usize, 3, 7][case_i % 3];
            case_i += 1;
            let consts: Vec<f64> = (0..3 * lanes)
                .map(|i| match i % 3 {
                    0 => 1.0 - 0.9f64.powi(1 + (i as i32 % 5)), // bc-like
                    1 => rng.uniform() + 0.01,
                    _ => rng.uniform() * 1e-2,
                })
                .collect();
            (
                lanes,
                adv_vec(rng, n),
                (0..n).map(|_| rng.gaussian()).collect::<Vec<f64>>(),
                (0..n).map(|_| rng.gaussian() * 0.1).collect::<Vec<f64>>(),
                (0..n)
                    .map(|_| rng.gaussian().abs() * 0.01)
                    .collect::<Vec<f64>>(),
                consts,
            )
        },
        |_| Vec::new(),
        |&(lanes, ref g, ref p0, ref m0, ref v0, ref consts)| {
            let n = g.len();
            let (b1, b2, eps) = (0.9, 0.999, 1e-8);
            let bc1: Vec<f64> = (0..lanes).map(|l| consts[3 * l]).collect();
            let bc2: Vec<f64> = (0..lanes).map(|l| consts[3 * l + 1]).collect();
            let lr: Vec<f64> = (0..lanes).map(|l| consts[3 * l + 2]).collect();
            // Independent oracle: the solo per-element formula with the
            // element's lane constants.
            let mut pw = p0.clone();
            let mut mw = m0.clone();
            let mut vw = v0.clone();
            for i in 0..n {
                let l = i % lanes;
                mw[i] = b1 * mw[i] + (1.0 - b1) * g[i];
                vw[i] = b2 * vw[i] + (1.0 - b2) * g[i] * g[i];
                let mh = mw[i] / bc1[l];
                let vh = vw[i] / bc2[l];
                pw[i] -= lr[l] * mh / (vh.sqrt() + eps);
            }
            for &t in simd::available_tiers() {
                let (mut p, mut m, mut v) = (p0.clone(), m0.clone(), v0.clone());
                simd::with_tier(t, || {
                    simd::adam_update_multi(
                        lanes, &mut p, g, &mut m, &mut v, b1, b2, &bc1, &bc2, &lr, eps,
                    )
                });
                for i in 0..n {
                    close(m[i], mw[i], mw[i].abs().max(g[i].abs()))
                        .map_err(|e| format!("{t:?} m[{i}]: {e}"))?;
                    close(v[i], vw[i], vw[i].abs().max(g[i] * g[i]))
                        .map_err(|e| format!("{t:?} v[{i}]: {e}"))?;
                    close(p[i], pw[i], pw[i].abs().max(1.0))
                        .map_err(|e| format!("{t:?} p[{i}]: {e}"))?;
                }
            }
            Ok(())
        },
    );
}

/// Forced-tier smoke: exercise one kernel under every *named* tier.
/// Tiers the host cannot run are skipped with a visible message rather
/// than failed — the portable-fallback contract says `SGM_SIMD=avx512`
/// on a lesser host silently degrades, so the suite must stay green
/// everywhere while making the skipped coverage auditable in the log.
#[test]
fn forced_tier_smoke_runs_or_skips_visibly() {
    let available = simd::available_tiers();
    for tier in [SimdTier::Scalar, SimdTier::Avx2, SimdTier::Avx512] {
        if !available.contains(&tier) {
            eprintln!(
                "forced_tier_smoke: skipping tier `{}` — not supported on this host \
                 (available: {:?})",
                tier.name(),
                available.iter().map(|t| t.name()).collect::<Vec<_>>()
            );
            continue;
        }
        let x: Vec<f64> = (0..37).map(|i| (i as f64).sin()).collect();
        let y: Vec<f64> = (0..37).map(|i| (i as f64).cos()).collect();
        let dot = simd::with_tier(tier, || simd::dot(&x, &y));
        let want: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!(
            (dot - want).abs() <= 1e-12 * want.abs().max(1.0),
            "tier {}: {dot} vs {want}",
            tier.name()
        );
    }
}

#[test]
fn activation_combine_kernels_match_formula_oracle() {
    let mut size_i = 0;
    Sweep::new(0xAC7, 40).run(
        |rng| {
            let n = SIZES[size_i % SIZES.len()];
            size_i += 1;
            (0..7).map(|_| adv_vec(rng, n)).collect::<Vec<Vec<f64>>>()
        },
        |_| Vec::new(),
        |vs| {
            let [s1, s2, s3, zj, zh, gj, gh] =
                [&vs[0], &vs[1], &vs[2], &vs[3], &vs[4], &vs[5], &vs[6]];
            let n = s1.len();
            for &t in simd::available_tiers() {
                let (mut jo, mut ho) = (vec![0.0; n], vec![0.0; n]);
                let mut gz = vec![0.0; n];
                let (mut gzj, mut gzh) = (vec![0.0; n], vec![0.0; n]);
                simd::with_tier(t, || {
                    simd::act_fwd_jh(s1, s2, zj, zh, &mut jo, &mut ho);
                    simd::act_bwd_accum(s1, s2, s3, zj, zh, gj, gh, &mut gz, &mut gzj, &mut gzh);
                });
                for i in 0..n {
                    let wj = s1[i] * zj[i];
                    let wh = s2[i] * zj[i] * zj[i] + s1[i] * zh[i];
                    let wgz =
                        gj[i] * s2[i] * zj[i] + gh[i] * (s3[i] * zj[i] * zj[i] + s2[i] * zh[i]);
                    let wgzj = gj[i] * s1[i] + gh[i] * 2.0 * s2[i] * zj[i];
                    let wgzh = gh[i] * s1[i];
                    let mh = (s2[i] * zj[i] * zj[i]).abs() + (s1[i] * zh[i]).abs();
                    let mgz = (gj[i] * s2[i] * zj[i]).abs()
                        + (gh[i] * s3[i] * zj[i] * zj[i]).abs()
                        + (gh[i] * s2[i] * zh[i]).abs();
                    let mgzj = (gj[i] * s1[i]).abs() + (gh[i] * 2.0 * s2[i] * zj[i]).abs();
                    close(jo[i], wj, wj.abs()).map_err(|e| format!("{t:?} j[{i}]: {e}"))?;
                    close(ho[i], wh, mh).map_err(|e| format!("{t:?} h[{i}]: {e}"))?;
                    close(gz[i], wgz, mgz).map_err(|e| format!("{t:?} gz[{i}]: {e}"))?;
                    close(gzj[i], wgzj, mgzj).map_err(|e| format!("{t:?} gzj[{i}]: {e}"))?;
                    close(gzh[i], wgzh, wgzh.abs()).map_err(|e| format!("{t:?} gzh[{i}]: {e}"))?;
                }
            }
            Ok(())
        },
    );
}
