//! Effective-resistance oracles: the probe-based estimator that drives
//! LRD clustering (Algorithm 1, S2) is checked against the dense exact
//! pseudo-inverse computation on a real kNN point-cloud graph —
//! Foster's theorem, CG spot checks, rank-correlation against exact,
//! and thread-count invariance.

use sgm_graph::knn::{build_knn_graph, KnnConfig, KnnStrategy};
use sgm_graph::points::PointCloud;
use sgm_graph::resistance::{
    approx_edge_resistances, cg_edge_resistance, exact_edge_resistances, exact_pair_resistance,
    rank_correlation, ApproxErOptions,
};
use sgm_graph::Graph;
use sgm_linalg::rng::Rng64;
use sgm_par::{with_parallelism, Parallelism};

fn knn_fixture() -> Graph {
    let mut rng = Rng64::new(0xE5);
    let cloud = PointCloud::uniform_box(150, 2, 0.0, 1.0, &mut rng);
    build_knn_graph(
        &cloud,
        &KnnConfig {
            k: 6,
            strategy: KnnStrategy::Grid,
            ..KnnConfig::default()
        },
    )
}

/// Foster's theorem: `Σ_e w_e·R_e = n − #components` exactly — a global
/// identity the dense solver has no way to satisfy by accident.
#[test]
fn exact_resistances_satisfy_fosters_theorem() {
    let g = knn_fixture();
    let exact = exact_edge_resistances(&g);
    assert_eq!(exact.len(), g.num_edges());
    let total: f64 = g.edges().zip(&exact).map(|((_, _, w), &r)| w * r).sum();
    let (_, comps) = g.components();
    let expect = (g.num_nodes() - comps) as f64;
    let rel = (total - expect).abs() / expect;
    assert!(
        rel < 1e-6,
        "Foster: Σw·R = {total}, want {expect} (rel {rel:e})"
    );
}

/// Three independent exact paths agree per edge: dense pseudo-inverse
/// batch, dense single-pair, and the CG linear solve.
#[test]
fn cg_and_pair_solves_match_the_dense_batch() {
    let g = knn_fixture();
    let exact = exact_edge_resistances(&g);
    // A spread of edges across the index range.
    for ei in [0, g.num_edges() / 3, g.num_edges() / 2, g.num_edges() - 1] {
        let (u, v, _) = g.edge(ei);
        let pair = exact_pair_resistance(&g, u, v);
        let cg = cg_edge_resistance(&g, u, v);
        assert!(
            (pair - exact[ei]).abs() < 1e-8 * (1.0 + exact[ei]),
            "edge {ei}: pair {pair} vs batch {}",
            exact[ei]
        );
        assert!(
            (cg - exact[ei]).abs() < 1e-6 * (1.0 + exact[ei]),
            "edge {ei}: cg {cg} vs batch {}",
            exact[ei]
        );
    }
}

/// The production probe-based estimator ranks edges like the exact
/// resistances do — that ordering (not the absolute values) is what the
/// LRD clustering consumes.
#[test]
fn approx_estimator_is_rank_correlated_with_exact() {
    let g = knn_fixture();
    let exact = exact_edge_resistances(&g);
    // More probes than the training default: this test pins down the
    // estimator's asymptotic quality, not the speed/quality trade-off.
    let approx = approx_edge_resistances(
        &g,
        &ApproxErOptions {
            num_probes: 48,
            seed: 7,
            ..ApproxErOptions::default()
        },
    );
    assert_eq!(approx.len(), exact.len());
    let rho = rank_correlation(&exact, &approx);
    assert!(
        rho > 0.7,
        "estimator rank correlation too weak: rho = {rho:.3}"
    );
}

/// The estimator is bit-identical across thread counts — parallelism
/// must not perturb the sampling decisions downstream of it.
#[test]
fn approx_estimator_is_thread_count_invariant() {
    let g = knn_fixture();
    let opts = ApproxErOptions {
        seed: 7,
        ..ApproxErOptions::default()
    };
    let serial = with_parallelism(Parallelism::Serial, || approx_edge_resistances(&g, &opts));
    for mode in [Parallelism::Threads(1), Parallelism::Threads(8)] {
        let threaded = with_parallelism(mode, || approx_edge_resistances(&g, &opts));
        assert_eq!(serial, threaded, "{mode:?} differs from serial");
    }
}
