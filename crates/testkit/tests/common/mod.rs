//! Shared fixtures for the testkit integration suites.
#![allow(dead_code)]

use sgm_graph::points::PointCloud;
use sgm_linalg::dense::Matrix;
use sgm_linalg::rng::Rng64;
use sgm_nn::activation::Activation;
use sgm_nn::mlp::{Mlp, MlpConfig};
use sgm_physics::geometry::{Cavity, FillStrategy};
use sgm_physics::pde::{Pde, PoissonConfig};
use sgm_physics::problem::{Problem, TrainSet};

/// Poisson problem whose forcing is enormous on the left half of the
/// cavity — an untrained (≈ 0) network has its loss concentrated there,
/// giving the importance samplers a real signal to chase.
pub fn lopsided_problem() -> Problem {
    Problem::new(Pde::Poisson(PoissonConfig {
        forcing: |p: &[f64]| if p[0] < 0.5 { 100.0 } else { 0.01 },
    }))
}

/// `n` Halton interior points in the unit cavity plus a trivial
/// single-point boundary, with a small Tanh net.
pub fn setup(n: usize, seed: u64) -> (Mlp, Problem, TrainSet) {
    setup_with(n, seed, Activation::Tanh)
}

/// Like [`setup`], choosing the activation.
pub fn setup_with(n: usize, seed: u64, act: Activation) -> (Mlp, Problem, TrainSet) {
    let cav = Cavity::default();
    let mut rng = Rng64::new(seed);
    let interior = cav.sample_interior(n, FillStrategy::Halton, &mut rng);
    let data = TrainSet {
        interior,
        boundary: PointCloud::from_flat(2, vec![0.0, 0.0]),
        boundary_targets: Matrix::zeros(1, 1),
    };
    let cfg = MlpConfig {
        input_dim: 2,
        output_dim: 1,
        hidden_width: 8,
        hidden_layers: 1,
        activation: act,
        fourier: None,
    };
    let mut nrng = Rng64::new(seed + 1);
    (Mlp::new(&cfg, &mut nrng), lopsided_problem(), data)
}
