//! Fault injection against the live `SgmSampler` + `BackgroundBuilder`
//! pair: scripted worker faults (delay, crash, lost result) must leave
//! the trainer sampling from the stale clustering and must surface
//! worker death through the stats — never a hang.

mod common;

use sgm_core::{SgmConfig, SgmSampler};
use sgm_json::Value;
use sgm_linalg::rng::Rng64;
use sgm_physics::PinnModel;
use sgm_testkit::fault::{FaultAction, FaultPlan};
use sgm_train::{Probe, Sampler};
use std::time::Duration;

/// Draw one batch through the no-allocation `fill_batch` entry point.
fn next_batch(s: &mut dyn Sampler, batch: usize, rng: &mut Rng64) -> Vec<usize> {
    let mut out = Vec::new();
    s.fill_batch(batch, &mut out, rng);
    out
}

fn cfg() -> SgmConfig {
    SgmConfig {
        k: 6,
        min_clusters: 8,
        max_cluster_frac: 0.2,
        tau_e: 1, // score refresh every call
        tau_g: 2, // rebuild request every other call
        ..SgmConfig::default()
    }
}

fn assignment_of(s: &dyn Sampler) -> Vec<f64> {
    s.save_state()
        .get("assignment")
        .and_then(Value::as_arr)
        .expect("assignment in state")
        .iter()
        .map(|v| v.as_f64().unwrap())
        .collect()
}

/// While a rebuild is stalled in the worker, the sampler keeps serving
/// batches from the stale clustering; once the stall clears, the fresh
/// clustering is applied on a later refresh.
#[test]
fn stalled_rebuild_leaves_training_on_stale_clustering() {
    let (net, prob, data) = common::setup(400, 0xF1);
    let model = PinnModel::new(&prob, &data);
    let probe = Probe::new(&net, &model);
    let mut rng = Rng64::new(0xF2);

    let (gate, action) = FaultAction::gated();
    let mut s = SgmSampler::with_builder(&data.interior, cfg(), FaultPlan::new([action]).spawn());
    s.refresh(0, &probe, &mut rng);
    let stale = assignment_of(&s);

    // τ_G fires at iter 2 and the request parks behind the gate; every
    // later refresh must carry on unaffected.
    for iter in (2..=20).step_by(2) {
        s.refresh(iter, &probe, &mut rng);
        let batch = next_batch(&mut s, 64, &mut rng);
        assert_eq!(batch.len(), 64);
        assert!(batch.iter().all(|&i| i < data.interior.len()));
    }
    let st = s.stats();
    assert_eq!(st.rebuilds_requested, 1, "one in-flight request");
    assert_eq!(st.rebuilds_applied, 0, "nothing applied while stalled");
    assert_eq!(st.worker_deaths, 0, "a slow worker is not a dead worker");
    assert_eq!(assignment_of(&s), stale, "clustering changed while stalled");

    // Unstall: the finished rebuild lands on a subsequent refresh.
    gate.release();
    let mut iter = 22;
    while s.stats().rebuilds_applied == 0 {
        assert!(iter < 2000, "released rebuild never applied");
        s.refresh(iter, &probe, &mut rng);
        iter += 2;
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(s.stats().worker_deaths, 0);
}

/// A crashing worker is *reported* (worker_deaths) and retired; the
/// sampler falls back to inline rebuilds and keeps serving — it never
/// blocks on the dead thread.
#[test]
fn crashed_worker_is_reported_and_replaced_by_inline_rebuilds() {
    let (net, prob, data) = common::setup(400, 0xF3);
    let model = PinnModel::new(&prob, &data);
    let probe = Probe::new(&net, &model);
    let mut rng = Rng64::new(0xF4);

    let plan = FaultPlan::new([FaultAction::Panic("injected rebuild crash".into())]);
    let mut s = SgmSampler::with_builder(&data.interior, cfg(), plan.spawn());
    s.refresh(0, &probe, &mut rng);

    // Drive refreshes until the death is noticed (either at the request
    // site or via try_take) — bounded, so a hang fails the test.
    let mut iter = 2;
    while s.stats().worker_deaths == 0 {
        assert!(iter < 2000, "worker death never surfaced");
        s.refresh(iter, &probe, &mut rng);
        iter += 2;
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(s.stats().worker_deaths, 1);

    // After retirement, τ_G events rebuild inline and still serve.
    let applied = s.stats().rebuilds_applied;
    s.refresh(iter, &probe, &mut rng);
    assert!(
        s.stats().rebuilds_applied > applied,
        "no inline rebuild after worker death"
    );
    let batch = next_batch(&mut s, 64, &mut rng);
    assert_eq!(batch.len(), 64);
}

/// A worker that silently loses a result (returns nothing) wedges only
/// the single rebuild slot — documented policy — while sampling, score
/// refreshes, and liveness are all unaffected.
#[test]
fn lost_result_does_not_kill_or_hang_the_sampler() {
    let (net, prob, data) = common::setup(400, 0xF5);
    let model = PinnModel::new(&prob, &data);
    let probe = Probe::new(&net, &model);
    let mut rng = Rng64::new(0xF6);

    let mut s = SgmSampler::with_builder(
        &data.interior,
        cfg(),
        FaultPlan::new([FaultAction::Drop]).spawn(),
    );
    s.refresh(0, &probe, &mut rng);

    for iter in (2..=30).step_by(2) {
        s.refresh(iter, &probe, &mut rng);
        assert_eq!(next_batch(&mut s, 32, &mut rng).len(), 32);
        std::thread::sleep(Duration::from_millis(1));
    }
    let st = s.stats();
    assert_eq!(st.worker_deaths, 0, "a lossy worker is alive, not dead");
    assert_eq!(st.rebuilds_applied, 0, "dropped result cannot be applied");
    assert_eq!(
        st.rebuilds_requested, 1,
        "slot stays occupied (single-slot policy)"
    );
    assert!(st.refreshes >= 15, "score refreshes must continue");
}
