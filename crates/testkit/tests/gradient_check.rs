//! Gradient-checking acceptance suite: four fully independent gradient
//! paths must agree on derivative-dependent (PINN) losses —
//!
//! 1. central finite differences over a `Dual2` scalar evaluation,
//! 2. the reverse tape (`sgm-autodiff::tape`, third-order under the hood),
//! 3. nested forward-over-forward duals (`Lift<Dual2>` from the testkit),
//! 4. the production batched backward pass (`sgm-nn` / `sgm-physics`).
//!
//! Acceptance: ≤ 1e-6 relative disagreement across all activations and
//! the full `PinnModel` loss.

mod common;

use sgm_autodiff::dual::Dual2;
use sgm_autodiff::tape::{Tape, Var};
use sgm_linalg::dense::Matrix;
use sgm_linalg::rng::Rng64;
use sgm_nn::activation::Activation;
use sgm_nn::mlp::{BatchDerivatives, Mlp, MlpConfig};
use sgm_physics::PinnModel;
use sgm_testkit::gradcheck::{central_diff_grad, eval_mlp, max_rel_err, nested_param_derivs};
use sgm_train::LossModel;

const ALL_ACTS: [Activation; 4] = [
    Activation::SiLu,
    Activation::Tanh,
    Activation::Sin,
    Activation::Identity,
];

fn cfg_with(act: Activation) -> MlpConfig {
    MlpConfig {
        input_dim: 2,
        output_dim: 1,
        hidden_width: 4,
        hidden_layers: 2,
        activation: act,
        fourier: None,
    }
}

const SAMPLES: [[f64; 2]; 3] = [[0.3, -0.4], [0.8, 0.2], [-0.5, 0.6]];

/// `Σ_samples u² + u_x² + u_xx²` from a `Dual2` scalar evaluation — the
/// plain-f64-parameter loss the finite-difference check perturbs.
fn scalar_loss(cfg: &MlpConfig, params: &[f64]) -> f64 {
    let ps: Vec<Dual2> = params.iter().map(|&p| Dual2::constant(p)).collect();
    SAMPLES
        .iter()
        .map(|s| {
            let x = [Dual2::variable(s[0]), Dual2::constant(s[1])];
            let u = eval_mlp(cfg, &ps, &x)[0];
            u.v * u.v + u.d * u.d + u.dd * u.dd
        })
        .sum()
}

/// The same loss gradient from nested duals: `∂L/∂θ_j` assembled with
/// the chain rule from per-parameter `(∂u/∂θ, ∂u_x/∂θ, ∂u_xx/∂θ)`.
fn nested_grad(net: &Mlp) -> Vec<f64> {
    (0..net.num_params())
        .map(|j| {
            SAMPLES
                .iter()
                .map(|s| {
                    let (u, du) = nested_param_derivs(net, s, 0, 0, j);
                    2.0 * (u.v * du.v + u.d * du.d + u.dd * du.dd)
                })
                .sum()
        })
        .collect()
}

fn apply_act_var(act: Activation, z: Var) -> Var {
    match act {
        Activation::SiLu => z.silu(),
        Activation::Tanh => z.tanh(),
        Activation::Sin => z.sin(),
        Activation::Identity => z,
    }
}

/// The same loss on the reverse tape (parameters as tape inputs), so
/// `loss.grad(params)` is a third independent gradient path.
fn tape_grad(net: &Mlp, cfg: &MlpConfig) -> Vec<f64> {
    let tape = Tape::new();
    let pvars: Vec<Var> = net.params().iter().map(|&p| tape.input(p)).collect();
    let mut sizes = vec![(cfg.input_dim, cfg.hidden_width)];
    for _ in 1..cfg.hidden_layers {
        sizes.push((cfg.hidden_width, cfg.hidden_width));
    }
    sizes.push((cfg.hidden_width, cfg.output_dim));
    let mut total = tape.constant(0.0);
    for s in &SAMPLES {
        let xv = [tape.input(s[0]), tape.constant(s[1])];
        let mut act: Vec<Var> = xv.to_vec();
        let mut off = 0;
        for (li, &(fan_in, fan_out)) in sizes.iter().enumerate() {
            let mut next = Vec::with_capacity(fan_out);
            for o in 0..fan_out {
                let mut z = pvars[off + fan_in * fan_out + o].clone();
                for (i, a) in act.iter().enumerate() {
                    z = z.add_v(&pvars[off + o * fan_in + i].mul_v(a));
                }
                next.push(if li + 1 == sizes.len() {
                    z
                } else {
                    apply_act_var(cfg.activation, z)
                });
            }
            off += fan_in * fan_out + fan_out;
            act = next;
        }
        let u = act[0].clone();
        let ux = u.grad(&[xv[0].clone()])[0].clone();
        let uxx = ux.grad(&[xv[0].clone()])[0].clone();
        total = total
            .add_v(&u.square())
            .add_v(&ux.square())
            .add_v(&uxx.square());
    }
    total.grad(&pvars).iter().map(Var::value).collect()
}

/// The production path: batched forward-with-derivs + hand-derived
/// adjoint seeding + the workspace backward pass.
fn production_grad(net: &Mlp) -> Vec<f64> {
    let rows: Vec<&[f64]> = SAMPLES.iter().map(|s| &s[..]).collect();
    let x = Matrix::from_rows(&rows);
    let (full, cache) = net.forward_with_derivs(&x, &[0]);
    let mut adj = BatchDerivatives::zeros_like(&full);
    for i in 0..SAMPLES.len() {
        adj.values.set(i, 0, 2.0 * full.values.get(i, 0));
        adj.jac[0].set(i, 0, 2.0 * full.jac[0].get(i, 0));
        adj.hess[0].set(i, 0, 2.0 * full.hess[0].get(i, 0));
    }
    net.backward(&cache, &adj).flat()
}

/// All four paths agree on the second-derivative loss, for every
/// activation the workspace ships.
#[test]
fn four_gradient_paths_agree_across_all_activations() {
    for act in ALL_ACTS {
        let cfg = cfg_with(act);
        let net = Mlp::new(&cfg, &mut Rng64::new(0x6D ^ act as u64));
        let params = net.params();

        let fd = central_diff_grad(|p| scalar_loss(&cfg, p), &params, 6e-6);
        let tape = tape_grad(&net, &cfg);
        let nested = nested_grad(&net);
        let production = production_grad(&net);

        // Exact paths agree to near machine precision...
        let e_tn = max_rel_err(&tape, &nested);
        let e_tp = max_rel_err(&tape, &production);
        assert!(e_tn < 1e-10, "{act:?}: tape vs nested {e_tn:e}");
        assert!(e_tp < 1e-10, "{act:?}: tape vs production {e_tp:e}");
        // ...and finite differences confirm all of them to 1e-6.
        for (name, g) in [
            ("tape", &tape),
            ("nested", &nested),
            ("production", &production),
        ] {
            let e = max_rel_err(&fd, g);
            assert!(e < 1e-6, "{act:?}: fd vs {name} {e:e}");
        }
    }
}

/// Full-system check: the gradient `PinnModel::loss_and_grad` hands the
/// optimiser matches central differences of `PinnModel::batch_loss` for
/// every activation — residual weighting, batch averaging and boundary
/// term included.
#[test]
fn pinn_model_loss_grad_matches_finite_differences() {
    for act in ALL_ACTS {
        let (net, prob, data) = common::setup_with(96, 0x91 ^ act as u64, act);
        let model = PinnModel::new(&prob, &data);
        let bi: Vec<usize> = (0..48).collect();
        let bb: Vec<usize> = vec![0];
        let mut ws = model.make_workspace(&net, bi.len(), bb.len());
        model.gather(&bi, &bb, &mut *ws);
        let mut grads = net.zero_gradients();
        let loss = model.loss_and_grad(&net, &mut *ws, &mut grads);
        let analytic = grads.flat();

        // The gradient path computes the same objective as batch_loss.
        let direct = model.batch_loss(&net, &bi, &bb);
        assert!(
            (loss - direct).abs() < 1e-10 * (1.0 + direct.abs()),
            "{act:?}: loss_and_grad {loss} vs batch_loss {direct}"
        );

        let params = net.params();
        let fd = central_diff_grad(
            |p| {
                let mut probe_net = net.clone();
                probe_net.set_params(p);
                model.batch_loss(&probe_net, &bi, &bb)
            },
            &params,
            6e-6,
        );
        let e = max_rel_err(&fd, &analytic);
        assert!(e < 1e-6, "{act:?}: fd vs production PinnModel grad {e:e}");
    }
}
