//! Save/load roundtrip property for *every* sampler in the workspace,
//! driven by the testkit's shrinking [`Sweep`] runner.
//!
//! The property: killing a sampler mid-run, serialising its state
//! through JSON text, restoring it into a freshly constructed instance
//! (plus the engine's resume handshake — point restore before
//! `load_state`, `sync_points` after) and continuing must reproduce the
//! uninterrupted run's batches and final state bit-for-bit. The sweep
//! varies the sampler, the kill iteration, the engine RNG seed, and
//! whether the PDE forcing poisons the loss field with NaN/∞ — samplers
//! must stay deterministic (and panic-free) under non-finite probe
//! weights, not just under healthy ones.

use sgm_core::{
    DmisConfig, DmisSampler, MisConfig, MisSampler, RadConfig, RadSampler, RarConfig, RarDConfig,
    RarDSampler, RarSampler, SgmConfig, SgmSampler, UniformSampler,
};
use sgm_graph::points::PointCloud;
use sgm_linalg::dense::Matrix;
use sgm_linalg::rng::Rng64;
use sgm_nn::activation::Activation;
use sgm_nn::mlp::{Mlp, MlpConfig};
use sgm_physics::geometry::{Cavity, FillStrategy};
use sgm_physics::pde::{Pde, PoissonConfig};
use sgm_physics::problem::{Problem, TrainSet};
use sgm_physics::PinnModel;
use sgm_testkit::sweep::Sweep;
use sgm_train::{PointChanges, PointSet, Probe, Sampler};

const SAMPLERS: [&str; 7] = ["uniform", "mis", "rar", "sgm", "rad", "rar_d", "dmis"];
const ITERS: usize = 10;
const BATCH: usize = 16;

fn mk_sampler(name: &str, cloud: &PointCloud) -> Box<dyn Sampler> {
    let n = cloud.len();
    match name {
        "uniform" => Box::new(UniformSampler::new(n)),
        "mis" => Box::new(MisSampler::new(
            n,
            MisConfig {
                tau_e: 3,
                ..MisConfig::default()
            },
        )),
        "rar" => Box::new(RarSampler::new(
            n,
            RarConfig {
                tau: 3,
                candidates: 32,
                add_per_refresh: 8,
                ..RarConfig::default()
            },
            // Fixed seed: the initial active set is construction-time
            // state, identical for the reference and restored instance.
            &mut Rng64::new(41),
        )),
        "sgm" => Box::new(SgmSampler::new(
            cloud,
            SgmConfig {
                k: 6,
                min_clusters: 8,
                max_cluster_frac: 0.2,
                tau_e: 3,
                tau_g: 0,
                background: false,
                ..SgmConfig::default()
            },
        )),
        "rad" => Box::new(RadSampler::new(
            n,
            RadConfig {
                tau: 4,
                pool_size: 128,
                ..RadConfig::default()
            },
        )),
        "rar_d" => Box::new(RarDSampler::new(
            n,
            RarDConfig {
                tau: 4,
                candidates: 32,
                add_per_adapt: 8,
                ..RarDConfig::default()
            },
        )),
        "dmis" => Box::new(DmisSampler::new(
            n,
            DmisConfig {
                tau: 4,
                grid: 6,
                ..DmisConfig::default()
            },
        )),
        other => panic!("unknown sampler {other}"),
    }
}

/// One sampler run in flight: the engine's per-iteration stage sequence
/// (refresh → adapt → drain/notify → draw) without the training step.
struct Drive {
    sampler: Box<dyn Sampler>,
    points: Option<PointSet>,
    changes: PointChanges,
    rng: Rng64,
}

impl Drive {
    fn fresh(name: &str, cloud: &PointCloud, seed: u64) -> Self {
        let sampler = mk_sampler(name, cloud);
        let points = sampler
            .adapts_points()
            .then(|| PointSet::new(cloud.clone()));
        Drive {
            sampler,
            points,
            changes: PointChanges::default(),
            rng: Rng64::new(seed),
        }
    }

    fn step(&mut self, iter: usize, net: &Mlp, model: &PinnModel, out: &mut Vec<usize>) {
        {
            let probe = Probe::with_points(net, model, self.points.as_ref());
            self.sampler.refresh(iter, &probe, &mut self.rng);
        }
        if let Some(ps) = self.points.as_mut() {
            {
                let probe = Probe::new(net, model);
                self.sampler.adapt(ps, iter, &probe, &mut self.rng);
            }
            if ps.drain_changes(&mut self.changes) {
                self.sampler.on_points_changed(ps, &self.changes);
            }
        }
        self.sampler.fill_batch(BATCH, out, &mut self.rng);
    }

    /// The engine's resume handshake: rebuild the point set from its
    /// checkpointed parts, restore sampler state from JSON-round-tripped
    /// text, then resync the sampler against the restored coordinates.
    fn restored_from(&self, name: &str, cloud: &PointCloud) -> Result<Drive, String> {
        let mut sampler = mk_sampler(name, cloud);
        let points = self
            .points
            .as_ref()
            .map(|ps| PointSet::from_parts(ps.dim(), ps.coords().to_vec(), ps.epoch()));
        let json = self.sampler.save_state().to_string_compact();
        let state = sgm_json::Value::parse(&json).map_err(|e| format!("state reparse: {e}"))?;
        sampler
            .load_state(&state)
            .map_err(|e| format!("load_state: {e}"))?;
        if let Some(ps) = &points {
            sampler.sync_points(ps);
        }
        Ok(Drive {
            sampler,
            points,
            changes: PointChanges::default(),
            rng: self.rng.clone(),
        })
    }
}

/// Sampler state minus wall-clock telemetry (`*_seconds` keys): timing
/// counters are honest measurements, not replayable state, so two
/// logically identical runs legitimately differ there.
fn logical_state(sampler: &dyn Sampler) -> String {
    let mut state = sampler.save_state();
    if let sgm_json::Value::Obj(map) = &mut state {
        map.retain(|k, _| !k.ends_with("_seconds"));
    }
    state.to_string_compact()
}

#[derive(Debug, Clone)]
struct Case {
    sampler: &'static str,
    kill: usize,
    seed: u64,
    adversarial: bool,
}

fn poisson(forcing: fn(&[f64]) -> f64) -> (Problem, TrainSet) {
    let problem = Problem::new(Pde::Poisson(PoissonConfig { forcing }));
    let interior =
        Cavity::default().sample_interior(150, FillStrategy::Halton, &mut Rng64::new(40));
    let data = TrainSet {
        interior,
        boundary: PointCloud::from_flat(2, vec![0.0, 0.0]),
        boundary_targets: Matrix::zeros(1, 1),
    };
    (problem, data)
}

/// Roundtrip property over all seven samplers: save → JSON → fresh
/// instance → load reproduces the uninterrupted run bit-for-bit, with
/// and without NaN/∞ poisoning in the probe losses.
#[test]
fn every_sampler_roundtrips_mid_run_under_seeded_sweep() {
    let net = Mlp::new(
        &MlpConfig {
            input_dim: 2,
            output_dim: 1,
            hidden_width: 8,
            hidden_layers: 1,
            activation: Activation::Tanh,
            fourier: None,
        },
        &mut Rng64::new(42),
    );
    let (benign_problem, benign_data) = poisson(|p| if p[0] < 0.5 { 50.0 } else { 0.1 });
    // A third of the domain yields NaN losses, a third ∞ — the
    // adversarial weights the samplers must shrug off.
    let (poison_problem, poison_data) = poisson(|p| {
        if p[0] < 0.33 {
            f64::NAN
        } else if p[0] > 0.67 {
            f64::INFINITY
        } else {
            1.0
        }
    });
    let benign = PinnModel::new(&benign_problem, &benign_data);
    let poison = PinnModel::new(&poison_problem, &poison_data);

    Sweep::new(0x5A3D_0711, 42).run(
        |rng| Case {
            sampler: SAMPLERS[rng.below(SAMPLERS.len())],
            kill: 1 + rng.below(ITERS - 1),
            seed: rng.next_u64(),
            adversarial: rng.below(2) == 1,
        },
        |case| {
            let mut simpler = Vec::new();
            if case.kill > 1 {
                simpler.push(Case {
                    kill: case.kill / 2,
                    ..case.clone()
                });
            }
            if case.adversarial {
                simpler.push(Case {
                    adversarial: false,
                    ..case.clone()
                });
            }
            simpler
        },
        |case| {
            let (model, data) = if case.adversarial {
                (&poison, &poison_data)
            } else {
                (&benign, &benign_data)
            };
            let mut reference = Drive::fresh(case.sampler, &data.interior, case.seed);
            let mut batch = Vec::new();
            for iter in 0..case.kill {
                reference.step(iter, &net, model, &mut batch);
            }
            let mut restored = reference.restored_from(case.sampler, &data.interior)?;
            let mut batch_ref = Vec::new();
            let mut batch_res = Vec::new();
            for iter in case.kill..ITERS {
                reference.step(iter, &net, model, &mut batch_ref);
                restored.step(iter, &net, model, &mut batch_res);
                if batch_ref != batch_res {
                    return Err(format!(
                        "batches diverged at iteration {iter}: {batch_ref:?} vs {batch_res:?}"
                    ));
                }
            }
            let end_ref = logical_state(reference.sampler.as_ref());
            let end_res = logical_state(restored.sampler.as_ref());
            if end_ref != end_res {
                return Err(format!("final states diverged:\n  {end_ref}\n  {end_res}"));
            }
            Ok(())
        },
    );
}
