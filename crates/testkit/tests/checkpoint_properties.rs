//! Property sweeps over `RunState` persistence, driven by the testkit's
//! shrinking [`Sweep`] runner: bit-exact roundtrips under adversarial
//! floats, and graceful (never panicking) rejection of truncated or
//! corrupted checkpoint files.

use sgm_json::{obj, Value};
use sgm_linalg::rng::Rng64;
use sgm_nn::activation::Activation;
use sgm_nn::checkpoint::Checkpoint;
use sgm_nn::mlp::{Mlp, MlpConfig};
use sgm_testkit::sweep::{shrink_vec, Sweep};
use sgm_train::{Record, RunState};

/// The float pool an adversary would pick from: non-finite values, both
/// zeros, subnormals, a quiet-NaN payload, and magnitude extremes.
const POOL: [u64; 10] = [
    0x7ff0_0000_0000_0000, // +inf
    0xfff0_0000_0000_0000, // -inf
    0x7ff8_0000_0000_0000, // canonical NaN
    0x7ff8_0000_0000_0001, // NaN with payload
    0x8000_0000_0000_0000, // -0.0
    0x0000_0000_0000_0001, // smallest subnormal
    0x3ff8_0000_0000_0000, // 1.5
    0x7fe1_ccf3_85eb_c8a0, // ~1e308
    0x0010_0000_0000_0000, // smallest normal
    0x3ff0_0000_0000_0000, // 1.0
];

fn pool_draw(rng: &mut Rng64) -> f64 {
    f64::from_bits(POOL[rng.below(POOL.len())])
}

fn state_with(adam_m: &[f64], adam_v: &[f64], rng_words: [u64; 4], loss: f64) -> RunState {
    let net = Mlp::new(
        &MlpConfig {
            input_dim: 2,
            output_dim: 1,
            hidden_width: 4,
            hidden_layers: 1,
            activation: Activation::Tanh,
            fourier: None,
        },
        &mut Rng64::new(9),
    );
    RunState {
        version: 1,
        iteration: 17,
        train_seconds: 2.5,
        record_seconds: 0.5,
        net: Checkpoint::capture(&net),
        adam_t: 17,
        adam_m: adam_m.to_vec(),
        adam_v: adam_v.to_vec(),
        rng_state: rng_words,
        rng_gauss_spare: None,
        history: vec![Record {
            iteration: 10,
            seconds: 1.0,
            train_loss: loss,
            val_errors: vec![loss, 0.25],
        }],
        sampler_name: "uniform".into(),
        sampler_state: obj([("cursor", Value::Num(3.0))]),
        points: None,
    }
}

#[derive(Debug, Clone)]
struct Case {
    adam_m: Vec<f64>,
    adam_v: Vec<f64>,
    rng_words: [u64; 4],
    loss: f64,
}

/// Roundtrip property: whatever floats end up in the optimiser moments,
/// RNG words, or (possibly diverged) loss history, `from_json(to_json)`
/// reproduces every bit — NaN payloads and -0.0 included.
#[test]
fn roundtrip_is_bit_exact_for_adversarial_floats() {
    Sweep::new(0xC0FFEE, 60).run(
        |rng| {
            let len = 1 + rng.below(6);
            Case {
                adam_m: (0..len).map(|_| pool_draw(rng)).collect(),
                adam_v: (0..len).map(|_| pool_draw(rng)).collect(),
                rng_words: std::array::from_fn(|_| rng.next_u64()),
                loss: pool_draw(rng),
            }
        },
        |case| {
            // Shrink the moment vectors; keep the rest fixed.
            shrink_vec(&case.adam_m)
                .into_iter()
                .map(|m| Case {
                    adam_m: m.clone(),
                    adam_v: case.adam_v[..m.len().min(case.adam_v.len())].to_vec(),
                    ..case.clone()
                })
                .collect()
        },
        |case| {
            let st = state_with(&case.adam_m, &case.adam_v, case.rng_words, case.loss);
            let json = st.to_json().map_err(|e| format!("save failed: {e}"))?;
            let back = RunState::from_json(&json).map_err(|e| format!("load failed: {e}"))?;
            let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            if bits(&back.adam_m) != bits(&case.adam_m) {
                return Err(format!("adam_m bits differ: {:?}", back.adam_m));
            }
            if bits(&back.adam_v) != bits(&case.adam_v) {
                return Err(format!("adam_v bits differ: {:?}", back.adam_v));
            }
            if back.rng_state != case.rng_words {
                return Err("rng words differ".into());
            }
            // History floats follow the documented weaker contract:
            // finite values are bit-exact, non-finite ones come back as
            // NaN (plain JSON has no encoding for them).
            let loss_back = back.history[0].train_loss;
            if case.loss.is_finite() {
                if loss_back.to_bits() != case.loss.to_bits() {
                    return Err(format!("finite loss bits differ: {loss_back}"));
                }
            } else if !loss_back.is_nan() {
                return Err(format!("non-finite loss came back as {loss_back}"));
            }
            Ok(())
        },
    );
}

fn reference_json() -> String {
    state_with(
        &[0.5, f64::NAN],
        &[1.0, f64::NEG_INFINITY],
        [1, 2, 3, 4],
        0.125,
    )
    .to_json()
    .expect("reference state saves")
}

/// Truncation property: any prefix of a valid checkpoint file is
/// rejected with a descriptive error — never a panic, never an Ok.
#[test]
fn truncated_checkpoints_error_instead_of_panicking() {
    let json = reference_json();
    Sweep::new(0x7A11, 80).run(
        |rng| rng.below(json.len()),
        |&cut| {
            if cut > 0 {
                vec![cut / 2, cut - 1]
            } else {
                Vec::new()
            }
        },
        |&cut| {
            // The encoder emits pure ASCII, so byte slicing is safe.
            match RunState::from_json(&json[..cut]) {
                Ok(_) => Err(format!("truncation at {cut}/{} accepted", json.len())),
                Err(e) => {
                    let msg = e.to_string();
                    if msg.is_empty() {
                        Err("empty error message".into())
                    } else {
                        Ok(())
                    }
                }
            }
        },
    );
}

/// Corruption property: flipping any single byte to a random printable
/// character either still parses (the byte was inside a float's
/// insignificant digits, say) or errors — it must never panic. Panics
/// are caught by the sweep and shrunk to the minimal offending offset.
#[test]
fn corrupted_checkpoints_never_panic() {
    let json = reference_json();
    Sweep::new(0xBAD5EED, 120).run(
        |rng| {
            let pos = rng.below(json.len());
            let byte = b' ' + rng.below(95) as u8; // printable ASCII
            (pos, byte)
        },
        |&(pos, byte)| {
            if pos > 0 {
                vec![(pos / 2, byte), (pos - 1, byte)]
            } else {
                Vec::new()
            }
        },
        |&(pos, byte)| {
            let mut bytes = json.clone().into_bytes();
            bytes[pos] = byte;
            let mutated = String::from_utf8(bytes).expect("still ASCII");
            let _ = RunState::from_json(&mutated); // Ok or Err both fine
            Ok(())
        },
    );
}
