//! Delta-vs-full equivalence for the incremental graph refresh, swept
//! over adversarial displacement patterns at fixed seeds.
//!
//! Contracts under test (see `DESIGN.md` §6e):
//!
//! * **f64 storage**: a delta update with `displacement_bound = 0` is
//!   **bit-identical** — neighbor ids *and* squared distances — to
//!   rebuilding the engine from scratch on the moved cloud, for every
//!   displacement pattern and for thread counts {1, 2, 8}.
//! * **f32 storage** (`SGM_DIST_F32`): the same bit-exact delta-vs-full
//!   contract holds *within* the f32 engine (rounding happens once, at
//!   storage), while against the f64 engine the squared distances are
//!   only boundedly divergent (coordinate rounding at 2⁻²⁴ relative).
//! * **Blocked LRD cache**: serving clean blocks from cache yields the
//!   exact assignment of recomputing every block, because a clean
//!   block's intra-block subgraph is unchanged by construction.

use sgm_graph::incremental::{IncrementalKnn, IncrementalKnnConfig};
use sgm_graph::knn::KnnConfig;
use sgm_graph::lrd::{ErSource, LrdConfig};
use sgm_graph::points::PointCloud;
use sgm_graph::refresh::{GraphRefresher, RefreshConfig, RefreshOptions};
use sgm_graph::resistance::ApproxErOptions;
use sgm_linalg::rng::Rng64;
use sgm_par::{with_parallelism, Parallelism};
use sgm_testkit::sweep::Sweep;

/// Adversarial displacement shapes: spatially clustered dirt, exact-tie
/// lattices, everything-barely-moved, everything-really-moved, and two
/// far points exchanging coordinates exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Pattern {
    ClusteredDisc,
    LatticeRowShift,
    UniformDrift,
    AllMoved,
    SwapFar,
}

const PATTERNS: [Pattern; 5] = [
    Pattern::ClusteredDisc,
    Pattern::LatticeRowShift,
    Pattern::UniformDrift,
    Pattern::AllMoved,
    Pattern::SwapFar,
];

fn base_cloud(n: usize, pattern: Pattern, seed: u64) -> PointCloud {
    if pattern == Pattern::LatticeRowShift {
        // Integer lattice: every candidate ring is packed with exact
        // distance ties, the worst case for tie-break ordering.
        let side = (n as f64).sqrt() as usize;
        let mut c = PointCloud::new(2);
        for y in 0..side {
            for x in 0..side {
                c.push(&[x as f64, y as f64]);
            }
        }
        c
    } else {
        let mut rng = Rng64::new(seed);
        PointCloud::uniform_box(n, 2, 0.0, 1.0, &mut rng)
    }
}

fn displaced(base: &PointCloud, pattern: Pattern, seed: u64) -> PointCloud {
    let n = base.len();
    let mut rng = Rng64::new(seed ^ 0xD15F);
    let mut out = PointCloud::new(2);
    match pattern {
        Pattern::ClusteredDisc => {
            let r2 = 0.1 / std::f64::consts::PI;
            let nudge = 0.5 / (n as f64).sqrt();
            for i in 0..n {
                let p = base.point(i);
                let (dx, dy) = (p[0] - 0.4, p[1] - 0.55);
                if dx * dx + dy * dy <= r2 {
                    out.push(&[
                        p[0] + rng.uniform_in(-nudge, nudge),
                        p[1] + rng.uniform_in(-nudge, nudge),
                    ]);
                } else {
                    out.push(p);
                }
            }
        }
        Pattern::LatticeRowShift => {
            // Shift one interior row by exactly half a cell: moved points
            // land equidistant between former neighbors, creating fresh
            // exact ties with their new rings.
            let side = (n as f64).sqrt() as usize;
            let row = side / 2;
            for i in 0..base.len() {
                let p = base.point(i);
                if i / side == row {
                    out.push(&[p[0] + 0.5, p[1]]);
                } else {
                    out.push(p);
                }
            }
        }
        Pattern::UniformDrift => {
            // Every point moves by an amount far below the mean spacing:
            // the moved set is the whole cloud even though the geometry
            // barely changes.
            for i in 0..n {
                let p = base.point(i);
                out.push(&[p[0] + rng.uniform_in(-1e-9, 1e-9), p[1] + 1e-9]);
            }
        }
        Pattern::AllMoved => {
            let nudge = 0.4 / (n as f64).sqrt();
            for i in 0..n {
                let p = base.point(i);
                out.push(&[
                    p[0] + rng.uniform_in(-nudge, nudge),
                    p[1] + rng.uniform_in(-nudge, nudge),
                ]);
            }
        }
        Pattern::SwapFar => {
            // Two distant points exchange coordinates bit-exactly; the
            // rest stay put. Every structural change is a pure relabel.
            let (a, b) = (0, n / 2);
            let (pa, pb) = (base.point(a).to_vec(), base.point(b).to_vec());
            for i in 0..n {
                if i == a {
                    out.push(&pb);
                } else if i == b {
                    out.push(&pa);
                } else {
                    out.push(base.point(i));
                }
            }
        }
    }
    out
}

fn knn_cfg(f32_storage: bool) -> IncrementalKnnConfig {
    IncrementalKnnConfig {
        k: 8,
        weight_eps: 1e-9,
        f32_storage,
        displacement_bound: 0.0,
    }
}

/// Every neighbor row of the engine, flattened: `(ids, d2s)`.
fn rows(knn: &IncrementalKnn) -> (Vec<u32>, Vec<f64>) {
    let mut ids = Vec::new();
    let mut d2s = Vec::new();
    for i in 0..knn.len() {
        let (nbr, d2) = knn.neighbors(i);
        ids.extend_from_slice(nbr);
        d2s.extend_from_slice(d2);
    }
    (ids, d2s)
}

/// Delta-patched rows vs a from-scratch rebuild on the moved cloud, in
/// the given storage mode. Returns the rows for cross-mode comparison.
fn check_delta_vs_full(
    base: &PointCloud,
    moved: &PointCloud,
    f32_storage: bool,
) -> Result<(Vec<u32>, Vec<f64>), String> {
    let cfg = knn_cfg(f32_storage);
    let mut engine = IncrementalKnn::build(base, &cfg);
    engine.update(moved);
    let delta_rows = rows(&engine);
    let full_rows = rows(&IncrementalKnn::build(moved, &cfg));
    if delta_rows.0 != full_rows.0 {
        return Err(format!("neighbor ids diverge (f32={f32_storage})"));
    }
    // Bitwise distance equality, NaN-free by construction.
    if delta_rows.1 != full_rows.1 {
        return Err(format!("neighbor d2 bits diverge (f32={f32_storage})"));
    }
    Ok(delta_rows)
}

/// Sweep: random sizes and patterns, both storage modes, plus the
/// f64-vs-f32 bounded-divergence bound. Runs serial — the thread matrix
/// is its own test below.
#[test]
fn delta_equivalence_sweep_over_adversarial_patterns() {
    Sweep::new(0x0DE17A, 15).run(
        |rng| {
            let n = 256 + (rng.next_u64() % 700) as usize;
            let pattern = PATTERNS[(rng.next_u64() % PATTERNS.len() as u64) as usize];
            let seed = rng.next_u64();
            (n, pattern, seed)
        },
        |&(n, pattern, seed)| {
            if n > 300 {
                vec![(n / 2, pattern, seed), (300, pattern, seed)]
            } else {
                Vec::new()
            }
        },
        |&(n, pattern, seed)| {
            let base = base_cloud(n, pattern, seed);
            let moved = displaced(&base, pattern, seed);
            let (_, d64) = check_delta_vs_full(&base, &moved, false)?;
            let (_, d32) = check_delta_vs_full(&base, &moved, true)?;
            // Cross-mode: same length by construction (k and n agree);
            // distances may differ only by coordinate rounding. The ids
            // can legitimately differ on near-ties, so only the distance
            // field is bounded here; rank-order preservation on separated
            // clouds is asserted by the grid oracle tests.
            let scale = 4.0 * f32::EPSILON as f64; // two rounded coords, squared
            for (&a, &b) in d64.iter().zip(&d32) {
                let tol = scale * (1.0 + a.max(b));
                if (a - b).abs() > tol {
                    return Err(format!("f32 divergence {} vs {} exceeds {}", a, b, tol));
                }
            }
            Ok(())
        },
    );
}

/// The f64 delta path is bit-identical across thread counts {1, 2, 8}
/// for every adversarial pattern — `sgm-par` chunk-deterministic merge
/// plus position-independent distance kernels.
#[test]
fn delta_rows_bit_identical_across_thread_counts() {
    for pattern in PATTERNS {
        let base = base_cloud(900, pattern, 0x7EAD);
        let moved = displaced(&base, pattern, 0x7EAD);
        let reference: Option<(Vec<u32>, Vec<f64>)> = None;
        let mut reference = reference;
        for threads in [1usize, 2, 8] {
            let got = with_parallelism(Parallelism::Threads(threads), || {
                check_delta_vs_full(&base, &moved, false).unwrap_or_else(|e| {
                    panic!("{pattern:?} at {threads} threads: {e}");
                })
            });
            match &reference {
                None => reference = Some(got),
                Some(r) => {
                    assert_eq!(r.0, got.0, "{pattern:?}: ids differ at {threads} threads");
                    assert_eq!(
                        r.1, got.1,
                        "{pattern:?}: d2 bits differ at {threads} threads"
                    );
                }
            }
        }
    }
}

/// Blocked-LRD cache validity: serving clean blocks from cache produces
/// the exact clustering of recomputing every block, per pattern and per
/// thread count.
#[test]
fn cached_blocks_match_full_recompute_per_pattern() {
    let refresh_cfg = || RefreshConfig {
        knn: KnnConfig {
            k: 8,
            ..KnnConfig::default()
        },
        lrd: LrdConfig {
            level: 5,
            er: ErSource::Approx(ApproxErOptions {
                seed: 0xB10C,
                ..ApproxErOptions::default()
            }),
            budget_scale: 1.0,
            max_cluster_frac: 0.1,
            min_clusters: 8,
        },
        opts: RefreshOptions {
            block_size: 128,
            displacement_bound: 0.0,
            f32_storage: false,
        },
    };
    for pattern in PATTERNS {
        let base = base_cloud(700, pattern, 0xCAC4E);
        let moved = displaced(&base, pattern, 0xCAC4E);
        let mut assignments = Vec::new();
        for threads in [1usize, 2, 8] {
            let (cached, recomputed) = with_parallelism(Parallelism::Threads(threads), || {
                let mut warm = GraphRefresher::new(refresh_cfg());
                warm.refresh(&base);
                let (c_cached, stats) = warm.refresh(&moved);
                assert!(!stats.full_build, "{pattern:?}: delta fell back to full");
                let mut forced = GraphRefresher::new(refresh_cfg());
                forced.refresh(&base);
                forced.invalidate_blocks();
                let (c_forced, _) = forced.refresh(&moved);
                (
                    c_cached.assignment().to_vec(),
                    c_forced.assignment().to_vec(),
                )
            });
            assert_eq!(
                cached, recomputed,
                "{pattern:?}: cached blocks diverge from recompute at {threads} threads"
            );
            assignments.push(cached);
        }
        assert!(
            assignments.windows(2).all(|w| w[0] == w[1]),
            "{pattern:?}: assignment differs across thread counts"
        );
    }
}
