//! Statistical acceptance tests for the sampling stack: empirical draw
//! frequencies of the MIS / RAR / SGM samplers must match Algorithm 1's
//! proportional ratios at fixed seeds, judged by chi-square and KS
//! p-values (α = 1e-3), and the SGM epoch must be bit-identical across
//! thread counts {serial, 1, 8}.

mod common;

use sgm_core::{MisConfig, MisSampler, RarConfig, RarSampler, SgmConfig, SgmSampler};
use sgm_graph::resistance::rank_correlation;
use sgm_json::Value;
use sgm_linalg::rng::Rng64;
use sgm_linalg::stats::{chi_square_pvalue, chi_square_stat, ks_pvalue, ks_statistic, normal_cdf};
use sgm_par::{with_parallelism, Parallelism};
use sgm_physics::PinnModel;
use sgm_train::{LossModel, Probe, Sampler};
use std::collections::BTreeMap;

/// Draw one batch through the no-allocation `fill_batch` entry point.
fn next_batch(s: &mut dyn Sampler, batch: usize, rng: &mut Rng64) -> Vec<usize> {
    let mut out = Vec::new();
    s.fill_batch(batch, &mut out, rng);
    out
}

const ALPHA: f64 = 1e-3;
const MODES: [Parallelism; 3] = [
    Parallelism::Serial,
    Parallelism::Threads(1),
    Parallelism::Threads(8),
];

fn state_arr(state: &Value, key: &str) -> Vec<f64> {
    state
        .get(key)
        .and_then(Value::as_arr)
        .unwrap_or_else(|| panic!("state missing `{key}`"))
        .iter()
        .map(|v| v.as_f64().expect("numeric state entry"))
        .collect()
}

/// The base RNG passes KS goodness-of-fit for both of its continuous
/// distributions — the foundation every sampler test below stands on.
#[test]
fn rng_uniform_and_gaussian_pass_ks() {
    let mut rng = Rng64::new(0xD15E);
    let mut u: Vec<f64> = (0..5000).map(|_| rng.uniform()).collect();
    u.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let d = ks_statistic(&u, |x| x.clamp(0.0, 1.0));
    let p = ks_pvalue(d, u.len());
    assert!(p > ALPHA, "uniform KS p = {p:.3e} (d = {d:.3e})");

    let mut g: Vec<f64> = (0..5000).map(|_| rng.gaussian()).collect();
    g.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let d = ks_statistic(&g, normal_cdf);
    let p = ks_pvalue(d, g.len());
    assert!(p > ALPHA, "gaussian KS p = {p:.3e} (d = {d:.3e})");
}

/// MIS draw frequencies match an exactly known injected distribution
/// (chi-square over all 8 categories).
#[test]
fn mis_draws_match_injected_distribution() {
    let p = [0.30, 0.20, 0.15, 0.10, 0.08, 0.07, 0.06, 0.04];
    let n = p.len();
    let mut cumulative = Vec::with_capacity(n);
    let mut acc = 0.0;
    for &pi in &p {
        acc += pi;
        cumulative.push(acc);
    }
    *cumulative.last_mut().unwrap() = 1.0;

    let mut state = BTreeMap::new();
    state.insert(
        "cumulative".to_string(),
        Value::Arr(cumulative.into_iter().map(Value::Num).collect()),
    );
    state.insert("initialized".to_string(), Value::Bool(true));
    state.insert("probe_evals".to_string(), Value::Num(0.0));

    let mut s = MisSampler::new(n, MisConfig::default());
    s.load_state(&Value::Obj(state)).expect("valid state");

    let draws = 40_000usize;
    let mut rng = Rng64::new(0x31AB);
    let mut observed = vec![0.0; n];
    for i in next_batch(&mut s, draws, &mut rng) {
        observed[i] += 1.0;
    }
    let expected: Vec<f64> = p.iter().map(|&pi| pi * draws as f64).collect();
    let stat = chi_square_stat(&observed, &expected);
    let pv = chi_square_pvalue(stat, n - 1);
    assert!(pv > ALPHA, "chi-square p = {pv:.3e} (stat = {stat:.2})");
}

/// After a real probe-driven refresh, MIS draw frequencies match the
/// documented formula `p_i = (1−ε)·l_i^power/Σ + ε/n` — and the refresh
/// itself is thread-count invariant.
#[test]
fn mis_refresh_matches_formula_and_threads() {
    let (net, prob, data) = common::setup(400, 0xA11);
    let model = PinnModel::new(&prob, &data);
    let probe = Probe::new(&net, &model);
    let n = data.interior.len();

    let mut states = Vec::new();
    let mut sampler = None;
    for mode in MODES {
        let mut s = MisSampler::new(n, MisConfig::default());
        with_parallelism(mode, || {
            s.refresh(0, &probe, &mut Rng64::new(0xB0));
        });
        states.push(state_arr(&s.save_state(), "cumulative"));
        sampler = Some(s);
    }
    assert_eq!(states[0], states[1], "serial vs 1 thread");
    assert_eq!(states[0], states[2], "serial vs 8 threads");
    let mut s = sampler.unwrap();

    let cfg = MisConfig::default();
    let losses = model.sample_losses(&net, &(0..n).collect::<Vec<_>>());
    let weights: Vec<f64> = losses.iter().map(|&l| l.max(0.0).powf(cfg.power)).collect();
    let total: f64 = weights.iter().sum();
    let p: Vec<f64> = weights
        .iter()
        .map(|&w| (1.0 - cfg.uniform_mix) * w / total + cfg.uniform_mix / n as f64)
        .collect();

    let draws = 60_000usize;
    let mut rng = Rng64::new(0x5EED);
    let mut observed = vec![0.0; n];
    for i in next_batch(&mut s, draws, &mut rng) {
        observed[i] += 1.0;
    }
    let expected: Vec<f64> = p.iter().map(|&pi| pi * draws as f64).collect();
    let stat = chi_square_stat(&observed, &expected);
    let pv = chi_square_pvalue(stat, n - 1);
    assert!(pv > ALPHA, "chi-square p = {pv:.3e} (stat = {stat:.2})");
}

/// RAR serves its active set uniformly (chi-square) and never strays
/// outside it.
#[test]
fn rar_serves_its_active_set_uniformly() {
    let n = 400;
    let mut rng = Rng64::new(0xCAFE);
    let mut s = RarSampler::new(n, RarConfig::default(), &mut rng);
    let active: Vec<usize> = state_arr(&s.save_state(), "active")
        .iter()
        .map(|&x| x as usize)
        .collect();
    assert_eq!(active.len(), 40, "initial_fraction 0.1 of 400");

    let draws = 40_000usize;
    let mut counts: BTreeMap<usize, f64> = active.iter().map(|&i| (i, 0.0)).collect();
    for i in next_batch(&mut s, draws, &mut rng) {
        *counts
            .get_mut(&i)
            .unwrap_or_else(|| panic!("drew index {i} outside the active set")) += 1.0;
    }
    let observed: Vec<f64> = counts.values().copied().collect();
    let expected = vec![draws as f64 / active.len() as f64; active.len()];
    let stat = chi_square_stat(&observed, &expected);
    let pv = chi_square_pvalue(stat, active.len() - 1);
    assert!(pv > ALPHA, "chi-square p = {pv:.3e} (stat = {stat:.2})");
}

fn sgm_cfg() -> SgmConfig {
    SgmConfig {
        k: 6,
        min_clusters: 8,
        max_cluster_frac: 0.2,
        tau_e: 10,
        tau_g: 0,
        background: false,
        ..SgmConfig::default()
    }
}

/// One SGM refresh with a fixed seed, returning `(assignment, epoch)`
/// read through `save_state` — the only supported observation point.
fn sgm_epoch_under(mode: Parallelism) -> (Vec<usize>, Vec<usize>, Vec<f64>) {
    let (net, prob, data) = common::setup(400, 0x51);
    let model = PinnModel::new(&prob, &data);
    let probe = Probe::new(&net, &model);
    let mut s = SgmSampler::new(&data.interior, sgm_cfg());
    with_parallelism(mode, || {
        s.refresh(0, &probe, &mut Rng64::new(0x77));
    });
    let state = s.save_state();
    let assignment: Vec<usize> = state_arr(&state, "assignment")
        .iter()
        .map(|&x| x as usize)
        .collect();
    let epoch: Vec<usize> = state_arr(&state, "epoch")
        .iter()
        .map(|&x| x as usize)
        .collect();
    let losses = model.sample_losses(&net, &(0..data.interior.len()).collect::<Vec<_>>());
    (assignment, epoch, losses)
}

/// The assembled SGM epoch realises Algorithm 1's per-cluster ratios:
/// every cluster keeps ≥ 1 sample (the floor), no cluster is
/// over-drawn past its size, and the per-cluster sampling rate rises
/// with the cluster's mean loss. Identical across thread counts.
#[test]
fn sgm_epoch_respects_ratios_floor_and_threads() {
    let (assignment, epoch, losses) = sgm_epoch_under(Parallelism::Serial);
    for mode in [Parallelism::Threads(1), Parallelism::Threads(8)] {
        let (a2, e2, _) = sgm_epoch_under(mode);
        assert_eq!(assignment, a2, "{mode:?}: assignment differs from serial");
        assert_eq!(epoch, e2, "{mode:?}: epoch differs from serial");
    }

    let num_clusters = assignment.iter().max().unwrap() + 1;
    assert!(num_clusters >= 8, "min_clusters not honoured");
    let mut sizes = vec![0.0; num_clusters];
    for &c in &assignment {
        sizes[c] += 1.0;
    }
    let mut counts = vec![0.0; num_clusters];
    for &i in &epoch {
        counts[assignment[i]] += 1.0;
    }
    for c in 0..num_clusters {
        assert!(counts[c] >= 1.0, "cluster {c}: floor-of-1 violated");
        assert!(
            counts[c] <= sizes[c],
            "cluster {c}: drew {} from {} members",
            counts[c],
            sizes[c]
        );
    }

    // Rate ∝ score: clusters with higher mean probe loss are sampled at
    // a higher per-member rate (Spearman over clusters).
    let mut mean_loss = vec![0.0; num_clusters];
    for (i, &c) in assignment.iter().enumerate() {
        mean_loss[c] += losses[i];
    }
    let rate: Vec<f64> = (0..num_clusters).map(|c| counts[c] / sizes[c]).collect();
    let mean_loss: Vec<f64> = mean_loss.iter().zip(&sizes).map(|(&l, &s)| l / s).collect();
    let rho = rank_correlation(&mean_loss, &rate);
    assert!(
        rho > 0.5,
        "per-cluster sampling rate not loss-proportional (rho = {rho:.3})"
    );
}

/// Serving is exact: each `next_batch(epoch_len)` call returns a
/// permutation of the assembled epoch, so observed per-cluster
/// frequencies over K epochs equal K × the assembled counts exactly —
/// Algorithm 1's ratios hold with zero sampling error.
#[test]
fn sgm_serving_is_an_exact_permutation_of_the_epoch() {
    let (net, prob, data) = common::setup(400, 0x51);
    let model = PinnModel::new(&prob, &data);
    let probe = Probe::new(&net, &model);
    let mut s = SgmSampler::new(&data.interior, sgm_cfg());
    let mut rng = Rng64::new(0x99);
    s.refresh(0, &probe, &mut rng);

    let mut epoch: Vec<usize> = state_arr(&s.save_state(), "epoch")
        .iter()
        .map(|&x| x as usize)
        .collect();
    epoch.sort_unstable();
    for k in 0..10 {
        let mut batch = next_batch(&mut s, epoch.len(), &mut rng);
        batch.sort_unstable();
        assert_eq!(batch, epoch, "epoch {k} is not a permutation");
    }
}
