//! Manufactured-solution acceptance suite: every PDE residual in
//! `sgm-physics` is checked against a symbolically known oracle.

use sgm_testkit::mms;

/// Every case in the catalogue passes to its tolerance: exact solutions
/// produce zero residuals, manufactured fields produce the hand-derived
/// nonzero residuals, both to machine-precision derivative sets.
#[test]
fn all_manufactured_solutions_pass() {
    for case in mms::all_cases() {
        case.check().unwrap_or_else(|e| panic!("{e}"));
    }
}

/// The catalogue covers every PDE variant the physics crate ships.
#[test]
fn catalogue_covers_every_pde() {
    let mut kinds: Vec<&'static str> = mms::all_cases()
        .iter()
        .map(|c| c.pde.residual_names()[0])
        .collect();
    kinds.sort_unstable();
    kinds.dedup();
    for want in ["poisson", "burgers", "heat", "helmholtz", "continuity"] {
        assert!(kinds.contains(&want), "no MMS case exercises `{want}`");
    }
}

/// Sensitivity: each oracle rejects a perturbed field — the checks are
/// not vacuously tight around zero.
#[test]
fn every_oracle_rejects_a_perturbed_field() {
    for mut case in mms::all_cases() {
        let name = case.name;
        // Additive x² perturbation of the first output breaks every
        // system here (for NS it violates continuity).
        let orig = std::mem::replace(&mut case.fields[0], Box::new(|x, _y| x * x));
        let base = orig;
        case.fields[0] = Box::new(move |x, y| base(x, y) + x * x);
        assert!(
            case.check().is_err(),
            "{name}: oracle accepted a field that does not satisfy the PDE"
        );
    }
}
