//! Property-based tests of the linear-algebra substrate.

use proptest::prelude::*;
use sgm_linalg::dense::{dot, Matrix};
use sgm_linalg::eigen::{lanczos, tridiag_eig, LanczosOptions, SpectrumEnd};
use sgm_linalg::rng::Rng64;
use sgm_linalg::solve::{conjugate_gradient, CgOptions};
use sgm_linalg::sparse::Csr;
use sgm_linalg::stats::{normalize_distribution, quantile, relative_l2};

fn random_spd(n: usize, seed: u64) -> Matrix {
    let mut rng = Rng64::new(seed);
    let g = Matrix::gaussian(n, n, &mut rng);
    let mut a = g.matmul(&g.transposed());
    for i in 0..n {
        a.add_at(i, i, n as f64); // well conditioned
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// (AB)C = A(BC) within round-off.
    #[test]
    fn matmul_associative(seed in 0u64..1000, n in 2usize..8) {
        let mut rng = Rng64::new(seed);
        let a = Matrix::gaussian(n, n, &mut rng);
        let b = Matrix::gaussian(n, n, &mut rng);
        let c = Matrix::gaussian(n, n, &mut rng);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for i in 0..n {
            for j in 0..n {
                prop_assert!((left.get(i, j) - right.get(i, j)).abs() < 1e-9);
            }
        }
    }

    /// Gaussian elimination inverts what it multiplies.
    #[test]
    fn solve_inverts(seed in 0u64..1000, n in 2usize..10) {
        let a = random_spd(n, seed);
        let mut rng = Rng64::new(seed ^ 1);
        let x: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let b = a.mul_vec(&x);
        let xr = a.solve(&b).expect("SPD is nonsingular");
        for i in 0..n {
            prop_assert!((xr[i] - x[i]).abs() < 1e-7);
        }
    }

    /// CG agrees with direct solve on SPD systems.
    #[test]
    fn cg_matches_direct(seed in 0u64..1000, n in 3usize..12) {
        let a = random_spd(n, seed);
        let mut trips = Vec::new();
        for i in 0..n {
            for j in 0..n {
                trips.push((i, j, a.get(i, j)));
            }
        }
        let sp = Csr::from_triplets(n, n, &trips);
        let mut rng = Rng64::new(seed ^ 2);
        let b: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let direct = a.solve(&b).unwrap();
        let cg = conjugate_gradient(&sp, &b, &CgOptions::default());
        prop_assert!(cg.converged);
        for i in 0..n {
            prop_assert!((cg.solution[i] - direct[i]).abs() < 1e-6);
        }
    }

    /// Cholesky reproduces the matrix and solves match `solve`.
    #[test]
    fn cholesky_consistent(seed in 0u64..1000, n in 2usize..9) {
        let a = random_spd(n, seed);
        let c = a.cholesky().expect("SPD");
        let mut rng = Rng64::new(seed ^ 3);
        let b: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let y = c.forward_substitute(&b);
        let x = c.back_substitute_t(&y);
        let direct = a.solve(&b).unwrap();
        for i in 0..n {
            prop_assert!((x[i] - direct[i]).abs() < 1e-7);
        }
    }

    /// Lanczos extreme eigenvalues match the full Jacobi decomposition.
    #[test]
    fn lanczos_matches_jacobi(seed in 0u64..500, n in 4usize..12) {
        let a = random_spd(n, seed);
        let (mut vals, _) = a.sym_eig();
        vals.sort_by(|x, y| y.partial_cmp(x).unwrap());
        let pairs = lanczos(&a, &LanczosOptions {
            num_pairs: 1,
            subspace: n,
            end: SpectrumEnd::Largest,
            seed,
        });
        prop_assert!((pairs[0].value - vals[0]).abs() < 1e-6 * (1.0 + vals[0].abs()),
            "{} vs {}", pairs[0].value, vals[0]);
    }

    /// Tridiagonal eigenvalues: trace and Frobenius norm are preserved.
    #[test]
    fn tridiag_eig_preserves_invariants(seed in 0u64..1000, n in 2usize..12) {
        let mut rng = Rng64::new(seed);
        let d: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let e: Vec<f64> = (0..n - 1).map(|_| rng.gaussian()).collect();
        let (vals, _) = tridiag_eig(&d, &e);
        let trace: f64 = d.iter().sum();
        let val_sum: f64 = vals.iter().sum();
        prop_assert!((trace - val_sum).abs() < 1e-8 * (1.0 + trace.abs()));
        let fro2: f64 = d.iter().map(|x| x * x).sum::<f64>()
            + 2.0 * e.iter().map(|x| x * x).sum::<f64>();
        let val2: f64 = vals.iter().map(|x| x * x).sum();
        prop_assert!((fro2 - val2).abs() < 1e-7 * (1.0 + fro2));
    }

    /// The RNG's weighted draw respects zero weights.
    #[test]
    fn weighted_index_avoids_zeros(seed in 0u64..1000) {
        let mut rng = Rng64::new(seed);
        let w = [0.0, 1.0, 0.0, 2.0, 0.0];
        for _ in 0..100 {
            let i = rng.weighted_index(&w);
            prop_assert!(i == 1 || i == 3);
        }
    }

    /// normalize_distribution is a probability vector.
    #[test]
    fn normalized_is_probability(xs in prop::collection::vec(-5.0f64..5.0, 1..20)) {
        let p = normalize_distribution(&xs);
        prop_assert_eq!(p.len(), xs.len());
        prop_assert!(p.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    /// Quantiles are monotone in q and bounded by the data range.
    #[test]
    fn quantiles_monotone(xs in prop::collection::vec(-10.0f64..10.0, 2..30)) {
        let q25 = quantile(&xs, 0.25);
        let q50 = quantile(&xs, 0.5);
        let q75 = quantile(&xs, 0.75);
        prop_assert!(q25 <= q50 && q50 <= q75);
        let mn = xs.iter().cloned().fold(f64::MAX, f64::min);
        let mx = xs.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(q25 >= mn && q75 <= mx);
    }

    /// relative_l2 is zero iff equal, symmetric under scaling of both.
    #[test]
    fn relative_l2_properties(xs in prop::collection::vec(-3.0f64..3.0, 1..15), s in 0.1f64..10.0) {
        prop_assert!(relative_l2(&xs, &xs) < 1e-15);
        let scaled_a: Vec<f64> = xs.iter().map(|x| x * s).collect();
        // rel(s·a, s·b) = rel(a, b): check vs a shifted copy.
        let b: Vec<f64> = xs.iter().map(|x| x + 1.0).collect();
        let scaled_b: Vec<f64> = b.iter().map(|x| x * s).collect();
        let r1 = relative_l2(&xs, &b);
        let r2 = relative_l2(&scaled_a, &scaled_b);
        prop_assert!((r1 - r2).abs() < 1e-9 * (1.0 + r1));
    }

    /// dot is bilinear.
    #[test]
    fn dot_bilinear(n in 1usize..20, seed in 0u64..1000, alpha in -3.0f64..3.0) {
        let mut rng = Rng64::new(seed);
        let a: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let c: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let ab_c: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + alpha * y).collect();
        let lhs = dot(&ab_c, &c);
        let rhs = dot(&a, &c) + alpha * dot(&b, &c);
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
    }
}
