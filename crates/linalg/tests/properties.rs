//! Property-based tests of the linear-algebra substrate.
//!
//! Offline-buildable replacement for the original proptest suite: each
//! property is exercised over a deterministic sweep of seeded random
//! cases drawn from [`Rng64`] (32 cases per property, mirroring the old
//! `ProptestConfig::with_cases(32)`).

use sgm_linalg::dense::{dot, Matrix};
use sgm_linalg::eigen::{lanczos, tridiag_eig, LanczosOptions, SpectrumEnd};
use sgm_linalg::rng::Rng64;
use sgm_linalg::solve::{conjugate_gradient, CgOptions};
use sgm_linalg::sparse::Csr;
use sgm_linalg::stats::{normalize_distribution, quantile, relative_l2};

const CASES: u64 = 32;

fn random_spd(n: usize, seed: u64) -> Matrix {
    let mut rng = Rng64::new(seed);
    let g = Matrix::gaussian(n, n, &mut rng);
    let mut a = g.matmul(&g.transposed());
    for i in 0..n {
        a.add_at(i, i, n as f64); // well conditioned
    }
    a
}

/// Draws `len in lo..hi` values uniform in `(-range, range)`.
fn random_vec(rng: &mut Rng64, lo: usize, hi: usize, range: f64) -> Vec<f64> {
    let n = lo + rng.below(hi - lo);
    (0..n).map(|_| rng.uniform_in(-range, range)).collect()
}

/// (AB)C = A(BC) within round-off.
#[test]
fn matmul_associative() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let n = 2 + rng.below(6);
        let a = Matrix::gaussian(n, n, &mut rng);
        let b = Matrix::gaussian(n, n, &mut rng);
        let c = Matrix::gaussian(n, n, &mut rng);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for i in 0..n {
            for j in 0..n {
                assert!(
                    (left.get(i, j) - right.get(i, j)).abs() < 1e-9,
                    "seed={seed} n={n} ({i},{j})"
                );
            }
        }
    }
}

/// Gaussian elimination inverts what it multiplies.
#[test]
fn solve_inverts() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed ^ 0x517e);
        let n = 2 + rng.below(8);
        let a = random_spd(n, seed);
        let x: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let b = a.mul_vec(&x);
        let xr = a.solve(&b).expect("SPD is nonsingular");
        for i in 0..n {
            assert!((xr[i] - x[i]).abs() < 1e-7, "seed={seed} n={n} i={i}");
        }
    }
}

/// CG agrees with direct solve on SPD systems.
#[test]
fn cg_matches_direct() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed ^ 0xc6);
        let n = 3 + rng.below(9);
        let a = random_spd(n, seed);
        let mut trips = Vec::new();
        for i in 0..n {
            for j in 0..n {
                trips.push((i, j, a.get(i, j)));
            }
        }
        let sp = Csr::from_triplets(n, n, &trips);
        let b: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let direct = a.solve(&b).unwrap();
        let cg = conjugate_gradient(&sp, &b, &CgOptions::default());
        assert!(cg.converged, "seed={seed} n={n}");
        for (i, (cgi, di)) in cg.solution.iter().zip(&direct).enumerate() {
            assert!((cgi - di).abs() < 1e-6, "seed={seed} n={n} i={i}");
        }
    }
}

/// Cholesky reproduces the matrix and solves match `solve`.
#[test]
fn cholesky_consistent() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed ^ 0xc401);
        let n = 2 + rng.below(7);
        let a = random_spd(n, seed);
        let c = a.cholesky().expect("SPD");
        let b: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let y = c.forward_substitute(&b);
        let x = c.back_substitute_t(&y);
        let direct = a.solve(&b).unwrap();
        for i in 0..n {
            assert!((x[i] - direct[i]).abs() < 1e-7, "seed={seed} n={n} i={i}");
        }
    }
}

/// Lanczos extreme eigenvalues match the full Jacobi decomposition.
#[test]
fn lanczos_matches_jacobi() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed ^ 0x1a);
        let n = 4 + rng.below(8);
        let a = random_spd(n, seed);
        let (mut vals, _) = a.sym_eig();
        vals.sort_by(|x, y| y.partial_cmp(x).unwrap());
        let pairs = lanczos(
            &a,
            &LanczosOptions {
                num_pairs: 1,
                subspace: n,
                end: SpectrumEnd::Largest,
                seed,
            },
        );
        assert!(
            (pairs[0].value - vals[0]).abs() < 1e-6 * (1.0 + vals[0].abs()),
            "seed={seed}: {} vs {}",
            pairs[0].value,
            vals[0]
        );
    }
}

/// Tridiagonal eigenvalues: trace and Frobenius norm are preserved.
#[test]
fn tridiag_eig_preserves_invariants() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed ^ 0x3d);
        let n = 2 + rng.below(10);
        let d: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let e: Vec<f64> = (0..n - 1).map(|_| rng.gaussian()).collect();
        let (vals, _) = tridiag_eig(&d, &e);
        let trace: f64 = d.iter().sum();
        let val_sum: f64 = vals.iter().sum();
        assert!(
            (trace - val_sum).abs() < 1e-8 * (1.0 + trace.abs()),
            "seed={seed} trace"
        );
        let fro2: f64 =
            d.iter().map(|x| x * x).sum::<f64>() + 2.0 * e.iter().map(|x| x * x).sum::<f64>();
        let val2: f64 = vals.iter().map(|x| x * x).sum();
        assert!((fro2 - val2).abs() < 1e-7 * (1.0 + fro2), "seed={seed} fro");
    }
}

/// The RNG's weighted draw respects zero weights.
#[test]
fn weighted_index_avoids_zeros() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let w = [0.0, 1.0, 0.0, 2.0, 0.0];
        for _ in 0..100 {
            let i = rng.weighted_index(&w);
            assert!(i == 1 || i == 3, "seed={seed} drew {i}");
        }
    }
}

/// normalize_distribution is a probability vector.
#[test]
fn normalized_is_probability() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed ^ 0xA0);
        let xs = random_vec(&mut rng, 1, 20, 5.0);
        let p = normalize_distribution(&xs);
        assert_eq!(p.len(), xs.len());
        assert!(
            p.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)),
            "seed={seed}"
        );
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9, "seed={seed}");
    }
}

/// Quantiles are monotone in q and bounded by the data range.
#[test]
fn quantiles_monotone() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed ^ 0x9a);
        let xs = random_vec(&mut rng, 2, 30, 10.0);
        let q25 = quantile(&xs, 0.25);
        let q50 = quantile(&xs, 0.5);
        let q75 = quantile(&xs, 0.75);
        assert!(q25 <= q50 && q50 <= q75, "seed={seed}");
        let mn = xs.iter().cloned().fold(f64::MAX, f64::min);
        let mx = xs.iter().cloned().fold(f64::MIN, f64::max);
        assert!(q25 >= mn && q75 <= mx, "seed={seed}");
    }
}

/// relative_l2 is zero iff equal, symmetric under scaling of both.
#[test]
fn relative_l2_properties() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed ^ 0xe12);
        let xs = random_vec(&mut rng, 1, 15, 3.0);
        let s = rng.uniform_in(0.1, 10.0);
        assert!(relative_l2(&xs, &xs) < 1e-15, "seed={seed}");
        let scaled_a: Vec<f64> = xs.iter().map(|x| x * s).collect();
        // rel(s·a, s·b) = rel(a, b): check vs a shifted copy.
        let b: Vec<f64> = xs.iter().map(|x| x + 1.0).collect();
        let scaled_b: Vec<f64> = b.iter().map(|x| x * s).collect();
        let r1 = relative_l2(&xs, &b);
        let r2 = relative_l2(&scaled_a, &scaled_b);
        assert!((r1 - r2).abs() < 1e-9 * (1.0 + r1), "seed={seed}");
    }
}

/// dot is bilinear.
#[test]
fn dot_bilinear() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed ^ 0xb1);
        let n = 1 + rng.below(19);
        let alpha = rng.uniform_in(-3.0, 3.0);
        let a: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let c: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let ab_c: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + alpha * y).collect();
        let lhs = dot(&ab_c, &c);
        let rhs = dot(&a, &c) + alpha * dot(&b, &c);
        assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()), "seed={seed}");
    }
}
