//! Iterative solvers and smoothers.
//!
//! * [`conjugate_gradient`] — Jacobi-preconditioned CG for SPD systems.
//!   Used to apply `L⁺` (with a rank-one deflation of the constant vector
//!   for singular graph Laplacians) in effective-resistance and ISR
//!   computations.
//! * [`jacobi_smooth`] / [`gauss_seidel_smooth`] — the low-pass filters used
//!   by the HyperEF-style effective-resistance estimator: a few smoothing
//!   iterations on random vectors approximate the dominant low-frequency
//!   Laplacian eigenspace.

use crate::dense::{axpy, dot, norm2};
use crate::sparse::{Csr, LinOp};

/// Options controlling [`conjugate_gradient`].
#[derive(Debug, Clone, PartialEq)]
pub struct CgOptions {
    /// Maximum iterations (defaults to 500).
    pub max_iters: usize,
    /// Relative residual tolerance ‖r‖/‖b‖ (defaults to 1e-10).
    pub tol: f64,
    /// If true, project out the constant component of the iterate after
    /// every step — the standard trick for solving on the range of a
    /// singular graph Laplacian.
    pub deflate_constant: bool,
    /// Optional Jacobi preconditioner diagonal (must be positive).
    pub jacobi_diag: Option<Vec<f64>>,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            max_iters: 500,
            tol: 1e-10,
            deflate_constant: false,
            jacobi_diag: None,
        }
    }
}

/// Result of a CG solve.
#[derive(Debug, Clone, PartialEq)]
pub struct CgResult {
    /// The final iterate.
    pub solution: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final relative residual.
    pub residual: f64,
    /// Whether the tolerance was met.
    pub converged: bool,
}

fn project_out_constant(x: &mut [f64]) {
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    for v in x {
        *v -= mean;
    }
}

/// Preconditioned conjugate gradient for a symmetric positive
/// (semi-)definite operator.
///
/// When `opts.deflate_constant` is set, both the right-hand side and the
/// iterates are kept orthogonal to the all-ones vector, so the routine
/// returns the minimum-norm solution `L⁺ b` for a connected graph
/// Laplacian.
///
/// # Panics
/// Panics if `b.len() != a.dim()` or a provided Jacobi diagonal has
/// non-positive entries.
pub fn conjugate_gradient<A: LinOp + ?Sized>(a: &A, b: &[f64], opts: &CgOptions) -> CgResult {
    let n = a.dim();
    assert_eq!(b.len(), n, "rhs dimension");
    if let Some(d) = &opts.jacobi_diag {
        assert!(
            d.iter().all(|&x| x > 0.0),
            "preconditioner must be positive"
        );
    }
    let precond = |r: &[f64], z: &mut Vec<f64>| {
        z.clear();
        match &opts.jacobi_diag {
            Some(d) => z.extend(r.iter().zip(d).map(|(ri, di)| ri / di)),
            None => z.extend_from_slice(r),
        }
    };

    let mut rhs = b.to_vec();
    if opts.deflate_constant {
        project_out_constant(&mut rhs);
    }
    let bnorm = norm2(&rhs).max(1e-300);

    let mut x = vec![0.0; n];
    let mut r = rhs.clone();
    let mut z = Vec::with_capacity(n);
    precond(&r, &mut z);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];

    let mut iterations = 0;
    let mut residual = norm2(&r) / bnorm;
    while iterations < opts.max_iters && residual > opts.tol {
        a.apply_to(&p, &mut ap);
        if opts.deflate_constant {
            project_out_constant(&mut ap);
        }
        let pap = dot(&p, &ap);
        if pap.abs() < 1e-300 {
            break;
        }
        let alpha = rz / pap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        precond(&r, &mut z);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
        iterations += 1;
        residual = norm2(&r) / bnorm;
    }
    if opts.deflate_constant {
        project_out_constant(&mut x);
    }
    CgResult {
        solution: x,
        iterations,
        residual,
        converged: residual <= opts.tol,
    }
}

/// One weighted-Jacobi smoothing sweep `x ← x + ω D⁻¹ (b − A x)` repeated
/// `sweeps` times. Zero diagonals are treated as 1 (isolated nodes).
///
/// # Panics
/// Panics on dimension mismatch.
pub fn jacobi_smooth(a: &Csr, b: &[f64], x: &mut [f64], omega: f64, sweeps: usize) {
    let n = a.rows();
    assert_eq!(b.len(), n, "rhs dim");
    assert_eq!(x.len(), n, "x dim");
    let diag: Vec<f64> = a
        .diagonal()
        .into_iter()
        .map(|d| if d.abs() < 1e-300 { 1.0 } else { d })
        .collect();
    let mut r = vec![0.0; n];
    for _ in 0..sweeps {
        a.mul_vec(x, &mut r);
        for i in 0..n {
            x[i] += omega * (b[i] - r[i]) / diag[i];
        }
    }
}

/// Gauss–Seidel sweeps (forward ordering), in place.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn gauss_seidel_smooth(a: &Csr, b: &[f64], x: &mut [f64], sweeps: usize) {
    let n = a.rows();
    assert_eq!(b.len(), n, "rhs dim");
    assert_eq!(x.len(), n, "x dim");
    for _ in 0..sweeps {
        for i in 0..n {
            let mut s = b[i];
            let mut diag = 1.0;
            for (c, v) in a.row_iter(i) {
                if c == i {
                    diag = if v.abs() < 1e-300 { 1.0 } else { v };
                } else {
                    s -= v * x[c];
                }
            }
            x[i] = s / diag;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    fn spd_system(n: usize, seed: u64) -> (Csr, Vec<f64>, Vec<f64>) {
        // 1-D Poisson matrix (tridiagonal SPD).
        let mut trips = Vec::new();
        for i in 0..n {
            trips.push((i, i, 2.0));
            if i + 1 < n {
                trips.push((i, i + 1, -1.0));
                trips.push((i + 1, i, -1.0));
            }
        }
        let a = Csr::from_triplets(n, n, &trips);
        let mut rng = Rng64::new(seed);
        let x_true: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let b = a.apply(&x_true);
        (a, x_true, b)
    }

    #[test]
    fn cg_solves_poisson() {
        let (a, x_true, b) = spd_system(50, 1);
        let res = conjugate_gradient(&a, &b, &CgOptions::default());
        assert!(res.converged, "residual {}", res.residual);
        for (si, ti) in res.solution.iter().zip(&x_true) {
            assert!((si - ti).abs() < 1e-6);
        }
    }

    #[test]
    fn cg_with_jacobi_preconditioner() {
        let (a, x_true, b) = spd_system(50, 2);
        let opts = CgOptions {
            jacobi_diag: Some(a.diagonal()),
            ..CgOptions::default()
        };
        let res = conjugate_gradient(&a, &b, &opts);
        assert!(res.converged);
        for (si, ti) in res.solution.iter().zip(&x_true) {
            assert!((si - ti).abs() < 1e-6);
        }
    }

    #[test]
    fn cg_on_singular_laplacian_with_deflation() {
        // Triangle graph Laplacian (singular; nullspace = constants).
        let l = Csr::from_triplets(
            3,
            3,
            &[
                (0, 0, 2.0),
                (1, 1, 2.0),
                (2, 2, 2.0),
                (0, 1, -1.0),
                (1, 0, -1.0),
                (1, 2, -1.0),
                (2, 1, -1.0),
                (0, 2, -1.0),
                (2, 0, -1.0),
            ],
        );
        let b = vec![1.0, -1.0, 0.0]; // orthogonal to ones
        let opts = CgOptions {
            deflate_constant: true,
            ..CgOptions::default()
        };
        let res = conjugate_gradient(&l, &b, &opts);
        assert!(res.converged);
        // Exact: effective resistance of triangle edge = 2/3, so
        // x = L⁺ b should satisfy (e01)ᵀ x = 2/3.
        let r = res.solution[0] - res.solution[1];
        assert!((r - 2.0 / 3.0).abs() < 1e-8, "r = {r}");
        // Solution is mean-free.
        let mean: f64 = res.solution.iter().sum::<f64>() / 3.0;
        assert!(mean.abs() < 1e-12);
    }

    #[test]
    fn jacobi_reduces_residual() {
        let (a, _x, b) = spd_system(30, 3);
        let mut x = vec![0.0; 30];
        jacobi_smooth(&a, &b, &mut x, 0.7, 50);
        let r0 = norm2(&b);
        let mut ax = vec![0.0; 30];
        a.mul_vec(&x, &mut ax);
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
        assert!(norm2(&r) < 0.5 * r0, "residual not reduced");
    }

    #[test]
    fn gauss_seidel_converges_faster_than_jacobi() {
        let (a, _x, b) = spd_system(30, 4);
        let mut xj = vec![0.0; 30];
        let mut xg = vec![0.0; 30];
        jacobi_smooth(&a, &b, &mut xj, 0.7, 20);
        gauss_seidel_smooth(&a, &b, &mut xg, 20);
        let resid = |x: &[f64]| {
            let mut ax = vec![0.0; 30];
            a.mul_vec(x, &mut ax);
            norm2(
                &b.iter()
                    .zip(&ax)
                    .map(|(bi, ai)| bi - ai)
                    .collect::<Vec<_>>(),
            )
        };
        assert!(resid(&xg) < resid(&xj));
    }

    #[test]
    fn cg_reports_iteration_count() {
        let (a, _x, b) = spd_system(10, 5);
        let res = conjugate_gradient(&a, &b, &CgOptions::default());
        // CG on an n-dim SPD system converges in at most n steps (exact
        // arithmetic); allow slack.
        assert!(res.iterations <= 15);
    }
}
