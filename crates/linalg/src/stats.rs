//! Norms, error metrics and summary statistics used by validators and the
//! experiment harness.

/// Mean of a slice (0.0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance (0.0 for slices shorter than 2).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Maximum absolute value (0.0 for an empty slice).
pub fn max_abs(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |a, &x| a.max(x.abs()))
}

/// Relative L2 error ‖a − b‖₂ / ‖b‖₂.
///
/// This is the validation metric the paper reports ("validation error"
/// against OpenFOAM fields). A zero reference falls back to the absolute
/// L2 norm of `a`.
///
/// # Panics
/// Panics if slices differ in length.
pub fn relative_l2(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let num: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.iter().map(|y| y * y).sum::<f64>().sqrt();
    if den < 1e-300 {
        num
    } else {
        num / den
    }
}

/// Mean squared error.
///
/// # Panics
/// Panics if slices differ in length or are empty.
pub fn mse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    assert!(!a.is_empty(), "empty input");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64
}

/// The `q`-th quantile (linear interpolation) of the data, `q ∈ [0, 1]`.
///
/// # Panics
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "q out of range");
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pos = q * (s.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        s[lo]
    } else {
        let t = pos - lo as f64;
        s[lo] * (1.0 - t) + s[hi] * t
    }
}

/// Normalises a non-negative score vector to sum to 1; uniform fallback if
/// the total mass is zero. Negative entries are clamped to zero.
pub fn normalize_distribution(scores: &[f64]) -> Vec<f64> {
    let clamped: Vec<f64> = scores
        .iter()
        .map(|&s| if s.is_finite() && s > 0.0 { s } else { 0.0 })
        .collect();
    let total: f64 = clamped.iter().sum();
    if total <= 0.0 {
        let u = 1.0 / scores.len().max(1) as f64;
        return vec![u; scores.len()];
    }
    clamped.into_iter().map(|s| s / total).collect()
}

/// Natural log of the gamma function, `ln Γ(x)` for `x > 0`.
///
/// Lanczos approximation (g = 7, 9 coefficients), accurate to roughly
/// 1e-13 relative error over the positive reals — ample for the p-value
/// computations in the statistical acceptance tests.
///
/// # Panics
/// Panics for `x <= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    // Published Lanczos(g=7, n=9) coefficients, digits kept verbatim.
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x) Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularised lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// Series expansion for `x < a + 1`, Lentz continued fraction otherwise
/// (Numerical Recipes §6.2). Both converge to ~1e-14.
///
/// # Panics
/// Panics for `a <= 0` or `x < 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0");
    assert!(x >= 0.0, "gamma_p requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series: P(a,x) = e^{-x} x^a / Γ(a) · Σ_{n≥0} x^n / (a(a+1)…(a+n)).
        let mut term = 1.0 / a;
        let mut sum = term;
        let mut ap = a;
        for _ in 0..500 {
            ap += 1.0;
            term *= x / ap;
            sum += term;
            if term.abs() < sum.abs() * 1e-16 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularised upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0");
    assert!(x >= 0.0, "gamma_q requires x >= 0");
    if x < a + 1.0 {
        1.0 - gamma_p(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Continued-fraction evaluation of `Q(a, x)`, valid for `x >= a + 1`
/// (modified Lentz algorithm).
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Pearson chi-square statistic `Σ (observed − expected)² / expected`.
///
/// `expected` entries must be strictly positive; `observed` are raw
/// counts (not frequencies). Categories with expected mass below ~5 are
/// the caller's responsibility to pool.
///
/// # Panics
/// Panics on length mismatch, empty input, or a non-positive expected
/// count.
pub fn chi_square_stat(observed: &[f64], expected: &[f64]) -> f64 {
    assert_eq!(observed.len(), expected.len(), "length mismatch");
    assert!(!observed.is_empty(), "empty input");
    observed
        .iter()
        .zip(expected)
        .map(|(&o, &e)| {
            assert!(e > 0.0, "expected count must be positive, got {e}");
            let d = o - e;
            d * d / e
        })
        .sum()
}

/// Upper-tail p-value of a chi-square statistic with `dof` degrees of
/// freedom: `Q(dof/2, stat/2)`.
///
/// # Panics
/// Panics for `dof == 0` or a negative statistic.
pub fn chi_square_pvalue(stat: f64, dof: usize) -> f64 {
    assert!(dof > 0, "dof must be positive");
    assert!(stat >= 0.0, "statistic must be non-negative");
    gamma_q(dof as f64 / 2.0, stat / 2.0)
}

/// One-sample Kolmogorov–Smirnov statistic `D = sup |F_n(x) − F(x)|`.
///
/// `sorted` must be ascending; `cdf` is the hypothesised continuous CDF.
///
/// # Panics
/// Panics on an empty or unsorted sample.
pub fn ks_statistic(sorted: &[f64], cdf: impl Fn(f64) -> f64) -> f64 {
    assert!(!sorted.is_empty(), "empty sample");
    let n = sorted.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        if i > 0 {
            assert!(sorted[i - 1] <= x, "sample must be sorted ascending");
        }
        let f = cdf(x);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    d
}

/// Asymptotic p-value for the one-sample KS statistic `d` at sample size
/// `n`, using the Kolmogorov distribution
/// `Q(λ) = 2 Σ_{j≥1} (−1)^{j−1} e^{−2 j² λ²}` with the standard
/// small-sample correction `λ = (√n + 0.12 + 0.11/√n) · d`.
///
/// # Panics
/// Panics for `n == 0` or `d < 0`.
pub fn ks_pvalue(d: f64, n: usize) -> f64 {
    assert!(n > 0, "n must be positive");
    assert!(d >= 0.0, "statistic must be non-negative");
    let sn = (n as f64).sqrt();
    let lambda = (sn + 0.12 + 0.11 / sn) * d;
    if lambda < 1e-8 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let t = (-2.0 * (j as f64) * (j as f64) * lambda * lambda).exp();
        sum += sign * t;
        if t < 1e-16 {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Standard normal CDF `Φ(x)` via the regularised incomplete gamma
/// (`erf(x) = P(1/2, x²)` for `x ≥ 0`).
pub fn normal_cdf(x: f64) -> f64 {
    let half_erf = 0.5 * gamma_p(0.5, 0.5 * x * x);
    if x >= 0.0 {
        0.5 + half_erf
    } else {
        0.5 - half_erf
    }
}

/// An online exponential moving average.
///
/// # Example
///
/// ```
/// use sgm_linalg::stats::Ema;
/// let mut e = Ema::new(0.5);
/// e.update(2.0);
/// e.update(4.0);
/// assert!((e.value() - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ema {
    alpha: f64,
    value: Option<f64>,
}

impl Ema {
    /// New EMA with smoothing factor `alpha ∈ (0, 1]`.
    ///
    /// # Panics
    /// Panics for alpha outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha out of range");
        Ema { alpha, value: None }
    }

    /// Feeds a new observation.
    pub fn update(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        });
    }

    /// Current smoothed value (0.0 before the first observation).
    pub fn value(&self) -> f64 {
        self.value.unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_var() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert!((std_dev(&xs) - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(max_abs(&[]), 0.0);
    }

    #[test]
    fn relative_l2_basic() {
        let a = [1.0, 0.0];
        let b = [0.0, 0.0];
        assert_eq!(relative_l2(&a, &b), 1.0); // zero reference → absolute
        let c = [2.0, 0.0];
        let d = [1.0, 0.0];
        assert_eq!(relative_l2(&c, &d), 1.0);
        assert_eq!(relative_l2(&d, &d), 0.0);
    }

    #[test]
    fn mse_known() {
        assert_eq!(mse(&[1.0, 3.0], &[0.0, 0.0]), 5.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.5);
    }

    #[test]
    fn normalize_distribution_sums_to_one() {
        let p = normalize_distribution(&[1.0, 3.0, 0.0, -2.0, f64::NAN]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(p[3], 0.0);
        assert_eq!(p[4], 0.0);
        assert!((p[1] / p[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_distribution_zero_mass_uniform() {
        let p = normalize_distribution(&[0.0, 0.0]);
        assert_eq!(p, vec![0.5, 0.5]);
    }

    #[test]
    fn ema_tracks() {
        let mut e = Ema::new(1.0);
        e.update(5.0);
        e.update(7.0);
        assert_eq!(e.value(), 7.0);
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(5) = 24, Γ(1/2) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-12);
        let half = 0.5 * std::f64::consts::PI.ln();
        assert!((ln_gamma(0.5) - half).abs() < 1e-12);
        // Recurrence Γ(x+1) = x Γ(x) across the series/reflection split.
        for &x in &[0.1, 0.4, 0.9, 1.5, 3.7, 10.0] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!((lhs - rhs).abs() < 1e-11, "recurrence failed at {x}");
        }
    }

    #[test]
    fn incomplete_gamma_complements() {
        for &(a, x) in &[(0.5, 0.2), (1.0, 1.0), (2.5, 1.0), (2.5, 8.0), (10.0, 3.0)] {
            let p = gamma_p(a, x);
            let q = gamma_q(a, x);
            assert!((p + q - 1.0).abs() < 1e-12, "P+Q != 1 at a={a}, x={x}");
            assert!((0.0..=1.0).contains(&p));
        }
        // P(1, x) = 1 − e^{−x} exactly.
        for &x in &[0.1, 0.5, 2.0, 5.0] {
            assert!((gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-13);
        }
    }

    #[test]
    fn chi_square_critical_values() {
        // Textbook 5% critical values: χ²(1) = 3.841, χ²(2) = 5.991,
        // χ²(10) = 18.307.
        assert!((chi_square_pvalue(3.841, 1) - 0.05).abs() < 5e-4);
        assert!((chi_square_pvalue(5.991, 2) - 0.05).abs() < 5e-4);
        assert!((chi_square_pvalue(18.307, 10) - 0.05).abs() < 5e-4);
        // Exact dof=2 case: Q = e^{−x/2}.
        assert!((chi_square_pvalue(4.0, 2) - (-2.0f64).exp()).abs() < 1e-12);
        assert_eq!(chi_square_pvalue(0.0, 3), 1.0);
    }

    #[test]
    fn chi_square_stat_known() {
        let obs = [8.0, 12.0];
        let exp = [10.0, 10.0];
        assert!((chi_square_stat(&obs, &exp) - 0.8).abs() < 1e-12);
        assert_eq!(chi_square_stat(&exp, &exp), 0.0);
    }

    #[test]
    fn ks_statistic_and_pvalue() {
        // Perfectly uniform grid points have D = 1/(2n) against U(0,1).
        let n = 100;
        let sorted: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let d = ks_statistic(&sorted, |x| x);
        assert!((d - 0.5 / n as f64).abs() < 1e-12);
        assert!(ks_pvalue(d, n) > 0.999);
        // Known Kolmogorov value: Q(1.36) ≈ 0.049 at large n (the 5%
        // critical point). Use big n so the correction term vanishes.
        let big = 1_000_000;
        let d136 = 1.36 / (big as f64).sqrt();
        let p = ks_pvalue(d136, big);
        assert!((p - 0.049).abs() < 2e-3, "p = {p}");
        // A sample concentrated at 0 is decisively rejected.
        let bad = vec![1e-9; 50];
        assert!(ks_pvalue(ks_statistic(&bad, |x| x), 50) < 1e-10);
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-14);
        assert!((normal_cdf(1.96) - 0.975).abs() < 5e-4);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 5e-4);
        assert!(normal_cdf(8.0) > 1.0 - 1e-14);
        // Symmetry.
        for &x in &[0.3, 1.1, 2.5] {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-13);
        }
    }
}
