//! Norms, error metrics and summary statistics used by validators and the
//! experiment harness.

/// Mean of a slice (0.0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance (0.0 for slices shorter than 2).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Maximum absolute value (0.0 for an empty slice).
pub fn max_abs(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |a, &x| a.max(x.abs()))
}

/// Relative L2 error ‖a − b‖₂ / ‖b‖₂.
///
/// This is the validation metric the paper reports ("validation error"
/// against OpenFOAM fields). A zero reference falls back to the absolute
/// L2 norm of `a`.
///
/// # Panics
/// Panics if slices differ in length.
pub fn relative_l2(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let num: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.iter().map(|y| y * y).sum::<f64>().sqrt();
    if den < 1e-300 {
        num
    } else {
        num / den
    }
}

/// Mean squared error.
///
/// # Panics
/// Panics if slices differ in length or are empty.
pub fn mse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    assert!(!a.is_empty(), "empty input");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64
}

/// The `q`-th quantile (linear interpolation) of the data, `q ∈ [0, 1]`.
///
/// # Panics
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "q out of range");
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pos = q * (s.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        s[lo]
    } else {
        let t = pos - lo as f64;
        s[lo] * (1.0 - t) + s[hi] * t
    }
}

/// Normalises a non-negative score vector to sum to 1; uniform fallback if
/// the total mass is zero. Negative entries are clamped to zero.
pub fn normalize_distribution(scores: &[f64]) -> Vec<f64> {
    let clamped: Vec<f64> = scores
        .iter()
        .map(|&s| if s.is_finite() && s > 0.0 { s } else { 0.0 })
        .collect();
    let total: f64 = clamped.iter().sum();
    if total <= 0.0 {
        let u = 1.0 / scores.len().max(1) as f64;
        return vec![u; scores.len()];
    }
    clamped.into_iter().map(|s| s / total).collect()
}

/// An online exponential moving average.
///
/// # Example
///
/// ```
/// use sgm_linalg::stats::Ema;
/// let mut e = Ema::new(0.5);
/// e.update(2.0);
/// e.update(4.0);
/// assert!((e.value() - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ema {
    alpha: f64,
    value: Option<f64>,
}

impl Ema {
    /// New EMA with smoothing factor `alpha ∈ (0, 1]`.
    ///
    /// # Panics
    /// Panics for alpha outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha out of range");
        Ema { alpha, value: None }
    }

    /// Feeds a new observation.
    pub fn update(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        });
    }

    /// Current smoothed value (0.0 before the first observation).
    pub fn value(&self) -> f64 {
        self.value.unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_var() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert!((std_dev(&xs) - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(max_abs(&[]), 0.0);
    }

    #[test]
    fn relative_l2_basic() {
        let a = [1.0, 0.0];
        let b = [0.0, 0.0];
        assert_eq!(relative_l2(&a, &b), 1.0); // zero reference → absolute
        let c = [2.0, 0.0];
        let d = [1.0, 0.0];
        assert_eq!(relative_l2(&c, &d), 1.0);
        assert_eq!(relative_l2(&d, &d), 0.0);
    }

    #[test]
    fn mse_known() {
        assert_eq!(mse(&[1.0, 3.0], &[0.0, 0.0]), 5.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.5);
    }

    #[test]
    fn normalize_distribution_sums_to_one() {
        let p = normalize_distribution(&[1.0, 3.0, 0.0, -2.0, f64::NAN]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(p[3], 0.0);
        assert_eq!(p[4], 0.0);
        assert!((p[1] / p[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_distribution_zero_mass_uniform() {
        let p = normalize_distribution(&[0.0, 0.0]);
        assert_eq!(p, vec![0.5, 0.5]);
    }

    #[test]
    fn ema_tracks() {
        let mut e = Ema::new(1.0);
        e.update(5.0);
        e.update(7.0);
        assert_eq!(e.value(), 7.0);
    }
}
