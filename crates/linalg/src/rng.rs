//! Deterministic, dependency-free random number generation.
//!
//! All stochastic components of the reproduction (point-cloud generation,
//! mini-batch selection, network initialisation, random projections for
//! effective-resistance estimation) draw from [`Rng64`], a xoshiro256**
//! generator seeded through SplitMix64. Runs are bit-reproducible for a
//! given seed, which the test suite and the experiment harness rely on.

/// A seedable xoshiro256** pseudo-random generator.
///
/// # Example
///
/// ```
/// use sgm_linalg::rng::Rng64;
/// let mut a = Rng64::new(42);
/// let mut b = Rng64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rng64 {
    state: [u64; 4],
    /// Cached second Gaussian deviate from Box–Muller.
    gauss_spare: Option<f64>,
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        Rng64 {
            state,
            gauss_spare: None,
        }
    }

    /// Raw generator state — the four xoshiro256** words plus the cached
    /// Box–Muller spare — for run-state checkpointing. Restoring with
    /// [`Rng64::from_state`] continues the stream bit-identically.
    pub fn state(&self) -> ([u64; 4], Option<f64>) {
        (self.state, self.gauss_spare)
    }

    /// Rebuilds a generator from [`Rng64::state`] output.
    pub fn from_state(state: [u64; 4], gauss_spare: Option<f64>) -> Self {
        Rng64 { state, gauss_spare }
    }

    /// Derives an independent child generator (for worker threads).
    pub fn fork(&mut self) -> Self {
        Rng64::new(self.next_u64() ^ 0xA5A5_A5A5_5A5A_5A5A)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi && lo.is_finite() && hi.is_finite(), "bad range");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        // Lemire-style rejection-free (bias negligible for n << 2^64).
        (self.next_u64() % n as u64) as usize
    }

    /// Standard Gaussian deviate (Box–Muller, cached pair).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(g) = self.gauss_spare.take() {
            return g;
        }
        loop {
            let u = 2.0 * self.uniform() - 1.0;
            let v = 2.0 * self.uniform() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let f = (-2.0 * s.ln() / s).sqrt();
                self.gauss_spare = Some(v * f);
                return u * f;
            }
        }
    }

    /// Rademacher deviate: ±1 with equal probability.
    pub fn sign(&mut self) -> f64 {
        if self.next_u64() & 1 == 0 {
            1.0
        } else {
            -1.0
        }
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Draws `k` distinct indices from `[0, n)` (floyd's algorithm for
    /// small `k`, shuffle for large `k`).
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} of {n}");
        if k * 3 > n {
            let mut all: Vec<usize> = (0..n).collect();
            self.shuffle(&mut all);
            all.truncate(k);
            return all;
        }
        let mut chosen = std::collections::HashSet::with_capacity(k);
        let mut out = Vec::with_capacity(k);
        for j in n - k..n {
            let t = self.below(j + 1);
            let pick = if chosen.contains(&t) { j } else { t };
            chosen.insert(pick);
            out.push(pick);
        }
        out
    }

    /// Samples an index from an unnormalised non-negative weight vector.
    ///
    /// # Panics
    /// Panics if all weights are zero/negative or the slice is empty.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        assert!(total > 0.0, "weighted_index needs positive mass");
        let mut t = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w.is_finite() && w > 0.0 {
                t -= w;
                if t <= 0.0 {
                    return i;
                }
            }
        }
        // Floating point slack: return last positive entry.
        weights
            .iter()
            .rposition(|w| w.is_finite() && *w > 0.0)
            .expect("positive entry exists")
    }
}

impl Default for Rng64 {
    fn default() -> Self {
        Rng64::new(0x005E_ED0F_5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = Rng64::new(3);
        for _ in 0..10_000 {
            let x = r.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut r = Rng64::new(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Rng64::new(5);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn below_in_range_and_covers() {
        let mut r = Rng64::new(6);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let i = r.below(10);
            assert!(i < 10);
            seen[i] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng64::new(8);
        let mut xs: Vec<usize> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = Rng64::new(9);
        for &(n, k) in &[(100usize, 5usize), (10, 10), (1000, 400)] {
            let s = r.sample_indices(n, k);
            assert_eq!(s.len(), k);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), k);
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = Rng64::new(10);
        let w = [0.0, 1.0, 0.0, 3.0];
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[r.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[2], 0);
        let ratio = counts[3] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    #[should_panic]
    fn weighted_index_rejects_zero_mass() {
        let mut r = Rng64::new(11);
        r.weighted_index(&[0.0, 0.0]);
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = Rng64::new(12);
        let mut f = a.fork();
        assert_ne!(a.next_u64(), f.next_u64());
    }

    #[test]
    fn sign_is_plus_minus_one() {
        let mut r = Rng64::new(13);
        let mut pos = 0;
        for _ in 0..1000 {
            let s = r.sign();
            assert!(s == 1.0 || s == -1.0);
            if s > 0.0 {
                pos += 1;
            }
        }
        assert!(pos > 400 && pos < 600);
    }
}
