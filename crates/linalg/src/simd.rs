//! Runtime-dispatched SIMD kernels for the workspace's hot loops.
//!
//! Every kernel exists in up to three implementations — a portable
//! unrolled scalar fallback, an AVX2+FMA `f64×4` version, and an
//! AVX-512 `f64×8` version built on `core::arch::x86_64` intrinsics —
//! selected at runtime by a *dispatch tier* ([`SimdTier`]). The tier is
//! resolved once from the `SGM_SIMD` environment variable (`auto` /
//! `avx512` / `avx2` / `scalar`, mirroring `SGM_NUM_THREADS`) plus
//! `is_x86_feature_detected!`, and can be forced programmatically with
//! [`with_tier`] for tests and benches.
//!
//! ## Determinism tiers
//!
//! Results are **bit-identical within a tier**: for a fixed tier every
//! kernel is a pure function of its inputs — lane grouping and reduction
//! trees depend only on input lengths, never on thread count or timing.
//! *Across* tiers, results may differ by FMA rounding (the AVX2 and
//! AVX-512 kernels contract `a*b + c` into one rounding where the
//! scalar tier performs two) and, for reductions, by the lane-fold
//! association (4- vs 8-lane partial sums). For reductions of `n` terms
//! the divergence is bounded by `O(n·ε)` relative to the term-magnitude
//! sum — the testkit oracle sweeps
//! (`crates/testkit/tests/simd_oracles.rs`) pin it below `1e-12`.
//!
//! Reduction kernels ([`dot`], [`dist2`]) accumulate in index-strided
//! partial sums (one per vector lane) folded pairwise with a sequential
//! scalar tail. Elementwise kernels ([`axpy`], [`scale`],
//! [`add_assign`], [`hadamard`], [`adam_update`], the activation
//! combines) are **position-independent within a tier**: the FMA tiers'
//! remainder tails replay the exact per-element lane computation with
//! scalar FMAs (`f64::mul_add`), so an element's result never depends
//! on where it sits relative to a vector-width boundary. Chunked
//! parallel callers and the batched multi-model kernels
//! ([`bgemm_accum`], [`adam_update_multi`]) rely on this to get
//! bit-identical results for every thread count and batch regrouping
//! automatically.

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// A SIMD dispatch tier. See the module docs for the determinism
/// contract between tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdTier {
    /// Portable unrolled-scalar kernels (the fallback and oracle tier).
    Scalar,
    /// AVX2 + FMA `f64×4` kernels (x86-64 only).
    Avx2,
    /// AVX-512F `f64×8` kernels (x86-64 only).
    Avx512,
}

impl SimdTier {
    /// Stable numeric id for telemetry gauges and the forced-tier
    /// atomic: Scalar = 1, Avx2 = 2, Avx512 = 3.
    pub fn code(self) -> u8 {
        match self {
            SimdTier::Scalar => 1,
            SimdTier::Avx2 => 2,
            SimdTier::Avx512 => 3,
        }
    }

    /// Lower-case tier name as accepted by `SGM_SIMD` (`scalar`,
    /// `avx2`, `avx512`) — used verbatim in run telemetry.
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Avx2 => "avx2",
            SimdTier::Avx512 => "avx512",
        }
    }
}

/// True when the host supports the AVX2 tier (AVX2 *and* FMA).
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static AVAIL: OnceLock<bool> = OnceLock::new();
        *AVAIL.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// True when the host supports the AVX-512 tier. AVX-512F is the gate
/// for the `f64×8` kernels; AVX2+FMA is required too because the wide
/// kernels' remainder tails reuse the AVX2 scalar-FMA helpers (every
/// AVX-512F part ships both).
pub fn avx512_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static AVAIL: OnceLock<bool> = OnceLock::new();
        *AVAIL.get_or_init(|| std::arch::is_x86_feature_detected!("avx512f") && avx2_available())
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The tier resolved from the environment (read once, at first use):
/// `SGM_SIMD=scalar` forces the fallback, `SGM_SIMD=avx2` demands the
/// AVX2 tier (panicking if the host lacks it), `SGM_SIMD=avx512`
/// *requests* the AVX-512 tier but silently degrades to AVX2 then
/// scalar when the host lacks it (so one config can roll across a
/// heterogeneous fleet), `auto`/unset/invalid picks the widest
/// available tier.
pub fn detected_tier() -> SimdTier {
    static DETECTED: OnceLock<SimdTier> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        /// Resolved dispatch tier as a gauge (Scalar = 1, Avx2 = 2,
        /// Avx512 = 3, matching `SimdTier::code`), so run telemetry
        /// records which kernels a run actually executed.
        static SIMD_TIER: sgm_obs::Gauge = sgm_obs::Gauge::new("sgm_simd_tier");
        let widest = || {
            if avx512_available() {
                SimdTier::Avx512
            } else if avx2_available() {
                SimdTier::Avx2
            } else {
                SimdTier::Scalar
            }
        };
        let tier = match std::env::var("SGM_SIMD").as_deref().map(str::trim) {
            Ok("scalar") => SimdTier::Scalar,
            Ok("avx2") => {
                assert!(
                    avx2_available(),
                    "SGM_SIMD=avx2 requested but the host lacks AVX2+FMA"
                );
                SimdTier::Avx2
            }
            // avx512 is a *request*, not a demand: hosts without it run
            // the widest tier they do have instead of aborting.
            Ok("avx512") => widest(),
            // `auto`, unset and unrecognised values all auto-detect,
            // mirroring SGM_NUM_THREADS's lenient parsing.
            _ => widest(),
        };
        SIMD_TIER.set(tier.code() as f64);
        tier
    })
}

/// Forced-tier override: 0 = none (use [`detected_tier`]).
static FORCED: AtomicU8 = AtomicU8::new(0);
/// Serialises [`with_tier`] regions — the override is process-global (it
/// must reach pool workers), so concurrent forcings would race.
static FORCE_LOCK: Mutex<()> = Mutex::new(());

/// The dispatch tier in effect for kernel calls right now.
#[inline]
pub fn current_tier() -> SimdTier {
    match FORCED.load(Ordering::Relaxed) {
        1 => SimdTier::Scalar,
        2 => SimdTier::Avx2,
        3 => SimdTier::Avx512,
        _ => detected_tier(),
    }
}

/// Every tier the host can execute (scalar always; AVX2/AVX-512 when
/// available). Tests iterate this to cover every dispatch path the host
/// can actually run.
pub fn available_tiers() -> &'static [SimdTier] {
    if avx512_available() {
        &[SimdTier::Scalar, SimdTier::Avx2, SimdTier::Avx512]
    } else if avx2_available() {
        &[SimdTier::Scalar, SimdTier::Avx2]
    } else {
        &[SimdTier::Scalar]
    }
}

/// Runs `f` with the dispatch tier forced to `tier`, restoring the
/// previous setting afterwards (including on panic).
///
/// The override is **process-global** — unlike `sgm_par`'s thread-local
/// parallelism override it must be visible to pool worker threads, which
/// execute kernels on the forcing thread's behalf. Concurrent `with_tier`
/// regions therefore serialise on an internal lock; bit-exactness tests
/// that must not observe a tier flip mid-flight should pin their tier
/// with this function.
///
/// # Panics
/// Panics if `tier` is [`SimdTier::Avx2`] on a host without AVX2+FMA,
/// or [`SimdTier::Avx512`] on a host without AVX-512F.
pub fn with_tier<R>(tier: SimdTier, f: impl FnOnce() -> R) -> R {
    assert!(
        tier != SimdTier::Avx2 || avx2_available(),
        "cannot force the AVX2 tier: host lacks AVX2+FMA"
    );
    assert!(
        tier != SimdTier::Avx512 || avx512_available(),
        "cannot force the AVX-512 tier: host lacks AVX-512F"
    );
    let _guard = FORCE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCED.store(self.0, Ordering::Relaxed);
        }
    }
    let _restore = Restore(FORCED.swap(tier.code(), Ordering::Relaxed));
    f()
}

// Per-kernel dispatch is an explicit `match current_tier()` on x86-64;
// on other architectures only the scalar tier exists (the availability
// probes return false and `with_tier` rejects the vector tiers), so the
// scalar body is the whole kernel.

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

/// Dot product with four index-strided partial sums.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    #[cfg(target_arch = "x86_64")]
    // SAFETY: vector tiers are only selected when the corresponding
    // CPU features are available (checked in detected_tier / with_tier).
    match current_tier() {
        SimdTier::Avx512 => return unsafe { dot_avx512(a, b) },
        SimdTier::Avx2 => return unsafe { dot_avx2(a, b) },
        SimdTier::Scalar => {}
    }
    dot_scalar(a, b)
}

fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len();
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    let mut i = 0;
    while i + 4 <= n {
        s0 += a[i] * b[i];
        s1 += a[i + 1] * b[i + 1];
        s2 += a[i + 2] * b[i + 2];
        s3 += a[i + 3] * b[i + 3];
        i += 4;
    }
    let mut s = (s0 + s2) + (s1 + s3);
    while i < n {
        s += a[i] * b[i];
        i += 1;
    }
    s
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_avx2(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len();
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut acc = _mm256_setzero_pd();
    let mut i = 0;
    while i + 4 <= n {
        let av = _mm256_loadu_pd(pa.add(i));
        let bv = _mm256_loadu_pd(pb.add(i));
        acc = _mm256_fmadd_pd(av, bv, acc);
        i += 4;
    }
    let mut s = hsum(acc);
    while i < n {
        s += a[i] * b[i];
        i += 1;
    }
    s
}

/// Folds a 4-lane accumulator as `(l0 + l2) + (l1 + l3)` — the same
/// association the scalar twin uses.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn hsum(v: __m256d) -> f64 {
    let lo = _mm256_castpd256_pd128(v); // [l0, l1]
    let hi = _mm256_extractf128_pd(v, 1); // [l2, l3]
    let s = _mm_add_pd(lo, hi); // [l0+l2, l1+l3]
    _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)))
}

/// Fused squared Euclidean distance `Σ (a_i - b_i)²`.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dist2 length mismatch");
    #[cfg(target_arch = "x86_64")]
    // SAFETY: each vector tier implies its CPU features are available.
    match current_tier() {
        SimdTier::Avx512 => return unsafe { dist2_avx512(a, b) },
        SimdTier::Avx2 => return unsafe { dist2_avx2(a, b) },
        SimdTier::Scalar => {}
    }
    dist2_scalar(a, b)
}

fn dist2_scalar(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len();
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    let mut i = 0;
    while i + 4 <= n {
        let d0 = a[i] - b[i];
        let d1 = a[i + 1] - b[i + 1];
        let d2 = a[i + 2] - b[i + 2];
        let d3 = a[i + 3] - b[i + 3];
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
        i += 4;
    }
    let mut s = (s0 + s2) + (s1 + s3);
    while i < n {
        let d = a[i] - b[i];
        s += d * d;
        i += 1;
    }
    s
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dist2_avx2(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len();
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut acc = _mm256_setzero_pd();
    let mut i = 0;
    while i + 4 <= n {
        let d = _mm256_sub_pd(_mm256_loadu_pd(pa.add(i)), _mm256_loadu_pd(pb.add(i)));
        acc = _mm256_fmadd_pd(d, d, acc);
        i += 4;
    }
    let mut s = hsum(acc);
    while i < n {
        let d = a[i] - b[i];
        s += d * d;
        i += 1;
    }
    s
}

/// Squared distances from query `q` to every point of a flat row-major
/// `out.len() × dim` cloud: `out[j] = ‖points[j·dim..][..dim] - q‖²`.
/// The AVX2 tier evaluates four *points* per step (lanes hold points,
/// not coordinates), which is what makes low-dimensional kNN scans
/// vectorisable; each point's coordinate sum stays in ascending order.
///
/// **Position independence:** within a tier, each point's result is a
/// pure function of `(point, q)` — independent of where the point sits
/// in the batch. The AVX2 tail therefore uses a scalar-*FMA* loop with
/// the same per-coordinate `fma(d, d, acc)` sequence as the lanes, so
/// batch regrouping (as the incremental kNN engine's gathered candidate
/// lists do) can never change a stored distance bit.
///
/// # Panics
/// Panics if `q.len() != dim` or `points.len() != out.len() * dim`.
pub fn dist2_batch(points: &[f64], dim: usize, q: &[f64], out: &mut [f64]) {
    assert!(dim > 0, "dist2_batch dim must be positive");
    assert_eq!(q.len(), dim, "dist2_batch query dim");
    assert_eq!(points.len(), out.len() * dim, "dist2_batch cloud shape");
    #[cfg(target_arch = "x86_64")]
    // SAFETY: each vector tier implies its CPU features are available.
    match current_tier() {
        SimdTier::Avx512 => return unsafe { dist2_batch_avx512(points, dim, q, out) },
        SimdTier::Avx2 => return unsafe { dist2_batch_avx2(points, dim, q, out) },
        SimdTier::Scalar => {}
    }
    for (j, o) in out.iter_mut().enumerate() {
        *o = dist2_point_scalar(&points[j * dim..(j + 1) * dim], q);
    }
}

/// Sequential per-point squared distance (the scalar tier's per-point
/// function).
fn dist2_point_scalar(p: &[f64], q: &[f64]) -> f64 {
    let mut s = 0.0;
    for (pv, qv) in p.iter().zip(q) {
        let d = pv - qv;
        s += d * d;
    }
    s
}

/// Scalar-FMA per-point squared distance: the AVX2 batch tail. Performs
/// exactly the lane computation (`acc = fma(d, d, acc)` per ascending
/// coordinate), so AVX2 batch results are independent of batch position.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dist2_point_fma(p: &[f64], q: &[f64]) -> f64 {
    let mut acc = _mm_setzero_pd();
    for (pv, qv) in p.iter().zip(q) {
        let d = _mm_set_sd(pv - qv);
        acc = _mm_fmadd_sd(d, d, acc);
    }
    _mm_cvtsd_f64(acc)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dist2_batch_avx2(points: &[f64], dim: usize, q: &[f64], out: &mut [f64]) {
    let n = out.len();
    let p = points.as_ptr();
    let mut j = 0;
    while j + 4 <= n {
        let base = j * dim;
        let mut acc = _mm256_setzero_pd();
        for (k, &qk) in q.iter().enumerate() {
            let pk = _mm256_set_pd(
                *p.add(base + 3 * dim + k),
                *p.add(base + 2 * dim + k),
                *p.add(base + dim + k),
                *p.add(base + k),
            );
            let d = _mm256_sub_pd(pk, _mm256_set1_pd(qk));
            acc = _mm256_fmadd_pd(d, d, acc);
        }
        _mm256_storeu_pd(out.as_mut_ptr().add(j), acc);
        j += 4;
    }
    while j < n {
        out[j] = dist2_point_fma(&points[j * dim..(j + 1) * dim], q);
        j += 1;
    }
}

/// Squared Euclidean distance over **f32-stored** coordinates with
/// **f64 accumulation**: each coordinate difference is computed in f32
/// (matching what the compact storage actually holds), widened to f64,
/// and squared/summed in f64 so the reduction loses no further
/// precision. One portable implementation serves both dispatch tiers —
/// results are bit-identical across `SGM_SIMD` settings by
/// construction, which is what lets the f32 storage mode participate in
/// the cross-tier determinism matrix without a per-tier twin.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn dist2_f32(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "dist2_f32 length mismatch");
    let n = a.len();
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut i = 0;
    while i + 4 <= n {
        let d0 = (a[i] - b[i]) as f64;
        let d1 = (a[i + 1] - b[i + 1]) as f64;
        let d2 = (a[i + 2] - b[i + 2]) as f64;
        let d3 = (a[i + 3] - b[i + 3]) as f64;
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
        i += 4;
    }
    let mut s = (s0 + s2) + (s1 + s3);
    while i < n {
        let d = (a[i] - b[i]) as f64;
        s += d * d;
        i += 1;
    }
    s
}

/// f32-storage twin of [`dist2_batch`]: squared f64 distances from an
/// f32 query to every point of a flat row-major f32 cloud. Same
/// portable single-implementation contract as [`dist2_f32`].
///
/// # Panics
/// Panics if `q.len() != dim` or `points.len() != out.len() * dim`.
pub fn dist2_batch_f32(points: &[f32], dim: usize, q: &[f32], out: &mut [f64]) {
    assert!(dim > 0, "dist2_batch_f32 dim must be positive");
    assert_eq!(q.len(), dim, "dist2_batch_f32 query dim");
    assert_eq!(points.len(), out.len() * dim, "dist2_batch_f32 cloud shape");
    for (j, o) in out.iter_mut().enumerate() {
        let p = &points[j * dim..(j + 1) * dim];
        let mut s = 0.0f64;
        for (pv, qv) in p.iter().zip(q) {
            let d = (pv - qv) as f64;
            s += d * d;
        }
        *o = s;
    }
}

/// CSR sparse matrix–vector product `y = A x` over raw CSR arrays (rows
/// are `row_ptr.len() - 1`; see `sgm_linalg::sparse::Csr`). The AVX2
/// tier gathers four `x` entries per step with `vgatherdpd`; each row's
/// sum uses the strided-lane accumulation of [`dot`].
///
/// # Panics
/// Panics if `y.len() + 1 != row_ptr.len()` or an index is out of range
/// (debug builds).
pub fn spmv(row_ptr: &[usize], col_idx: &[u32], values: &[f64], x: &[f64], y: &mut [f64]) {
    assert_eq!(y.len() + 1, row_ptr.len(), "spmv row count");
    debug_assert_eq!(col_idx.len(), values.len());
    #[cfg(target_arch = "x86_64")]
    // The gathers treat indices as i32, so huge column spaces fall back.
    if x.len() <= i32::MAX as usize {
        // SAFETY: each vector tier implies its CPU features are
        // available; indices fit i32.
        match current_tier() {
            SimdTier::Avx512 => return unsafe { spmv_avx512(row_ptr, col_idx, values, x, y) },
            SimdTier::Avx2 => return unsafe { spmv_avx2(row_ptr, col_idx, values, x, y) },
            SimdTier::Scalar => {}
        }
    }
    for (r, yr) in y.iter_mut().enumerate() {
        let mut s = 0.0;
        for p in row_ptr[r]..row_ptr[r + 1] {
            s += values[p] * x[col_idx[p] as usize];
        }
        *yr = s;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn spmv_avx2(row_ptr: &[usize], col_idx: &[u32], values: &[f64], x: &[f64], y: &mut [f64]) {
    let px = x.as_ptr();
    let pc = col_idx.as_ptr();
    let pv = values.as_ptr();
    for (r, yr) in y.iter_mut().enumerate() {
        let (lo, hi) = (row_ptr[r], row_ptr[r + 1]);
        let mut acc = _mm256_setzero_pd();
        let mut p = lo;
        while p + 4 <= hi {
            let idx = _mm_loadu_si128(pc.add(p) as *const __m128i);
            let xv = _mm256_i32gather_pd::<8>(px, idx);
            acc = _mm256_fmadd_pd(_mm256_loadu_pd(pv.add(p)), xv, acc);
            p += 4;
        }
        let mut s = hsum(acc);
        while p < hi {
            s += values[p] * x[col_idx[p] as usize];
            p += 1;
        }
        *yr = s;
    }
}

// ---------------------------------------------------------------------------
// Elementwise kernels
// ---------------------------------------------------------------------------

/// `y += alpha * x`.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    #[cfg(target_arch = "x86_64")]
    // SAFETY: each vector tier implies its CPU features are available.
    match current_tier() {
        SimdTier::Avx512 => return unsafe { axpy_avx512(alpha, x, y) },
        SimdTier::Avx2 => return unsafe { axpy_avx2(alpha, x, y) },
        SimdTier::Scalar => {}
    }
    for (yv, xv) in y.iter_mut().zip(x) {
        *yv += alpha * xv;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn axpy_avx2(alpha: f64, x: &[f64], y: &mut [f64]) {
    let n = x.len();
    let av = _mm256_set1_pd(alpha);
    let px = x.as_ptr();
    let py = y.as_mut_ptr();
    let mut i = 0;
    while i + 4 <= n {
        let yv = _mm256_fmadd_pd(av, _mm256_loadu_pd(px.add(i)), _mm256_loadu_pd(py.add(i)));
        _mm256_storeu_pd(py.add(i), yv);
        i += 4;
    }
    // Scalar-FMA tail: same single-rounding `fma(alpha, x, y)` as the
    // lanes, so results are independent of position within the slice.
    while i < n {
        y[i] = alpha.mul_add(x[i], y[i]);
        i += 1;
    }
}

/// In-place scaling `x *= s` (bit-identical across tiers: vector
/// multiplies round exactly like scalar ones).
#[inline]
pub fn scale(x: &mut [f64], s: f64) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: each vector tier implies its CPU features are available.
    match current_tier() {
        SimdTier::Avx512 => return unsafe { scale_avx512(x, s) },
        SimdTier::Avx2 => return unsafe { scale_avx2(x, s) },
        SimdTier::Scalar => {}
    }
    for v in x {
        *v *= s;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn scale_avx2(x: &mut [f64], s: f64) {
    let n = x.len();
    let sv = _mm256_set1_pd(s);
    let px = x.as_mut_ptr();
    let mut i = 0;
    while i + 4 <= n {
        _mm256_storeu_pd(px.add(i), _mm256_mul_pd(_mm256_loadu_pd(px.add(i)), sv));
        i += 4;
    }
    while i < n {
        x[i] *= s;
        i += 1;
    }
}

/// `y += x` (bit-identical across tiers).
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn add_assign(y: &mut [f64], x: &[f64]) {
    assert_eq!(x.len(), y.len(), "add_assign length mismatch");
    #[cfg(target_arch = "x86_64")]
    // SAFETY: each vector tier implies its CPU features are available.
    match current_tier() {
        SimdTier::Avx512 => return unsafe { add_assign_avx512(y, x) },
        SimdTier::Avx2 => return unsafe { add_assign_avx2(y, x) },
        SimdTier::Scalar => {}
    }
    for (yv, xv) in y.iter_mut().zip(x) {
        *yv += xv;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn add_assign_avx2(y: &mut [f64], x: &[f64]) {
    let n = x.len();
    let px = x.as_ptr();
    let py = y.as_mut_ptr();
    let mut i = 0;
    while i + 4 <= n {
        _mm256_storeu_pd(
            py.add(i),
            _mm256_add_pd(_mm256_loadu_pd(py.add(i)), _mm256_loadu_pd(px.add(i))),
        );
        i += 4;
    }
    while i < n {
        y[i] += x[i];
        i += 1;
    }
}

/// Row-major transpose: `dst[c * rows + r] = src[r * cols + c]`.
/// Pure data movement (no rounding), so bit-identical across tiers; the
/// AVX2 tier moves 4×4 blocks via unpack/permute shuffles.
///
/// # Panics
/// Panics if `src` or `dst` is shorter than `rows * cols`.
#[inline]
pub fn transpose(src: &[f64], rows: usize, cols: usize, dst: &mut [f64]) {
    assert!(src.len() >= rows * cols, "transpose src length");
    assert!(dst.len() >= rows * cols, "transpose dst length");
    #[cfg(target_arch = "x86_64")]
    // Pure data movement, bit-identical everywhere: the AVX-512 tier
    // reuses the 4×4 shuffle kernel (wider blocks buy nothing here).
    // SAFETY: both vector tiers imply AVX2 support.
    match current_tier() {
        SimdTier::Avx512 | SimdTier::Avx2 => {
            return unsafe { transpose_avx2(src, rows, cols, dst) }
        }
        SimdTier::Scalar => {}
    }
    for r in 0..rows {
        for c in 0..cols {
            dst[c * rows + r] = src[r * cols + c];
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn transpose_avx2(src: &[f64], rows: usize, cols: usize, dst: &mut [f64]) {
    let ps = src.as_ptr();
    let pd = dst.as_mut_ptr();
    let mut r = 0;
    while r + 4 <= rows {
        let mut c = 0;
        while c + 4 <= cols {
            let r0 = _mm256_loadu_pd(ps.add(r * cols + c));
            let r1 = _mm256_loadu_pd(ps.add((r + 1) * cols + c));
            let r2 = _mm256_loadu_pd(ps.add((r + 2) * cols + c));
            let r3 = _mm256_loadu_pd(ps.add((r + 3) * cols + c));
            let t0 = _mm256_unpacklo_pd(r0, r1);
            let t1 = _mm256_unpackhi_pd(r0, r1);
            let t2 = _mm256_unpacklo_pd(r2, r3);
            let t3 = _mm256_unpackhi_pd(r2, r3);
            _mm256_storeu_pd(pd.add(c * rows + r), _mm256_permute2f128_pd::<0x20>(t0, t2));
            _mm256_storeu_pd(
                pd.add((c + 1) * rows + r),
                _mm256_permute2f128_pd::<0x20>(t1, t3),
            );
            _mm256_storeu_pd(
                pd.add((c + 2) * rows + r),
                _mm256_permute2f128_pd::<0x31>(t0, t2),
            );
            _mm256_storeu_pd(
                pd.add((c + 3) * rows + r),
                _mm256_permute2f128_pd::<0x31>(t1, t3),
            );
            c += 4;
        }
        while c < cols {
            dst[c * rows + r] = src[r * cols + c];
            dst[c * rows + r + 1] = src[(r + 1) * cols + c];
            dst[c * rows + r + 2] = src[(r + 2) * cols + c];
            dst[c * rows + r + 3] = src[(r + 3) * cols + c];
            c += 1;
        }
        r += 4;
    }
    while r < rows {
        for c in 0..cols {
            dst[c * rows + r] = src[r * cols + c];
        }
        r += 1;
    }
}

/// Elementwise product `out = a ⊙ b` (bit-identical across tiers).
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn hadamard(a: &[f64], b: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), b.len(), "hadamard length mismatch");
    assert_eq!(a.len(), out.len(), "hadamard output length");
    #[cfg(target_arch = "x86_64")]
    // SAFETY: each vector tier implies its CPU features are available.
    match current_tier() {
        SimdTier::Avx512 => return unsafe { hadamard_avx512(a, b, out) },
        SimdTier::Avx2 => return unsafe { hadamard_avx2(a, b, out) },
        SimdTier::Scalar => {}
    }
    for ((o, av), bv) in out.iter_mut().zip(a).zip(b) {
        *o = av * bv;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn hadamard_avx2(a: &[f64], b: &[f64], out: &mut [f64]) {
    let n = a.len();
    let (pa, pb, po) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
    let mut i = 0;
    while i + 4 <= n {
        _mm256_storeu_pd(
            po.add(i),
            _mm256_mul_pd(_mm256_loadu_pd(pa.add(i)), _mm256_loadu_pd(pb.add(i))),
        );
        i += 4;
    }
    while i < n {
        out[i] = a[i] * b[i];
        i += 1;
    }
}

/// One fused Adam update over flat parameter/gradient/moment slices:
///
/// ```text
/// m = β1·m + (1-β1)·g
/// v = β2·v + (1-β2)·g²
/// p -= lr · (m/bc1) / (√(v/bc2) + ε)
/// ```
///
/// # Panics
/// Panics if the slices differ in length.
#[allow(clippy::too_many_arguments)]
pub fn adam_update(
    p: &mut [f64],
    g: &[f64],
    m: &mut [f64],
    v: &mut [f64],
    b1: f64,
    b2: f64,
    bc1: f64,
    bc2: f64,
    lr: f64,
    eps: f64,
) {
    let n = p.len();
    assert!(
        g.len() == n && m.len() == n && v.len() == n,
        "adam_update length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    // SAFETY: each vector tier implies its CPU features are available.
    match current_tier() {
        SimdTier::Avx512 => {
            return unsafe { adam_update_avx512(p, g, m, v, b1, b2, bc1, bc2, lr, eps) }
        }
        SimdTier::Avx2 => {
            return unsafe { adam_update_avx2(p, g, m, v, b1, b2, bc1, bc2, lr, eps) }
        }
        SimdTier::Scalar => {}
    }
    for i in 0..n {
        m[i] = b1 * m[i] + (1.0 - b1) * g[i];
        v[i] = b2 * v[i] + (1.0 - b2) * g[i] * g[i];
        let mh = m[i] / bc1;
        let vh = v[i] / bc2;
        p[i] -= lr * mh / (vh.sqrt() + eps);
    }
}

#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn adam_update_avx2(
    p: &mut [f64],
    g: &[f64],
    m: &mut [f64],
    v: &mut [f64],
    b1: f64,
    b2: f64,
    bc1: f64,
    bc2: f64,
    lr: f64,
    eps: f64,
) {
    let n = p.len();
    let (b1v, b2v) = (_mm256_set1_pd(b1), _mm256_set1_pd(b2));
    let (c1v, c2v) = (_mm256_set1_pd(1.0 - b1), _mm256_set1_pd(1.0 - b2));
    let (bc1v, bc2v) = (_mm256_set1_pd(bc1), _mm256_set1_pd(bc2));
    let (lrv, epsv) = (_mm256_set1_pd(lr), _mm256_set1_pd(eps));
    let (pp, pg, pm, pv) = (p.as_mut_ptr(), g.as_ptr(), m.as_mut_ptr(), v.as_mut_ptr());
    let mut i = 0;
    while i + 4 <= n {
        let gv = _mm256_loadu_pd(pg.add(i));
        let mv = _mm256_fmadd_pd(b1v, _mm256_loadu_pd(pm.add(i)), _mm256_mul_pd(c1v, gv));
        let vv = _mm256_fmadd_pd(
            b2v,
            _mm256_loadu_pd(pv.add(i)),
            _mm256_mul_pd(_mm256_mul_pd(c2v, gv), gv),
        );
        _mm256_storeu_pd(pm.add(i), mv);
        _mm256_storeu_pd(pv.add(i), vv);
        let mh = _mm256_div_pd(mv, bc1v);
        let vh = _mm256_div_pd(vv, bc2v);
        let denom = _mm256_add_pd(_mm256_sqrt_pd(vh), epsv);
        let step = _mm256_div_pd(_mm256_mul_pd(lrv, mh), denom);
        _mm256_storeu_pd(pp.add(i), _mm256_sub_pd(_mm256_loadu_pd(pp.add(i)), step));
        i += 4;
    }
    // Scalar-FMA tail replaying the exact lane computation, so an
    // element's update is independent of its position in the slice.
    while i < n {
        m[i] = b1.mul_add(m[i], (1.0 - b1) * g[i]);
        v[i] = b2.mul_add(v[i], ((1.0 - b2) * g[i]) * g[i]);
        let mh = m[i] / bc1;
        let vh = v[i] / bc2;
        p[i] -= lr * mh / (vh.sqrt() + eps);
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// Batched activation-derivative combines (the MLP's elementwise hot loops;
// the transcendental σ evaluations themselves stay scalar in both tiers so
// libm values agree bit-for-bit across tiers).
// ---------------------------------------------------------------------------

/// Forward derivative carry through an activation, elementwise over a
/// batch: `j_out = σ'·zj`, `h_out = σ''·zj² + σ'·zh`.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn act_fwd_jh(
    s1: &[f64],
    s2: &[f64],
    zj: &[f64],
    zh: &[f64],
    j_out: &mut [f64],
    h_out: &mut [f64],
) {
    let n = s1.len();
    assert!(
        s2.len() == n && zj.len() == n && zh.len() == n && j_out.len() == n && h_out.len() == n,
        "act_fwd_jh length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    // SAFETY: each vector tier implies its CPU features are available.
    match current_tier() {
        SimdTier::Avx512 => return unsafe { act_fwd_jh_avx512(s1, s2, zj, zh, j_out, h_out) },
        SimdTier::Avx2 => return unsafe { act_fwd_jh_avx2(s1, s2, zj, zh, j_out, h_out) },
        SimdTier::Scalar => {}
    }
    for i in 0..n {
        j_out[i] = s1[i] * zj[i];
        h_out[i] = s2[i] * zj[i] * zj[i] + s1[i] * zh[i];
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn act_fwd_jh_avx2(
    s1: &[f64],
    s2: &[f64],
    zj: &[f64],
    zh: &[f64],
    j_out: &mut [f64],
    h_out: &mut [f64],
) {
    let n = s1.len();
    let (p1, p2, pj, ph) = (s1.as_ptr(), s2.as_ptr(), zj.as_ptr(), zh.as_ptr());
    let (pjo, pho) = (j_out.as_mut_ptr(), h_out.as_mut_ptr());
    let mut i = 0;
    while i + 4 <= n {
        let s1v = _mm256_loadu_pd(p1.add(i));
        let s2v = _mm256_loadu_pd(p2.add(i));
        let zjv = _mm256_loadu_pd(pj.add(i));
        let zhv = _mm256_loadu_pd(ph.add(i));
        _mm256_storeu_pd(pjo.add(i), _mm256_mul_pd(s1v, zjv));
        let h = _mm256_fmadd_pd(_mm256_mul_pd(s2v, zjv), zjv, _mm256_mul_pd(s1v, zhv));
        _mm256_storeu_pd(pho.add(i), h);
        i += 4;
    }
    // Scalar-FMA tail replaying the lane computation exactly.
    while i < n {
        j_out[i] = s1[i] * zj[i];
        h_out[i] = (s2[i] * zj[i]).mul_add(zj[i], s1[i] * zh[i]);
        i += 1;
    }
}

/// Backward adjoint combine through an activation for one derivative
/// dimension, elementwise over a batch:
///
/// ```text
/// gz  += gj·σ''·zj + gh·(σ'''·zj² + σ''·zh)
/// gzj  = gj·σ' + gh·2·σ''·zj
/// gzh  = gh·σ'
/// ```
///
/// # Panics
/// Panics if the slices differ in length.
#[allow(clippy::too_many_arguments)]
pub fn act_bwd_accum(
    s1: &[f64],
    s2: &[f64],
    s3: &[f64],
    zj: &[f64],
    zh: &[f64],
    gj: &[f64],
    gh: &[f64],
    gz: &mut [f64],
    gzj: &mut [f64],
    gzh: &mut [f64],
) {
    let n = s1.len();
    assert!(
        s2.len() == n
            && s3.len() == n
            && zj.len() == n
            && zh.len() == n
            && gj.len() == n
            && gh.len() == n
            && gz.len() == n
            && gzj.len() == n
            && gzh.len() == n,
        "act_bwd_accum length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    // SAFETY: each vector tier implies its CPU features are available.
    match current_tier() {
        SimdTier::Avx512 => {
            return unsafe { act_bwd_accum_avx512(s1, s2, s3, zj, zh, gj, gh, gz, gzj, gzh) }
        }
        SimdTier::Avx2 => {
            return unsafe { act_bwd_accum_avx2(s1, s2, s3, zj, zh, gj, gh, gz, gzj, gzh) }
        }
        SimdTier::Scalar => {}
    }
    for i in 0..n {
        gz[i] += gj[i] * s2[i] * zj[i] + gh[i] * (s3[i] * zj[i] * zj[i] + s2[i] * zh[i]);
        gzj[i] = gj[i] * s1[i] + gh[i] * 2.0 * s2[i] * zj[i];
        gzh[i] = gh[i] * s1[i];
    }
}

#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn act_bwd_accum_avx2(
    s1: &[f64],
    s2: &[f64],
    s3: &[f64],
    zj: &[f64],
    zh: &[f64],
    gj: &[f64],
    gh: &[f64],
    gz: &mut [f64],
    gzj: &mut [f64],
    gzh: &mut [f64],
) {
    let n = s1.len();
    let two = _mm256_set1_pd(2.0);
    let mut i = 0;
    while i + 4 <= n {
        let s1v = _mm256_loadu_pd(s1.as_ptr().add(i));
        let s2v = _mm256_loadu_pd(s2.as_ptr().add(i));
        let s3v = _mm256_loadu_pd(s3.as_ptr().add(i));
        let zjv = _mm256_loadu_pd(zj.as_ptr().add(i));
        let zhv = _mm256_loadu_pd(zh.as_ptr().add(i));
        let gjv = _mm256_loadu_pd(gj.as_ptr().add(i));
        let ghv = _mm256_loadu_pd(gh.as_ptr().add(i));
        // t1 = gj·σ''·zj ; t2 = σ'''·zj² + σ''·zh
        let t1 = _mm256_mul_pd(_mm256_mul_pd(gjv, s2v), zjv);
        let t2 = _mm256_fmadd_pd(_mm256_mul_pd(s3v, zjv), zjv, _mm256_mul_pd(s2v, zhv));
        let sum = _mm256_fmadd_pd(ghv, t2, t1);
        let gzv = _mm256_add_pd(_mm256_loadu_pd(gz.as_ptr().add(i)), sum);
        _mm256_storeu_pd(gz.as_mut_ptr().add(i), gzv);
        // gzj = gj·σ' + (gh·2·σ'')·zj
        let gzjv = _mm256_fmadd_pd(
            _mm256_mul_pd(_mm256_mul_pd(ghv, two), s2v),
            zjv,
            _mm256_mul_pd(gjv, s1v),
        );
        _mm256_storeu_pd(gzj.as_mut_ptr().add(i), gzjv);
        _mm256_storeu_pd(gzh.as_mut_ptr().add(i), _mm256_mul_pd(ghv, s1v));
        i += 4;
    }
    // Scalar-FMA tail replaying the lane computation exactly.
    while i < n {
        let t1 = (gj[i] * s2[i]) * zj[i];
        let t2 = (s3[i] * zj[i]).mul_add(zj[i], s2[i] * zh[i]);
        gz[i] += gh[i].mul_add(t2, t1);
        gzj[i] = ((gh[i] * 2.0) * s2[i]).mul_add(zj[i], gj[i] * s1[i]);
        gzh[i] = gh[i] * s1[i];
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// Blocked GEMM band (AVX2 inner kernel; the scalar twin lives in `dense`)
// ---------------------------------------------------------------------------

/// AVX2 body of `dense::gemm_band` over one horizontal band of `c`:
/// identical k-panel structure to the scalar kernel, with the innermost
/// j loop vectorised 4-wide and the 4 k-step updates applied as FMAs in
/// ascending k order (so per-element accumulation order is unchanged and
/// band splits stay bit-invariant). Rows are processed in pairs sharing
/// one set of B-row vector loads — each C element still sees exactly the
/// same FMA sequence as the single-row kernel, so pairing changes
/// nothing numerically, it only halves B load traffic.
///
/// # Safety
/// Caller must ensure AVX2+FMA are available, `a` is `(row0 + rows) ×
/// kdim` row-major (at least), `b` is `kdim × n`, and `cband.len()` is a
/// multiple of `n`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn gemm_band_avx2(
    alpha: f64,
    a: &[f64],
    kdim: usize,
    b: &[f64],
    n: usize,
    kc: usize,
    row0: usize,
    cband: &mut [f64],
) {
    let rows = cband.len() / n;
    let pb = b.as_ptr();
    let mut k0 = 0;
    while k0 < kdim {
        let kend = (k0 + kc).min(kdim);
        let mut ri = 0;
        while ri + 2 <= rows {
            let arow0 = &a[(row0 + ri) * kdim..(row0 + ri + 1) * kdim];
            let arow1 = &a[(row0 + ri + 1) * kdim..(row0 + ri + 2) * kdim];
            let (crow0, crow1) = cband[ri * n..(ri + 2) * n].split_at_mut(n);
            gemm_rowpair_avx2(alpha, arow0, arow1, pb, n, k0, kend, crow0, crow1);
            ri += 2;
        }
        while ri < rows {
            let arow = &a[(row0 + ri) * kdim..(row0 + ri + 1) * kdim];
            let crow = &mut cband[ri * n..(ri + 1) * n];
            gemm_row_avx2(alpha, arow, pb, n, k0, kend, crow);
            ri += 1;
        }
        k0 = kend;
    }
}

/// Two-row micro-kernel of [`gemm_band_avx2`]: one k-panel of two C rows,
/// every B vector loaded once and fed to both rows' accumulator chains.
/// Per-element FMA order (ascending k within the quad) matches
/// [`gemm_row_avx2`] exactly.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_rowpair_avx2(
    alpha: f64,
    arow0: &[f64],
    arow1: &[f64],
    pb: *const f64,
    n: usize,
    k0: usize,
    kend: usize,
    crow0: &mut [f64],
    crow1: &mut [f64],
) {
    let pc0 = crow0.as_mut_ptr();
    let pc1 = crow1.as_mut_ptr();
    let mut k = k0;
    while k + 4 <= kend {
        let f00 = alpha * arow0[k];
        let f01 = alpha * arow0[k + 1];
        let f02 = alpha * arow0[k + 2];
        let f03 = alpha * arow0[k + 3];
        let f10 = alpha * arow1[k];
        let f11 = alpha * arow1[k + 1];
        let f12 = alpha * arow1[k + 2];
        let f13 = alpha * arow1[k + 3];
        let u0 = _mm256_set1_pd(f00);
        let u1 = _mm256_set1_pd(f01);
        let u2 = _mm256_set1_pd(f02);
        let u3 = _mm256_set1_pd(f03);
        let w0 = _mm256_set1_pd(f10);
        let w1 = _mm256_set1_pd(f11);
        let w2 = _mm256_set1_pd(f12);
        let w3 = _mm256_set1_pd(f13);
        let b0 = pb.add(k * n);
        let b1 = pb.add((k + 1) * n);
        let b2 = pb.add((k + 2) * n);
        let b3 = pb.add((k + 3) * n);
        let mut j = 0;
        // 2 rows × 16 columns per step: 32 FMAs against 16 shared B loads
        // plus 8 C loads/stores. Eight independent accumulator chains keep
        // both FMA ports busy despite the 4-deep dependent chain each C
        // vector carries (k, k+1, k+2, k+3 applied in order per element).
        while j + 16 <= n {
            let mut c00 = _mm256_loadu_pd(pc0.add(j));
            let mut c01 = _mm256_loadu_pd(pc0.add(j + 4));
            let mut c02 = _mm256_loadu_pd(pc0.add(j + 8));
            let mut c03 = _mm256_loadu_pd(pc0.add(j + 12));
            let mut c10 = _mm256_loadu_pd(pc1.add(j));
            let mut c11 = _mm256_loadu_pd(pc1.add(j + 4));
            let mut c12 = _mm256_loadu_pd(pc1.add(j + 8));
            let mut c13 = _mm256_loadu_pd(pc1.add(j + 12));
            let bv = _mm256_loadu_pd(b0.add(j));
            c00 = _mm256_fmadd_pd(u0, bv, c00);
            c10 = _mm256_fmadd_pd(w0, bv, c10);
            let bv = _mm256_loadu_pd(b0.add(j + 4));
            c01 = _mm256_fmadd_pd(u0, bv, c01);
            c11 = _mm256_fmadd_pd(w0, bv, c11);
            let bv = _mm256_loadu_pd(b0.add(j + 8));
            c02 = _mm256_fmadd_pd(u0, bv, c02);
            c12 = _mm256_fmadd_pd(w0, bv, c12);
            let bv = _mm256_loadu_pd(b0.add(j + 12));
            c03 = _mm256_fmadd_pd(u0, bv, c03);
            c13 = _mm256_fmadd_pd(w0, bv, c13);
            let bv = _mm256_loadu_pd(b1.add(j));
            c00 = _mm256_fmadd_pd(u1, bv, c00);
            c10 = _mm256_fmadd_pd(w1, bv, c10);
            let bv = _mm256_loadu_pd(b1.add(j + 4));
            c01 = _mm256_fmadd_pd(u1, bv, c01);
            c11 = _mm256_fmadd_pd(w1, bv, c11);
            let bv = _mm256_loadu_pd(b1.add(j + 8));
            c02 = _mm256_fmadd_pd(u1, bv, c02);
            c12 = _mm256_fmadd_pd(w1, bv, c12);
            let bv = _mm256_loadu_pd(b1.add(j + 12));
            c03 = _mm256_fmadd_pd(u1, bv, c03);
            c13 = _mm256_fmadd_pd(w1, bv, c13);
            let bv = _mm256_loadu_pd(b2.add(j));
            c00 = _mm256_fmadd_pd(u2, bv, c00);
            c10 = _mm256_fmadd_pd(w2, bv, c10);
            let bv = _mm256_loadu_pd(b2.add(j + 4));
            c01 = _mm256_fmadd_pd(u2, bv, c01);
            c11 = _mm256_fmadd_pd(w2, bv, c11);
            let bv = _mm256_loadu_pd(b2.add(j + 8));
            c02 = _mm256_fmadd_pd(u2, bv, c02);
            c12 = _mm256_fmadd_pd(w2, bv, c12);
            let bv = _mm256_loadu_pd(b2.add(j + 12));
            c03 = _mm256_fmadd_pd(u2, bv, c03);
            c13 = _mm256_fmadd_pd(w2, bv, c13);
            let bv = _mm256_loadu_pd(b3.add(j));
            c00 = _mm256_fmadd_pd(u3, bv, c00);
            c10 = _mm256_fmadd_pd(w3, bv, c10);
            let bv = _mm256_loadu_pd(b3.add(j + 4));
            c01 = _mm256_fmadd_pd(u3, bv, c01);
            c11 = _mm256_fmadd_pd(w3, bv, c11);
            let bv = _mm256_loadu_pd(b3.add(j + 8));
            c02 = _mm256_fmadd_pd(u3, bv, c02);
            c12 = _mm256_fmadd_pd(w3, bv, c12);
            let bv = _mm256_loadu_pd(b3.add(j + 12));
            c03 = _mm256_fmadd_pd(u3, bv, c03);
            c13 = _mm256_fmadd_pd(w3, bv, c13);
            _mm256_storeu_pd(pc0.add(j), c00);
            _mm256_storeu_pd(pc0.add(j + 4), c01);
            _mm256_storeu_pd(pc0.add(j + 8), c02);
            _mm256_storeu_pd(pc0.add(j + 12), c03);
            _mm256_storeu_pd(pc1.add(j), c10);
            _mm256_storeu_pd(pc1.add(j + 4), c11);
            _mm256_storeu_pd(pc1.add(j + 8), c12);
            _mm256_storeu_pd(pc1.add(j + 12), c13);
            j += 16;
        }
        while j + 8 <= n {
            let mut c00 = _mm256_loadu_pd(pc0.add(j));
            let mut c01 = _mm256_loadu_pd(pc0.add(j + 4));
            let mut c10 = _mm256_loadu_pd(pc1.add(j));
            let mut c11 = _mm256_loadu_pd(pc1.add(j + 4));
            let bv = _mm256_loadu_pd(b0.add(j));
            let bw = _mm256_loadu_pd(b0.add(j + 4));
            c00 = _mm256_fmadd_pd(u0, bv, c00);
            c10 = _mm256_fmadd_pd(w0, bv, c10);
            c01 = _mm256_fmadd_pd(u0, bw, c01);
            c11 = _mm256_fmadd_pd(w0, bw, c11);
            let bv = _mm256_loadu_pd(b1.add(j));
            let bw = _mm256_loadu_pd(b1.add(j + 4));
            c00 = _mm256_fmadd_pd(u1, bv, c00);
            c10 = _mm256_fmadd_pd(w1, bv, c10);
            c01 = _mm256_fmadd_pd(u1, bw, c01);
            c11 = _mm256_fmadd_pd(w1, bw, c11);
            let bv = _mm256_loadu_pd(b2.add(j));
            let bw = _mm256_loadu_pd(b2.add(j + 4));
            c00 = _mm256_fmadd_pd(u2, bv, c00);
            c10 = _mm256_fmadd_pd(w2, bv, c10);
            c01 = _mm256_fmadd_pd(u2, bw, c01);
            c11 = _mm256_fmadd_pd(w2, bw, c11);
            let bv = _mm256_loadu_pd(b3.add(j));
            let bw = _mm256_loadu_pd(b3.add(j + 4));
            c00 = _mm256_fmadd_pd(u3, bv, c00);
            c10 = _mm256_fmadd_pd(w3, bv, c10);
            c01 = _mm256_fmadd_pd(u3, bw, c01);
            c11 = _mm256_fmadd_pd(w3, bw, c11);
            _mm256_storeu_pd(pc0.add(j), c00);
            _mm256_storeu_pd(pc0.add(j + 4), c01);
            _mm256_storeu_pd(pc1.add(j), c10);
            _mm256_storeu_pd(pc1.add(j + 4), c11);
            j += 8;
        }
        while j + 4 <= n {
            let mut c0 = _mm256_loadu_pd(pc0.add(j));
            let mut c1 = _mm256_loadu_pd(pc1.add(j));
            let bv = _mm256_loadu_pd(b0.add(j));
            c0 = _mm256_fmadd_pd(u0, bv, c0);
            c1 = _mm256_fmadd_pd(w0, bv, c1);
            let bv = _mm256_loadu_pd(b1.add(j));
            c0 = _mm256_fmadd_pd(u1, bv, c0);
            c1 = _mm256_fmadd_pd(w1, bv, c1);
            let bv = _mm256_loadu_pd(b2.add(j));
            c0 = _mm256_fmadd_pd(u2, bv, c0);
            c1 = _mm256_fmadd_pd(w2, bv, c1);
            let bv = _mm256_loadu_pd(b3.add(j));
            c0 = _mm256_fmadd_pd(u3, bv, c0);
            c1 = _mm256_fmadd_pd(w3, bv, c1);
            _mm256_storeu_pd(pc0.add(j), c0);
            _mm256_storeu_pd(pc1.add(j), c1);
            j += 4;
        }
        // Scalar-FMA column tail: the same ascending-k fma chain the
        // vector lanes apply, so an element's value is independent of
        // its column position relative to the vector width (batched
        // multi-model layouts regroup columns and rely on this).
        while j < n {
            let b0j = *b0.add(j);
            let b1j = *b1.add(j);
            let b2j = *b2.add(j);
            let b3j = *b3.add(j);
            crow0[j] = f03.mul_add(
                b3j,
                f02.mul_add(b2j, f01.mul_add(b1j, f00.mul_add(b0j, crow0[j]))),
            );
            crow1[j] = f13.mul_add(
                b3j,
                f12.mul_add(b2j, f11.mul_add(b1j, f10.mul_add(b0j, crow1[j]))),
            );
            j += 1;
        }
        k += 4;
    }
    while k < kend {
        let f0 = alpha * arow0[k];
        let f1 = alpha * arow1[k];
        let fv0 = _mm256_set1_pd(f0);
        let fv1 = _mm256_set1_pd(f1);
        let bk = pb.add(k * n);
        let mut j = 0;
        while j + 4 <= n {
            let bv = _mm256_loadu_pd(bk.add(j));
            let c0 = _mm256_fmadd_pd(fv0, bv, _mm256_loadu_pd(pc0.add(j)));
            let c1 = _mm256_fmadd_pd(fv1, bv, _mm256_loadu_pd(pc1.add(j)));
            _mm256_storeu_pd(pc0.add(j), c0);
            _mm256_storeu_pd(pc1.add(j), c1);
            j += 4;
        }
        while j < n {
            let bkj = *bk.add(j);
            crow0[j] = f0.mul_add(bkj, crow0[j]);
            crow1[j] = f1.mul_add(bkj, crow1[j]);
            j += 1;
        }
        k += 1;
    }
}

/// Single-row micro-kernel of [`gemm_band_avx2`] (odd tail row): one
/// k-panel of one C row.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn gemm_row_avx2(
    alpha: f64,
    arow: &[f64],
    pb: *const f64,
    n: usize,
    k0: usize,
    kend: usize,
    crow: &mut [f64],
) {
    let pc = crow.as_mut_ptr();
    let mut k = k0;
    while k + 4 <= kend {
        let f0 = alpha * arow[k];
        let f1 = alpha * arow[k + 1];
        let f2 = alpha * arow[k + 2];
        let f3 = alpha * arow[k + 3];
        let (v0, v1, v2, v3) = (
            _mm256_set1_pd(f0),
            _mm256_set1_pd(f1),
            _mm256_set1_pd(f2),
            _mm256_set1_pd(f3),
        );
        let b0 = pb.add(k * n);
        let b1 = pb.add((k + 1) * n);
        let b2 = pb.add((k + 2) * n);
        let b3 = pb.add((k + 3) * n);
        let mut j = 0;
        // Four independent column chains per step: each chain still
        // applies k, k+1, k+2, k+3 in order (bit-identical per
        // element), but the chains overlap so the serial FMA
        // latency of one chain is hidden behind the other three.
        while j + 16 <= n {
            let mut c0 = _mm256_loadu_pd(pc.add(j));
            let mut c1 = _mm256_loadu_pd(pc.add(j + 4));
            let mut c2 = _mm256_loadu_pd(pc.add(j + 8));
            let mut c3 = _mm256_loadu_pd(pc.add(j + 12));
            c0 = _mm256_fmadd_pd(v0, _mm256_loadu_pd(b0.add(j)), c0);
            c1 = _mm256_fmadd_pd(v0, _mm256_loadu_pd(b0.add(j + 4)), c1);
            c2 = _mm256_fmadd_pd(v0, _mm256_loadu_pd(b0.add(j + 8)), c2);
            c3 = _mm256_fmadd_pd(v0, _mm256_loadu_pd(b0.add(j + 12)), c3);
            c0 = _mm256_fmadd_pd(v1, _mm256_loadu_pd(b1.add(j)), c0);
            c1 = _mm256_fmadd_pd(v1, _mm256_loadu_pd(b1.add(j + 4)), c1);
            c2 = _mm256_fmadd_pd(v1, _mm256_loadu_pd(b1.add(j + 8)), c2);
            c3 = _mm256_fmadd_pd(v1, _mm256_loadu_pd(b1.add(j + 12)), c3);
            c0 = _mm256_fmadd_pd(v2, _mm256_loadu_pd(b2.add(j)), c0);
            c1 = _mm256_fmadd_pd(v2, _mm256_loadu_pd(b2.add(j + 4)), c1);
            c2 = _mm256_fmadd_pd(v2, _mm256_loadu_pd(b2.add(j + 8)), c2);
            c3 = _mm256_fmadd_pd(v2, _mm256_loadu_pd(b2.add(j + 12)), c3);
            c0 = _mm256_fmadd_pd(v3, _mm256_loadu_pd(b3.add(j)), c0);
            c1 = _mm256_fmadd_pd(v3, _mm256_loadu_pd(b3.add(j + 4)), c1);
            c2 = _mm256_fmadd_pd(v3, _mm256_loadu_pd(b3.add(j + 8)), c2);
            c3 = _mm256_fmadd_pd(v3, _mm256_loadu_pd(b3.add(j + 12)), c3);
            _mm256_storeu_pd(pc.add(j), c0);
            _mm256_storeu_pd(pc.add(j + 4), c1);
            _mm256_storeu_pd(pc.add(j + 8), c2);
            _mm256_storeu_pd(pc.add(j + 12), c3);
            j += 16;
        }
        while j + 4 <= n {
            let mut cv = _mm256_loadu_pd(pc.add(j));
            cv = _mm256_fmadd_pd(v0, _mm256_loadu_pd(b0.add(j)), cv);
            cv = _mm256_fmadd_pd(v1, _mm256_loadu_pd(b1.add(j)), cv);
            cv = _mm256_fmadd_pd(v2, _mm256_loadu_pd(b2.add(j)), cv);
            cv = _mm256_fmadd_pd(v3, _mm256_loadu_pd(b3.add(j)), cv);
            _mm256_storeu_pd(pc.add(j), cv);
            j += 4;
        }
        // Scalar-FMA column tail (same ascending-k chain as the lanes).
        while j < n {
            crow[j] = f3.mul_add(
                *b3.add(j),
                f2.mul_add(
                    *b2.add(j),
                    f1.mul_add(*b1.add(j), f0.mul_add(*b0.add(j), crow[j])),
                ),
            );
            j += 1;
        }
        k += 4;
    }
    while k < kend {
        let f = alpha * arow[k];
        let fv = _mm256_set1_pd(f);
        let bk = pb.add(k * n);
        let mut j = 0;
        while j + 4 <= n {
            let cv = _mm256_fmadd_pd(fv, _mm256_loadu_pd(bk.add(j)), _mm256_loadu_pd(pc.add(j)));
            _mm256_storeu_pd(pc.add(j), cv);
            j += 4;
        }
        while j < n {
            crow[j] = f.mul_add(*bk.add(j), crow[j]);
            j += 1;
        }
        k += 1;
    }
}

// ---------------------------------------------------------------------------
// AVX-512 `f64×8` twins
// ---------------------------------------------------------------------------

/// Folds an 8-lane accumulator by halving: the two 256-bit halves are
/// added lane-wise, then folded with [`hsum`]'s `(l0+l2) + (l1+l3)`
/// association. A different fold than the 4-lane tiers — covered by the
/// cross-tier `1e-12` reduction bound, not bit-identity.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx2")]
unsafe fn hsum8(v: __m512d) -> f64 {
    let lo = _mm512_castpd512_pd256(v);
    let hi = _mm512_extractf64x4_pd::<1>(v);
    hsum(_mm256_add_pd(lo, hi))
}

/// Remainder mask for the low `rem` lanes of a `f64×8` vector.
#[cfg(target_arch = "x86_64")]
#[inline]
fn mask8(rem: usize) -> u8 {
    debug_assert!(rem < 8);
    (1u8 << rem) - 1
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
unsafe fn dot_avx512(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len();
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut acc = _mm512_setzero_pd();
    let mut i = 0;
    while i + 8 <= n {
        acc = _mm512_fmadd_pd(_mm512_loadu_pd(pa.add(i)), _mm512_loadu_pd(pb.add(i)), acc);
        i += 8;
    }
    let mut s = hsum8(acc);
    while i < n {
        s += a[i] * b[i];
        i += 1;
    }
    s
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
unsafe fn dist2_avx512(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len();
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut acc = _mm512_setzero_pd();
    let mut i = 0;
    while i + 8 <= n {
        let d = _mm512_sub_pd(_mm512_loadu_pd(pa.add(i)), _mm512_loadu_pd(pb.add(i)));
        acc = _mm512_fmadd_pd(d, d, acc);
        i += 8;
    }
    let mut s = hsum8(acc);
    while i < n {
        let d = a[i] - b[i];
        s += d * d;
        i += 1;
    }
    s
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
unsafe fn dist2_batch_avx512(points: &[f64], dim: usize, q: &[f64], out: &mut [f64]) {
    let n = out.len();
    let p = points.as_ptr();
    let mut j = 0;
    // Eight points per step; each point's coordinate chain is the same
    // ascending-order `fma(d, d, acc)` the scalar-FMA tail performs, so
    // results are independent of batch position.
    while j + 8 <= n {
        let base = j * dim;
        let mut acc = _mm512_setzero_pd();
        for (k, &qk) in q.iter().enumerate() {
            let pk = _mm512_set_pd(
                *p.add(base + 7 * dim + k),
                *p.add(base + 6 * dim + k),
                *p.add(base + 5 * dim + k),
                *p.add(base + 4 * dim + k),
                *p.add(base + 3 * dim + k),
                *p.add(base + 2 * dim + k),
                *p.add(base + dim + k),
                *p.add(base + k),
            );
            let d = _mm512_sub_pd(pk, _mm512_set1_pd(qk));
            acc = _mm512_fmadd_pd(d, d, acc);
        }
        _mm512_storeu_pd(out.as_mut_ptr().add(j), acc);
        j += 8;
    }
    while j < n {
        out[j] = dist2_point_fma(&points[j * dim..(j + 1) * dim], q);
        j += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
unsafe fn spmv_avx512(
    row_ptr: &[usize],
    col_idx: &[u32],
    values: &[f64],
    x: &[f64],
    y: &mut [f64],
) {
    let px = x.as_ptr();
    let pc = col_idx.as_ptr();
    let pv = values.as_ptr();
    for (r, yr) in y.iter_mut().enumerate() {
        let (lo, hi) = (row_ptr[r], row_ptr[r + 1]);
        let mut acc = _mm512_setzero_pd();
        let mut p = lo;
        while p + 8 <= hi {
            let idx = _mm256_loadu_si256(pc.add(p) as *const __m256i);
            let xv = _mm512_i32gather_pd::<8>(idx, px);
            acc = _mm512_fmadd_pd(_mm512_loadu_pd(pv.add(p)), xv, acc);
            p += 8;
        }
        let mut s = hsum8(acc);
        while p < hi {
            s += values[p] * x[col_idx[p] as usize];
            p += 1;
        }
        *yr = s;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
unsafe fn axpy_avx512(alpha: f64, x: &[f64], y: &mut [f64]) {
    let n = x.len();
    let av = _mm512_set1_pd(alpha);
    let px = x.as_ptr();
    let py = y.as_mut_ptr();
    let mut i = 0;
    while i + 8 <= n {
        let yv = _mm512_fmadd_pd(av, _mm512_loadu_pd(px.add(i)), _mm512_loadu_pd(py.add(i)));
        _mm512_storeu_pd(py.add(i), yv);
        i += 8;
    }
    // Masked remainder: per-lane `fma(alpha, x, y)`, identical to the
    // full-width lanes and the AVX2 scalar-FMA tail.
    if i < n {
        let m = mask8(n - i);
        let xv = _mm512_maskz_loadu_pd(m, px.add(i));
        let yv = _mm512_maskz_loadu_pd(m, py.add(i));
        _mm512_mask_storeu_pd(py.add(i), m, _mm512_fmadd_pd(av, xv, yv));
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn scale_avx512(x: &mut [f64], s: f64) {
    let n = x.len();
    let sv = _mm512_set1_pd(s);
    let px = x.as_mut_ptr();
    let mut i = 0;
    while i + 8 <= n {
        _mm512_storeu_pd(px.add(i), _mm512_mul_pd(_mm512_loadu_pd(px.add(i)), sv));
        i += 8;
    }
    if i < n {
        let m = mask8(n - i);
        let v = _mm512_mul_pd(_mm512_maskz_loadu_pd(m, px.add(i)), sv);
        _mm512_mask_storeu_pd(px.add(i), m, v);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn add_assign_avx512(y: &mut [f64], x: &[f64]) {
    let n = x.len();
    let px = x.as_ptr();
    let py = y.as_mut_ptr();
    let mut i = 0;
    while i + 8 <= n {
        _mm512_storeu_pd(
            py.add(i),
            _mm512_add_pd(_mm512_loadu_pd(py.add(i)), _mm512_loadu_pd(px.add(i))),
        );
        i += 8;
    }
    if i < n {
        let m = mask8(n - i);
        let v = _mm512_add_pd(
            _mm512_maskz_loadu_pd(m, py.add(i)),
            _mm512_maskz_loadu_pd(m, px.add(i)),
        );
        _mm512_mask_storeu_pd(py.add(i), m, v);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn hadamard_avx512(a: &[f64], b: &[f64], out: &mut [f64]) {
    let n = a.len();
    let (pa, pb, po) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
    let mut i = 0;
    while i + 8 <= n {
        _mm512_storeu_pd(
            po.add(i),
            _mm512_mul_pd(_mm512_loadu_pd(pa.add(i)), _mm512_loadu_pd(pb.add(i))),
        );
        i += 8;
    }
    if i < n {
        let m = mask8(n - i);
        let v = _mm512_mul_pd(
            _mm512_maskz_loadu_pd(m, pa.add(i)),
            _mm512_maskz_loadu_pd(m, pb.add(i)),
        );
        _mm512_mask_storeu_pd(po.add(i), m, v);
    }
}

#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
unsafe fn adam_update_avx512(
    p: &mut [f64],
    g: &[f64],
    m: &mut [f64],
    v: &mut [f64],
    b1: f64,
    b2: f64,
    bc1: f64,
    bc2: f64,
    lr: f64,
    eps: f64,
) {
    let n = p.len();
    let (b1v, b2v) = (_mm512_set1_pd(b1), _mm512_set1_pd(b2));
    let (c1v, c2v) = (_mm512_set1_pd(1.0 - b1), _mm512_set1_pd(1.0 - b2));
    let (bc1v, bc2v) = (_mm512_set1_pd(bc1), _mm512_set1_pd(bc2));
    let (lrv, epsv) = (_mm512_set1_pd(lr), _mm512_set1_pd(eps));
    let (pp, pg, pm, pv) = (p.as_mut_ptr(), g.as_ptr(), m.as_mut_ptr(), v.as_mut_ptr());
    let mut i = 0;
    while i + 8 <= n {
        let gv = _mm512_loadu_pd(pg.add(i));
        let mv = _mm512_fmadd_pd(b1v, _mm512_loadu_pd(pm.add(i)), _mm512_mul_pd(c1v, gv));
        let vv = _mm512_fmadd_pd(
            b2v,
            _mm512_loadu_pd(pv.add(i)),
            _mm512_mul_pd(_mm512_mul_pd(c2v, gv), gv),
        );
        _mm512_storeu_pd(pm.add(i), mv);
        _mm512_storeu_pd(pv.add(i), vv);
        let mh = _mm512_div_pd(mv, bc1v);
        let vh = _mm512_div_pd(vv, bc2v);
        let denom = _mm512_add_pd(_mm512_sqrt_pd(vh), epsv);
        let step = _mm512_div_pd(_mm512_mul_pd(lrv, mh), denom);
        _mm512_storeu_pd(pp.add(i), _mm512_sub_pd(_mm512_loadu_pd(pp.add(i)), step));
        i += 8;
    }
    // Scalar-FMA tail replaying the exact lane computation.
    while i < n {
        m[i] = b1.mul_add(m[i], (1.0 - b1) * g[i]);
        v[i] = b2.mul_add(v[i], ((1.0 - b2) * g[i]) * g[i]);
        let mh = m[i] / bc1;
        let vh = v[i] / bc2;
        p[i] -= lr * mh / (vh.sqrt() + eps);
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
unsafe fn act_fwd_jh_avx512(
    s1: &[f64],
    s2: &[f64],
    zj: &[f64],
    zh: &[f64],
    j_out: &mut [f64],
    h_out: &mut [f64],
) {
    let n = s1.len();
    let (p1, p2, pj, ph) = (s1.as_ptr(), s2.as_ptr(), zj.as_ptr(), zh.as_ptr());
    let (pjo, pho) = (j_out.as_mut_ptr(), h_out.as_mut_ptr());
    let mut i = 0;
    while i + 8 <= n {
        let s1v = _mm512_loadu_pd(p1.add(i));
        let s2v = _mm512_loadu_pd(p2.add(i));
        let zjv = _mm512_loadu_pd(pj.add(i));
        let zhv = _mm512_loadu_pd(ph.add(i));
        _mm512_storeu_pd(pjo.add(i), _mm512_mul_pd(s1v, zjv));
        let h = _mm512_fmadd_pd(_mm512_mul_pd(s2v, zjv), zjv, _mm512_mul_pd(s1v, zhv));
        _mm512_storeu_pd(pho.add(i), h);
        i += 8;
    }
    while i < n {
        j_out[i] = s1[i] * zj[i];
        h_out[i] = (s2[i] * zj[i]).mul_add(zj[i], s1[i] * zh[i]);
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
unsafe fn act_bwd_accum_avx512(
    s1: &[f64],
    s2: &[f64],
    s3: &[f64],
    zj: &[f64],
    zh: &[f64],
    gj: &[f64],
    gh: &[f64],
    gz: &mut [f64],
    gzj: &mut [f64],
    gzh: &mut [f64],
) {
    let n = s1.len();
    let two = _mm512_set1_pd(2.0);
    let mut i = 0;
    while i + 8 <= n {
        let s1v = _mm512_loadu_pd(s1.as_ptr().add(i));
        let s2v = _mm512_loadu_pd(s2.as_ptr().add(i));
        let s3v = _mm512_loadu_pd(s3.as_ptr().add(i));
        let zjv = _mm512_loadu_pd(zj.as_ptr().add(i));
        let zhv = _mm512_loadu_pd(zh.as_ptr().add(i));
        let gjv = _mm512_loadu_pd(gj.as_ptr().add(i));
        let ghv = _mm512_loadu_pd(gh.as_ptr().add(i));
        let t1 = _mm512_mul_pd(_mm512_mul_pd(gjv, s2v), zjv);
        let t2 = _mm512_fmadd_pd(_mm512_mul_pd(s3v, zjv), zjv, _mm512_mul_pd(s2v, zhv));
        let sum = _mm512_fmadd_pd(ghv, t2, t1);
        let gzv = _mm512_add_pd(_mm512_loadu_pd(gz.as_ptr().add(i)), sum);
        _mm512_storeu_pd(gz.as_mut_ptr().add(i), gzv);
        let gzjv = _mm512_fmadd_pd(
            _mm512_mul_pd(_mm512_mul_pd(ghv, two), s2v),
            zjv,
            _mm512_mul_pd(gjv, s1v),
        );
        _mm512_storeu_pd(gzj.as_mut_ptr().add(i), gzjv);
        _mm512_storeu_pd(gzh.as_mut_ptr().add(i), _mm512_mul_pd(ghv, s1v));
        i += 8;
    }
    while i < n {
        let t1 = (gj[i] * s2[i]) * zj[i];
        let t2 = (s3[i] * zj[i]).mul_add(zj[i], s2[i] * zh[i]);
        gz[i] += gh[i].mul_add(t2, t1);
        gzj[i] = ((gh[i] * 2.0) * s2[i]).mul_add(zj[i], gj[i] * s1[i]);
        gzh[i] = gh[i] * s1[i];
        i += 1;
    }
}

/// AVX-512 body of `dense::gemm_band`: the same k-panel / row-pair
/// structure as [`gemm_band_avx2`] widened to `f64×8`, with masked
/// column tails whose per-lane fma chain is identical to the full
/// vectors — every C element sees the ascending-k FMA sequence
/// regardless of column position, so band splits stay bit-invariant
/// within the tier.
///
/// # Safety
/// Caller must ensure AVX-512F is available and the same shape
/// preconditions as [`gemm_band_avx2`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn gemm_band_avx512(
    alpha: f64,
    a: &[f64],
    kdim: usize,
    b: &[f64],
    n: usize,
    kc: usize,
    row0: usize,
    cband: &mut [f64],
) {
    let rows = cband.len() / n;
    let pb = b.as_ptr();
    let mut k0 = 0;
    while k0 < kdim {
        let kend = (k0 + kc).min(kdim);
        let mut ri = 0;
        while ri + 2 <= rows {
            let arow0 = &a[(row0 + ri) * kdim..(row0 + ri + 1) * kdim];
            let arow1 = &a[(row0 + ri + 1) * kdim..(row0 + ri + 2) * kdim];
            let (crow0, crow1) = cband[ri * n..(ri + 2) * n].split_at_mut(n);
            gemm_rowpair_avx512(alpha, arow0, arow1, pb, n, k0, kend, crow0, crow1);
            ri += 2;
        }
        while ri < rows {
            let arow = &a[(row0 + ri) * kdim..(row0 + ri + 1) * kdim];
            let crow = &mut cband[ri * n..(ri + 1) * n];
            gemm_row_avx512(alpha, arow, pb, n, k0, kend, crow);
            ri += 1;
        }
        k0 = kend;
    }
}

/// Two-row `f64×8` micro-kernel of [`gemm_band_avx512`]: 2 rows × 16
/// columns per step (4 accumulator chains against 2 shared B loads per
/// k), k-quads applied in ascending order per element.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_rowpair_avx512(
    alpha: f64,
    arow0: &[f64],
    arow1: &[f64],
    pb: *const f64,
    n: usize,
    k0: usize,
    kend: usize,
    crow0: &mut [f64],
    crow1: &mut [f64],
) {
    let pc0 = crow0.as_mut_ptr();
    let pc1 = crow1.as_mut_ptr();
    let mut k = k0;
    while k + 4 <= kend {
        let f0 = [
            alpha * arow0[k],
            alpha * arow0[k + 1],
            alpha * arow0[k + 2],
            alpha * arow0[k + 3],
        ];
        let f1 = [
            alpha * arow1[k],
            alpha * arow1[k + 1],
            alpha * arow1[k + 2],
            alpha * arow1[k + 3],
        ];
        let u = [
            _mm512_set1_pd(f0[0]),
            _mm512_set1_pd(f0[1]),
            _mm512_set1_pd(f0[2]),
            _mm512_set1_pd(f0[3]),
        ];
        let w = [
            _mm512_set1_pd(f1[0]),
            _mm512_set1_pd(f1[1]),
            _mm512_set1_pd(f1[2]),
            _mm512_set1_pd(f1[3]),
        ];
        let bp = [
            pb.add(k * n),
            pb.add((k + 1) * n),
            pb.add((k + 2) * n),
            pb.add((k + 3) * n),
        ];
        let mut j = 0;
        // 2 rows × 16 columns per step: 4 independent accumulator
        // chains, each applying k, k+1, k+2, k+3 in order per element.
        while j + 16 <= n {
            let mut c00 = _mm512_loadu_pd(pc0.add(j));
            let mut c01 = _mm512_loadu_pd(pc0.add(j + 8));
            let mut c10 = _mm512_loadu_pd(pc1.add(j));
            let mut c11 = _mm512_loadu_pd(pc1.add(j + 8));
            for q in 0..4 {
                let bv = _mm512_loadu_pd(bp[q].add(j));
                let bw = _mm512_loadu_pd(bp[q].add(j + 8));
                c00 = _mm512_fmadd_pd(u[q], bv, c00);
                c10 = _mm512_fmadd_pd(w[q], bv, c10);
                c01 = _mm512_fmadd_pd(u[q], bw, c01);
                c11 = _mm512_fmadd_pd(w[q], bw, c11);
            }
            _mm512_storeu_pd(pc0.add(j), c00);
            _mm512_storeu_pd(pc0.add(j + 8), c01);
            _mm512_storeu_pd(pc1.add(j), c10);
            _mm512_storeu_pd(pc1.add(j + 8), c11);
            j += 16;
        }
        while j + 8 <= n {
            let mut c0 = _mm512_loadu_pd(pc0.add(j));
            let mut c1 = _mm512_loadu_pd(pc1.add(j));
            for q in 0..4 {
                let bv = _mm512_loadu_pd(bp[q].add(j));
                c0 = _mm512_fmadd_pd(u[q], bv, c0);
                c1 = _mm512_fmadd_pd(w[q], bv, c1);
            }
            _mm512_storeu_pd(pc0.add(j), c0);
            _mm512_storeu_pd(pc1.add(j), c1);
            j += 8;
        }
        if j < n {
            // Masked column tail: zero-filled B lanes feed `fma(f, 0,
            // c)` into masked-out lanes that are never stored, and live
            // lanes see the identical ascending-k chain.
            let mk = mask8(n - j);
            let mut c0 = _mm512_maskz_loadu_pd(mk, pc0.add(j));
            let mut c1 = _mm512_maskz_loadu_pd(mk, pc1.add(j));
            for q in 0..4 {
                let bv = _mm512_maskz_loadu_pd(mk, bp[q].add(j));
                c0 = _mm512_fmadd_pd(u[q], bv, c0);
                c1 = _mm512_fmadd_pd(w[q], bv, c1);
            }
            _mm512_mask_storeu_pd(pc0.add(j), mk, c0);
            _mm512_mask_storeu_pd(pc1.add(j), mk, c1);
        }
        k += 4;
    }
    while k < kend {
        let g0 = alpha * arow0[k];
        let g1 = alpha * arow1[k];
        let fv0 = _mm512_set1_pd(g0);
        let fv1 = _mm512_set1_pd(g1);
        let bk = pb.add(k * n);
        let mut j = 0;
        while j + 8 <= n {
            let bv = _mm512_loadu_pd(bk.add(j));
            let c0 = _mm512_fmadd_pd(fv0, bv, _mm512_loadu_pd(pc0.add(j)));
            let c1 = _mm512_fmadd_pd(fv1, bv, _mm512_loadu_pd(pc1.add(j)));
            _mm512_storeu_pd(pc0.add(j), c0);
            _mm512_storeu_pd(pc1.add(j), c1);
            j += 8;
        }
        if j < n {
            let mk = mask8(n - j);
            let bv = _mm512_maskz_loadu_pd(mk, bk.add(j));
            let c0 = _mm512_fmadd_pd(fv0, bv, _mm512_maskz_loadu_pd(mk, pc0.add(j)));
            let c1 = _mm512_fmadd_pd(fv1, bv, _mm512_maskz_loadu_pd(mk, pc1.add(j)));
            _mm512_mask_storeu_pd(pc0.add(j), mk, c0);
            _mm512_mask_storeu_pd(pc1.add(j), mk, c1);
        }
        k += 1;
    }
}

/// Single-row `f64×8` micro-kernel of [`gemm_band_avx512`] (odd tail
/// row).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
unsafe fn gemm_row_avx512(
    alpha: f64,
    arow: &[f64],
    pb: *const f64,
    n: usize,
    k0: usize,
    kend: usize,
    crow: &mut [f64],
) {
    let pc = crow.as_mut_ptr();
    let mut k = k0;
    while k + 4 <= kend {
        let f = [
            alpha * arow[k],
            alpha * arow[k + 1],
            alpha * arow[k + 2],
            alpha * arow[k + 3],
        ];
        let u = [
            _mm512_set1_pd(f[0]),
            _mm512_set1_pd(f[1]),
            _mm512_set1_pd(f[2]),
            _mm512_set1_pd(f[3]),
        ];
        let bp = [
            pb.add(k * n),
            pb.add((k + 1) * n),
            pb.add((k + 2) * n),
            pb.add((k + 3) * n),
        ];
        let mut j = 0;
        while j + 16 <= n {
            let mut c0 = _mm512_loadu_pd(pc.add(j));
            let mut c1 = _mm512_loadu_pd(pc.add(j + 8));
            for q in 0..4 {
                c0 = _mm512_fmadd_pd(u[q], _mm512_loadu_pd(bp[q].add(j)), c0);
                c1 = _mm512_fmadd_pd(u[q], _mm512_loadu_pd(bp[q].add(j + 8)), c1);
            }
            _mm512_storeu_pd(pc.add(j), c0);
            _mm512_storeu_pd(pc.add(j + 8), c1);
            j += 16;
        }
        while j + 8 <= n {
            let mut cv = _mm512_loadu_pd(pc.add(j));
            for q in 0..4 {
                cv = _mm512_fmadd_pd(u[q], _mm512_loadu_pd(bp[q].add(j)), cv);
            }
            _mm512_storeu_pd(pc.add(j), cv);
            j += 8;
        }
        if j < n {
            let mk = mask8(n - j);
            let mut cv = _mm512_maskz_loadu_pd(mk, pc.add(j));
            for q in 0..4 {
                cv = _mm512_fmadd_pd(u[q], _mm512_maskz_loadu_pd(mk, bp[q].add(j)), cv);
            }
            _mm512_mask_storeu_pd(pc.add(j), mk, cv);
        }
        k += 4;
    }
    while k < kend {
        let g = alpha * arow[k];
        let fv = _mm512_set1_pd(g);
        let bk = pb.add(k * n);
        let mut j = 0;
        while j + 8 <= n {
            let cv = _mm512_fmadd_pd(fv, _mm512_loadu_pd(bk.add(j)), _mm512_loadu_pd(pc.add(j)));
            _mm512_storeu_pd(pc.add(j), cv);
            j += 8;
        }
        if j < n {
            let mk = mask8(n - j);
            let cv = _mm512_fmadd_pd(
                fv,
                _mm512_maskz_loadu_pd(mk, bk.add(j)),
                _mm512_maskz_loadu_pd(mk, pc.add(j)),
            );
            _mm512_mask_storeu_pd(pc.add(j), mk, cv);
        }
        k += 1;
    }
}

// ---------------------------------------------------------------------------
// Batched multi-model kernels (B interleaved instances, SoA by lane)
// ---------------------------------------------------------------------------

/// Batched interleaved GEMM accumulate for `lanes` independent model
/// instances stored SoA:
///
/// ```text
/// C[r][j·L + l] += Σ_k A[r][k·L + l] · B[k][j·L + l]      (l = lane)
/// ```
///
/// `a` is `m × (kd·L)`, `b` is `kd × (n·L)`, `c` is `m × (n·L)`, all
/// row-major with the instance index `l` innermost. Accumulate-only
/// (α = 1, β = 1): callers zero `c` first for a β = 0 product.
///
/// **Determinism:** every `(r, j, l)` element's sum is applied in
/// ascending-k order — one `fma` per k in the vector tiers (matching
/// the solo GEMM band kernels' per-element chain) and the scalar
/// two-rounding `acc += a·b` in the scalar tier (matching the solo
/// scalar GEMM) — so for identical per-instance inputs the batched
/// result is bit-identical to `lanes` solo GEMM calls in the same tier.
///
/// # Panics
/// Panics if `lanes` is not a positive multiple of 8 (callers pad
/// instances up to the widest vector width) or a slice is too short.
pub fn bgemm_accum(
    lanes: usize,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    kd: usize,
    n: usize,
) {
    assert!(
        lanes > 0 && lanes.is_multiple_of(8),
        "bgemm_accum lanes must be a positive multiple of 8"
    );
    assert!(a.len() >= m * kd * lanes, "bgemm_accum A shape");
    assert!(b.len() >= kd * n * lanes, "bgemm_accum B shape");
    assert!(c.len() >= m * n * lanes, "bgemm_accum C shape");
    #[cfg(target_arch = "x86_64")]
    if current_tier() != SimdTier::Scalar {
        // Vector tiers: pack B into the per-thread scratch pack, then
        // run the packed kernel — identical chains, so identical bits.
        return BGEMM_PACK_TL.with(|cell| {
            let mut bp = cell.borrow_mut();
            bgemm_pack_b(lanes, b, kd, n, &mut bp);
            bgemm_accum_packed(a, &bp, c, m);
        });
    }
    bgemm_accum_scalar(lanes, a, b, c, m, kd, n);
}

fn bgemm_accum_scalar(
    lanes: usize,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    kd: usize,
    n: usize,
) {
    let rl = n * lanes;
    let al = kd * lanes;
    for r in 0..m {
        let arow = &a[r * al..(r + 1) * al];
        let crow = &mut c[r * rl..(r + 1) * rl];
        for j in 0..n {
            for l in 0..lanes {
                let mut acc = crow[j * lanes + l];
                for (k, ak) in arow.chunks_exact(lanes).enumerate() {
                    acc += ak[l] * b[k * rl + j * lanes + l];
                }
                crow[j * lanes + l] = acc;
            }
        }
    }
}

/// [`bgemm_accum`] with the A operand supplied **transposed**: `at` is
/// `kd × (m·L)` row-major lane-interleaved and
///
/// ```text
/// C[r][j·L + l] += Σ_k At[k][r·L + l] · B[k][j·L + l]      (l = lane)
/// ```
///
/// This is the shape of a weight-gradient product `gW += gzᵀ·x` where
/// `gz` arrives batch-row-major: passing it here skips materialising
/// the transpose. The multiply operands and the ascending-k per-element
/// chains are exactly those of `transpose(at)` fed through
/// [`bgemm_accum`], so results are bit-identical to that two-step form
/// in every tier.
///
/// # Panics
/// Panics if `lanes` is not a positive multiple of 8 or a slice is too
/// short.
pub fn bgemm_accum_t(
    lanes: usize,
    at: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    kd: usize,
    n: usize,
) {
    assert!(
        lanes > 0 && lanes.is_multiple_of(8),
        "bgemm_accum_t lanes must be a positive multiple of 8"
    );
    assert!(at.len() >= m * kd * lanes, "bgemm_accum_t A shape");
    assert!(b.len() >= kd * n * lanes, "bgemm_accum_t B shape");
    assert!(c.len() >= m * n * lanes, "bgemm_accum_t C shape");
    #[cfg(target_arch = "x86_64")]
    if current_tier() != SimdTier::Scalar {
        return BGEMM_PACK_TL.with(|cell| {
            let mut bp = cell.borrow_mut();
            bgemm_pack_b(lanes, b, kd, n, &mut bp);
            let (lanes, kd, n) = (bp.lanes, bp.kd, bp.n);
            // SAFETY: tier checked above; shapes asserted; A strides
            // address the transposed source.
            match bp.tier {
                SimdTier::Avx512 => unsafe {
                    bgemm_packed_avx512(lanes, at, bp.packed(), c, m, kd, n, lanes, m * lanes)
                },
                SimdTier::Avx2 => unsafe {
                    bgemm_packed_avx2(lanes, at, bp.packed(), c, m, kd, n, lanes, m * lanes)
                },
                SimdTier::Scalar => unreachable!(),
            }
        });
    }
    bgemm_accum_scalar_t(lanes, at, b, c, m, kd, n);
}

fn bgemm_accum_scalar_t(
    lanes: usize,
    at: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    kd: usize,
    n: usize,
) {
    let rl = n * lanes;
    let tl = m * lanes;
    for r in 0..m {
        let crow = &mut c[r * rl..(r + 1) * rl];
        for j in 0..n {
            for l in 0..lanes {
                let mut acc = crow[j * lanes + l];
                for k in 0..kd {
                    acc += at[k * tl + r * lanes + l] * b[k * rl + j * lanes + l];
                }
                crow[j * lanes + l] = acc;
            }
        }
    }
}

/// K-panel depth for the batched kernels: bounds the packed B panel
/// (`kc × n` strips; the packed A tile is negligible next to it) to
/// roughly half the L2 so the micro-kernel streams from cache while C
/// round-trips as few times as possible.
#[cfg(target_arch = "x86_64")]
fn bgemm_kpanel(n: usize, kd: usize, strip_bytes: usize) -> usize {
    let denom = n.max(1) * strip_bytes;
    (512 * 1024 / denom).clamp(16, kd.max(16))
}

#[cfg(target_arch = "x86_64")]
thread_local! {
    /// A-tile packing scratch for the vector batched kernels — per
    /// thread, grown on demand, so the steady state allocates nothing.
    static BGEMM_SCRATCH: std::cell::RefCell<Vec<f64>> =
        const { std::cell::RefCell::new(Vec::new()) };
    /// Scratch [`PackedB`] backing the pack-on-the-fly
    /// [`bgemm_accum`] convenience entry point.
    static BGEMM_PACK_TL: std::cell::RefCell<PackedB> =
        const { std::cell::RefCell::new(PackedB::new()) };
}

/// A pre-packed B operand for [`bgemm_accum_packed`]: the panel layout
/// the batched micro-kernels consume, built once and reused across many
/// products against the same B — e.g. one layer's weights against every
/// row chunk of a batched forward pass, where packing per product would
/// otherwise dominate.
///
/// The layout is tier-specific (64-byte-aligned k-panels of 4-column
/// lane strips in the vector tiers, a plain copy in the scalar tier);
/// the pack records the active tier and [`bgemm_accum_packed`] asserts
/// it still matches, so a `PackedB` must not cross a
/// [`with_tier`] boundary.
#[derive(Debug, Clone)]
pub struct PackedB {
    data: Vec<f64>,
    pad: usize,
    lanes: usize,
    kd: usize,
    n: usize,
    tier: SimdTier,
}

impl Default for PackedB {
    fn default() -> Self {
        Self::new()
    }
}

impl PackedB {
    /// An empty pack; fill it with [`bgemm_pack_b`] or
    /// [`bgemm_pack_b_t`]. Allocates nothing until first use.
    pub const fn new() -> Self {
        PackedB {
            data: Vec::new(),
            pad: 0,
            lanes: 0,
            kd: 0,
            n: 0,
            tier: SimdTier::Scalar,
        }
    }

    /// Grows the backing store to `len` elements plus alignment slack
    /// and returns the 64-byte-aligned window (split cache-line loads
    /// halve L1 bandwidth, so the micro-kernels rely on this).
    fn ensure(&mut self, len: usize) -> &mut [f64] {
        if self.data.len() < len + 8 {
            self.data.resize(len + 8, 0.0);
        }
        self.pad = (self.data.as_ptr() as usize).wrapping_neg() % 64 / 8;
        &mut self.data[self.pad..self.pad + len]
    }

    fn packed(&self) -> &[f64] {
        &self.data[self.pad..self.pad + self.lanes * self.kd * self.n]
    }

    fn set_dims(&mut self, lanes: usize, kd: usize, n: usize, tier: SimdTier) {
        self.lanes = lanes;
        self.kd = kd;
        self.n = n;
        self.tier = tier;
    }
}

/// Packs `b` (`kd × n·lanes` row-major, lane-interleaved — the layout
/// [`bgemm_accum`] consumes directly) into `into` for
/// [`bgemm_accum_packed`] under the current SIMD tier.
///
/// # Panics
/// Panics if `lanes` is not a positive multiple of 8 or `b` is too
/// short.
pub fn bgemm_pack_b(lanes: usize, b: &[f64], kd: usize, n: usize, into: &mut PackedB) {
    assert!(
        lanes > 0 && lanes.is_multiple_of(8),
        "bgemm_pack_b lanes must be a positive multiple of 8"
    );
    assert!(b.len() >= kd * n * lanes, "bgemm_pack_b B shape");
    let rl = n * lanes;
    #[cfg(target_arch = "x86_64")]
    match current_tier() {
        SimdTier::Avx512 => {
            return pack_b_vec(
                lanes,
                kd,
                n,
                8,
                |k, j| k * rl + j * lanes,
                b,
                into,
                SimdTier::Avx512,
            )
        }
        SimdTier::Avx2 => {
            return pack_b_vec(
                lanes,
                kd,
                n,
                4,
                |k, j| k * rl + j * lanes,
                b,
                into,
                SimdTier::Avx2,
            )
        }
        SimdTier::Scalar => {}
    }
    let dst = into.ensure(kd * rl);
    dst.copy_from_slice(&b[..kd * rl]);
    into.set_dims(lanes, kd, n, SimdTier::Scalar);
}

/// Packs the **transpose** of `w` (`n × kd·lanes` row-major,
/// lane-interleaved — an MLP layer's weight block whose rows are
/// outputs) so that `bgemm_accum_packed` computes `C += A · Wᵀ` without
/// materialising the transpose first.
///
/// # Panics
/// Panics if `lanes` is not a positive multiple of 8 or `w` is too
/// short.
pub fn bgemm_pack_b_t(lanes: usize, w: &[f64], kd: usize, n: usize, into: &mut PackedB) {
    assert!(
        lanes > 0 && lanes.is_multiple_of(8),
        "bgemm_pack_b_t lanes must be a positive multiple of 8"
    );
    assert!(w.len() >= kd * n * lanes, "bgemm_pack_b_t W shape");
    let kl = kd * lanes;
    #[cfg(target_arch = "x86_64")]
    match current_tier() {
        SimdTier::Avx512 => {
            return pack_b_vec(
                lanes,
                kd,
                n,
                8,
                |k, j| j * kl + k * lanes,
                w,
                into,
                SimdTier::Avx512,
            )
        }
        SimdTier::Avx2 => {
            return pack_b_vec(
                lanes,
                kd,
                n,
                4,
                |k, j| j * kl + k * lanes,
                w,
                into,
                SimdTier::Avx2,
            )
        }
        SimdTier::Scalar => {}
    }
    let dst = into.ensure(kd * n * lanes);
    for k in 0..kd {
        for j in 0..n {
            let s = j * kl + k * lanes;
            dst[(k * n + j) * lanes..(k * n + j) * lanes + lanes].copy_from_slice(&w[s..s + lanes]);
        }
    }
    into.set_dims(lanes, kd, n, SimdTier::Scalar);
}

/// Vector-tier pack body: column-block-major sections per (lane strip,
/// k-panel), k ascending inside, matching what the micro-kernels read.
/// `src` maps `(k, j)` to the index of lane 0 in the source slice.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
fn pack_b_vec(
    lanes: usize,
    kd: usize,
    n: usize,
    strip: usize,
    src: impl Fn(usize, usize) -> usize,
    b: &[f64],
    into: &mut PackedB,
    tier: SimdTier,
) {
    let kc = bgemm_kpanel(n, kd, strip * 8);
    let nb = n / 4;
    let dst = into.ensure(lanes * kd * n);
    let mut w = 0;
    for ls in (0..lanes).step_by(strip) {
        let mut k0 = 0;
        while k0 < kd {
            let kn = (kd - k0).min(kc);
            for jb in 0..nb {
                for k in 0..kn {
                    for q in 0..4 {
                        let s = src(k0 + k, jb * 4 + q) + ls;
                        dst[w..w + strip].copy_from_slice(&b[s..s + strip]);
                        w += strip;
                    }
                }
            }
            for jt in nb * 4..n {
                for k in 0..kn {
                    let s = src(k0 + k, jt) + ls;
                    dst[w..w + strip].copy_from_slice(&b[s..s + strip]);
                    w += strip;
                }
            }
            k0 += kn;
        }
    }
    into.set_dims(lanes, kd, n, tier);
}

/// [`bgemm_accum`] against a pre-packed B operand: `C[r][j·L + l] +=
/// Σ_k A[r][k·L + l] · B[k][j·L + l]` with the same ascending-k
/// per-element chains (see [`bgemm_accum`] for the determinism
/// contract — results are bit-identical to the pack-free entry point).
///
/// # Panics
/// Panics if `bp` is empty, was packed under a different SIMD tier than
/// the current one, or `a`/`c` are too short for its dimensions.
pub fn bgemm_accum_packed(a: &[f64], bp: &PackedB, c: &mut [f64], m: usize) {
    let (lanes, kd, n) = (bp.lanes, bp.kd, bp.n);
    assert!(lanes > 0, "bgemm_accum_packed: empty PackedB");
    assert!(a.len() >= m * kd * lanes, "bgemm_accum_packed A shape");
    assert!(c.len() >= m * n * lanes, "bgemm_accum_packed C shape");
    assert_eq!(
        bp.tier,
        current_tier(),
        "bgemm_accum_packed: PackedB crossed a SIMD-tier boundary"
    );
    #[cfg(target_arch = "x86_64")]
    // SAFETY: each vector tier implies its CPU features are available;
    // the pack recorded matching tier and dimensions.
    match bp.tier {
        SimdTier::Avx512 => {
            return unsafe {
                bgemm_packed_avx512(lanes, a, bp.packed(), c, m, kd, n, kd * lanes, lanes)
            }
        }
        SimdTier::Avx2 => {
            return unsafe {
                bgemm_packed_avx2(lanes, a, bp.packed(), c, m, kd, n, kd * lanes, lanes)
            }
        }
        SimdTier::Scalar => {}
    }
    bgemm_accum_scalar(lanes, a, bp.packed(), c, m, kd, n);
}

/// AVX2 packed-B kernel: BLIS-style k-blocked panels with a 2-row ×
/// 4-logical-column × 4-lane register tile (8 accumulator chains, 6
/// contiguous aligned L1 loads per k step). See [`bgemm_packed_avx512`]
/// for the scheme; determinism is identical.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
unsafe fn bgemm_packed_avx2(
    lanes: usize,
    a: &[f64],
    bp: &[f64],
    c: &mut [f64],
    m: usize,
    kd: usize,
    n: usize,
    ars: usize,
    aks: usize,
) {
    let kc = bgemm_kpanel(n, kd, 32);
    BGEMM_SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        let atile = aligned_scratch(&mut buf, kc * 8);
        // SAFETY: caller guarantees avx2/fma and shapes.
        unsafe { bgemm_packed_kern_avx2(lanes, a, bp, c, m, kd, n, kc, atile, ars, aks) }
    });
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
unsafe fn bgemm_packed_kern_avx2(
    lanes: usize,
    a: &[f64],
    bp: &[f64],
    c: &mut [f64],
    m: usize,
    kd: usize,
    n: usize,
    kc: usize,
    atile: &mut [f64],
    ars: usize,
    aks: usize,
) {
    let rl = n * lanes;
    let pa = a.as_ptr();
    let pb = bp.as_ptr();
    let pc = c.as_mut_ptr();
    let nb = n / 4;
    for (ls_i, ls) in (0..lanes).step_by(4).enumerate() {
        let mut k0 = 0;
        while k0 < kd {
            let kn = (kd - k0).min(kc);
            let base = (ls_i * kd + k0) * (n * 4);
            let pblk = pb.add(base);
            let ptail = pb.add(base + nb * kn * 16);
            let mut r = 0;
            while r + 2 <= m {
                for k in 0..kn {
                    for i in 0..2 {
                        let src = (r + i) * ars + (k0 + k) * aks + ls;
                        atile[k * 8 + i * 4..k * 8 + i * 4 + 4].copy_from_slice(&a[src..src + 4]);
                    }
                }
                let pap = atile.as_ptr();
                let pc0 = pc.add(r * rl);
                let pc1 = pc.add((r + 1) * rl);
                for jb in 0..nb {
                    let o = [
                        jb * 4 * lanes + ls,
                        (jb * 4 + 1) * lanes + ls,
                        (jb * 4 + 2) * lanes + ls,
                        (jb * 4 + 3) * lanes + ls,
                    ];
                    let pj = pblk.add(jb * kn * 16);
                    let mut c0 = [
                        _mm256_loadu_pd(pc0.add(o[0])),
                        _mm256_loadu_pd(pc0.add(o[1])),
                        _mm256_loadu_pd(pc0.add(o[2])),
                        _mm256_loadu_pd(pc0.add(o[3])),
                    ];
                    let mut c1 = [
                        _mm256_loadu_pd(pc1.add(o[0])),
                        _mm256_loadu_pd(pc1.add(o[1])),
                        _mm256_loadu_pd(pc1.add(o[2])),
                        _mm256_loadu_pd(pc1.add(o[3])),
                    ];
                    for k in 0..kn {
                        let av0 = _mm256_loadu_pd(pap.add(k * 8));
                        let av1 = _mm256_loadu_pd(pap.add(k * 8 + 4));
                        for q in 0..4 {
                            let bv = _mm256_loadu_pd(pj.add(k * 16 + q * 4));
                            c0[q] = _mm256_fmadd_pd(av0, bv, c0[q]);
                            c1[q] = _mm256_fmadd_pd(av1, bv, c1[q]);
                        }
                    }
                    for q in 0..4 {
                        _mm256_storeu_pd(pc0.add(o[q]), c0[q]);
                        _mm256_storeu_pd(pc1.add(o[q]), c1[q]);
                    }
                }
                for jt in nb * 4..n {
                    let o = jt * lanes + ls;
                    let pj = ptail.add((jt - nb * 4) * kn * 4);
                    let mut c0 = _mm256_loadu_pd(pc0.add(o));
                    let mut c1 = _mm256_loadu_pd(pc1.add(o));
                    for k in 0..kn {
                        let bv = _mm256_loadu_pd(pj.add(k * 4));
                        c0 = _mm256_fmadd_pd(_mm256_loadu_pd(pap.add(k * 8)), bv, c0);
                        c1 = _mm256_fmadd_pd(_mm256_loadu_pd(pap.add(k * 8 + 4)), bv, c1);
                    }
                    _mm256_storeu_pd(pc0.add(o), c0);
                    _mm256_storeu_pd(pc1.add(o), c1);
                }
                r += 2;
            }
            while r < m {
                let pa0 = pa.add(r * ars + ls);
                let pc0 = pc.add(r * rl);
                for jb in 0..nb {
                    let o = [
                        jb * 4 * lanes + ls,
                        (jb * 4 + 1) * lanes + ls,
                        (jb * 4 + 2) * lanes + ls,
                        (jb * 4 + 3) * lanes + ls,
                    ];
                    let pj = pblk.add(jb * kn * 16);
                    let mut cv = [
                        _mm256_loadu_pd(pc0.add(o[0])),
                        _mm256_loadu_pd(pc0.add(o[1])),
                        _mm256_loadu_pd(pc0.add(o[2])),
                        _mm256_loadu_pd(pc0.add(o[3])),
                    ];
                    for k in 0..kn {
                        let av = _mm256_loadu_pd(pa0.add((k0 + k) * aks));
                        for q in 0..4 {
                            cv[q] =
                                _mm256_fmadd_pd(av, _mm256_loadu_pd(pj.add(k * 16 + q * 4)), cv[q]);
                        }
                    }
                    for q in 0..4 {
                        _mm256_storeu_pd(pc0.add(o[q]), cv[q]);
                    }
                }
                for jt in nb * 4..n {
                    let o = jt * lanes + ls;
                    let pj = ptail.add((jt - nb * 4) * kn * 4);
                    let mut cv = _mm256_loadu_pd(pc0.add(o));
                    for k in 0..kn {
                        cv = _mm256_fmadd_pd(
                            _mm256_loadu_pd(pa0.add((k0 + k) * aks)),
                            _mm256_loadu_pd(pj.add(k * 4)),
                            cv,
                        );
                    }
                    _mm256_storeu_pd(pc0.add(o), cv);
                }
                r += 1;
            }
            k0 += kn;
        }
    }
}

/// AVX-512 packed-B kernel: BLIS-style k-blocked panels consumed from
/// [`PackedB`]'s contiguous 64-byte-aligned sections. The current 4-row
/// A tile is packed into per-thread scratch, and the 4-row ×
/// 4-logical-column × 8-lane register tile (16 independent accumulator
/// chains, 21 of 32 zmm registers live, 8 contiguous aligned L1 loads
/// per k step) runs FMA-bound instead of fighting the interleaved
/// layout's power-of-two row strides, which alias to the same cache
/// sets and would turn every inner-loop load into an L2 miss.
///
/// Packing only copies values, and every `(r, j, l)` chain still
/// applies k in ascending order — the k-panel split round-trips
/// finished partial sums through `c`, which is exact in f64 — so
/// results are bit-identical to an unblocked sweep and to `lanes` solo
/// GEMM calls in the same tier.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
unsafe fn bgemm_packed_avx512(
    lanes: usize,
    a: &[f64],
    bp: &[f64],
    c: &mut [f64],
    m: usize,
    kd: usize,
    n: usize,
    ars: usize,
    aks: usize,
) {
    let kc = bgemm_kpanel(n, kd, 64);
    BGEMM_SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        let atile = aligned_scratch(&mut buf, kc * 32);
        // SAFETY: caller guarantees avx512f/fma and shapes.
        unsafe { bgemm_packed_kern_avx512(lanes, a, bp, c, m, kd, n, kc, atile, ars, aks) }
    });
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
unsafe fn bgemm_packed_kern_avx512(
    lanes: usize,
    a: &[f64],
    bp: &[f64],
    c: &mut [f64],
    m: usize,
    kd: usize,
    n: usize,
    kc: usize,
    atile: &mut [f64],
    ars: usize,
    aks: usize,
) {
    let rl = n * lanes;
    let pa = a.as_ptr();
    let pb = bp.as_ptr();
    let pc = c.as_mut_ptr();
    let nb = n / 4;
    for (ls_i, ls) in (0..lanes).step_by(8).enumerate() {
        let mut k0 = 0;
        while k0 < kd {
            let kn = (kd - k0).min(kc);
            let base = (ls_i * kd + k0) * (n * 8);
            let pblk = pb.add(base);
            let ptail = pb.add(base + nb * kn * 32);
            let mut r = 0;
            while r + 4 <= m {
                // Pack the 4-row A tile: k ascending, 4 row strips per k.
                for k in 0..kn {
                    for i in 0..4 {
                        let src = (r + i) * ars + (k0 + k) * aks + ls;
                        atile[k * 32 + i * 8..k * 32 + i * 8 + 8].copy_from_slice(&a[src..src + 8]);
                    }
                }
                let pap = atile.as_ptr();
                let pcr = [
                    pc.add(r * rl),
                    pc.add((r + 1) * rl),
                    pc.add((r + 2) * rl),
                    pc.add((r + 3) * rl),
                ];
                for jb in 0..nb {
                    let o = [
                        jb * 4 * lanes + ls,
                        (jb * 4 + 1) * lanes + ls,
                        (jb * 4 + 2) * lanes + ls,
                        (jb * 4 + 3) * lanes + ls,
                    ];
                    let pj = pblk.add(jb * kn * 32);
                    let mut acc = [[_mm512_setzero_pd(); 4]; 4];
                    for i in 0..4 {
                        for q in 0..4 {
                            acc[i][q] = _mm512_loadu_pd(pcr[i].add(o[q]));
                        }
                    }
                    for k in 0..kn {
                        let av = [
                            _mm512_loadu_pd(pap.add(k * 32)),
                            _mm512_loadu_pd(pap.add(k * 32 + 8)),
                            _mm512_loadu_pd(pap.add(k * 32 + 16)),
                            _mm512_loadu_pd(pap.add(k * 32 + 24)),
                        ];
                        for q in 0..4 {
                            let bv = _mm512_loadu_pd(pj.add(k * 32 + q * 8));
                            for i in 0..4 {
                                acc[i][q] = _mm512_fmadd_pd(av[i], bv, acc[i][q]);
                            }
                        }
                    }
                    for i in 0..4 {
                        for q in 0..4 {
                            _mm512_storeu_pd(pcr[i].add(o[q]), acc[i][q]);
                        }
                    }
                }
                // Column tail (n % 4) for these 4 rows.
                for jt in nb * 4..n {
                    let o = jt * lanes + ls;
                    let pj = ptail.add((jt - nb * 4) * kn * 8);
                    let mut acc = [
                        _mm512_loadu_pd(pcr[0].add(o)),
                        _mm512_loadu_pd(pcr[1].add(o)),
                        _mm512_loadu_pd(pcr[2].add(o)),
                        _mm512_loadu_pd(pcr[3].add(o)),
                    ];
                    for k in 0..kn {
                        let bv = _mm512_loadu_pd(pj.add(k * 8));
                        for i in 0..4 {
                            acc[i] = _mm512_fmadd_pd(
                                _mm512_loadu_pd(pap.add(k * 32 + i * 8)),
                                bv,
                                acc[i],
                            );
                        }
                    }
                    for i in 0..4 {
                        _mm512_storeu_pd(pcr[i].add(o), acc[i]);
                    }
                }
                r += 4;
            }
            // Row tail (m % 4): single rows straight from A.
            while r < m {
                let pa0 = pa.add(r * ars + ls);
                let pc0 = pc.add(r * rl);
                for jb in 0..nb {
                    let o = [
                        jb * 4 * lanes + ls,
                        (jb * 4 + 1) * lanes + ls,
                        (jb * 4 + 2) * lanes + ls,
                        (jb * 4 + 3) * lanes + ls,
                    ];
                    let pj = pblk.add(jb * kn * 32);
                    let mut cv = [
                        _mm512_loadu_pd(pc0.add(o[0])),
                        _mm512_loadu_pd(pc0.add(o[1])),
                        _mm512_loadu_pd(pc0.add(o[2])),
                        _mm512_loadu_pd(pc0.add(o[3])),
                    ];
                    for k in 0..kn {
                        let av = _mm512_loadu_pd(pa0.add((k0 + k) * aks));
                        for q in 0..4 {
                            cv[q] =
                                _mm512_fmadd_pd(av, _mm512_loadu_pd(pj.add(k * 32 + q * 8)), cv[q]);
                        }
                    }
                    for q in 0..4 {
                        _mm512_storeu_pd(pc0.add(o[q]), cv[q]);
                    }
                }
                for jt in nb * 4..n {
                    let o = jt * lanes + ls;
                    let pj = ptail.add((jt - nb * 4) * kn * 8);
                    let mut cv = _mm512_loadu_pd(pc0.add(o));
                    for k in 0..kn {
                        cv = _mm512_fmadd_pd(
                            _mm512_loadu_pd(pa0.add((k0 + k) * aks)),
                            _mm512_loadu_pd(pj.add(k * 8)),
                            cv,
                        );
                    }
                    _mm512_storeu_pd(pc0.add(o), cv);
                }
                r += 1;
            }
            k0 += kn;
        }
    }
}

/// Carves a 64-byte-aligned `len`-element window out of the per-thread
/// scratch: every packed-panel load in the micro-kernels then stays
/// inside one cache line (split loads halve L1 bandwidth).
#[cfg(target_arch = "x86_64")]
fn aligned_scratch(buf: &mut Vec<f64>, len: usize) -> &mut [f64] {
    if buf.len() < len + 8 {
        buf.resize(len + 8, 0.0);
    }
    let off = (buf.as_ptr() as usize).wrapping_neg() % 64 / 8;
    &mut buf[off..off + len]
}
/// Fused Adam update over `lanes` interleaved model instances with
/// **per-lane** bias corrections and learning rates (co-executed
/// instances may sit at different step counts `t`): element `i` belongs
/// to lane `i % lanes` and uses `bc1[i % lanes]`, `bc2[i % lanes]`,
/// `lr[i % lanes]`. β1/β2/ε are shared (instance compatibility requires
/// equal Adam betas).
///
/// Per-element arithmetic matches [`adam_update`] in the same tier
/// exactly, so a batched step is bit-identical to `lanes` solo steps.
///
/// # Panics
/// Panics if `lanes` is not a positive multiple of 8, the per-lane
/// slices are not `lanes` long, or the flat slices differ in length.
#[allow(clippy::too_many_arguments)]
pub fn adam_update_multi(
    lanes: usize,
    p: &mut [f64],
    g: &[f64],
    m: &mut [f64],
    v: &mut [f64],
    b1: f64,
    b2: f64,
    bc1: &[f64],
    bc2: &[f64],
    lr: &[f64],
    eps: f64,
) {
    let n = p.len();
    assert!(
        lanes > 0 && lanes.is_multiple_of(8),
        "adam_update_multi lanes must be a positive multiple of 8"
    );
    assert!(
        g.len() == n && m.len() == n && v.len() == n,
        "adam_update_multi length mismatch"
    );
    assert!(
        n.is_multiple_of(lanes),
        "adam_update_multi slices must be lane-aligned"
    );
    assert!(
        bc1.len() == lanes && bc2.len() == lanes && lr.len() == lanes,
        "adam_update_multi per-lane constants"
    );
    #[cfg(target_arch = "x86_64")]
    // SAFETY: each vector tier implies its CPU features are available;
    // lanes % 8 == 0 keeps constant strips inside one lane run.
    match current_tier() {
        SimdTier::Avx512 => {
            return unsafe {
                adam_update_multi_avx512(lanes, p, g, m, v, b1, b2, bc1, bc2, lr, eps)
            }
        }
        SimdTier::Avx2 => {
            return unsafe { adam_update_multi_avx2(lanes, p, g, m, v, b1, b2, bc1, bc2, lr, eps) }
        }
        SimdTier::Scalar => {}
    }
    for i in 0..n {
        let l = i % lanes;
        m[i] = b1 * m[i] + (1.0 - b1) * g[i];
        v[i] = b2 * v[i] + (1.0 - b2) * g[i] * g[i];
        let mh = m[i] / bc1[l];
        let vh = v[i] / bc2[l];
        p[i] -= lr[l] * mh / (vh.sqrt() + eps);
    }
}

#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn adam_update_multi_avx2(
    lanes: usize,
    p: &mut [f64],
    g: &[f64],
    m: &mut [f64],
    v: &mut [f64],
    b1: f64,
    b2: f64,
    bc1: &[f64],
    bc2: &[f64],
    lr: &[f64],
    eps: f64,
) {
    let n = p.len();
    let (b1v, b2v) = (_mm256_set1_pd(b1), _mm256_set1_pd(b2));
    let (c1v, c2v) = (_mm256_set1_pd(1.0 - b1), _mm256_set1_pd(1.0 - b2));
    let epsv = _mm256_set1_pd(eps);
    let (pp, pg, pm, pv) = (p.as_mut_ptr(), g.as_ptr(), m.as_mut_ptr(), v.as_mut_ptr());
    let mut i = 0;
    // lanes % 8 == 0 means every 4-wide strip starting at a multiple of
    // 4 stays inside one lane run, so the per-lane constants are
    // contiguous loads at offset i % lanes.
    while i + 4 <= n {
        let l = i % lanes;
        let bc1v = _mm256_loadu_pd(bc1.as_ptr().add(l));
        let bc2v = _mm256_loadu_pd(bc2.as_ptr().add(l));
        let lrv = _mm256_loadu_pd(lr.as_ptr().add(l));
        let gv = _mm256_loadu_pd(pg.add(i));
        let mv = _mm256_fmadd_pd(b1v, _mm256_loadu_pd(pm.add(i)), _mm256_mul_pd(c1v, gv));
        let vv = _mm256_fmadd_pd(
            b2v,
            _mm256_loadu_pd(pv.add(i)),
            _mm256_mul_pd(_mm256_mul_pd(c2v, gv), gv),
        );
        _mm256_storeu_pd(pm.add(i), mv);
        _mm256_storeu_pd(pv.add(i), vv);
        let mh = _mm256_div_pd(mv, bc1v);
        let vh = _mm256_div_pd(vv, bc2v);
        let denom = _mm256_add_pd(_mm256_sqrt_pd(vh), epsv);
        let step = _mm256_div_pd(_mm256_mul_pd(lrv, mh), denom);
        _mm256_storeu_pd(pp.add(i), _mm256_sub_pd(_mm256_loadu_pd(pp.add(i)), step));
        i += 4;
    }
}

#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
unsafe fn adam_update_multi_avx512(
    lanes: usize,
    p: &mut [f64],
    g: &[f64],
    m: &mut [f64],
    v: &mut [f64],
    b1: f64,
    b2: f64,
    bc1: &[f64],
    bc2: &[f64],
    lr: &[f64],
    eps: f64,
) {
    let n = p.len();
    let (b1v, b2v) = (_mm512_set1_pd(b1), _mm512_set1_pd(b2));
    let (c1v, c2v) = (_mm512_set1_pd(1.0 - b1), _mm512_set1_pd(1.0 - b2));
    let epsv = _mm512_set1_pd(eps);
    let (pp, pg, pm, pv) = (p.as_mut_ptr(), g.as_ptr(), m.as_mut_ptr(), v.as_mut_ptr());
    let mut i = 0;
    while i + 8 <= n {
        let l = i % lanes;
        let bc1v = _mm512_loadu_pd(bc1.as_ptr().add(l));
        let bc2v = _mm512_loadu_pd(bc2.as_ptr().add(l));
        let lrv = _mm512_loadu_pd(lr.as_ptr().add(l));
        let gv = _mm512_loadu_pd(pg.add(i));
        let mv = _mm512_fmadd_pd(b1v, _mm512_loadu_pd(pm.add(i)), _mm512_mul_pd(c1v, gv));
        let vv = _mm512_fmadd_pd(
            b2v,
            _mm512_loadu_pd(pv.add(i)),
            _mm512_mul_pd(_mm512_mul_pd(c2v, gv), gv),
        );
        _mm512_storeu_pd(pm.add(i), mv);
        _mm512_storeu_pd(pv.add(i), vv);
        let mh = _mm512_div_pd(mv, bc1v);
        let vh = _mm512_div_pd(vv, bc2v);
        let denom = _mm512_add_pd(_mm512_sqrt_pd(vh), epsv);
        let step = _mm512_div_pd(_mm512_mul_pd(lrv, mh), denom);
        _mm512_storeu_pd(pp.add(i), _mm512_sub_pd(_mm512_loadu_pd(pp.add(i)), step));
        i += 8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, f: impl Fn(usize) -> f64) -> Vec<f64> {
        (0..n).map(f).collect()
    }

    /// |a - b| bounded relative to a magnitude scale (guards cancellation).
    fn assert_close(a: f64, b: f64, mag: f64, what: &str) {
        assert!(
            (a - b).abs() <= 1e-12 * (mag.abs() + 1e-300),
            "{what}: {a} vs {b} (mag {mag})"
        );
    }

    #[test]
    fn tier_forcing_overrides_and_restores() {
        let base = current_tier();
        with_tier(SimdTier::Scalar, || {
            assert_eq!(current_tier(), SimdTier::Scalar);
        });
        assert_eq!(current_tier(), base);
        let _ = std::panic::catch_unwind(|| {
            with_tier(SimdTier::Scalar, || panic!("boom"));
        });
        assert_eq!(current_tier(), base);
    }

    #[test]
    fn available_tiers_always_has_scalar() {
        assert!(available_tiers().contains(&SimdTier::Scalar));
    }

    #[test]
    fn kernels_agree_across_tiers_on_adversarial_lengths() {
        for n in [0usize, 1, 3, 4, 5, 7, 8, 33, 257] {
            let a = seq(n, |i| {
                ((i as f64) * 0.37 - 3.0) * if i % 2 == 0 { 1.0 } else { -1.0 }
            });
            let b = seq(n, |i| 1.0 / (i as f64 + 1.5));
            let mag: f64 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
            let results: Vec<(f64, f64)> = available_tiers()
                .iter()
                .map(|&t| with_tier(t, || (dot(&a, &b), dist2(&a, &b))))
                .collect();
            for (d, r) in &results[1..] {
                assert_close(*d, results[0].0, mag, &format!("dot n={n}"));
                let mag2: f64 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
                assert_close(*r, results[0].1, mag2, &format!("dist2 n={n}"));
            }
        }
    }

    #[test]
    fn elementwise_kernels_bit_identical_across_tiers() {
        // scale / add_assign / hadamard use only exactly-rounded vector
        // ops, so the tiers must agree bit-for-bit.
        for n in [0usize, 1, 5, 64, 129] {
            let a = seq(n, |i| (i as f64).sin() * 1e3);
            let b = seq(n, |i| (i as f64 * 0.7).cos());
            let per_tier: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> = available_tiers()
                .iter()
                .map(|&t| {
                    with_tier(t, || {
                        let mut s = a.clone();
                        scale(&mut s, 1.0 / 3.0);
                        let mut ad = a.clone();
                        add_assign(&mut ad, &b);
                        let mut h = vec![0.0; n];
                        hadamard(&a, &b, &mut h);
                        (s, ad, h)
                    })
                })
                .collect();
            for t in &per_tier[1..] {
                for (x, y) in t.0.iter().zip(&per_tier[0].0) {
                    assert_eq!(x.to_bits(), y.to_bits(), "scale n={n}");
                }
                for (x, y) in t.1.iter().zip(&per_tier[0].1) {
                    assert_eq!(x.to_bits(), y.to_bits(), "add_assign n={n}");
                }
                for (x, y) in t.2.iter().zip(&per_tier[0].2) {
                    assert_eq!(x.to_bits(), y.to_bits(), "hadamard n={n}");
                }
            }
        }
    }

    #[test]
    fn dist2_batch_matches_per_point() {
        for (n, dim) in [
            (0usize, 2usize),
            (1, 2),
            (3, 3),
            (4, 2),
            (5, 3),
            (9, 4),
            (13, 1),
        ] {
            let pts = seq(n * dim, |i| (i as f64 * 0.13).sin() * 4.0);
            let q = seq(dim, |i| i as f64 * 0.5 - 0.7);
            for &t in available_tiers() {
                with_tier(t, || {
                    let mut out = vec![0.0; n];
                    dist2_batch(&pts, dim, &q, &mut out);
                    for (j, o) in out.iter().enumerate() {
                        let e = dist2(&pts[j * dim..(j + 1) * dim], &q);
                        let mag = e.abs().max(1.0);
                        assert_close(*o, e, mag, &format!("dist2_batch {t:?} n={n} dim={dim}"));
                    }
                });
            }
        }
    }

    #[test]
    fn spmv_matches_scalar_reference() {
        // Tri-diagonal 9×9 plus an empty row and a dense-ish row.
        let mut triplet_rows: Vec<Vec<(u32, f64)>> = (0..9)
            .map(|r: usize| {
                let mut row = vec![(r as u32, 2.0)];
                if r > 0 {
                    row.push((r as u32 - 1, -1.0));
                }
                if r < 8 {
                    row.push((r as u32 + 1, -1.0));
                }
                row
            })
            .collect();
        triplet_rows.push(Vec::new());
        triplet_rows.push((0..9).map(|c| (c as u32, 0.1 * c as f64 - 0.3)).collect());
        let mut row_ptr = vec![0usize];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for row in &triplet_rows {
            for &(c, v) in row {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        let x = seq(9, |i| (i as f64 - 4.0) * 0.9);
        let rows = triplet_rows.len();
        let expect: Vec<f64> = triplet_rows
            .iter()
            .map(|row| row.iter().map(|&(c, v)| v * x[c as usize]).sum())
            .collect();
        for &t in available_tiers() {
            with_tier(t, || {
                let mut y = vec![0.0; rows];
                spmv(&row_ptr, &col_idx, &values, &x, &mut y);
                for (r, (got, want)) in y.iter().zip(&expect).enumerate() {
                    let mag: f64 = triplet_rows[r]
                        .iter()
                        .map(|&(c, v)| (v * x[c as usize]).abs())
                        .sum();
                    assert_close(*got, *want, mag.max(1.0), &format!("spmv {t:?} row {r}"));
                }
            });
        }
    }

    #[test]
    fn transpose_matches_naive_bitwise_per_tier() {
        for &(rows, cols) in &[
            (0usize, 0usize),
            (1, 1),
            (3, 5),
            (4, 4),
            (5, 3),
            (7, 9),
            (16, 12),
        ] {
            let src = seq(rows * cols, |i| (i as f64 * 0.731).sin() * 1e3);
            let mut want = vec![0.0; rows * cols];
            for r in 0..rows {
                for c in 0..cols {
                    want[c * rows + r] = src[r * cols + c];
                }
            }
            for &t in available_tiers() {
                with_tier(t, || {
                    let mut dst = vec![0.0; rows * cols];
                    transpose(&src, rows, cols, &mut dst);
                    for (got, exp) in dst.iter().zip(&want) {
                        assert_eq!(
                            got.to_bits(),
                            exp.to_bits(),
                            "transpose {t:?} {rows}x{cols}"
                        );
                    }
                });
            }
        }
    }

    #[test]
    fn adam_update_tiers_agree() {
        for n in [1usize, 4, 7, 130] {
            let g = seq(n, |i| (i as f64 * 0.21).sin());
            let runs: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> = available_tiers()
                .iter()
                .map(|&t| {
                    with_tier(t, || {
                        let mut p = seq(n, |i| i as f64 * 0.01);
                        let mut m = seq(n, |i| (i as f64 * 0.1).cos() * 0.2);
                        let mut v = seq(n, |i| 0.1 + i as f64 * 1e-3);
                        adam_update(
                            &mut p, &g, &mut m, &mut v, 0.9, 0.999, 0.1, 0.001, 1e-3, 1e-8,
                        );
                        (p, m, v)
                    })
                })
                .collect();
            for t in &runs[1..] {
                let streams: [(&[f64], &[f64], &str); 3] = [
                    (&t.0, &runs[0].0, "p"),
                    (&t.1, &runs[0].1, "m"),
                    (&t.2, &runs[0].2, "v"),
                ];
                for (got, want, what) in streams {
                    for (x, y) in got.iter().zip(want) {
                        assert_close(*x, *y, y.abs().max(1.0), &format!("adam {what} n={n}"));
                    }
                }
            }
        }
    }

    #[test]
    fn act_kernels_match_reference_formulas() {
        for n in [0usize, 1, 3, 4, 5, 21] {
            let s1 = seq(n, |i| 0.5 + (i as f64 * 0.3).cos() * 0.4);
            let s2 = seq(n, |i| (i as f64 * 0.7).sin() * 0.3);
            let s3 = seq(n, |i| (i as f64 * 0.11).cos() * 0.2);
            let zj = seq(n, |i| i as f64 * 0.05 - 0.4);
            let zh = seq(n, |i| (i as f64 * 0.9).sin());
            let gj = seq(n, |i| 1.0 - i as f64 * 0.02);
            let gh = seq(n, |i| (i as f64).cos() * 0.6);
            for &t in available_tiers() {
                with_tier(t, || {
                    let mut jo = vec![0.0; n];
                    let mut ho = vec![0.0; n];
                    act_fwd_jh(&s1, &s2, &zj, &zh, &mut jo, &mut ho);
                    let mut gz = seq(n, |i| i as f64 * 0.01);
                    let gz0 = gz.clone();
                    let mut gzj = vec![0.0; n];
                    let mut gzh = vec![0.0; n];
                    act_bwd_accum(
                        &s1, &s2, &s3, &zj, &zh, &gj, &gh, &mut gz, &mut gzj, &mut gzh,
                    );
                    for i in 0..n {
                        let ej = s1[i] * zj[i];
                        let eh = s2[i] * zj[i] * zj[i] + s1[i] * zh[i];
                        assert_close(jo[i], ej, ej.abs().max(1.0), "act j");
                        assert_close(ho[i], eh, eh.abs().max(1.0), "act h");
                        let eg = gz0[i]
                            + gj[i] * s2[i] * zj[i]
                            + gh[i] * (s3[i] * zj[i] * zj[i] + s2[i] * zh[i]);
                        assert_close(gz[i], eg, eg.abs().max(1.0), "act gz");
                        let egzj = gj[i] * s1[i] + gh[i] * 2.0 * s2[i] * zj[i];
                        assert_close(gzj[i], egzj, egzj.abs().max(1.0), "act gzj");
                        let egzh = gh[i] * s1[i];
                        assert_close(gzh[i], egzh, egzh.abs().max(1.0), "act gzh");
                    }
                });
            }
        }
    }

    #[test]
    fn bgemm_accum_matches_per_lane_solo_products() {
        // Batched C += A·B over interleaved lanes must be bit-identical
        // (per tier) to running each lane's product through the scalar
        // per-element accumulation it documents.
        let lanes = 8;
        for &(m, kd, n) in &[(1usize, 1usize, 1usize), (2, 3, 5), (5, 7, 4), (4, 8, 3)] {
            let a = seq(m * kd * lanes, |i| (i as f64 * 0.37).sin());
            let b = seq(kd * n * lanes, |i| (i as f64 * 0.13).cos());
            let c0 = seq(m * n * lanes, |i| i as f64 * 0.01 - 0.2);
            for &t in available_tiers() {
                with_tier(t, || {
                    let mut c = c0.clone();
                    bgemm_accum(lanes, &a, &b, &mut c, m, kd, n);
                    for r in 0..m {
                        for j in 0..n {
                            for l in 0..lanes {
                                let mut want = c0[(r * n + j) * lanes + l];
                                for k in 0..kd {
                                    let av = a[(r * kd + k) * lanes + l];
                                    let bv = b[(k * n + j) * lanes + l];
                                    want = if t == SimdTier::Scalar {
                                        want + av * bv
                                    } else {
                                        av.mul_add(bv, want)
                                    };
                                }
                                let got = c[(r * n + j) * lanes + l];
                                assert_eq!(
                                    got.to_bits(),
                                    want.to_bits(),
                                    "bgemm {t:?} m={m} kd={kd} n={n} r={r} j={j} l={l}"
                                );
                            }
                        }
                    }
                });
            }
        }
    }

    #[test]
    fn adam_update_multi_matches_solo_per_lane() {
        // A batched step with per-lane constants must be bit-identical
        // to `lanes` solo adam_update calls on the deinterleaved slices.
        let lanes = 8;
        let np = 13; // params per lane (odd, exercises solo tails)
        let n = np * lanes;
        let g = seq(n, |i| (i as f64 * 0.21).sin());
        let p0 = seq(n, |i| i as f64 * 0.01);
        let m0 = seq(n, |i| (i as f64 * 0.1).cos() * 0.2);
        let v0 = seq(n, |i| 0.1 + i as f64 * 1e-3);
        let bc1: Vec<f64> = (0..lanes).map(|l| 0.1 + l as f64 * 0.02).collect();
        let bc2: Vec<f64> = (0..lanes).map(|l| 0.001 + l as f64 * 1e-4).collect();
        let lr: Vec<f64> = (0..lanes).map(|l| 1e-3 * (1.0 + l as f64 * 0.1)).collect();
        for &t in available_tiers() {
            with_tier(t, || {
                let (mut p, mut m, mut v) = (p0.clone(), m0.clone(), v0.clone());
                adam_update_multi(
                    lanes, &mut p, &g, &mut m, &mut v, 0.9, 0.999, &bc1, &bc2, &lr, 1e-8,
                );
                for l in 0..lanes {
                    let pick =
                        |s: &[f64]| -> Vec<f64> { (0..np).map(|i| s[i * lanes + l]).collect() };
                    let (mut sp, smg, mut sm, mut sv) = (pick(&p0), pick(&g), pick(&m0), pick(&v0));
                    adam_update(
                        &mut sp, &smg, &mut sm, &mut sv, 0.9, 0.999, bc1[l], bc2[l], lr[l], 1e-8,
                    );
                    for i in 0..np {
                        assert_eq!(
                            p[i * lanes + l].to_bits(),
                            sp[i].to_bits(),
                            "adam_multi {t:?} lane {l} param {i}"
                        );
                        assert_eq!(m[i * lanes + l].to_bits(), sm[i].to_bits());
                        assert_eq!(v[i * lanes + l].to_bits(), sv[i].to_bits());
                    }
                }
            });
        }
    }

    #[test]
    fn avx512_request_degrades_without_panicking() {
        // `SGM_SIMD=avx512` must never abort: with_tier still rejects an
        // unavailable tier, but the env path (detected_tier) degrades.
        // We can't re-parse the env here (OnceLock), so assert the
        // invariants the degrade path relies on instead.
        if !avx512_available() {
            assert!(!available_tiers().contains(&SimdTier::Avx512));
            let err = std::panic::catch_unwind(|| with_tier(SimdTier::Avx512, || ()));
            assert!(err.is_err(), "forcing an unavailable tier must panic");
        } else {
            assert!(available_tiers().contains(&SimdTier::Avx512));
            with_tier(SimdTier::Avx512, || {
                assert_eq!(current_tier(), SimdTier::Avx512);
            });
        }
    }

    #[test]
    fn tier_codes_and_names_are_stable() {
        assert_eq!(SimdTier::Scalar.code(), 1);
        assert_eq!(SimdTier::Avx2.code(), 2);
        assert_eq!(SimdTier::Avx512.code(), 3);
        assert_eq!(SimdTier::Scalar.name(), "scalar");
        assert_eq!(SimdTier::Avx2.name(), "avx2");
        assert_eq!(SimdTier::Avx512.name(), "avx512");
    }

    #[test]
    fn subnormal_and_signed_zero_inputs() {
        let a = [5e-324, -5e-324, 0.0, -0.0, 1e-300, -1e-300, 2.5];
        let b = [1.0, 1.0, -0.0, 0.0, 1e150, 1e-20, -2.0];
        for &t in available_tiers() {
            with_tier(t, || {
                let d = dot(&a, &b);
                assert!(d.is_finite(), "{t:?} dot non-finite: {d}");
                let r = dist2(&a, &b);
                assert!(r.is_finite() && r >= 0.0, "{t:?} dist2: {r}");
                let mut y = a.to_vec();
                axpy(1.0, &b, &mut y);
                assert!(y.iter().all(|v| v.is_finite()));
            });
        }
    }
}
