//! # sgm-linalg
//!
//! Self-contained numerical linear algebra for the SGM-PINN reproduction.
//!
//! This crate deliberately avoids BLAS/LAPACK bindings so the whole
//! reproduction builds offline on any machine. It provides exactly the
//! primitives the upper layers need:
//!
//! * [`dense`] — row-major dense matrices, GEMM/GEMV, small-matrix helpers.
//! * [`sparse`] — compressed sparse row (CSR) matrices and SpMV.
//! * [`solve`] — conjugate gradient, Jacobi / Gauss–Seidel / SOR smoothers.
//! * [`eigen`] — symmetric Lanczos with full reorthogonalisation and a
//!   tridiagonal QL eigensolver, plus power iteration.
//! * [`rng`] — deterministic, seedable xoshiro256** RNG with Gaussian and
//!   shuffling helpers (no external dependency, bit-reproducible runs).
//! * [`stats`] — norms, relative errors, summary statistics.
//! * [`simd`] — runtime-dispatched AVX2+FMA f64×4 kernels with portable
//!   scalar fallbacks (`SGM_SIMD={auto,avx2,scalar}`), used by the dense,
//!   sparse, nn and graph hot loops.
//!
//! # Example
//!
//! ```
//! use sgm_linalg::dense::Matrix;
//! use sgm_linalg::solve::{conjugate_gradient, CgOptions};
//! use sgm_linalg::sparse::Csr;
//!
//! // Solve a tiny SPD system A x = b with CG.
//! let a = Csr::from_triplets(2, 2, &[(0, 0, 4.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)]);
//! let b = vec![1.0, 2.0];
//! let x = conjugate_gradient(&a, &b, &CgOptions::default());
//! let mut ax = vec![0.0; 2];
//! a.mul_vec(&x.solution, &mut ax);
//! assert!((ax[0] - b[0]).abs() < 1e-8 && (ax[1] - b[1]).abs() < 1e-8);
//! let _ = Matrix::identity(3);
//! ```

pub mod dense;
pub mod eigen;
pub mod rng;
pub mod simd;
pub mod solve;
pub mod sparse;
pub mod stats;

pub use dense::Matrix;
pub use rng::Rng64;
pub use sparse::Csr;
