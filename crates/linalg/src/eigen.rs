//! Eigensolvers: symmetric Lanczos with full reorthogonalisation, the
//! implicit QL algorithm for the resulting tridiagonal matrices, and power
//! iteration.
//!
//! The stability crate uses [`lanczos`] on the pencil operator `L_Y⁺ L_X`
//! (symmetrised) to obtain the top-`r` eigenpairs that define the ISR edge
//! scores (paper Eq. 9–11).

use crate::dense::{axpy, dot, norm2, scale, Matrix};
use crate::rng::Rng64;
use crate::sparse::LinOp;

/// Which end of the spectrum to report first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpectrumEnd {
    /// Largest eigenvalues first.
    Largest,
    /// Smallest eigenvalues first.
    Smallest,
}

/// An eigenpair `(value, vector)`.
#[derive(Debug, Clone, PartialEq)]
pub struct EigenPair {
    /// The eigenvalue.
    pub value: f64,
    /// The unit-norm eigenvector.
    pub vector: Vec<f64>,
}

/// Eigenvalues and eigenvectors of a symmetric tridiagonal matrix with
/// diagonal `d` and off-diagonal `e` (`e.len() == d.len() - 1`), via the
/// implicit QL algorithm with Wilkinson shifts.
///
/// Returns pairs sorted ascending by eigenvalue. The eigenvector matrix has
/// eigenvectors as columns.
///
/// # Panics
/// Panics if `e.len() + 1 != d.len()` (for non-empty `d`) or the QL
/// iteration fails to converge (pathological input).
pub fn tridiag_eig(d: &[f64], e: &[f64]) -> (Vec<f64>, Matrix) {
    let n = d.len();
    if n == 0 {
        return (Vec::new(), Matrix::zeros(0, 0));
    }
    assert_eq!(e.len() + 1, n, "off-diagonal length");
    let mut dd = d.to_vec();
    let mut ee = {
        let mut v = e.to_vec();
        v.push(0.0);
        v
    };
    let mut z = Matrix::identity(n);
    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small off-diagonal element.
            let mut m = l;
            while m + 1 < n {
                let ddm = dd[m].abs() + dd[m + 1].abs();
                if ee[m].abs() <= 1e-15 * ddm + 1e-300 {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            assert!(iter <= 100, "tridiag QL failed to converge");
            let mut g = (dd[l + 1] - dd[l]) / (2.0 * ee[l]);
            let mut r = (g * g + 1.0).sqrt();
            g = dd[m] - dd[l] + ee[l] / (g + if g >= 0.0 { r } else { -r });
            let (mut s, mut c) = (1.0, 1.0);
            let mut p = 0.0;
            for i in (l..m).rev() {
                let mut f = s * ee[i];
                let b = c * ee[i];
                r = (f * f + g * g).sqrt();
                ee[i + 1] = r;
                if r == 0.0 {
                    dd[i + 1] -= p;
                    ee[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = dd[i + 1] - p;
                r = (dd[i] - g) * s + 2.0 * c * b;
                p = s * r;
                dd[i + 1] = g + p;
                g = c * r - b;
                for k in 0..n {
                    f = z.get(k, i + 1);
                    z.set(k, i + 1, s * z.get(k, i) + c * f);
                    z.set(k, i, c * z.get(k, i) - s * f);
                }
            }
            if r == 0.0 && m > l + 1 {
                continue;
            }
            dd[l] -= p;
            ee[l] = g;
            ee[m] = 0.0;
        }
    }
    // Sort ascending.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| dd[a].partial_cmp(&dd[b]).unwrap());
    let vals: Vec<f64> = order.iter().map(|&i| dd[i]).collect();
    let mut vecs = Matrix::zeros(n, n);
    for (new_c, &old_c) in order.iter().enumerate() {
        for r in 0..n {
            vecs.set(r, new_c, z.get(r, old_c));
        }
    }
    (vals, vecs)
}

/// Options for [`lanczos`].
#[derive(Debug, Clone, PartialEq)]
pub struct LanczosOptions {
    /// Number of eigenpairs wanted.
    pub num_pairs: usize,
    /// Krylov subspace dimension (defaults to `max(2·num_pairs + 10, 30)`
    /// when zero).
    pub subspace: usize,
    /// Which end of the spectrum.
    pub end: SpectrumEnd,
    /// RNG seed for the starting vector.
    pub seed: u64,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        LanczosOptions {
            num_pairs: 4,
            subspace: 0,
            end: SpectrumEnd::Largest,
            seed: 0xDEC0DE,
        }
    }
}

/// Symmetric Lanczos with full reorthogonalisation.
///
/// Returns up to `opts.num_pairs` Ritz pairs from the requested end of the
/// spectrum. The operator must be symmetric; Ritz pairs of non-symmetric
/// operators are not meaningful.
///
/// # Panics
/// Panics if `opts.num_pairs == 0` or the operator dimension is zero.
pub fn lanczos<A: LinOp + ?Sized>(a: &A, opts: &LanczosOptions) -> Vec<EigenPair> {
    let n = a.dim();
    assert!(n > 0, "empty operator");
    assert!(opts.num_pairs > 0, "num_pairs must be positive");
    let m = if opts.subspace == 0 {
        (2 * opts.num_pairs + 10).max(30).min(n)
    } else {
        opts.subspace.min(n)
    };

    let mut rng = Rng64::new(opts.seed);
    let mut q: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
    let mut v0: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
    let nv = norm2(&v0).max(1e-300);
    scale(&mut v0, 1.0 / nv);
    q.push(v0);

    let mut alphas = Vec::with_capacity(m);
    let mut betas: Vec<f64> = Vec::with_capacity(m);
    let mut w = vec![0.0; n];
    for j in 0..m {
        a.apply_to(&q[j], &mut w);
        let alpha = dot(&w, &q[j]);
        alphas.push(alpha);
        axpy(-alpha, &q[j], &mut w);
        if j > 0 {
            let beta_prev = betas[j - 1];
            axpy(-beta_prev, &q[j - 1], &mut w);
        }
        // Full reorthogonalisation (twice for stability).
        for _ in 0..2 {
            for qi in &q {
                let c = dot(&w, qi);
                if c != 0.0 {
                    axpy(-c, qi, &mut w);
                }
            }
        }
        let beta = norm2(&w);
        if beta < 1e-12 || j + 1 == m {
            break;
        }
        betas.push(beta);
        let next: Vec<f64> = w.iter().map(|x| x / beta).collect();
        q.push(next);
    }

    let k = alphas.len();
    let (vals, vecs) = tridiag_eig(&alphas, &betas[..k.saturating_sub(1)]);
    let mut order: Vec<usize> = (0..k).collect();
    match opts.end {
        SpectrumEnd::Largest => order.sort_by(|&a, &b| vals[b].partial_cmp(&vals[a]).unwrap()),
        SpectrumEnd::Smallest => order.sort_by(|&a, &b| vals[a].partial_cmp(&vals[b]).unwrap()),
    }
    order
        .into_iter()
        .take(opts.num_pairs)
        .map(|ti| {
            let mut vec = vec![0.0; n];
            for (j, qj) in q.iter().enumerate().take(k) {
                axpy(vecs.get(j, ti), qj, &mut vec);
            }
            let nv = norm2(&vec).max(1e-300);
            scale(&mut vec, 1.0 / nv);
            EigenPair {
                value: vals[ti],
                vector: vec,
            }
        })
        .collect()
}

/// Power iteration for the dominant eigenpair of a symmetric operator.
///
/// # Panics
/// Panics if `iters == 0` or the operator dimension is zero.
pub fn power_iteration<A: LinOp + ?Sized>(a: &A, iters: usize, seed: u64) -> EigenPair {
    let n = a.dim();
    assert!(n > 0 && iters > 0);
    let mut rng = Rng64::new(seed);
    let mut v: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
    let nv = norm2(&v).max(1e-300);
    scale(&mut v, 1.0 / nv);
    let mut av = vec![0.0; n];
    let mut lambda = 0.0;
    for _ in 0..iters {
        a.apply_to(&v, &mut av);
        lambda = dot(&v, &av);
        let nav = norm2(&av);
        if nav < 1e-300 {
            break;
        }
        for i in 0..n {
            v[i] = av[i] / nav;
        }
    }
    EigenPair {
        value: lambda,
        vector: v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::Csr;

    fn diag_op(values: &[f64]) -> Csr {
        let trips: Vec<(usize, usize, f64)> =
            values.iter().enumerate().map(|(i, &v)| (i, i, v)).collect();
        Csr::from_triplets(values.len(), values.len(), &trips)
    }

    #[test]
    fn tridiag_eig_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let (vals, vecs) = tridiag_eig(&[2.0, 2.0], &[1.0]);
        assert!((vals[0] - 1.0).abs() < 1e-12);
        assert!((vals[1] - 3.0).abs() < 1e-12);
        // Eigenvector for λ=3 is (1,1)/√2.
        let r = vecs.get(0, 1) / vecs.get(1, 1);
        assert!((r - 1.0).abs() < 1e-10);
    }

    #[test]
    fn tridiag_eig_known_laplacian_path() {
        // Path Laplacian eigenvalues: 2 - 2cos(kπ/n), k = 0..n-1 — for the
        // free path (Neumann), d = [1,2,...,2,1].
        let n = 8;
        let mut d = vec![2.0; n];
        d[0] = 1.0;
        d[n - 1] = 1.0;
        let e = vec![-1.0; n - 1];
        let (vals, _) = tridiag_eig(&d, &e);
        for (k, v) in vals.iter().enumerate() {
            let expect = 2.0 - 2.0 * (std::f64::consts::PI * k as f64 / n as f64).cos();
            assert!((v - expect).abs() < 1e-9, "k={k}: {v} vs {expect}");
        }
    }

    #[test]
    fn lanczos_diag_largest() {
        let a = diag_op(&[1.0, 5.0, 3.0, 9.0, 2.0, 7.0]);
        let pairs = lanczos(
            &a,
            &LanczosOptions {
                num_pairs: 2,
                ..LanczosOptions::default()
            },
        );
        assert!((pairs[0].value - 9.0).abs() < 1e-8);
        assert!((pairs[1].value - 7.0).abs() < 1e-8);
    }

    #[test]
    fn lanczos_diag_smallest() {
        let a = diag_op(&[1.0, 5.0, 3.0, 9.0, 2.0, 7.0]);
        let pairs = lanczos(
            &a,
            &LanczosOptions {
                num_pairs: 2,
                end: SpectrumEnd::Smallest,
                ..LanczosOptions::default()
            },
        );
        assert!((pairs[0].value - 1.0).abs() < 1e-8);
        assert!((pairs[1].value - 2.0).abs() < 1e-8);
    }

    #[test]
    fn lanczos_eigvecs_satisfy_pencil() {
        let mut rng = Rng64::new(77);
        let g = Matrix::gaussian(12, 12, &mut rng);
        let a = g.matmul(&g.transposed());
        let pairs = lanczos(
            &a,
            &LanczosOptions {
                num_pairs: 3,
                subspace: 12,
                ..LanczosOptions::default()
            },
        );
        for p in &pairs {
            let av = a.mul_vec(&p.vector);
            for (avi, vi) in av.iter().zip(&p.vector) {
                assert!((avi - p.value * vi).abs() < 1e-6, "residual too large");
            }
        }
    }

    #[test]
    fn lanczos_matches_jacobi_eig() {
        let mut rng = Rng64::new(99);
        let g = Matrix::gaussian(10, 10, &mut rng);
        let a = g.matmul(&g.transposed());
        let (mut vals, _) = a.sym_eig();
        vals.sort_by(|x, y| y.partial_cmp(x).unwrap());
        let pairs = lanczos(
            &a,
            &LanczosOptions {
                num_pairs: 3,
                subspace: 10,
                ..LanczosOptions::default()
            },
        );
        for (i, p) in pairs.iter().enumerate() {
            assert!(
                (p.value - vals[i]).abs() < 1e-7,
                "λ{i}: {} vs {}",
                p.value,
                vals[i]
            );
        }
    }

    #[test]
    fn power_iteration_dominant() {
        let a = diag_op(&[1.0, 2.0, 10.0, 3.0]);
        let p = power_iteration(&a, 200, 5);
        assert!((p.value - 10.0).abs() < 1e-6);
        assert!(p.vector[2].abs() > 0.999);
    }

    #[test]
    fn lanczos_handles_small_operator() {
        let a = diag_op(&[4.0]);
        let pairs = lanczos(
            &a,
            &LanczosOptions {
                num_pairs: 1,
                ..LanczosOptions::default()
            },
        );
        assert_eq!(pairs.len(), 1);
        assert!((pairs[0].value - 4.0).abs() < 1e-10);
    }
}
