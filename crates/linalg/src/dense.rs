//! Row-major dense matrices and the handful of BLAS-like kernels the
//! reproduction needs (GEMM, GEMV, transpose, small solves).
//!
//! GEMM and both GEMV variants run through a cache-blocked kernel and,
//! above a flop-count cutoff, split into row/column bands on the shared
//! [`sgm_par`] pool (selected by [`sgm_par::current`], default auto).
//! Banding never reorders any scalar accumulation — per output element
//! the k/row sums stay in ascending order — so results are bit-identical
//! across thread counts, and identical to the serial reference kernels
//! kept below as oracles ([`gemm_reference`]).

use crate::rng::Rng64;

/// Mul-add count above which GEMM parallelizes under `Parallelism::Auto`.
const GEMM_PAR_FLOPS: usize = 64 * 64 * 64;
/// Mul-add count above which GEMV parallelizes under `Parallelism::Auto`.
const GEMV_PAR_FLOPS: usize = 64 * 1024;
/// k-panel length of the blocked GEMM kernel: one panel of B
/// (`GEMM_KC × n` elements) stays cache-hot across all rows of a band.
const GEMM_KC: usize = 64;

/// A row-major dense `rows × cols` matrix of `f64`.
///
/// # Example
///
/// ```
/// use sgm_linalg::dense::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b);
/// assert_eq!(c.get(1, 0), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds from row slices.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Matrix { rows, cols, data }
    }

    /// Matrix filled with standard Gaussian entries.
    pub fn gaussian(rows: usize, cols: usize, rng: &mut Rng64) -> Self {
        let data = (0..rows * cols).map(|_| rng.gaussian()).collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    ///
    /// # Panics
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Element setter.
    ///
    /// # Panics
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Adds `v` to element `(r, c)`.
    #[inline]
    pub fn add_at(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] += v;
    }

    /// Borrow of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows, "row index out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes self, returning the flat buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        crate::simd::transpose(&self.data, self.rows, self.cols, &mut t.data);
        t
    }

    /// Writes the transpose of `self` into `dst` without allocating —
    /// the hot-loop variant of [`Matrix::transposed`].
    ///
    /// # Panics
    /// Panics if `dst` is not `cols × rows`.
    pub fn transpose_into(&self, dst: &mut Matrix) {
        assert_eq!(
            (dst.rows, dst.cols),
            (self.cols, self.rows),
            "transpose_into shape mismatch"
        );
        crate::simd::transpose(&self.data, self.rows, self.cols, &mut dst.data);
    }

    /// Overwrites every entry with `v` (buffer reuse in workspaces).
    pub fn fill(&mut self, v: f64) {
        for x in &mut self.data {
            *x = v;
        }
    }

    /// Copies another matrix of identical shape into `self`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn copy_from(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "copy_from shape mismatch"
        );
        self.data.copy_from_slice(&other.data);
    }

    /// Dense GEMM: `self * other`.
    ///
    /// # Panics
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "gemm dims {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        gemm(1.0, self, other, 0.0, &mut out);
        out
    }

    /// Dense GEMV: `y = self * x`. Rows are independent dot products, so
    /// the parallel path is bit-identical to the serial one.
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "gemv dim");
        let mut y = vec![0.0; self.rows];
        match sgm_par::current().pool(self.rows * self.cols, GEMV_PAR_FLOPS) {
            Some(pool) => {
                pool.par_chunks_mut(&mut y, 16, |r0, band| {
                    for (off, v) in band.iter_mut().enumerate() {
                        *v = dot(self.row(r0 + off), x);
                    }
                });
            }
            None => {
                for (r, yr) in y.iter_mut().enumerate() {
                    *yr = dot(self.row(r), x);
                }
            }
        }
        y
    }

    /// Transposed GEMV: `y = selfᵀ * x`, accumulated with an unconditional
    /// fused loop (a skip-on-zero branch mispredicts on dense inputs).
    /// The parallel path splits `y` into column bands; each column's sum
    /// over rows stays in ascending row order, so results are
    /// bit-identical to serial.
    ///
    /// # Panics
    /// Panics if `x.len() != rows`.
    pub fn mul_vec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "gemv-t dim");
        let mut y = vec![0.0; self.cols];
        match sgm_par::current().pool(self.rows * self.cols, GEMV_PAR_FLOPS) {
            Some(pool) => {
                pool.par_chunks_mut(&mut y, 32, |c0, band| {
                    for (r, &xr) in x.iter().enumerate() {
                        let base = r * self.cols + c0;
                        let arow = &self.data[base..base + band.len()];
                        axpy(xr, arow, band);
                    }
                });
            }
            None => {
                for (r, &xr) in x.iter().enumerate() {
                    axpy(xr, self.row(r), &mut y);
                }
            }
        }
        y
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// In-place scaling (SIMD-dispatched).
    pub fn scale(&mut self, s: f64) {
        scale(&mut self.data, s);
    }

    /// In-place AXPY on matrices: `self += alpha * other`
    /// (SIMD-dispatched).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "axpy shape"
        );
        axpy(alpha, &other.data, &mut self.data);
    }

    /// Solves `self * x = b` by Gaussian elimination with partial pivoting.
    /// Intended for small dense systems (test oracles, pseudo-inverse of
    /// small Laplacians).
    ///
    /// Returns `None` if the matrix is numerically singular.
    ///
    /// # Panics
    /// Panics if the matrix is not square or `b.len() != rows`.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve needs square");
        assert_eq!(b.len(), self.rows, "rhs dim");
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Pivot.
            let mut piv = col;
            let mut best = a[col * n + col].abs();
            for r in col + 1..n {
                let v = a[r * n + col].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best < 1e-300 {
                return None;
            }
            if piv != col {
                for c in 0..n {
                    a.swap(col * n + c, piv * n + c);
                }
                x.swap(col, piv);
            }
            let d = a[col * n + col];
            for r in col + 1..n {
                let f = a[r * n + col] / d;
                if f != 0.0 {
                    for c in col..n {
                        a[r * n + c] -= f * a[col * n + c];
                    }
                    x[r] -= f * x[col];
                }
            }
        }
        for col in (0..n).rev() {
            let mut s = x[col];
            for c in col + 1..n {
                s -= a[col * n + c] * x[c];
            }
            x[col] = s / a[col * n + col];
        }
        Some(x)
    }

    /// Moore–Penrose pseudo-inverse of a symmetric PSD matrix via its full
    /// eigendecomposition (Jacobi rotations). O(n³); test-oracle use only.
    ///
    /// Eigenvalues below `tol * λ_max` are treated as zero.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn sym_pinv(&self, tol: f64) -> Matrix {
        let (vals, vecs) = self.sym_eig();
        let n = self.rows;
        let lmax = vals.iter().cloned().fold(0.0, f64::max).max(1e-300);
        let mut out = Matrix::zeros(n, n);
        for (k, &vk) in vals.iter().enumerate() {
            if vk > tol * lmax {
                let inv = 1.0 / vk;
                for i in 0..n {
                    let vik = vecs.get(i, k);
                    if vik == 0.0 {
                        continue;
                    }
                    for j in 0..n {
                        out.add_at(i, j, inv * vik * vecs.get(j, k));
                    }
                }
            }
        }
        out
    }

    /// Cholesky factorisation `self = C Cᵀ` of a symmetric positive-definite
    /// matrix (lower-triangular `C`). Returns `None` if a non-positive pivot
    /// is encountered.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn cholesky(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "cholesky needs square");
        let n = self.rows;
        let mut c = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = self.get(i, j);
                for k in 0..j {
                    s -= c.get(i, k) * c.get(j, k);
                }
                if i == j {
                    if s <= 0.0 {
                        return None;
                    }
                    c.set(i, i, s.sqrt());
                } else {
                    c.set(i, j, s / c.get(j, j));
                }
            }
        }
        Some(c)
    }

    /// Solves `C x = b` for lower-triangular `C` (forward substitution).
    ///
    /// # Panics
    /// Panics on shape mismatch or a zero diagonal entry.
    pub fn forward_substitute(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, self.cols, "needs square");
        assert_eq!(b.len(), self.rows, "rhs dim");
        let n = self.rows;
        let mut x = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                s -= self.get(i, j) * xj;
            }
            let d = self.get(i, i);
            assert!(d != 0.0, "zero diagonal");
            x[i] = s / d;
        }
        x
    }

    /// Solves `Cᵀ x = b` for lower-triangular `C` (back substitution on the
    /// transpose).
    ///
    /// # Panics
    /// Panics on shape mismatch or a zero diagonal entry.
    pub fn back_substitute_t(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, self.cols, "needs square");
        assert_eq!(b.len(), self.rows, "rhs dim");
        let n = self.rows;
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = b[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                s -= self.get(j, i) * xj;
            }
            let d = self.get(i, i);
            assert!(d != 0.0, "zero diagonal");
            x[i] = s / d;
        }
        x
    }

    /// Full symmetric eigendecomposition by cyclic Jacobi rotations.
    /// Returns `(eigenvalues, eigenvector_columns)`. O(n³); intended for
    /// small matrices (oracles / ISR on probe subsets).
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn sym_eig(&self) -> (Vec<f64>, Matrix) {
        assert_eq!(self.rows, self.cols, "sym_eig needs square");
        let n = self.rows;
        let mut a = self.clone();
        let mut v = Matrix::identity(n);
        for _sweep in 0..100 {
            let mut off = 0.0;
            for p in 0..n {
                for q in p + 1..n {
                    off += a.get(p, q).abs();
                }
            }
            if off < 1e-12 {
                break;
            }
            for p in 0..n {
                for q in p + 1..n {
                    let apq = a.get(p, q);
                    if apq.abs() < 1e-300 {
                        continue;
                    }
                    let app = a.get(p, p);
                    let aqq = a.get(q, q);
                    let theta = 0.5 * (aqq - app) / apq;
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    for k in 0..n {
                        let akp = a.get(k, p);
                        let akq = a.get(k, q);
                        a.set(k, p, c * akp - s * akq);
                        a.set(k, q, s * akp + c * akq);
                    }
                    for k in 0..n {
                        let apk = a.get(p, k);
                        let aqk = a.get(q, k);
                        a.set(p, k, c * apk - s * aqk);
                        a.set(q, k, s * apk + c * aqk);
                    }
                    for k in 0..n {
                        let vkp = v.get(k, p);
                        let vkq = v.get(k, q);
                        v.set(k, p, c * vkp - s * vkq);
                        v.set(k, q, s * vkp + c * vkq);
                    }
                }
            }
        }
        let vals = (0..n).map(|i| a.get(i, i)).collect();
        (vals, v)
    }
}

/// `c = alpha * a * b + beta * c`.
///
/// Dispatches to the cache-blocked, register-tiled kernel
/// ([`gemm_band`]); above [`GEMM_PAR_FLOPS`] mul-adds the output rows
/// split into bands on the shared pool. Per output element the k-sum
/// stays in ascending order in every path, so `gemm` is bit-identical
/// across thread counts and to the naive [`gemm_reference`] oracle.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn gemm(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) {
    assert_eq!(a.cols, b.rows, "gemm inner dim");
    assert_eq!(c.rows, a.rows, "gemm out rows");
    assert_eq!(c.cols, b.cols, "gemm out cols");
    if beta != 1.0 {
        for v in &mut c.data {
            *v *= beta;
        }
    }
    let n = b.cols;
    if a.rows == 0 || n == 0 || a.cols == 0 {
        return;
    }
    match sgm_par::current().pool(a.rows * a.cols * n, GEMM_PAR_FLOPS) {
        Some(pool) => {
            pool.par_rows_mut(&mut c.data, n, 1, |row0, cband| {
                gemm_band(alpha, a, b, row0, cband);
            });
        }
        None => gemm_band(alpha, a, b, 0, &mut c.data),
    }
}

/// Blocked kernel over one horizontal band of `c`, dispatched on the
/// SIMD tier: the AVX-512 and AVX2 variants vectorise the innermost j
/// loop 8- resp. 4-wide (FMA, ascending-k update order preserved), the
/// scalar variant is the original register-tiled kernel. All keep
/// per-element accumulation order independent of the band split, so
/// parallelism stays bit-invariant within any tier.
fn gemm_band(alpha: f64, a: &Matrix, b: &Matrix, row0: usize, cband: &mut [f64]) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: a vector tier is only selected when its CPU features are
    // available; shapes are validated by the `gemm` entry point.
    match crate::simd::current_tier() {
        crate::simd::SimdTier::Avx512 => {
            return unsafe {
                crate::simd::gemm_band_avx512(
                    alpha, &a.data, a.cols, &b.data, b.cols, GEMM_KC, row0, cband,
                )
            };
        }
        crate::simd::SimdTier::Avx2 => {
            return unsafe {
                crate::simd::gemm_band_avx2(
                    alpha, &a.data, a.cols, &b.data, b.cols, GEMM_KC, row0, cband,
                )
            };
        }
        crate::simd::SimdTier::Scalar => {}
    }
    gemm_band_scalar(alpha, a, b, row0, cband)
}

/// Scalar blocked kernel over one horizontal band of `c` (rows
/// `row0..row0 + cband.len()/n`): the k loop is cut into [`GEMM_KC`]
/// panels so a `GEMM_KC × n` slab of B stays cache-hot across every row
/// of the band, and the innermost update is 4-way register-tiled over k.
/// The fused update expression evaluates left-to-right, preserving the
/// sequential-k association of the naive kernel bit-for-bit — the
/// scalar tier is bit-equal to [`gemm_reference`].
fn gemm_band_scalar(alpha: f64, a: &Matrix, b: &Matrix, row0: usize, cband: &mut [f64]) {
    let kdim = a.cols;
    let n = b.cols;
    debug_assert_eq!(cband.len() % n, 0);
    let rows = cband.len() / n;
    let mut k0 = 0;
    while k0 < kdim {
        let kend = (k0 + GEMM_KC).min(kdim);
        for ri in 0..rows {
            let arow = &a.data[(row0 + ri) * kdim..(row0 + ri + 1) * kdim];
            let crow = &mut cband[ri * n..(ri + 1) * n];
            let mut k = k0;
            while k + 4 <= kend {
                let f0 = alpha * arow[k];
                let f1 = alpha * arow[k + 1];
                let f2 = alpha * arow[k + 2];
                let f3 = alpha * arow[k + 3];
                let (b0, rest) = b.data[k * n..(k + 4) * n].split_at(n);
                let (b1, rest) = rest.split_at(n);
                let (b2, b3) = rest.split_at(n);
                for (j, cv) in crow.iter_mut().enumerate() {
                    *cv = *cv + f0 * b0[j] + f1 * b1[j] + f2 * b2[j] + f3 * b3[j];
                }
                k += 4;
            }
            while k < kend {
                let f = alpha * arow[k];
                let brow = &b.data[k * n..(k + 1) * n];
                for (cv, bv) in crow.iter_mut().zip(brow) {
                    *cv += f * bv;
                }
                k += 1;
            }
        }
        k0 = kend;
    }
}

/// Serial reference GEMM (naive ikj loop) — the oracle the blocked and
/// banded paths are property-tested against. `c = alpha*a*b + beta*c`.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn gemm_reference(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) {
    assert_eq!(a.cols, b.rows, "gemm inner dim");
    assert_eq!(c.rows, a.rows, "gemm out rows");
    assert_eq!(c.cols, b.cols, "gemm out cols");
    if beta != 1.0 {
        for v in &mut c.data {
            *v *= beta;
        }
    }
    let n = b.cols;
    for i in 0..a.rows {
        let arow = &a.data[i * a.cols..(i + 1) * a.cols];
        let crow = &mut c.data[i * n..(i + 1) * n];
        for (k, &aik) in arow.iter().enumerate() {
            let f = alpha * aik;
            let brow = &b.data[k * n..(k + 1) * n];
            for (cv, bv) in crow.iter_mut().zip(brow) {
                *cv += f * bv;
            }
        }
    }
}

/// Dot product (SIMD-dispatched; four index-strided partial sums in
/// both tiers — see `simd` module docs for the cross-tier contract).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    crate::simd::dot(a, b)
}

/// `y += alpha * x` (SIMD-dispatched, elementwise — bit-invariant under
/// any chunked parallel split).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    crate::simd::axpy(alpha, x, y)
}

/// Euclidean norm.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// In-place scaling of a vector (SIMD-dispatched).
#[inline]
pub fn scale(x: &mut [f64], s: f64) {
    crate::simd::scale(x, s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i3 = Matrix::identity(3);
        assert_eq!(a.matmul(&i3), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_involutive() {
        let mut rng = Rng64::new(1);
        let a = Matrix::gaussian(4, 7, &mut rng);
        assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn mul_vec_matches_matmul() {
        let mut rng = Rng64::new(2);
        let a = Matrix::gaussian(5, 3, &mut rng);
        let x = vec![1.0, -2.0, 0.5];
        let y = a.mul_vec(&x);
        let xm = Matrix::from_vec(3, 1, x);
        let ym = a.matmul(&xm);
        for (i, yi) in y.iter().enumerate() {
            assert!((yi - ym.get(i, 0)).abs() < 1e-12);
        }
    }

    #[test]
    fn mul_vec_t_matches_transpose() {
        let mut rng = Rng64::new(3);
        let a = Matrix::gaussian(5, 3, &mut rng);
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let y1 = a.mul_vec_t(&x);
        let y2 = a.transposed().mul_vec(&x);
        for i in 0..3 {
            assert!((y1[i] - y2[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_roundtrip() {
        let mut rng = Rng64::new(4);
        // Diagonally dominant => well conditioned.
        let n = 8;
        let mut a = Matrix::gaussian(n, n, &mut rng);
        for i in 0..n {
            a.add_at(i, i, 10.0);
        }
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let b = a.mul_vec(&x_true);
        let x = a.solve(&b).expect("nonsingular");
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-9, "{} vs {}", x[i], x_true[i]);
        }
    }

    #[test]
    fn solve_detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(a.solve(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn sym_eig_reconstructs() {
        let mut rng = Rng64::new(5);
        let n = 6;
        let g = Matrix::gaussian(n, n, &mut rng);
        let a = g.matmul(&g.transposed()); // SPD
        let (vals, vecs) = a.sym_eig();
        // A v_k = λ_k v_k
        for (k, &lk) in vals.iter().enumerate() {
            let vk: Vec<f64> = (0..n).map(|i| vecs.get(i, k)).collect();
            let av = a.mul_vec(&vk);
            for (avi, vki) in av.iter().zip(&vk) {
                assert!((avi - lk * vki).abs() < 1e-7, "eigpair {k}");
            }
        }
    }

    #[test]
    fn sym_pinv_of_laplacian() {
        // Path graph on 3 nodes: L = [[1,-1,0],[-1,2,-1],[0,-1,1]]
        let l = Matrix::from_rows(&[&[1.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 1.0]]);
        let p = l.sym_pinv(1e-9);
        // L * L⁺ * L = L
        let t = l.matmul(&p).matmul(&l);
        for i in 0..3 {
            for j in 0..3 {
                assert!((t.get(i, j) - l.get(i, j)).abs() < 1e-8);
            }
        }
        // Effective resistance between ends of a 2-edge path = 2.
        let e = [1.0, 0.0, -1.0];
        let pe = p.mul_vec(&e);
        let r = dot(&e, &pe);
        assert!((r - 2.0).abs() < 1e-8, "R = {r}");
    }

    #[test]
    fn cholesky_roundtrip() {
        let mut rng = Rng64::new(6);
        let g = Matrix::gaussian(5, 5, &mut rng);
        let mut a = g.matmul(&g.transposed());
        for i in 0..5 {
            a.add_at(i, i, 1.0);
        }
        let c = a.cholesky().expect("SPD");
        let cct = c.matmul(&c.transposed());
        for i in 0..5 {
            for j in 0..5 {
                assert!((cct.get(i, j) - a.get(i, j)).abs() < 1e-9);
            }
        }
        // Triangular solves invert the factorisation.
        let b = vec![1.0, -2.0, 3.0, 0.5, 0.0];
        let y = c.forward_substitute(&b);
        let x = c.back_substitute_t(&y);
        let ax = a.mul_vec(&x);
        for i in 0..5 {
            assert!((ax[i] - b[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!(a.cholesky().is_none());
    }

    #[test]
    fn gemm_beta_accumulates() {
        let a = Matrix::identity(2);
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let mut c = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        gemm(2.0, &a, &b, 0.5, &mut c);
        assert_eq!(c.get(0, 0), 2.5);
        assert_eq!(c.get(0, 1), 0.5);
    }

    #[test]
    fn gemm_matches_reference_bit_exactly() {
        use crate::simd::{self, SimdTier};
        use sgm_par::{with_parallelism, Parallelism};
        let mut rng = Rng64::new(7);
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 2),
            (17, 33, 9),
            (70, 70, 70),
        ] {
            let a = Matrix::gaussian(m, k, &mut rng);
            let b = Matrix::gaussian(k, n, &mut rng);
            let c0 = Matrix::gaussian(m, n, &mut rng);
            let mut expect = c0.clone();
            gemm_reference(0.7, &a, &b, 0.3, &mut expect);
            for &tier in simd::available_tiers() {
                simd::with_tier(tier, || {
                    let mut base = c0.clone();
                    with_parallelism(Parallelism::Serial, || gemm(0.7, &a, &b, 0.3, &mut base));
                    for (x, y) in base.as_slice().iter().zip(expect.as_slice()) {
                        if tier == SimdTier::Scalar {
                            // The scalar tier preserves the naive kernel's
                            // association, so it stays bit-equal to the oracle.
                            assert_eq!(x.to_bits(), y.to_bits(), "{m}x{k}x{n} scalar vs ref");
                        } else {
                            // FMA tiers diverge only by contraction rounding.
                            assert!(
                                (x - y).abs() <= 1e-12 * (y.abs() + 1.0),
                                "{m}x{k}x{n} {tier:?} vs ref: {x} vs {y}"
                            );
                        }
                    }
                    // Within a tier, parallelism is bit-invariant.
                    for p in [Parallelism::Threads(2), Parallelism::Threads(8)] {
                        let mut c = c0.clone();
                        with_parallelism(p, || gemm(0.7, &a, &b, 0.3, &mut c));
                        for (x, y) in c.as_slice().iter().zip(base.as_slice()) {
                            assert_eq!(x.to_bits(), y.to_bits(), "{m}x{k}x{n} {tier:?} {p:?}");
                        }
                    }
                });
            }
        }
    }

    #[test]
    fn gemv_parallel_matches_serial_bit_exactly() {
        use crate::simd;
        use sgm_par::{with_parallelism, Parallelism};
        let mut rng = Rng64::new(8);
        let a = Matrix::gaussian(65, 41, &mut rng);
        let x: Vec<f64> = (0..41).map(|_| rng.gaussian()).collect();
        let xt: Vec<f64> = (0..65).map(|_| rng.gaussian()).collect();
        for &tier in simd::available_tiers() {
            simd::with_tier(tier, || {
                let y0 = with_parallelism(Parallelism::Serial, || a.mul_vec(&x));
                let z0 = with_parallelism(Parallelism::Serial, || a.mul_vec_t(&xt));
                for threads in [2usize, 8] {
                    let y = with_parallelism(Parallelism::Threads(threads), || a.mul_vec(&x));
                    let z = with_parallelism(Parallelism::Threads(threads), || a.mul_vec_t(&xt));
                    assert!(y.iter().zip(&y0).all(|(p, q)| p.to_bits() == q.to_bits()));
                    assert!(z.iter().zip(&z0).all(|(p, q)| p.to_bits() == q.to_bits()));
                }
            });
        }
    }

    #[test]
    fn vector_helpers() {
        let a = [1.0, 2.0, 2.0];
        assert_eq!(norm2(&a), 3.0);
        let mut y = vec![1.0, 1.0, 1.0];
        axpy(2.0, &a, &mut y);
        assert_eq!(y, vec![3.0, 5.0, 5.0]);
        scale(&mut y, 0.5);
        assert_eq!(y, vec![1.5, 2.5, 2.5]);
    }
}
