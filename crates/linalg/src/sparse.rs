//! Compressed sparse row matrices.
//!
//! The PGM Laplacians in SGM-PINN have `O(kN)` nonzeros; CSR keeps SpMV,
//! smoothers and CG linear in the edge count.

use crate::dense::Matrix;

/// A compressed-sparse-row `f64` matrix.
///
/// # Example
///
/// ```
/// use sgm_linalg::sparse::Csr;
/// let a = Csr::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 3.0)]);
/// let mut y = vec![0.0; 2];
/// a.mul_vec(&[1.0, 1.0], &mut y);
/// assert_eq!(y, vec![2.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl Csr {
    /// Builds from COO triplets `(row, col, value)`. Duplicate entries are
    /// summed. Entries that sum to exactly zero are retained (harmless).
    ///
    /// # Panics
    /// Panics if any index is out of bounds or `cols > u32::MAX`.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        assert!(cols <= u32::MAX as usize, "cols exceed u32 index space");
        let mut counts = vec![0usize; rows + 1];
        for &(r, c, _) in triplets {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of bounds");
            counts[r + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        let mut col_idx = vec![0u32; triplets.len()];
        let mut values = vec![0.0; triplets.len()];
        let mut cursor = counts.clone();
        for &(r, c, v) in triplets {
            let p = cursor[r];
            col_idx[p] = c as u32;
            values[p] = v;
            cursor[r] += 1;
        }
        let mut m = Csr {
            rows,
            cols,
            row_ptr: counts,
            col_idx,
            values,
        };
        m.sort_and_merge();
        m
    }

    fn sort_and_merge(&mut self) {
        let mut new_ptr = vec![0usize; self.rows + 1];
        let mut new_cols = Vec::with_capacity(self.col_idx.len());
        let mut new_vals = Vec::with_capacity(self.values.len());
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for r in 0..self.rows {
            scratch.clear();
            for p in self.row_ptr[r]..self.row_ptr[r + 1] {
                scratch.push((self.col_idx[p], self.values[p]));
            }
            scratch.sort_unstable_by_key(|t| t.0);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut v = scratch[i].1;
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    v += scratch[j].1;
                    j += 1;
                }
                new_cols.push(c);
                new_vals.push(v);
                i = j;
            }
            new_ptr[r + 1] = new_cols.len();
        }
        self.row_ptr = new_ptr;
        self.col_idx = new_cols;
        self.values = new_vals;
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterator over `(col, value)` pairs of row `r`.
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Value at `(r, c)` or 0.0 if not stored.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.row_iter(r)
            .find(|&(cc, _)| cc == c)
            .map_or(0.0, |(_, v)| v)
    }

    /// SpMV: `y = A x` (SIMD-dispatched: the AVX2 tier gathers four `x`
    /// entries per step; see `crate::simd::spmv`).
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn mul_vec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "spmv x dim");
        assert_eq!(y.len(), self.rows, "spmv y dim");
        crate::simd::spmv(&self.row_ptr, &self.col_idx, &self.values, x, y);
    }

    /// Allocating SpMV convenience.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.mul_vec(x, &mut y);
        y
    }

    /// The diagonal as a vector (missing entries are 0).
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        let mut d = vec![0.0; n];
        for (r, dr) in d.iter_mut().enumerate() {
            *dr = self.get(r, r);
        }
        d
    }

    /// Dense copy (test-oracle use).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                m.add_at(r, c, v);
            }
        }
        m
    }

    /// Checks structural symmetry and value symmetry within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                if (self.get(c, r) - v).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

/// Anything that can act as a symmetric linear operator on vectors.
/// Implemented by [`Csr`], [`Matrix`] and composite operators (e.g. the
/// `L_Y⁺ L_X` pencil in the stability crate).
pub trait LinOp {
    /// Operator dimension (square).
    fn dim(&self) -> usize;
    /// `y = A x`.
    fn apply_to(&self, x: &[f64], y: &mut [f64]);
}

impl LinOp for Csr {
    fn dim(&self) -> usize {
        debug_assert_eq!(self.rows, self.cols);
        self.rows
    }
    fn apply_to(&self, x: &[f64], y: &mut [f64]) {
        self.mul_vec(x, y);
    }
}

impl LinOp for Matrix {
    fn dim(&self) -> usize {
        debug_assert_eq!(self.rows(), self.cols());
        self.rows()
    }
    fn apply_to(&self, x: &[f64], y: &mut [f64]) {
        let r = self.mul_vec(x);
        y.copy_from_slice(&r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        Csr::from_triplets(
            3,
            3,
            &[
                (0, 0, 2.0),
                (0, 1, -1.0),
                (1, 0, -1.0),
                (1, 1, 2.0),
                (1, 2, -1.0),
                (2, 1, -1.0),
                (2, 2, 2.0),
            ],
        )
    }

    #[test]
    fn triplets_roundtrip() {
        let a = sample();
        assert_eq!(a.nnz(), 7);
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(0, 2), 0.0);
        assert_eq!(a.get(2, 1), -1.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let a = Csr::from_triplets(1, 1, &[(0, 0, 1.0), (0, 0, 2.5)]);
        assert_eq!(a.get(0, 0), 3.5);
        assert_eq!(a.nnz(), 1);
    }

    #[test]
    fn spmv_matches_dense() {
        let a = sample();
        let d = a.to_dense();
        let x = vec![1.0, 2.0, 3.0];
        let ys = a.apply(&x);
        let yd = d.mul_vec(&x);
        for i in 0..3 {
            assert!((ys[i] - yd[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn rows_sorted_by_column() {
        let a = Csr::from_triplets(1, 4, &[(0, 3, 1.0), (0, 0, 2.0), (0, 2, 3.0)]);
        let cols: Vec<usize> = a.row_iter(0).map(|(c, _)| c).collect();
        assert_eq!(cols, vec![0, 2, 3]);
    }

    #[test]
    fn diagonal_extraction() {
        let a = sample();
        assert_eq!(a.diagonal(), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn symmetry_check() {
        assert!(sample().is_symmetric(0.0));
        let asym = Csr::from_triplets(2, 2, &[(0, 1, 1.0)]);
        assert!(!asym.is_symmetric(1e-12));
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_triplet_panics() {
        let _ = Csr::from_triplets(2, 2, &[(2, 0, 1.0)]);
    }

    #[test]
    fn linop_trait_dispatch() {
        let a = sample();
        let op: &dyn LinOp = &a;
        let mut y = vec![0.0; 3];
        op.apply_to(&[1.0, 0.0, 0.0], &mut y);
        assert_eq!(y, vec![2.0, -1.0, 0.0]);
    }
}
