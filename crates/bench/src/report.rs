//! Result persistence and table rendering.
//!
//! Every reproduction binary dumps its runs to JSON under
//! `target/experiments/` (so figures can be regenerated without
//! retraining) and prints paper-style tables to stdout.

use crate::experiments::MethodRun;
use sgm_json::{num_arr, obj, JsonError, Value};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Serialisable mirror of a training history record.
#[derive(Debug, Clone)]
pub struct RecordDump {
    /// Iteration index.
    pub iteration: usize,
    /// Seconds since the run started.
    pub seconds: f64,
    /// Training loss.
    pub loss: f64,
    /// Validation errors per output.
    pub errors: Vec<f64>,
}

/// Serialisable mirror of one method run.
#[derive(Debug, Clone)]
pub struct RunDump {
    /// Paper-style label.
    pub label: String,
    /// History records.
    pub records: Vec<RecordDump>,
    /// Total seconds trained.
    pub total_seconds: f64,
    /// Iterations completed.
    pub iterations: usize,
    /// Final network parameters.
    pub params: Vec<f64>,
    /// Refresh overhead seconds (SGM only).
    pub refresh_seconds: Option<f64>,
    /// Loss-probe evaluations (SGM / MIS).
    pub probe_evals: Option<usize>,
}

/// Network architecture needed to rebuild trained models from a dump.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArchDump {
    /// Input dimension.
    pub input_dim: usize,
    /// Output dimension.
    pub output_dim: usize,
    /// Hidden width.
    pub width: usize,
    /// Hidden depth.
    pub depth: usize,
    /// Fourier features (0 = no encoding).
    pub fourier_features: usize,
    /// Fourier frequency scale.
    pub fourier_sigma: f64,
    /// RNG seed used at construction (regenerates the frozen Fourier
    /// frequency matrix, which is not part of the trainable parameters).
    pub init_seed: u64,
}

/// A whole experiment dump (one per binary).
#[derive(Debug, Clone)]
pub struct SuiteDump {
    /// Experiment id (`ldc` or `ar`).
    pub experiment: String,
    /// Validated output names.
    pub output_names: Vec<String>,
    /// Network architecture used for every run.
    pub arch: ArchDump,
    /// All method runs.
    pub runs: Vec<RunDump>,
}

impl RunDump {
    /// Converts a live [`MethodRun`].
    pub fn from_run(run: &MethodRun) -> Self {
        RunDump {
            label: run.label.clone(),
            records: run
                .result
                .history
                .iter()
                .map(|r| RecordDump {
                    iteration: r.iteration,
                    seconds: r.seconds,
                    loss: r.train_loss,
                    errors: r.val_errors.clone(),
                })
                .collect(),
            total_seconds: run.result.total_seconds,
            iterations: run.iterations_done,
            params: run.params.clone(),
            refresh_seconds: run.sgm_stats.map(|s| s.refresh_seconds),
            probe_evals: run.sgm_stats.map(|s| s.probe_evals).or(run.mis_probe_evals),
        }
    }

    /// Minimum error and the time it was reached for output `col`.
    pub fn min_error(&self, col: usize) -> Option<(f64, f64)> {
        self.records
            .iter()
            .filter(|r| col < r.errors.len())
            .map(|r| (r.errors[col], r.seconds))
            .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
    }

    /// Error of output `col_read` at the record where `col_min` attains
    /// its minimum (the paper's "p at Min(v)" rows).
    pub fn error_at_min_of(&self, col_min: usize, col_read: usize) -> Option<f64> {
        self.records
            .iter()
            .filter(|r| col_min < r.errors.len() && col_read < r.errors.len())
            .min_by(|a, b| a.errors[col_min].partial_cmp(&b.errors[col_min]).unwrap())
            .map(|r| r.errors[col_read])
    }

    /// First time the error for `col` reached `target`.
    pub fn time_to(&self, col: usize, target: f64) -> Option<f64> {
        self.records
            .iter()
            .find(|r| col < r.errors.len() && r.errors[col] <= target)
            .map(|r| r.seconds)
    }
}

// ---------------------------------------------------------------------
// JSON encoding (sgm-json) — optional fields serialize as `null` and
// absent fields decode to defaults, matching the old schema.
// ---------------------------------------------------------------------

fn opt_num(x: Option<f64>) -> Value {
    match x {
        Some(v) => Value::Num(v),
        None => Value::Null,
    }
}

impl RecordDump {
    fn to_value(&self) -> Value {
        obj([
            ("iteration", Value::Num(self.iteration as f64)),
            ("seconds", Value::Num(self.seconds)),
            ("loss", Value::Num(self.loss)),
            ("errors", num_arr(&self.errors)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, JsonError> {
        Ok(RecordDump {
            iteration: v.req_usize("iteration")?,
            seconds: v.req_f64("seconds")?,
            loss: v.req_f64("loss")?,
            errors: v.req_f64_arr("errors")?,
        })
    }
}

impl RunDump {
    fn to_value(&self) -> Value {
        obj([
            ("label", Value::Str(self.label.clone())),
            (
                "records",
                Value::Arr(self.records.iter().map(RecordDump::to_value).collect()),
            ),
            ("total_seconds", Value::Num(self.total_seconds)),
            ("iterations", Value::Num(self.iterations as f64)),
            ("params", num_arr(&self.params)),
            ("refresh_seconds", opt_num(self.refresh_seconds)),
            ("probe_evals", opt_num(self.probe_evals.map(|n| n as f64))),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, JsonError> {
        let records = v
            .req("records")?
            .as_arr()
            .ok_or_else(|| JsonError::access("`records` is not an array"))?
            .iter()
            .map(RecordDump::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(RunDump {
            label: v.req_str("label")?.to_string(),
            records,
            total_seconds: v.req_f64("total_seconds")?,
            iterations: v.req_usize("iterations")?,
            params: v.req_f64_arr("params")?,
            refresh_seconds: v.get("refresh_seconds").and_then(Value::as_f64),
            probe_evals: v
                .get("probe_evals")
                .and_then(Value::as_u64)
                .map(|n| n as usize),
        })
    }
}

impl ArchDump {
    fn to_value(self) -> Value {
        obj([
            ("input_dim", Value::Num(self.input_dim as f64)),
            ("output_dim", Value::Num(self.output_dim as f64)),
            ("width", Value::Num(self.width as f64)),
            ("depth", Value::Num(self.depth as f64)),
            ("fourier_features", Value::Num(self.fourier_features as f64)),
            ("fourier_sigma", Value::Num(self.fourier_sigma)),
            ("init_seed", Value::Num(self.init_seed as f64)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, JsonError> {
        Ok(ArchDump {
            input_dim: v.req_usize("input_dim")?,
            output_dim: v.req_usize("output_dim")?,
            width: v.req_usize("width")?,
            depth: v.req_usize("depth")?,
            fourier_features: v
                .get("fourier_features")
                .and_then(Value::as_u64)
                .unwrap_or(0) as usize,
            fourier_sigma: v
                .get("fourier_sigma")
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
            init_seed: v.get("init_seed").and_then(Value::as_u64).unwrap_or(0),
        })
    }
}

impl SuiteDump {
    /// Encodes the suite as a JSON string.
    pub fn to_json(&self) -> String {
        obj([
            ("experiment", Value::Str(self.experiment.clone())),
            (
                "output_names",
                Value::Arr(
                    self.output_names
                        .iter()
                        .map(|s| Value::Str(s.clone()))
                        .collect(),
                ),
            ),
            ("arch", self.arch.to_value()),
            (
                "runs",
                Value::Arr(self.runs.iter().map(RunDump::to_value).collect()),
            ),
        ])
        .to_string_compact()
    }

    /// Decodes a suite from a JSON string.
    ///
    /// # Errors
    /// Returns a [`JsonError`] on malformed input or schema mismatch.
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let v = Value::parse(text)?;
        let output_names = v
            .req("output_names")?
            .as_arr()
            .ok_or_else(|| JsonError::access("`output_names` is not an array"))?
            .iter()
            .map(|s| {
                s.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| JsonError::access("output name is not a string"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let runs = v
            .req("runs")?
            .as_arr()
            .ok_or_else(|| JsonError::access("`runs` is not an array"))?
            .iter()
            .map(RunDump::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SuiteDump {
            experiment: v.req_str("experiment")?.to_string(),
            output_names,
            arch: ArchDump::from_value(v.req("arch")?)?,
            runs,
        })
    }
}

/// Directory where experiment artifacts are written.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

/// Writes a suite dump as JSON.
///
/// # Panics
/// Panics on I/O failure (experiment binaries want loud failures).
pub fn save_suite(dump: &SuiteDump, name: &str) -> PathBuf {
    let path = experiments_dir().join(format!("{name}.json"));
    std::fs::write(&path, dump.to_json()).expect("write suite dump");
    path
}

/// Loads a previously saved suite dump, if present.
pub fn load_suite(name: &str) -> Option<SuiteDump> {
    let path = experiments_dir().join(format!("{name}.json"));
    let text = std::fs::read_to_string(path).ok()?;
    SuiteDump::from_json(&text).ok()
}

/// Writes the error-vs-time curves of one output as CSV
/// (`label,iteration,seconds,error`).
///
/// # Panics
/// Panics on I/O failure.
pub fn write_curves_csv(dump: &SuiteDump, col: usize, path: &Path) {
    let mut f = std::fs::File::create(path).expect("create csv");
    writeln!(f, "method,iteration,seconds,error").unwrap();
    for run in &dump.runs {
        for r in &run.records {
            if col < r.errors.len() {
                writeln!(
                    f,
                    "{},{},{:.3},{:.6}",
                    run.label, r.iteration, r.seconds, r.errors[col]
                )
                .unwrap();
            }
        }
    }
}

/// Renders the paper's table layout: one `Min(out)` row per output, then
/// the time-to-target matrix `T(label_out)` — the time each column method
/// needed to reach each row method's best error.
pub fn render_table(dump: &SuiteDump) -> String {
    let mut out = String::new();
    let labels: Vec<&str> = dump.runs.iter().map(|r| r.label.as_str()).collect();
    out.push_str(&format!("{:<18}", "Label"));
    for l in &labels {
        out.push_str(&format!("{l:>14}"));
    }
    out.push('\n');
    for (col, name) in dump.output_names.iter().enumerate() {
        out.push_str(&format!("{:<18}", format!("Min({name})")));
        for run in &dump.runs {
            match run.min_error(col) {
                Some((e, _)) => out.push_str(&format!("{e:>14.4}")),
                None => out.push_str(&format!("{:>14}", "-")),
            }
        }
        out.push('\n');
    }
    for (col, name) in dump.output_names.iter().enumerate() {
        for target_run in &dump.runs {
            let Some((best, _)) = target_run.min_error(col) else {
                continue;
            };
            out.push_str(&format!(
                "{:<18}",
                format!("T({}_{})", target_run.label, name)
            ));
            for run in &dump.runs {
                match run.time_to(col, best) {
                    Some(t) => out.push_str(&format!("{t:>13.1}s")),
                    None => out.push_str(&format!("{:>14}", "-")),
                }
            }
            out.push('\n');
        }
    }
    out
}

/// ASCII rendering of error-vs-time curves (log-y), for terminal output.
pub fn ascii_curves(dump: &SuiteDump, col: usize, width: usize, height: usize) -> String {
    let mut max_t: f64 = 0.0;
    let (mut min_e, mut max_e) = (f64::MAX, f64::MIN);
    for run in &dump.runs {
        for r in &run.records {
            if col < r.errors.len() && r.errors[col] > 0.0 {
                max_t = max_t.max(r.seconds);
                min_e = min_e.min(r.errors[col]);
                max_e = max_e.max(r.errors[col]);
            }
        }
    }
    if max_t <= 0.0 || min_e >= max_e {
        return String::from("(no data)\n");
    }
    let (lmin, lmax) = (min_e.ln(), max_e.ln());
    let mut grid = vec![vec![' '; width]; height];
    let glyphs = ['U', 'B', 'M', 'S', 'Z', '*'];
    for (ri, run) in dump.runs.iter().enumerate() {
        let g = glyphs[ri.min(glyphs.len() - 1)];
        for r in &run.records {
            if col >= r.errors.len() || r.errors[col] <= 0.0 {
                continue;
            }
            let x = ((r.seconds / max_t) * (width - 1) as f64) as usize;
            let y = (((r.errors[col].ln() - lmin) / (lmax - lmin)) * (height - 1) as f64) as usize;
            let row = height - 1 - y;
            grid[row][x] = g;
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "error (log) from {:.4} (bottom) to {:.4} (top), time 0..{:.0}s\n",
        min_e, max_e, max_t
    ));
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.extend(std::iter::repeat_n('-', width));
    out.push('\n');
    for (ri, run) in dump.runs.iter().enumerate() {
        out.push_str(&format!(
            "  {} = {}\n",
            glyphs[ri.min(glyphs.len() - 1)],
            run.label
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dump() -> SuiteDump {
        SuiteDump {
            experiment: "test".into(),
            output_names: vec!["u".into()],
            arch: ArchDump::default(),
            runs: vec![
                RunDump {
                    label: "U_8".into(),
                    records: vec![
                        RecordDump {
                            iteration: 0,
                            seconds: 1.0,
                            loss: 1.0,
                            errors: vec![0.5],
                        },
                        RecordDump {
                            iteration: 10,
                            seconds: 2.0,
                            loss: 0.5,
                            errors: vec![0.3],
                        },
                    ],
                    total_seconds: 2.0,
                    iterations: 11,
                    params: vec![],
                    refresh_seconds: None,
                    probe_evals: None,
                },
                RunDump {
                    label: "SGM_8".into(),
                    records: vec![
                        RecordDump {
                            iteration: 0,
                            seconds: 0.5,
                            loss: 1.0,
                            errors: vec![0.4],
                        },
                        RecordDump {
                            iteration: 10,
                            seconds: 1.0,
                            loss: 0.2,
                            errors: vec![0.1],
                        },
                    ],
                    total_seconds: 1.0,
                    iterations: 11,
                    params: vec![],
                    refresh_seconds: Some(0.1),
                    probe_evals: Some(100),
                },
            ],
        }
    }

    #[test]
    fn min_and_time_to() {
        let d = dump();
        assert_eq!(d.runs[0].min_error(0), Some((0.3, 2.0)));
        assert_eq!(d.runs[1].time_to(0, 0.3), Some(1.0));
        assert_eq!(d.runs[0].time_to(0, 0.05), None);
    }

    #[test]
    fn table_contains_all_cells() {
        let d = dump();
        let t = render_table(&d);
        assert!(t.contains("Min(u)"));
        assert!(t.contains("T(U_8_u)"));
        assert!(t.contains("T(SGM_8_u)"));
        // SGM reached U's best (0.3) at 1.0s.
        assert!(t.contains("1.0s"));
    }

    #[test]
    fn json_roundtrip() {
        let d = dump();
        let s = d.to_json();
        let back = SuiteDump::from_json(&s).unwrap();
        assert_eq!(back.runs.len(), 2);
        assert_eq!(back.runs[1].label, "SGM_8");
        assert_eq!(back.runs[1].refresh_seconds, Some(0.1));
        assert_eq!(back.runs[1].probe_evals, Some(100));
        assert_eq!(back.runs[0].refresh_seconds, None);
        assert_eq!(back.runs[0].records[1].errors, vec![0.3]);
    }

    #[test]
    fn ascii_curves_render() {
        let d = dump();
        let a = ascii_curves(&d, 0, 40, 10);
        assert!(a.contains("U = U_8"));
        assert!(a.contains('S'));
    }
}
