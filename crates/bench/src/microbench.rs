//! Hand-rolled micro-benchmark harness (criterion replacement that
//! builds offline).
//!
//! A bench binary (`harness = false`) constructs a [`Runner`] from CLI
//! args and registers closures with [`Runner::bench`]. Supported flags:
//!
//! * `--test` — dry-run every benchmark once (no timing); used by the
//!   tier-1 script so benches can't bit-rot.
//! * `--json <path>` — write results as a JSON array of
//!   `{group, name, mean_ns, ...}` objects.
//! * `--iters <n>` — timed samples per benchmark; overrides whatever the
//!   bench binary passes to [`Runner::with_iters`] (raise it on noisy
//!   shared hosts where 5-sample minima still jitter).
//! * `<filter>` — any other positional argument selects benchmarks whose
//!   `group/name` id contains it as a substring.
//!
//! Timing model: `warmup_iters` untimed runs, then `sample_iters` timed
//! runs; the mean, min and max per-iteration wall time are reported. No
//! statistics beyond that — the suite exists for *ratios* between size
//! points and thread counts, not absolute precision.

use sgm_json::{obj, Value};
use std::time::Instant;

/// One benchmark's timing summary.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group label (e.g. `gemm`).
    pub group: String,
    /// Case label within the group (e.g. `blocked_256`).
    pub name: String,
    /// Timed iterations.
    pub iters: usize,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest iteration.
    pub min_ns: f64,
    /// Slowest iteration.
    pub max_ns: f64,
}

impl BenchResult {
    fn to_value(&self) -> Value {
        obj([
            ("group", Value::Str(self.group.clone())),
            ("name", Value::Str(self.name.clone())),
            ("iters", Value::Num(self.iters as f64)),
            ("mean_ns", Value::Num(self.mean_ns)),
            ("min_ns", Value::Num(self.min_ns)),
            ("max_ns", Value::Num(self.max_ns)),
        ])
    }
}

/// Collects and runs registered benchmarks according to CLI flags.
#[derive(Debug)]
pub struct Runner {
    dry_run: bool,
    json_path: Option<String>,
    filter: Option<String>,
    warmup_iters: usize,
    sample_iters: usize,
    /// Samples forced via `--iters`; wins over [`Runner::with_iters`].
    cli_samples: Option<usize>,
    results: Vec<BenchResult>,
}

impl Runner {
    /// Builds a runner from `std::env::args` (skips the binary name; also
    /// tolerates cargo's `--bench` passthrough).
    pub fn from_args() -> Self {
        let mut dry_run = false;
        let mut json_path = None;
        let mut filter = None;
        let mut cli_samples = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test" => dry_run = true,
                "--json" => match args.next() {
                    Some(p) if !p.starts_with('-') => json_path = Some(p),
                    _ => {
                        eprintln!("error: --json requires a path argument");
                        std::process::exit(2);
                    }
                },
                "--iters" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                    Some(s) if s > 0 => cli_samples = Some(s),
                    _ => {
                        eprintln!("error: --iters requires a positive integer");
                        std::process::exit(2);
                    }
                },
                "--bench" => {}
                other if !other.starts_with('-') => filter = Some(other.to_string()),
                _ => {}
            }
        }
        Runner {
            dry_run,
            json_path,
            filter,
            warmup_iters: 2,
            sample_iters: cli_samples.unwrap_or(8),
            cli_samples,
            results: Vec::new(),
        }
    }

    /// Overrides iteration counts (per-benchmark tuning). A `--iters`
    /// CLI flag beats the sample count given here.
    pub fn with_iters(mut self, warmup: usize, samples: usize) -> Self {
        self.warmup_iters = warmup;
        if self.cli_samples.is_none() {
            self.sample_iters = samples.max(1);
        }
        self
    }

    /// Whether this invocation is a `--test` dry run.
    pub fn is_dry_run(&self) -> bool {
        self.dry_run
    }

    /// Runs (or dry-runs) one benchmark. The closure's return value is
    /// passed through `std::hint::black_box` so work isn't optimized out.
    pub fn bench<T, F: FnMut() -> T>(&mut self, group: &str, name: &str, mut f: F) {
        let id = format!("{group}/{name}");
        if let Some(filt) = &self.filter {
            if !id.contains(filt.as_str()) {
                return;
            }
        }
        if self.dry_run {
            std::hint::black_box(f());
            println!("ok (dry run): {id}");
            return;
        }
        for _ in 0..self.warmup_iters {
            std::hint::black_box(f());
        }
        let mut samples = Vec::with_capacity(self.sample_iters);
        for _ in 0..self.sample_iters {
            let t0 = Instant::now();
            std::hint::black_box(f());
            samples.push(t0.elapsed().as_secs_f64() * 1e9);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::MAX, f64::min);
        let max = samples.iter().cloned().fold(f64::MIN, f64::max);
        println!(
            "{id:<44} mean {:>12} min {:>12} ({} iters)",
            format_ns(mean),
            format_ns(min),
            samples.len()
        );
        self.results.push(BenchResult {
            group: group.to_string(),
            name: name.to_string(),
            iters: samples.len(),
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
        });
    }

    /// All results so far (empty in dry runs).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Writes the JSON report if `--json` was given. Call once at the end
    /// of `main`.
    pub fn finish(&self) {
        if let Some(path) = &self.json_path {
            let v = Value::Arr(self.results.iter().map(BenchResult::to_value).collect());
            std::fs::write(path, v.to_string_pretty()).expect("write bench json");
            println!("wrote {path}");
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runner(dry: bool) -> Runner {
        Runner {
            dry_run: dry,
            json_path: None,
            filter: None,
            warmup_iters: 1,
            sample_iters: 3,
            cli_samples: None,
            results: Vec::new(),
        }
    }

    #[test]
    fn records_results() {
        let mut r = runner(false);
        r.bench("g", "case", || (0..1000).sum::<usize>());
        assert_eq!(r.results().len(), 1);
        let res = &r.results()[0];
        assert_eq!(res.iters, 3);
        assert!(res.min_ns <= res.mean_ns && res.mean_ns <= res.max_ns);
    }

    #[test]
    fn dry_run_skips_timing() {
        let mut r = runner(true);
        let mut calls = 0;
        r.bench("g", "case", || calls += 1);
        assert_eq!(calls, 1);
        assert!(r.results().is_empty());
    }

    #[test]
    fn filter_selects_by_substring() {
        let mut r = runner(false);
        r.filter = Some("keep".into());
        let mut kept = 0;
        let mut dropped = 0;
        r.bench("g", "keep_me", || kept += 1);
        r.bench("g", "skip_me", || dropped += 1);
        assert!(kept > 0);
        assert_eq!(dropped, 0);
    }
}
