//! Cross-sampler × cross-PDE convergence bake-off.
//!
//! Every sampler in the workspace — the draw-only methods (uniform, MIS,
//! RAR, SGM) and the point-set-adaptive rivals (RAD, RAR-D, DMIS) —
//! trains the same PDE problems from the same initial network over
//! `repeats` seeds. Each cell's convergence metric is the *full-set*
//! loss on the original collocation cloud after a fixed iteration
//! budget, so adaptive methods cannot win by evaluating themselves on
//! the easier point sets they migrated to.
//!
//! Wins are decided statistically, not by eyeballing means: a rival
//! beats the uniform baseline on a PDE only when **both** a per-seed
//! paired chi-square test (against the 50/50 null) and a two-sample
//! Kolmogorov–Smirnov test over the final losses reject chance at the
//! configured significance level. Anything short of that is a tie —
//! with a handful of repeat seeds most honest comparisons are.

use sgm_core::score::ScoreMapping;
use sgm_core::{
    DmisConfig, DmisSampler, MisConfig, MisSampler, RadConfig, RadSampler, RarConfig, RarDConfig,
    RarDSampler, RarSampler, SgmConfig, SgmSampler, UniformSampler,
};
use sgm_json::{obj, Value};
use sgm_linalg::dense::Matrix;
use sgm_linalg::rng::Rng64;
use sgm_linalg::stats::{chi_square_pvalue, chi_square_stat, ks_pvalue};
use sgm_nn::activation::Activation;
use sgm_nn::mlp::{Mlp, MlpConfig};
use sgm_nn::optimizer::AdamConfig;
use sgm_physics::geometry::{halton, Cavity, FillStrategy};
use sgm_physics::pde::{BurgersConfig, Pde, PoissonConfig};
use sgm_physics::problem::{Problem, TrainSet};
use sgm_physics::PinnModel;
use sgm_train::{Sampler, TrainOptions, Trainer};

/// Every sampler entered in the bake-off, baseline first.
pub const SAMPLERS: [&str; 7] = ["uniform", "mis", "rar", "sgm", "rad", "rar_d", "dmis"];

/// Scale knobs for one matrix run.
#[derive(Debug, Clone)]
pub struct MatrixScale {
    /// Interior collocation points per PDE.
    pub n: usize,
    /// Boundary points per PDE.
    pub n_boundary: usize,
    /// Interior mini-batch.
    pub batch: usize,
    /// Iteration budget per run (iterations, not wall time, so the
    /// matrix is reproducible on any machine).
    pub iterations: usize,
    /// Repeat seeds per cell.
    pub repeats: usize,
    /// Hidden width / depth of the shared network.
    pub width: usize,
    pub depth: usize,
    /// Refresh/adapt period shared by all periodic samplers.
    pub tau: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Significance level for the win decision.
    pub alpha: f64,
}

impl MatrixScale {
    /// CI-sized matrix: minutes, not hours, on one core.
    pub fn quick() -> Self {
        MatrixScale {
            n: 900,
            n_boundary: 128,
            batch: 48,
            iterations: 240,
            repeats: 4,
            width: 12,
            depth: 2,
            tau: 60,
            seed: 0xBAE0FF,
            alpha: 0.05,
        }
    }

    /// `quick()` with `SGM_MATRIX_ITERS` / `SGM_MATRIX_REPEATS` /
    /// `SGM_MATRIX_N` environment overrides applied.
    pub fn from_env() -> Self {
        let mut s = Self::quick();
        let get = |k: &str| std::env::var(k).ok().and_then(|v| v.parse::<usize>().ok());
        if let Some(v) = get("SGM_MATRIX_ITERS") {
            s.iterations = v;
        }
        if let Some(v) = get("SGM_MATRIX_REPEATS") {
            s.repeats = v.max(2);
        }
        if let Some(v) = get("SGM_MATRIX_N") {
            s.n = v;
        }
        s
    }
}

/// One PDE problem entered in the matrix.
pub struct PdeCase {
    /// Short row label (`poisson`, `burgers`).
    pub name: &'static str,
    pub problem: Problem,
    pub data: TrainSet,
}

/// The two quickstart-class problems: a sharp-forcing Poisson cavity
/// (smooth geometry, localised residual mass — adaptive samplers' home
/// turf) and viscous Burgers shock formation in `(x, t)` (a moving
/// near-discontinuity).
pub fn build_cases(scale: &MatrixScale) -> Vec<PdeCase> {
    let mut cases = Vec::new();
    {
        let problem = Problem::new(Pde::Poisson(PoissonConfig {
            forcing: |p: &[f64]| {
                if p[0] < 0.3 && p[1] < 0.3 {
                    200.0
                } else {
                    0.1
                }
            },
        }));
        let mut rng = Rng64::new(scale.seed);
        let interior = Cavity::default().sample_interior(scale.n, FillStrategy::Halton, &mut rng);
        // Homogeneous Dirichlet walls, one point per draw cycling the
        // four sides.
        let nb = scale.n_boundary;
        let mut bpts = Vec::with_capacity(nb * 2);
        for i in 0..nb {
            let t = rng.uniform();
            match i % 4 {
                0 => bpts.extend_from_slice(&[t, 0.0]),
                1 => bpts.extend_from_slice(&[t, 1.0]),
                2 => bpts.extend_from_slice(&[0.0, t]),
                _ => bpts.extend_from_slice(&[1.0, t]),
            }
        }
        cases.push(PdeCase {
            name: "poisson",
            problem,
            data: TrainSet {
                interior,
                boundary: sgm_graph::points::PointCloud::from_flat(2, bpts),
                boundary_targets: Matrix::zeros(nb, 1),
            },
        });
    }
    {
        let mut problem = Problem::new(Pde::Burgers(BurgersConfig {
            nu: 0.01 / std::f64::consts::PI,
        }));
        problem.bc_weight = 20.0;
        let mut flat = Vec::with_capacity(scale.n * 2);
        for i in 0..scale.n {
            flat.push(-1.0 + 2.0 * halton(i + 1, 2));
            flat.push(halton(i + 1, 3));
        }
        let interior = sgm_graph::points::PointCloud::from_flat(2, flat);
        let nb = scale.n_boundary;
        let mut rng = Rng64::new(scale.seed ^ 0xB4);
        let mut bpts = Vec::with_capacity(nb * 2);
        let mut tgt = Matrix::zeros(nb, 1);
        for i in 0..nb {
            match i % 3 {
                0 => {
                    let x = rng.uniform_in(-1.0, 1.0);
                    bpts.extend_from_slice(&[x, 0.0]);
                    tgt.set(i, 0, -(std::f64::consts::PI * x).sin());
                }
                1 => bpts.extend_from_slice(&[-1.0, rng.uniform()]),
                _ => bpts.extend_from_slice(&[1.0, rng.uniform()]),
            }
        }
        cases.push(PdeCase {
            name: "burgers",
            problem,
            data: TrainSet {
                interior,
                boundary: sgm_graph::points::PointCloud::from_flat(2, bpts),
                boundary_targets: tgt,
            },
        });
    }
    cases
}

fn mk_sampler(name: &str, case: &PdeCase, scale: &MatrixScale) -> Box<dyn Sampler> {
    let n = case.data.num_interior();
    let tau = scale.tau;
    match name {
        "uniform" => Box::new(UniformSampler::new(n)),
        "mis" => Box::new(MisSampler::new(
            n,
            MisConfig {
                tau_e: tau,
                ..MisConfig::default()
            },
        )),
        "rar" => Box::new(RarSampler::new(
            n,
            RarConfig {
                tau,
                ..RarConfig::default()
            },
            &mut Rng64::new(scale.seed ^ 0x4A4),
        )),
        "sgm" => Box::new(SgmSampler::new(
            &case.data.interior,
            SgmConfig {
                k: 6,
                min_clusters: 16,
                max_cluster_frac: 0.1,
                probe_ratio: 0.2,
                tau_e: tau,
                tau_g: 0,
                mapping: ScoreMapping::Linear { lo: 0.05, hi: 0.5 },
                background: false,
                seed: scale.seed ^ 0x56,
                ..SgmConfig::default()
            },
        )),
        "rad" => Box::new(RadSampler::new(
            n,
            RadConfig {
                tau,
                pool_size: 2 * n,
                ..RadConfig::default()
            },
        )),
        "rar_d" => Box::new(RarDSampler::new(
            n,
            RarDConfig {
                tau,
                candidates: 256,
                add_per_adapt: n / 20,
                max_points: 2 * n,
                ..RarDConfig::default()
            },
        )),
        "dmis" => Box::new(DmisSampler::new(
            n,
            DmisConfig {
                tau,
                grid: 10,
                ..DmisConfig::default()
            },
        )),
        other => panic!("unknown sampler {other}"),
    }
}

/// One (sampler, PDE) cell: final full-set losses over the repeat seeds.
#[derive(Debug, Clone)]
pub struct CellRun {
    pub sampler: String,
    pub pde: String,
    /// Full-set loss on the *original* cloud after training, one per seed.
    pub final_losses: Vec<f64>,
    /// Point-set mutation epochs reached, one per seed (0 for draw-only
    /// samplers).
    pub point_epochs: Vec<u64>,
}

impl CellRun {
    /// Median of the final losses.
    pub fn median(&self) -> f64 {
        let mut v = self.final_losses.clone();
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    }
}

/// Trains one cell: `repeats` runs from identical initial networks,
/// scoring each on the full original collocation set.
pub fn run_cell(case: &PdeCase, scale: &MatrixScale, sampler_name: &str) -> CellRun {
    let net_cfg = MlpConfig {
        input_dim: 2,
        output_dim: case.problem.pde.output_dim(),
        hidden_width: scale.width,
        hidden_layers: scale.depth,
        activation: Activation::Tanh,
        fourier: None,
    };
    let model = PinnModel::new(&case.problem, &case.data);
    let all_interior: Vec<usize> = (0..case.data.num_interior()).collect();
    let all_boundary: Vec<usize> = (0..case.data.boundary.len()).collect();
    let mut final_losses = Vec::with_capacity(scale.repeats);
    let mut point_epochs = Vec::with_capacity(scale.repeats);
    for rep in 0..scale.repeats {
        let mut net = Mlp::new(&net_cfg, &mut Rng64::new(scale.seed ^ 0xAB ^ rep as u64));
        let mut sampler = mk_sampler(sampler_name, case, scale);
        let opts = TrainOptions {
            iterations: scale.iterations,
            batch_interior: scale.batch,
            batch_boundary: scale.batch.min(case.data.boundary.len()),
            adam: AdamConfig::default(),
            seed: scale.seed ^ 0x9E ^ (rep as u64) << 8,
            record_every: scale.iterations,
            max_seconds: None,
            synthetic_dt: Some(1.0 / 1024.0),
        };
        let state = {
            let mut tr = Trainer {
                net: &mut net,
                model: &model,
            };
            tr.run_until(sampler.as_mut(), None, &opts, scale.iterations)
        };
        use sgm_train::LossModel;
        final_losses.push(model.batch_loss(&net, &all_interior, &all_boundary));
        point_epochs.push(state.points.as_ref().map_or(0, |p| p.epoch));
    }
    CellRun {
        sampler: sampler_name.to_string(),
        pde: case.name.to_string(),
        final_losses,
        point_epochs,
    }
}

/// Outcome of one rival-vs-baseline comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Both tests reject chance in the rival's favour.
    Win,
    /// Both tests reject chance in the baseline's favour.
    Loss,
    /// Anything short of joint significance.
    Tie,
}

impl Verdict {
    /// Table label.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Win => "win",
            Verdict::Loss => "loss",
            Verdict::Tie => "tie",
        }
    }
}

/// A decided cell of the matrix.
#[derive(Debug, Clone)]
pub struct Decision {
    pub sampler: String,
    pub pde: String,
    pub verdict: Verdict,
    /// Per-seed wins of the rival over the baseline.
    pub seed_wins: usize,
    /// Chi-square statistic / p-value of the paired per-seed test.
    pub chi2: f64,
    pub chi2_p: f64,
    /// Two-sample KS statistic / p-value over the final losses.
    pub ks_d: f64,
    pub ks_p: f64,
    /// Rival median / baseline median (< 1 means the rival converged
    /// further).
    pub median_ratio: f64,
}

/// Two-sample Kolmogorov–Smirnov `D = sup |F_a − F_b|`.
fn ks_two_sample(a: &[f64], b: &[f64]) -> f64 {
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(f64::total_cmp);
    sb.sort_by(f64::total_cmp);
    let (mut i, mut j, mut d) = (0usize, 0usize, 0.0f64);
    while i < sa.len() && j < sb.len() {
        // Ties advance both sides: the empirical CDFs jump together.
        let step = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] == step {
            i += 1;
        }
        while j < sb.len() && sb[j] == step {
            j += 1;
        }
        let fa = i as f64 / sa.len() as f64;
        let fb = j as f64 / sb.len() as f64;
        d = d.max((fa - fb).abs());
    }
    d
}

/// Decides one rival cell against the baseline cell of the same PDE.
pub fn decide(base: &CellRun, rival: &CellRun, alpha: f64) -> Decision {
    assert_eq!(base.pde, rival.pde, "cells from different PDEs");
    let n = base.final_losses.len().min(rival.final_losses.len());
    let seed_wins = (0..n)
        .filter(|&i| rival.final_losses[i] < base.final_losses[i])
        .count();
    // Paired per-seed outcomes against the 50/50 null.
    let observed = [seed_wins as f64, (n - seed_wins) as f64];
    let expected = [n as f64 / 2.0, n as f64 / 2.0];
    let chi2 = chi_square_stat(&observed, &expected);
    let chi2_p = chi_square_pvalue(chi2, 1);
    // Two-sample KS over the pooled final losses, with the standard
    // effective sample size.
    let ks_d = ks_two_sample(&base.final_losses, &rival.final_losses);
    let n_eff = (base.final_losses.len() * rival.final_losses.len()) as f64
        / (base.final_losses.len() + rival.final_losses.len()) as f64;
    let ks_p = ks_pvalue(ks_d, n_eff.round().max(1.0) as usize);
    let median_ratio = rival.median() / base.median().max(f64::MIN_POSITIVE);
    let significant = chi2_p < alpha && ks_p < alpha;
    let verdict = if significant && seed_wins * 2 > n {
        Verdict::Win
    } else if significant && seed_wins * 2 < n {
        Verdict::Loss
    } else {
        Verdict::Tie
    };
    Decision {
        sampler: rival.sampler.clone(),
        pde: rival.pde.clone(),
        verdict,
        seed_wins,
        chi2,
        chi2_p,
        ks_d,
        ks_p,
        median_ratio,
    }
}

/// The full bake-off: every cell plus every rival-vs-uniform decision.
#[derive(Debug)]
pub struct MatrixReport {
    pub scale: MatrixScale,
    pub cells: Vec<CellRun>,
    pub decisions: Vec<Decision>,
}

/// Runs the whole matrix.
pub fn run_matrix(scale: &MatrixScale) -> MatrixReport {
    let cases = build_cases(scale);
    let mut cells = Vec::new();
    let mut decisions = Vec::new();
    for case in &cases {
        let base = run_cell(case, scale, SAMPLERS[0]);
        for &name in &SAMPLERS[1..] {
            let rival = run_cell(case, scale, name);
            decisions.push(decide(&base, &rival, scale.alpha));
            cells.push(rival);
        }
        cells.push(base);
    }
    MatrixReport {
        scale: scale.clone(),
        cells,
        decisions,
    }
}

impl MatrixReport {
    /// Markdown table: one row per sampler, one column per PDE.
    pub fn markdown(&self) -> String {
        let pdes: Vec<&str> = {
            let mut v = Vec::new();
            for c in &self.cells {
                if !v.contains(&c.pde.as_str()) {
                    v.push(c.pde.as_str());
                }
            }
            v
        };
        let mut out = String::from("| sampler |");
        for p in &pdes {
            out.push_str(&format!(" {p} (median loss / verdict) |"));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &pdes {
            out.push_str("---|");
        }
        out.push('\n');
        for &s in &SAMPLERS {
            out.push_str(&format!("| {s} |"));
            for p in &pdes {
                let cell = self
                    .cells
                    .iter()
                    .find(|c| c.sampler == s && c.pde == *p)
                    .expect("cell ran");
                let verdict = self
                    .decisions
                    .iter()
                    .find(|d| d.sampler == s && d.pde == *p)
                    .map_or("baseline", |d| d.verdict.label());
                out.push_str(&format!(" {:.3e} / {verdict} |", cell.median()));
            }
            out.push('\n');
        }
        out
    }

    /// Machine-readable report.
    pub fn to_json(&self) -> Value {
        let cells: Vec<Value> = self
            .cells
            .iter()
            .map(|c| {
                obj([
                    ("sampler", Value::Str(c.sampler.clone())),
                    ("pde", Value::Str(c.pde.clone())),
                    (
                        "final_losses",
                        Value::Arr(c.final_losses.iter().map(|&x| Value::Num(x)).collect()),
                    ),
                    (
                        "point_epochs",
                        Value::Arr(
                            c.point_epochs
                                .iter()
                                .map(|&e| Value::Num(e as f64))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let decisions: Vec<Value> = self
            .decisions
            .iter()
            .map(|d| {
                obj([
                    ("sampler", Value::Str(d.sampler.clone())),
                    ("pde", Value::Str(d.pde.clone())),
                    ("verdict", Value::Str(d.verdict.label().to_string())),
                    ("seed_wins", Value::Num(d.seed_wins as f64)),
                    ("chi2", Value::Num(d.chi2)),
                    ("chi2_p", Value::Num(d.chi2_p)),
                    ("ks_d", Value::Num(d.ks_d)),
                    ("ks_p", Value::Num(d.ks_p)),
                    ("median_ratio", Value::Num(d.median_ratio)),
                ])
            })
            .collect();
        obj([
            ("iterations", Value::Num(self.scale.iterations as f64)),
            ("repeats", Value::Num(self.scale.repeats as f64)),
            ("alpha", Value::Num(self.scale.alpha)),
            ("cells", Value::Arr(cells)),
            ("decisions", Value::Arr(decisions)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(name: &str, losses: &[f64]) -> CellRun {
        CellRun {
            sampler: name.into(),
            pde: "poisson".into(),
            final_losses: losses.to_vec(),
            point_epochs: vec![0; losses.len()],
        }
    }

    #[test]
    fn clean_sweep_with_separation_is_a_win() {
        let base = cell("uniform", &[1.0, 1.1, 0.9, 1.05, 0.95, 1.0, 1.02, 0.98]);
        let rival = cell("rad", &[0.1, 0.12, 0.09, 0.11, 0.1, 0.08, 0.13, 0.1]);
        let d = decide(&base, &rival, 0.05);
        assert_eq!(d.verdict, Verdict::Win);
        assert_eq!(d.seed_wins, 8);
        assert!(d.median_ratio < 0.2);
    }

    #[test]
    fn overlapping_samples_tie() {
        let base = cell("uniform", &[1.0, 0.9, 1.1, 0.95]);
        let rival = cell("mis", &[0.98, 1.02, 0.92, 1.08]);
        let d = decide(&base, &rival, 0.05);
        assert_eq!(d.verdict, Verdict::Tie);
    }

    #[test]
    fn clean_sweep_against_the_rival_is_a_loss() {
        let base = cell("uniform", &[0.1, 0.11, 0.09, 0.1, 0.12, 0.08, 0.1, 0.11]);
        let rival = cell("rar", &[1.0, 1.1, 0.9, 1.05, 0.95, 1.0, 1.02, 0.98]);
        let d = decide(&base, &rival, 0.05);
        assert_eq!(d.verdict, Verdict::Loss);
    }

    #[test]
    fn ks_two_sample_matches_hand_computation() {
        // a = {1,2}, b = {3,4}: full separation, D = 1.
        assert_eq!(ks_two_sample(&[1.0, 2.0], &[3.0, 4.0]), 1.0);
        // Identical samples: D = 0.
        assert_eq!(ks_two_sample(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    /// A micro-matrix end to end: every cell runs, adaptive samplers
    /// reach a non-zero mutation epoch, losses are finite, and the
    /// report renders.
    #[test]
    fn micro_matrix_runs_end_to_end() {
        let scale = MatrixScale {
            n: 220,
            n_boundary: 32,
            batch: 24,
            iterations: 24,
            repeats: 2,
            width: 6,
            depth: 1,
            tau: 8,
            seed: 7,
            alpha: 0.05,
        };
        let report = run_matrix(&scale);
        assert_eq!(report.cells.len(), SAMPLERS.len() * 2);
        assert_eq!(report.decisions.len(), (SAMPLERS.len() - 1) * 2);
        for c in &report.cells {
            assert_eq!(c.final_losses.len(), 2, "{}/{}", c.sampler, c.pde);
            assert!(
                c.final_losses.iter().all(|l| l.is_finite()),
                "{}/{}: non-finite final loss",
                c.sampler,
                c.pde
            );
            if matches!(c.sampler.as_str(), "rad" | "rar_d" | "dmis") {
                assert!(
                    c.point_epochs.iter().all(|&e| e > 0),
                    "{}/{}: adaptive sampler never mutated the point set",
                    c.sampler,
                    c.pde
                );
            }
        }
        let md = report.markdown();
        assert!(md.contains("| uniform |") && md.contains("| dmis |"));
        let json = report.to_json().to_string_compact();
        assert!(json.contains("\"decisions\""));
    }
}
