//! Cross-sampler × cross-PDE convergence bake-off with statistical
//! acceptance gates — the CI entry point for the sampler matrix.
//!
//! Usage: `cargo run --release -p sgm-bench --bin sampler_matrix`
//! (`SGM_MATRIX_ITERS` / `SGM_MATRIX_REPEATS` / `SGM_MATRIX_N` scale the
//! run; defaults are CI-quick).
//!
//! Exit code is non-zero when any acceptance gate fails:
//!
//! 1. every (sampler, PDE) cell completed all repeat runs with finite
//!    full-set losses;
//! 2. every adaptive sampler trained *through* its adapt stage (the
//!    checkpointed point-set epoch is non-zero in every seed);
//! 3. the uniform baseline's draw histogram passes a chi-square
//!    uniformity test (the statistical machinery itself is sane);
//! 4. every rival-vs-baseline decision carries well-formed chi-square
//!    and KS statistics (p-values in `[0, 1]`).
//!
//! Win/tie/loss verdicts are reported, not gated: with CI-sized repeat
//! counts a tie is the honest default and a loss is information, not a
//! failure.

use sgm_bench::matrix::{run_matrix, MatrixScale, SAMPLERS};
use sgm_linalg::rng::Rng64;
use sgm_linalg::stats::{chi_square_pvalue, chi_square_stat};
use sgm_train::{Sampler, UniformSampler};
use std::process::ExitCode;

fn uniform_draws_pass_chi_square() -> Result<(), String> {
    let n = 64usize;
    let draws = 64_000usize;
    let mut s = UniformSampler::new(n);
    let mut rng = Rng64::new(0xC41);
    let mut counts = vec![0.0f64; n];
    let mut batch = Vec::new();
    for _ in 0..draws / 1000 {
        s.fill_batch(1000, &mut batch, &mut rng);
        for &i in &batch {
            counts[i] += 1.0;
        }
    }
    let expected = vec![draws as f64 / n as f64; n];
    let stat = chi_square_stat(&counts, &expected);
    let p = chi_square_pvalue(stat, n - 1);
    if p < 1e-9 {
        return Err(format!(
            "uniform draw histogram failed chi-square uniformity: stat {stat:.2}, p {p:.3e}"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let scale = MatrixScale::from_env();
    eprintln!(
        "[sampler_matrix] {} samplers x 2 PDEs, {} iterations x {} seeds per cell",
        SAMPLERS.len(),
        scale.iterations,
        scale.repeats
    );
    let report = run_matrix(&scale);

    println!(
        "\n=== Sampler bake-off (full-set loss after {} iterations) ===\n",
        scale.iterations
    );
    println!("{}", report.markdown());
    println!("decisions (alpha = {}):", scale.alpha);
    for d in &report.decisions {
        println!(
            "  {:8} vs uniform on {:8}: {:4}  seed-wins {}/{}  chi2 p {:.3}  KS D {:.2} p {:.3}  median ratio {:.3}",
            d.sampler,
            d.pde,
            d.verdict.label(),
            d.seed_wins,
            scale.repeats,
            d.chi2_p,
            d.ks_d,
            d.ks_p,
            d.median_ratio
        );
    }

    let dir = std::path::Path::new("target/experiments");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join("sampler_matrix.json");
    if let Err(e) = std::fs::write(&path, report.to_json().to_string_compact()) {
        eprintln!(
            "[sampler_matrix] warning: could not write {}: {e}",
            path.display()
        );
    } else {
        println!("\nartifacts: {}", path.display());
    }

    // --- acceptance gates -------------------------------------------
    let mut failures = Vec::new();
    for c in &report.cells {
        if c.final_losses.len() != scale.repeats {
            failures.push(format!(
                "{}/{}: {} of {} repeats completed",
                c.sampler,
                c.pde,
                c.final_losses.len(),
                scale.repeats
            ));
        }
        if !c.final_losses.iter().all(|l| l.is_finite()) {
            failures.push(format!("{}/{}: non-finite final loss", c.sampler, c.pde));
        }
        if matches!(c.sampler.as_str(), "rad" | "rar_d" | "dmis")
            && !c.point_epochs.iter().all(|&e| e > 0)
        {
            failures.push(format!(
                "{}/{}: adaptive sampler never reached the adapt stage (epochs {:?})",
                c.sampler, c.pde, c.point_epochs
            ));
        }
    }
    for d in &report.decisions {
        let ok = (0.0..=1.0).contains(&d.chi2_p) && (0.0..=1.0).contains(&d.ks_p);
        if !ok {
            failures.push(format!(
                "{}/{}: malformed statistics (chi2_p {}, ks_p {})",
                d.sampler, d.pde, d.chi2_p, d.ks_p
            ));
        }
    }
    if let Err(e) = uniform_draws_pass_chi_square() {
        failures.push(e);
    }

    if failures.is_empty() {
        println!("\nacceptance gates: all passed");
        ExitCode::SUCCESS
    } else {
        eprintln!("\nacceptance gates FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        ExitCode::FAILURE
    }
}
