//! Reproduces **Figure 3** — validation error of `v` versus wall time for
//! the parameterised annular ring, including plain `SGM` (which the paper
//! shows *degrading* without the stability term) and `SGM-S`.
//!
//! Reuses `target/experiments/ar.json` when present (run `table2` first).

use sgm_bench::experiments::{build_ar, run_suite, Method, Scale};
use sgm_bench::report::{ascii_curves, experiments_dir, load_suite, save_suite, write_curves_csv};

fn main() {
    let dump = load_suite("ar").unwrap_or_else(|| {
        eprintln!("[fig3] no cached ar.json — running the AR suite");
        let scale = Scale::ar_default();
        let exp = build_ar(&scale);
        let dump = run_suite(
            "ar",
            &exp,
            &scale,
            &[
                Method::UniformSmall,
                Method::UniformLarge,
                Method::Mis,
                Method::Sgm,
                Method::SgmS,
            ],
        );
        save_suite(&dump, "ar");
        dump
    });
    let csv = experiments_dir().join("fig3.csv");
    write_curves_csv(&dump, 1, &csv);
    println!("=== Figure 3: AR validation error of v vs wall time ===\n");
    println!("{}", ascii_curves(&dump, 1, 78, 20));
    println!("curves: {}", csv.display());
}
