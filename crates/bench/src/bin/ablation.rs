//! Ablation sweeps over SGM-PINN's hyper-parameters (the sensitivities
//! the paper's §5 calls out: `k`, `𝕃`, plus the probe ratio `r`, the
//! score→ratio mapping and the floor-one rule).
//!
//! Each configuration trains the LDC problem for a short, equal wall
//! budget (`SGM_ABLATION_SECS`, default 12 s) starting from one factor's
//! variations around a base configuration. Prints best-`v` error and
//! refresh overhead per configuration, and writes
//! `target/experiments/ablation.csv`.

use sgm_bench::experiments::{build_ldc, run_sgm_with_config, sgm_config, Scale};
use sgm_bench::report::experiments_dir;
use sgm_core::score::ScoreMapping;
use std::io::Write;

fn main() {
    let budget: f64 = std::env::var("SGM_ABLATION_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(12.0);
    let mut scale = Scale::ldc_default();
    scale.budget_seconds = budget;
    scale.n_small = 8_000;
    scale.tau_e = 200;
    eprintln!("[ablation] building LDC experiment...");
    let exp = build_ldc(&scale);
    let base = sgm_config(&exp, &scale, false);

    let mut jobs: Vec<(String, sgm_core::SgmConfig)> = Vec::new();
    for k in [5usize, 15, 30] {
        let mut c = base.clone();
        c.k = k;
        jobs.push((format!("k={k}"), c));
    }
    for level in [2usize, 6, 10] {
        let mut c = base.clone();
        c.lrd_level = level;
        jobs.push((format!("L={level}"), c));
    }
    for r in [0.05f64, 0.15, 0.30] {
        let mut c = base.clone();
        c.probe_ratio = r;
        jobs.push((format!("r={r}"), c));
    }
    for (name, mapping) in [
        ("map=linear", ScoreMapping::Linear { lo: 0.05, hi: 0.5 }),
        (
            "map=softmax",
            ScoreMapping::Softmax {
                temp: 0.5,
                lo: 0.05,
                hi: 0.5,
            },
        ),
        ("map=rank", ScoreMapping::Rank { lo: 0.05, hi: 0.5 }),
    ] {
        let mut c = base.clone();
        c.mapping = mapping;
        jobs.push((name.to_string(), c));
    }
    for floor in [true, false] {
        let mut c = base.clone();
        c.floor_one = floor;
        jobs.push((format!("floor_one={floor}"), c));
    }

    let csv_path = experiments_dir().join("ablation.csv");
    let mut csv = std::fs::File::create(&csv_path).expect("create ablation.csv");
    writeln!(
        csv,
        "config,best_v_error,best_u_error,iterations,refresh_seconds"
    )
    .unwrap();
    println!(
        "{:<18}{:>12}{:>12}{:>10}{:>12}",
        "config", "best v err", "best u err", "iters", "overhead s"
    );
    for (name, cfg) in jobs {
        let run = run_sgm_with_config(&exp, &scale, cfg, name.clone());
        let v = run.result.min_error(1).map_or(f64::NAN, |(e, _)| e);
        let u = run.result.min_error(0).map_or(f64::NAN, |(e, _)| e);
        let overhead = run.sgm_stats.map_or(0.0, |s| s.refresh_seconds);
        println!(
            "{:<18}{:>12.4}{:>12.4}{:>10}{:>12.2}",
            name, v, u, run.iterations_done, overhead
        );
        writeln!(
            csv,
            "{name},{v:.6},{u:.6},{},{overhead:.3}",
            run.iterations_done
        )
        .unwrap();
    }
    println!("\ncsv: {}", csv_path.display());
}
