//! Internal tuning probe (not part of the documented harness).
use sgm_bench::experiments::{build_ldc, run_method, Method, Scale};

fn main() {
    let mut scale = Scale::ldc_default();
    scale.budget_seconds = std::env::var("T")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(45.0);
    let exp = build_ldc(&scale);
    let run = run_method(&exp, &scale, Method::UniformSmall);
    for r in run.result.history.iter().step_by(4) {
        eprintln!(
            "it {:>6} t {:>6.1} loss {:>9.2e} errs {:?}",
            r.iteration,
            r.seconds,
            r.train_loss,
            r.val_errors
                .iter()
                .map(|e| (e * 1e3).round() / 1e3)
                .collect::<Vec<_>>()
        );
    }
}
