//! Reproduces **Table 1** — minimum validation errors and time-to-achieve
//! for the LDC (zero-equation turbulence) example, comparing
//! `U_small`, `U_large` (baseline), `MIS_small` and `SGM_small`.
//!
//! Usage: `cargo run --release -p sgm-bench --bin table1`
//! (`SGM_BUDGET_SECS` overrides the per-method wall budget, default 60).

use sgm_bench::experiments::{build_ldc, run_suite, Method, Scale};
use sgm_bench::report::{render_table, save_suite};

fn main() {
    let scale = Scale::ldc_default();
    eprintln!("[table1] solving LDC reference field (FDM)...");
    let exp = build_ldc(&scale);
    let methods = [
        Method::UniformSmall,
        Method::UniformLarge,
        Method::Mis,
        Method::Sgm,
    ];
    let dump = run_suite("ldc", &exp, &scale, &methods);
    let path = save_suite(&dump, "ldc");
    println!("\n=== Table 1 (LDC, zero-eq turbulence; scaled reproduction) ===\n");
    println!("{}", render_table(&dump));
    // Speedup summary: time for SGM to reach the baseline's best error.
    let baseline = &dump.runs[1]; // U_large
    let sgm = &dump.runs[3];
    for (col, name) in dump.output_names.iter().enumerate() {
        if let Some((best, t_base)) = baseline.min_error(col) {
            if let Some(t_sgm) = sgm.time_to(col, best) {
                println!(
                    "speedup to baseline-best {name} ({best:.4}): {:.2}x  ({t_base:.1}s -> {t_sgm:.1}s)",
                    t_base / t_sgm.max(1e-9)
                );
            } else {
                println!("SGM did not reach baseline-best {name} ({best:.4}) in budget");
            }
        }
    }
    println!("\nartifacts: {}", path.display());
}
