//! Reproduces **Figure 2** — validation error of `v` versus wall time for
//! the LDC example, all four sampling methods.
//!
//! Reuses `target/experiments/ldc.json` when present (run `table1` first);
//! otherwise trains the suite itself. Emits `target/experiments/fig2.csv`
//! and an ASCII rendering.

use sgm_bench::experiments::{build_ldc, run_suite, Method, Scale};
use sgm_bench::report::{ascii_curves, experiments_dir, load_suite, save_suite, write_curves_csv};

fn main() {
    let dump = load_suite("ldc").unwrap_or_else(|| {
        eprintln!("[fig2] no cached ldc.json — running the LDC suite");
        let scale = Scale::ldc_default();
        let exp = build_ldc(&scale);
        let dump = run_suite(
            "ldc",
            &exp,
            &scale,
            &[
                Method::UniformSmall,
                Method::UniformLarge,
                Method::Mis,
                Method::Sgm,
            ],
        );
        save_suite(&dump, "ldc");
        dump
    });
    // v is validated output column 1 (u, v, nu).
    let csv = experiments_dir().join("fig2.csv");
    write_curves_csv(&dump, 1, &csv);
    println!("=== Figure 2: LDC validation error of v vs wall time ===\n");
    println!("{}", ascii_curves(&dump, 1, 78, 20));
    println!("curves: {}", csv.display());
}
