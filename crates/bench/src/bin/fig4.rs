//! Reproduces **Figure 4** — visualised absolute error of the pressure
//! field `p` at `r_i = 1.0` for every method's trained model.
//!
//! Loads the trained networks from `target/experiments/ar.json` (run
//! `table2` first), evaluates `|p_pred − p_exact|` on a polar grid, writes
//! one CSV per method (`fig4_<label>.csv`: `x,y,abs_err`) and prints an
//! ASCII heatmap plus summary statistics.

use sgm_bench::experiments::{build_ar, net_from_dump, run_suite, Method, Scale};
use sgm_bench::report::{experiments_dir, load_suite, save_suite, SuiteDump};
use sgm_physics::geometry::AnnulusChannel;
use std::io::Write;

fn load_or_run() -> SuiteDump {
    load_suite("ar").unwrap_or_else(|| {
        eprintln!("[fig4] no cached ar.json — running the AR suite");
        let scale = Scale::ar_default();
        let exp = build_ar(&scale);
        let dump = run_suite(
            "ar",
            &exp,
            &scale,
            &[
                Method::UniformSmall,
                Method::UniformLarge,
                Method::Mis,
                Method::Sgm,
                Method::SgmS,
            ],
        );
        save_suite(&dump, "ar");
        dump
    })
}

fn main() {
    let dump = load_or_run();
    let ring = AnnulusChannel::default();
    let r_i = 1.0;
    let (nr, nth) = (16, 48);
    let (pts, exact) = ring.validation_grid(r_i, nr, nth);
    println!("=== Figure 4: |p error| at r_i = {r_i} ===\n");
    for run in &dump.runs {
        if run.params.is_empty() {
            continue;
        }
        let net = net_from_dump(&dump.arch, &run.params);
        let pred = net.forward(&pts);
        let mut errs = Vec::with_capacity(pts.rows());
        for i in 0..pts.rows() {
            errs.push((pred.get(i, 2) - exact.get(i, 2)).abs());
        }
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        let max = errs.iter().cloned().fold(0.0f64, f64::max);
        // CSV dump.
        let safe_label = run.label.replace(['/', ' '], "_");
        let path = experiments_dir().join(format!("fig4_{safe_label}.csv"));
        let mut f = std::fs::File::create(&path).expect("create fig4 csv");
        writeln!(f, "x,y,abs_p_error").unwrap();
        for (i, e) in errs.iter().enumerate() {
            writeln!(f, "{:.4},{:.4},{:.6}", pts.get(i, 0), pts.get(i, 1), e).unwrap();
        }
        // ASCII heatmap: rows = radius bins (inner at bottom), cols = angle.
        println!("{}  mean |Δp| = {mean:.4}, max = {max:.4}", run.label);
        let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
        let emax = max.max(1e-12);
        for ir in (0..nr).rev() {
            print!("  ");
            for it in 0..nth {
                let e = errs[ir * nth + it];
                let level = ((e / emax) * (shades.len() - 1) as f64).round() as usize;
                print!("{}", shades[level.min(shades.len() - 1)]);
            }
            println!();
        }
        println!("  (bottom row = inner radius; columns = angle 0..2π)");
        println!("  csv: {}\n", path.display());
    }
}
