//! Reproduces **Table 2** — the parameterised annular ring: minimum
//! validation errors for `u` and `v`, the error of `p` at `Min(v)`, and
//! time-to-target, comparing `U_small`, `U_large`, `MIS_small`,
//! `SGM_small` (plain, expected to degrade) and `SGM-S_small` (with the
//! ISR stability term).
//!
//! Usage: `cargo run --release -p sgm-bench --bin table2`

use sgm_bench::experiments::{build_ar, run_suite, Method, Scale};
use sgm_bench::report::{render_table, save_suite};

fn main() {
    let scale = Scale::ar_default();
    eprintln!("[table2] building parameterised annular-ring experiment...");
    let exp = build_ar(&scale);
    let methods = [
        Method::UniformSmall,
        Method::UniformLarge,
        Method::Mis,
        Method::Sgm,
        Method::SgmS,
    ];
    let dump = run_suite("ar", &exp, &scale, &methods);
    let path = save_suite(&dump, "ar");
    println!("\n=== Table 2 (parameterised annular ring; scaled reproduction) ===\n");
    println!("{}", render_table(&dump));
    // The paper's "p at Min(v)" row (p does not decrease monotonically).
    print!("{:<18}", "p at Min(v)");
    for run in &dump.runs {
        match run.error_at_min_of(1, 2) {
            Some(e) => print!("{e:>14.4}"),
            None => print!("{:>14}", "-"),
        }
    }
    println!();
    println!("\nartifacts: {}", path.display());
}
