//! Compares two microbench `--json` dumps case-by-case.
//!
//! ```sh
//! cargo run --release -p sgm-bench --bin bench_diff -- before.json after.json
//! ```
//!
//! Prints a per-case table and the `before/after` speedup, flags every
//! case that regressed by more than 10 %, and summarises. Comparisons
//! use each case's `min_ns` when both dumps carry it (the minimum is the
//! noise-robust statistic on shared hosts — scheduler interference only
//! ever adds time), falling back to `mean_ns` otherwise. Options:
//!
//! * `--json <path>` — also write the merged comparison as JSON (used to
//!   assemble `BENCH_PR4.json`).
//! * `--strict` — exit non-zero when any case regresses >10 % (off by
//!   default so smoke runs with 1-iteration timings don't flake).
//! * `--min-speedup <x>` — exit non-zero unless the geometric-mean
//!   speedup over all compared cases is at least `x`. Used by the
//!   `refresh-scaling` CI gate: a full-rebuild dump diffed against a
//!   delta-refresh dump from the *same machine* must clear the paper's
//!   incremental-speedup floor.
//!
//! Groups present in only one dump (a filtered run, or a group added or
//! removed between revisions) are reported as warnings and skipped —
//! never an error, even under `--strict`, so partial dumps stay
//! diffable.

use sgm_json::{obj, Value};
use std::process::ExitCode;

/// One case parsed out of a microbench dump.
struct Case {
    group: String,
    name: String,
    mean_ns: f64,
    min_ns: Option<f64>,
}

impl Case {
    /// The statistic compared: `min_ns` when recorded, else `mean_ns`.
    fn metric(&self) -> f64 {
        self.min_ns.unwrap_or(self.mean_ns)
    }
}

fn load(path: &str) -> Vec<Case> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_diff: cannot read {path}: {e}"));
    let value = Value::parse(&text).unwrap_or_else(|e| panic!("bench_diff: {path}: {e}"));
    let arr = value
        .as_arr()
        .unwrap_or_else(|| panic!("bench_diff: {path}: top level is not an array"));
    arr.iter()
        .map(|entry| Case {
            group: entry
                .req_str("group")
                .unwrap_or_else(|e| panic!("bench_diff: {path}: {e}"))
                .to_string(),
            name: entry
                .req_str("name")
                .unwrap_or_else(|e| panic!("bench_diff: {path}: {e}"))
                .to_string(),
            mean_ns: entry
                .req_f64("mean_ns")
                .unwrap_or_else(|e| panic!("bench_diff: {path}: {e}")),
            min_ns: entry.req_f64("min_ns").ok(),
        })
        .collect()
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn main() -> ExitCode {
    let mut paths = Vec::new();
    let mut json_out: Option<String> = None;
    let mut strict = false;
    let mut min_speedup: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_out = Some(args.next().expect("--json needs a path")),
            "--strict" => strict = true,
            "--min-speedup" => {
                min_speedup = Some(
                    args.next()
                        .expect("--min-speedup needs a value")
                        .parse()
                        .expect("--min-speedup: not a number"),
                );
            }
            _ => paths.push(a),
        }
    }
    if paths.len() != 2 {
        eprintln!(
            "usage: bench_diff [--json <out>] [--strict] [--min-speedup <x>] \
             <before.json> <after.json>"
        );
        return ExitCode::from(2);
    }
    let before = load(&paths[0]);
    let after = load(&paths[1]);

    // Whole groups missing on either side are tolerated with a warning
    // (never a failure): dumps from filtered runs or different revisions
    // should still diff on whatever they share.
    let groups_before: std::collections::BTreeSet<&str> =
        before.iter().map(|c| c.group.as_str()).collect();
    let groups_after: std::collections::BTreeSet<&str> =
        after.iter().map(|c| c.group.as_str()).collect();
    for g in groups_before.difference(&groups_after) {
        eprintln!(
            "warning: group `{g}` only in {} — skipped, not a failure",
            paths[0]
        );
    }
    for g in groups_after.difference(&groups_before) {
        eprintln!(
            "warning: group `{g}` only in {} — skipped, not a failure",
            paths[1]
        );
    }

    let mut rows = Vec::new();
    let mut regressions = Vec::new();
    let mut missing = 0usize;
    for b in &before {
        let Some(a) = after
            .iter()
            .find(|a| a.group == b.group && a.name == b.name)
        else {
            missing += 1;
            continue;
        };
        let speedup = if a.metric() > 0.0 {
            b.metric() / a.metric()
        } else {
            f64::INFINITY
        };
        let regressed = a.metric() > 1.10 * b.metric();
        if regressed {
            regressions.push(format!("{}/{}", b.group, b.name));
        }
        rows.push((b, a, speedup, regressed));
    }

    let id_w = rows
        .iter()
        .map(|(b, _, _, _)| b.group.len() + b.name.len() + 1)
        .max()
        .unwrap_or(4)
        .max(4);
    println!(
        "{:<id_w$}  {:>12}  {:>12}  {:>8}",
        "case", "before", "after", "speedup"
    );
    for (b, a, speedup, regressed) in &rows {
        println!(
            "{:<id_w$}  {:>12}  {:>12}  {:>7.2}x{}",
            format!("{}/{}", b.group, b.name),
            fmt_ns(b.metric()),
            fmt_ns(a.metric()),
            speedup,
            if *regressed {
                "  << REGRESSION >10%"
            } else {
                ""
            },
        );
    }
    if missing > 0 {
        println!(
            "({missing} case(s) in {} have no counterpart in {})",
            paths[0], paths[1]
        );
    }
    let extra = after
        .iter()
        .filter(|a| {
            !before
                .iter()
                .any(|b| b.group == a.group && b.name == a.name)
        })
        .count();
    if extra > 0 {
        println!(
            "({extra} case(s) in {} have no counterpart in {})",
            paths[1], paths[0]
        );
    }
    println!(
        "{} case(s) compared, {} regression(s) >10%",
        rows.len(),
        regressions.len()
    );

    // Per-group and overall geometric-mean speedups. The geomean is the
    // right aggregate for ratios: a 4x win and a 4x loss cancel to 1.0
    // instead of averaging to 2.1x.
    let geomean = |ratios: &[f64]| -> f64 {
        let finite: Vec<f64> = ratios.iter().copied().filter(|r| r.is_finite()).collect();
        if finite.is_empty() {
            return f64::NAN;
        }
        (finite.iter().map(|r| r.ln()).sum::<f64>() / finite.len() as f64).exp()
    };
    let mut group_ratios: std::collections::BTreeMap<&str, Vec<f64>> =
        std::collections::BTreeMap::new();
    for (b, _, speedup, _) in &rows {
        group_ratios
            .entry(b.group.as_str())
            .or_default()
            .push(*speedup);
    }
    let mut group_rows = Vec::new();
    for (g, ratios) in &group_ratios {
        let gm = geomean(ratios);
        println!(
            "group {g:<24} geomean speedup {gm:>7.2}x over {} case(s)",
            ratios.len()
        );
        group_rows.push((g.to_string(), gm, ratios.len()));
    }
    let all_ratios: Vec<f64> = rows.iter().map(|(_, _, s, _)| *s).collect();
    let overall = geomean(&all_ratios);
    if !rows.is_empty() {
        println!("overall geomean speedup {overall:.2}x");
    }

    if let Some(out) = json_out {
        let cases: Vec<Value> = rows
            .iter()
            .map(|(b, a, speedup, regressed)| {
                obj([
                    ("group", Value::Str(b.group.clone())),
                    ("name", Value::Str(b.name.clone())),
                    ("before_ns", Value::Num(b.metric())),
                    ("after_ns", Value::Num(a.metric())),
                    ("before_mean_ns", Value::Num(b.mean_ns)),
                    ("after_mean_ns", Value::Num(a.mean_ns)),
                    ("speedup", Value::Num(*speedup)),
                    ("regressed", Value::Bool(*regressed)),
                ])
            })
            .collect();
        let groups: Vec<Value> = group_rows
            .iter()
            .map(|(g, gm, n)| {
                obj([
                    ("group", Value::Str(g.clone())),
                    ("geomean_speedup", Value::Num(*gm)),
                    ("cases", Value::Num(*n as f64)),
                ])
            })
            .collect();
        let doc = obj([
            ("before", Value::Str(paths[0].clone())),
            ("after", Value::Str(paths[1].clone())),
            ("overall_geomean_speedup", Value::Num(overall)),
            ("groups", Value::Arr(groups)),
            ("cases", Value::Arr(cases)),
        ]);
        std::fs::write(&out, doc.to_string_pretty())
            .unwrap_or_else(|e| panic!("bench_diff: cannot write {out}: {e}"));
        println!("wrote {out}");
    }

    if strict && !regressions.is_empty() {
        eprintln!("regressions: {}", regressions.join(", "));
        return ExitCode::FAILURE;
    }
    if let Some(floor) = min_speedup {
        if overall.is_nan() || overall < floor {
            eprintln!(
                "overall geomean speedup {overall:.2}x is below the --min-speedup floor {floor}x"
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
