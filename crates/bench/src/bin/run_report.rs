//! Renders a run-telemetry JSONL file (written by `sgm_obs::RunLog` /
//! `SGM_RUN_LOG`) as a human-readable report, or diffs two runs.
//!
//! ```sh
//! cargo run --release -p sgm-bench --bin run_report -- run.jsonl
//! cargo run --release -p sgm-bench --bin run_report -- before.jsonl after.jsonl
//! ```
//!
//! Single-run mode prints the meta line, a convergence summary (records,
//! final loss/errors, train seconds), every counter/gauge, histogram
//! means, and a per-name span rollup (count, total, mean). Two-run mode
//! prints the shared metrics and span rollups side by side with the
//! after/before ratio — the quick way to see where a configuration
//! change moved the time.

use sgm_json::Value;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Everything parsed out of one telemetry JSONL file.
struct Run {
    path: String,
    meta: Vec<(String, String)>,
    /// Counter and gauge values by name.
    scalars: BTreeMap<String, f64>,
    /// Histograms by name: (count, mean_ns, min, max).
    hists: BTreeMap<String, (u64, f64, u64, u64)>,
    /// Convergence records: (iteration, seconds, train_loss, val_errors).
    records: Vec<(usize, f64, f64, Vec<f64>)>,
    /// Span rollup by `cat/name`: (count, total_ns).
    spans: BTreeMap<String, (u64, u64)>,
}

fn scalar_text(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::Num(n) => format!("{n}"),
        Value::Bool(b) => format!("{b}"),
        other => other.to_string_compact(),
    }
}

fn load(path: &str) -> Result<Run, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("run_report: cannot read {path}: {e}"))?;
    let mut run = Run {
        path: path.to_string(),
        meta: Vec::new(),
        scalars: BTreeMap::new(),
        hists: BTreeMap::new(),
        records: Vec::new(),
        spans: BTreeMap::new(),
    };
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v =
            Value::parse(line).map_err(|e| format!("run_report: {path}:{}: {e}", lineno + 1))?;
        let ty = v
            .req_str("type")
            .map_err(|e| format!("run_report: {path}:{}: {e}", lineno + 1))?;
        match ty {
            "meta" => {
                if let Value::Obj(fields) = &v {
                    for (k, val) in fields {
                        if k.as_str() != "type" {
                            run.meta.push((k.clone(), scalar_text(val)));
                        }
                    }
                }
            }
            "metric" => {
                let name = v.req_str("name").map_err(|e| e.to_string())?.to_string();
                match v.req_str("kind").map_err(|e| e.to_string())? {
                    "histogram" => {
                        run.hists.insert(
                            name,
                            (
                                v.req_f64("count").unwrap_or(0.0) as u64,
                                v.req_f64("mean").unwrap_or(0.0),
                                v.req_f64("min").unwrap_or(0.0) as u64,
                                v.req_f64("max").unwrap_or(0.0) as u64,
                            ),
                        );
                    }
                    _ => {
                        run.scalars
                            .insert(name, v.req_f64("value").unwrap_or(f64::NAN));
                    }
                }
            }
            "record" => {
                let errors = v
                    .get("val_errors")
                    .and_then(Value::as_arr)
                    .map(|a| a.iter().filter_map(Value::as_f64).collect())
                    .unwrap_or_default();
                run.records.push((
                    v.req_f64("iteration").unwrap_or(0.0) as usize,
                    v.req_f64("seconds").unwrap_or(0.0),
                    v.req_f64("train_loss").unwrap_or(f64::NAN),
                    errors,
                ));
            }
            "span" => {
                let key = format!(
                    "{}/{}",
                    v.req_str("cat").unwrap_or("?"),
                    v.req_str("name").unwrap_or("?")
                );
                let e = run.spans.entry(key).or_insert((0, 0));
                e.0 += 1;
                e.1 += v.req_f64("dur_ns").unwrap_or(0.0) as u64;
            }
            other => {
                return Err(format!(
                    "run_report: {path}:{}: unknown line type `{other}`",
                    lineno + 1
                ))
            }
        }
    }
    Ok(run)
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn print_single(run: &Run) {
    println!("=== run report: {} ===", run.path);
    for (k, v) in &run.meta {
        println!("  {k}: {v}");
    }
    if let (Some(first), Some(last)) = (run.records.first(), run.records.last()) {
        println!(
            "\nconvergence: {} records over {:.1}s (iterations {}..{})",
            run.records.len(),
            last.1,
            first.0,
            last.0
        );
        println!("  train loss: {:.6} -> {:.6}", first.2, last.2);
        if !last.3.is_empty() {
            let errs: Vec<String> = last.3.iter().map(|e| format!("{e:.4}")).collect();
            println!("  final val errors: [{}]", errs.join(", "));
        }
    } else {
        println!("\nconvergence: no records");
    }
    // Incremental graph-refresh rollup. Two of these histograms record
    // raw values (dirty percent, block counts), not nanoseconds, so
    // they get a dedicated summary and are excluded from the ns table.
    let rescored = run.scalars.get("sgm_graph_points_rescored_total");
    let patched = run.scalars.get("sgm_graph_edges_patched_total");
    let dirty = run.hists.get("sgm_graph_refresh_dirty_pct");
    let blocks = run.hists.get("sgm_graph_refresh_blocks_recomputed");
    if rescored.is_some() || patched.is_some() || dirty.is_some() || blocks.is_some() {
        println!("\ngraph refresh (incremental engine):");
        if let Some(v) = rescored {
            println!("  {:<42} {v}", "points rescored (cumulative)");
        }
        if let Some(v) = patched {
            println!("  {:<42} {v}", "adjacency slots patched (cumulative)");
        }
        if let Some((count, mean, min, max)) = dirty {
            println!(
                "  {:<42} {count} refreshes, mean {mean:.1}% (min {min}%, max {max}%)",
                "dirty fraction per refresh"
            );
        }
        if let Some((count, mean, min, max)) = blocks {
            println!(
                "  {:<42} {count} refreshes, mean {mean:.1} (min {min}, max {max})",
                "LRD blocks recomputed per refresh"
            );
        }
    }
    if !run.scalars.is_empty() {
        println!("\ncounters & gauges:");
        for (name, v) in &run.scalars {
            println!("  {name:<42} {v}");
        }
    }
    let value_hists = [
        "sgm_graph_refresh_dirty_pct",
        "sgm_graph_refresh_blocks_recomputed",
    ];
    if run.hists.keys().any(|n| !value_hists.contains(&n.as_str())) {
        println!("\nhistograms (count / mean / min / max):");
        for (name, (count, mean, min, max)) in &run.hists {
            if value_hists.contains(&name.as_str()) {
                continue;
            }
            println!(
                "  {name:<42} {count:>8}  {:>12}  {:>12}  {:>12}",
                fmt_ns(*mean),
                fmt_ns(*min as f64),
                fmt_ns(*max as f64),
            );
        }
    }
    if !run.spans.is_empty() {
        println!("\nspans (count / total / mean):");
        for (key, (count, total_ns)) in &run.spans {
            println!(
                "  {key:<42} {count:>8}  {:>12}  {:>12}",
                fmt_ns(*total_ns as f64),
                fmt_ns(*total_ns as f64 / (*count).max(1) as f64),
            );
        }
    }
}

fn print_diff(before: &Run, after: &Run) {
    println!("=== run diff: {} vs {} ===", before.path, after.path);
    println!("\nscalar metrics (before / after / ratio):");
    for (name, b) in &before.scalars {
        let Some(a) = after.scalars.get(name) else {
            println!("  {name:<42} only in {}", before.path);
            continue;
        };
        let ratio = if *b != 0.0 { a / b } else { f64::INFINITY };
        println!("  {name:<42} {b:>12.3}  {a:>12.3}  {ratio:>7.2}x");
    }
    for name in after.scalars.keys() {
        if !before.scalars.contains_key(name) {
            println!("  {name:<42} only in {}", after.path);
        }
    }
    println!("\nhistogram means (before / after / ratio):");
    for (name, (_, bm, _, _)) in &before.hists {
        let Some((_, am, _, _)) = after.hists.get(name) else {
            println!("  {name:<42} only in {}", before.path);
            continue;
        };
        let ratio = if *bm > 0.0 { am / bm } else { f64::INFINITY };
        println!(
            "  {name:<42} {:>12}  {:>12}  {ratio:>7.2}x",
            fmt_ns(*bm),
            fmt_ns(*am)
        );
    }
    println!("\nspan totals (before / after / ratio):");
    for (key, (_, bt)) in &before.spans {
        let Some((_, at)) = after.spans.get(key) else {
            println!("  {key:<42} only in {}", before.path);
            continue;
        };
        let ratio = if *bt > 0 {
            *at as f64 / *bt as f64
        } else {
            f64::INFINITY
        };
        println!(
            "  {key:<42} {:>12}  {:>12}  {ratio:>7.2}x",
            fmt_ns(*bt as f64),
            fmt_ns(*at as f64)
        );
    }
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    let runs: Result<Vec<Run>, String> = paths.iter().map(|p| load(p)).collect();
    let runs = match runs {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match runs.as_slice() {
        [one] => print_single(one),
        [before, after] => print_diff(before, after),
        _ => {
            eprintln!("usage: run_report <run.jsonl> [other-run.jsonl]");
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}
