//! # sgm-bench
//!
//! The experiment harness that regenerates every table and figure in the
//! paper's evaluation section (§4), plus hand-rolled micro-benchmarks of
//! each subsystem (see [`microbench`]).
//!
//! Reproduction binaries (see DESIGN.md's per-experiment index):
//!
//! | binary    | paper artifact |
//! |-----------|----------------|
//! | `table1`  | Table 1 — LDC min validation errors + time-to-target    |
//! | `fig2`    | Figure 2 — LDC error-vs-wall-time curves for `v`        |
//! | `table2`  | Table 2 — parameterised AR errors + time-to-target      |
//! | `fig3`    | Figure 3 — AR error-vs-time curves incl. plain SGM      |
//! | `fig4`    | Figure 4 — absolute error field of `p` at `r_i = 1.0`   |
//! | `ablation`| §5 hyper-parameter sensitivity (`k`, `𝕃`, `r`, mapping) |
//!
//! All binaries share the scaled experiment configurations in
//! [`experiments`] (the substitutions are documented in DESIGN.md §2) and
//! write machine-readable results under `target/experiments/`. Budgets are
//! tunable via the `SGM_BUDGET_SECS` environment variable.

pub mod experiments;
pub mod matrix;
pub mod microbench;
pub mod report;
