//! Scaled experiment definitions for the two evaluation problems.
//!
//! The paper trains 512×6 SiLU networks on 8–16 M collocation points for
//! ~1 M iterations on a V100. This reproduction scales every quantity
//! together (see DESIGN.md §2) while preserving the ratios the paper's
//! comparisons rest on: the baseline uses an **8× larger batch** and a
//! **2× larger dataset** than the reduced methods, every method gets the
//! **same wall-clock budget**, and SGM/MIS share the same refresh period
//! `τ_e`.

use sgm_cfd::ldc::LdcSolver;
use sgm_cfd::ring::{ring_validation_sets, PAPER_VALIDATION_RADII};
use sgm_core::score::ScoreMapping;
use sgm_core::{MisConfig, MisSampler, SgmConfig, SgmSampler, SgmStats, UniformSampler};
use sgm_graph::knn::KnnStrategy;
use sgm_linalg::rng::Rng64;
use sgm_nn::activation::Activation;
use sgm_nn::mlp::{FourierConfig, Mlp, MlpConfig};
use sgm_nn::optimizer::{AdamConfig, LrSchedule};
use sgm_physics::geometry::{AnnulusChannel, Cavity, FillStrategy};
use sgm_physics::pde::{NsConfig, Pde, ZeroEqConfig};
use sgm_physics::problem::{Problem, TrainSet};
use sgm_physics::validate::ValidationSet;
use sgm_physics::{AveragedValidation, PinnModel};
use sgm_stability::SpadeConfig;
use sgm_train::{Sampler, TrainOptions, TrainResult, Trainer};

/// Scale knobs shared by both experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct Scale {
    /// Interior points for reduced methods (paper: 8 M → scaled).
    pub n_small: usize,
    /// Interior points for the baseline (paper: 16 M; 2× `n_small`).
    pub n_large: usize,
    /// Mini-batch for reduced methods (paper: 500 / 1024).
    pub batch_small: usize,
    /// Baseline mini-batch (paper: 4000 / 4096; 8× / 4× `batch_small`).
    pub batch_large: usize,
    /// Boundary points and per-iteration boundary batch.
    pub n_boundary: usize,
    /// Boundary batch size.
    pub batch_boundary: usize,
    /// Hidden width (paper 512).
    pub width: usize,
    /// Hidden depth (paper 6).
    pub depth: usize,
    /// Wall-clock budget per method, seconds.
    pub budget_seconds: f64,
    /// Iteration cap (safety net on very fast machines).
    pub max_iterations: usize,
    /// Recording period (iterations).
    pub record_every: usize,
    /// Score refresh period `τ_e` for SGM and MIS.
    pub tau_e: usize,
    /// Graph rebuild period `τ_G` for SGM.
    pub tau_g: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Scale {
    /// Default LDC scale (≈1 minute per method; override the budget with
    /// `SGM_BUDGET_SECS`).
    pub fn ldc_default() -> Self {
        Scale {
            n_small: 16_000,
            n_large: 32_000,
            batch_small: 256,
            batch_large: 2048,
            n_boundary: 2048,
            batch_boundary: 128,
            width: 48,
            depth: 4,
            budget_seconds: budget_from_env(120.0),
            max_iterations: 400_000,
            record_every: 50,
            tau_e: 400,
            tau_g: 6000,
            seed: 2024,
        }
    }

    /// Default AR scale.
    pub fn ar_default() -> Self {
        Scale {
            n_small: 12_000,
            n_large: 24_000,
            batch_small: 128,
            batch_large: 1024,
            n_boundary: 2048,
            batch_boundary: 128,
            width: 48,
            depth: 4,
            budget_seconds: budget_from_env(120.0),
            max_iterations: 400_000,
            record_every: 50,
            tau_e: 400,
            tau_g: 6000,
            seed: 4202,
        }
    }

    /// A tiny scale for smoke tests (seconds, not minutes).
    pub fn smoke() -> Self {
        Scale {
            n_small: 1200,
            n_large: 2400,
            batch_small: 64,
            batch_large: 256,
            n_boundary: 256,
            batch_boundary: 32,
            width: 16,
            depth: 2,
            budget_seconds: 3.0,
            max_iterations: 3000,
            record_every: 25,
            tau_e: 100,
            tau_g: 0,
            seed: 99,
        }
    }
}

fn budget_from_env(default: f64) -> f64 {
    std::env::var("SGM_BUDGET_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// The sampling methods compared in the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Uniform sampling at the reduced batch/dataset (`U_500`, `U_1024`).
    UniformSmall,
    /// Uniform at the large batch/dataset — the paper's baseline
    /// (`U_4000`, `U_4096`).
    UniformLarge,
    /// Loss-proportional importance sampling (`MIS_β`).
    Mis,
    /// SGM-PINN without the stability term (`SGM_β`).
    Sgm,
    /// SGM-PINN with the ISR stability term (`SGM-S_β`, parameterised runs).
    SgmS,
}

impl Method {
    /// Display label matching the paper's notation.
    pub fn label(&self, scale: &Scale) -> String {
        match self {
            Method::UniformSmall => format!("U_{}", scale.batch_small),
            Method::UniformLarge => format!("U_{}", scale.batch_large),
            Method::Mis => format!("MIS_{}", scale.batch_small),
            Method::Sgm => format!("SGM_{}", scale.batch_small),
            Method::SgmS => format!("SGM-S_{}", scale.batch_small),
        }
    }
}

/// A fully assembled experiment (problem + data + validation).
#[derive(Debug)]
pub struct Experiment {
    /// The PINN problem.
    pub problem: Problem,
    /// Reduced dataset.
    pub data_small: TrainSet,
    /// Baseline dataset (2× interior points).
    pub data_large: TrainSet,
    /// Validation sets (averaged during recording).
    pub validation: Vec<ValidationSet>,
    /// Network input dimension.
    pub input_dim: usize,
    /// Network output dimension.
    pub output_dim: usize,
    /// SGM kNN size `k` (paper: 30 for LDC, 7 for AR).
    pub sgm_k: usize,
    /// SGM LRD level `𝕃` (paper: 10 for LDC, 6 for AR).
    pub sgm_level: usize,
    /// Column names of the validated outputs.
    pub output_names: Vec<String>,
}

/// Builds the lid-driven-cavity experiment (§4.1): zero-equation
/// turbulence closure, outputs `(u, v, p, ν)`, validation against the FDM
/// solve. Scaled substitution: `Re = 1` (the paper's `Re = 1000` needs
/// far more capacity/iterations than the scaled networks have; the
/// methods are compared at identical physics, so ratios are preserved —
/// see EXPERIMENTS.md).
pub fn build_ldc(scale: &Scale) -> Experiment {
    let re = 1.0;
    let nu_mol = 1.0 / re;
    let cavity = Cavity::default();
    let mut rng = Rng64::new(scale.seed);
    let zero_eq = ZeroEqConfig {
        karman: 0.419,
        mixing_cap: 0.09 * 0.5,
        wall_distance: Cavity::wall_distance,
        sqrt_eps: 1e-8,
    };
    let pde = Pde::NavierStokes(NsConfig {
        nu: nu_mol,
        zero_eq: Some(zero_eq),
    });
    let mut problem = Problem::new(pde);
    problem.bc_weight = 50.0;
    let mk_data = |n: usize, rng: &mut Rng64| {
        let interior = cavity.sample_interior(n, FillStrategy::Halton, rng);
        let (boundary, boundary_targets) = cavity.sample_boundary(scale.n_boundary / 4, 4, rng);
        TrainSet {
            interior,
            boundary,
            boundary_targets,
        }
    };
    let data_small = mk_data(scale.n_small, &mut rng);
    let data_large = mk_data(scale.n_large, &mut rng);
    let field = LdcSolver {
        n: 64,
        re,
        max_steps: 80_000,
        regularized_lid: true,
        ..LdcSolver::default()
    }
    .solve();
    let validation = vec![field.validation_set(4, nu_mol, 0.419, 0.045)];
    Experiment {
        problem,
        data_small,
        data_large,
        validation,
        input_dim: 2,
        output_dim: 4,
        sgm_k: 30,
        sgm_level: 10,
        output_names: vec!["u".into(), "v".into(), "nu".into()],
    }
}

/// Builds the parameterised annular-ring experiment (§4.2): laminar NS
/// with `ν = 0.1`, inputs `(x, y, r_i)`, outputs `(u, v, p)`, validation
/// against the exact solution at `r_i ∈ {1.0, 0.875, 0.75}`.
pub fn build_ar(scale: &Scale) -> Experiment {
    let ring = AnnulusChannel::default();
    let mut rng = Rng64::new(scale.seed);
    let pde = Pde::NavierStokes(NsConfig {
        nu: 0.1,
        zero_eq: None,
    });
    let mut problem = Problem::new(pde);
    problem.bc_weight = 10.0;
    let mk_data = |n: usize, rng: &mut Rng64| {
        let interior = ring.sample_interior(n, FillStrategy::Halton, rng);
        let (boundary, boundary_targets) = ring.sample_boundary(scale.n_boundary / 2, 3, rng);
        TrainSet {
            interior,
            boundary,
            boundary_targets,
        }
    };
    let data_small = mk_data(scale.n_small, &mut rng);
    let data_large = mk_data(scale.n_large, &mut rng);
    let validation = ring_validation_sets(&ring, &PAPER_VALIDATION_RADII, 8, 24);
    Experiment {
        problem,
        data_small,
        data_large,
        validation,
        input_dim: 3,
        output_dim: 3,
        sgm_k: 7,
        sgm_level: 6,
        output_names: vec!["u".into(), "v".into(), "p".into()],
    }
}

/// Result of one method run.
#[derive(Debug, Clone)]
pub struct MethodRun {
    /// Paper-style label (`U_4000`, `SGM_500`, …).
    pub label: String,
    /// Training history.
    pub result: TrainResult,
    /// SGM overhead stats when applicable.
    pub sgm_stats: Option<SgmStats>,
    /// MIS probe evaluations when applicable.
    pub mis_probe_evals: Option<usize>,
    /// Final network parameters (for field-error figures).
    pub params: Vec<f64>,
    /// Iterations completed inside the budget.
    pub iterations_done: usize,
}

/// Fourier encoding used by every experiment network (0 disables it; the
/// scaled LDC/AR runs train best with a plain encoding at this width).
pub const FOURIER_FEATURES: usize = 0;
/// Frequency scale of the encoding (unused while `FOURIER_FEATURES = 0`).
pub const FOURIER_SIGMA: f64 = 1.0;

fn net_config(input_dim: usize, output_dim: usize, width: usize, depth: usize) -> MlpConfig {
    MlpConfig {
        input_dim,
        output_dim,
        hidden_width: width,
        hidden_layers: depth,
        activation: Activation::SiLu,
        fourier: if FOURIER_FEATURES != 0 {
            Some(FourierConfig {
                num_features: FOURIER_FEATURES,
                sigma: FOURIER_SIGMA,
            })
        } else {
            None
        },
    }
}

fn fresh_net(exp: &Experiment, scale: &Scale) -> Mlp {
    let cfg = net_config(exp.input_dim, exp.output_dim, scale.width, scale.depth);
    let mut rng = Rng64::new(scale.seed ^ 0xABCD);
    Mlp::new(&cfg, &mut rng)
}

/// SGM configuration matching the paper's hyper-parameters for this
/// experiment (`k`, `𝕃`, `r = 15 %`, `τ_e`, `τ_G`).
pub fn sgm_config(exp: &Experiment, scale: &Scale, use_isr: bool) -> SgmConfig {
    SgmConfig {
        k: exp.sgm_k,
        knn_strategy: KnnStrategy::Grid,
        lrd_level: exp.sgm_level,
        min_clusters: 48,
        max_cluster_frac: 0.02,
        probe_ratio: 0.15,
        tau_e: scale.tau_e,
        tau_g: scale.tau_g,
        mapping: ScoreMapping::Linear { lo: 0.05, hi: 0.5 },
        floor_one: true,
        use_isr,
        isr_weight: 1.0,
        spade: SpadeConfig::default(),
        isr_cap: 192,
        spatial_dims: 2,
        background: true,
        augment_outputs: false,
        seed: scale.seed ^ 0x5617,
        incremental: None,
    }
}

/// Trains one method and returns its run record. Every method gets a
/// fresh, identically initialised network and the same wall-clock budget.
pub fn run_method(exp: &Experiment, scale: &Scale, method: Method) -> MethodRun {
    let mut net = fresh_net(exp, scale);
    let (data, batch) = match method {
        Method::UniformLarge => (&exp.data_large, scale.batch_large),
        _ => (&exp.data_small, scale.batch_small),
    };
    let mut sgm_holder: Option<SgmSampler> = None;
    let mut mis_holder: Option<MisSampler> = None;
    let mut uni_holder: Option<UniformSampler>;
    let sampler: &mut dyn Sampler = match method {
        Method::UniformSmall | Method::UniformLarge => {
            uni_holder = Some(UniformSampler::new(data.num_interior()));
            uni_holder.as_mut().unwrap()
        }
        Method::Mis => {
            mis_holder = Some(MisSampler::new(
                data.num_interior(),
                MisConfig {
                    tau_e: scale.tau_e,
                    ..MisConfig::default()
                },
            ));
            mis_holder.as_mut().unwrap()
        }
        Method::Sgm | Method::SgmS => {
            sgm_holder = Some(SgmSampler::new(
                &data.interior,
                sgm_config(exp, scale, method == Method::SgmS),
            ));
            sgm_holder.as_mut().unwrap()
        }
    };
    let opts = TrainOptions {
        iterations: scale.max_iterations,
        batch_interior: batch,
        batch_boundary: scale.batch_boundary,
        adam: AdamConfig {
            lr: 3e-3,
            schedule: LrSchedule::Exponential {
                gamma: 0.95,
                decay_steps: 4000,
            },
            ..AdamConfig::default()
        },
        seed: scale.seed ^ 0xBA7C4,
        record_every: scale.record_every,
        max_seconds: Some(scale.budget_seconds),
        synthetic_dt: None,
    };
    let result = {
        let model = PinnModel::new(&exp.problem, data);
        let validator = AveragedValidation(&exp.validation);
        let mut trainer = Trainer {
            net: &mut net,
            model: &model,
        };
        trainer.run(sampler, Some(&validator), &opts)
    };
    let iterations_done = result.history.last().map_or(0, |r| r.iteration + 1);
    MethodRun {
        label: method.label(scale),
        result,
        sgm_stats: sgm_holder.as_ref().map(|s| s.stats()),
        mis_probe_evals: mis_holder.as_ref().map(|m| m.probe_evals()),
        params: net.params(),
        iterations_done,
    }
}

/// Trains SGM with a caller-supplied configuration (ablation studies).
pub fn run_sgm_with_config(
    exp: &Experiment,
    scale: &Scale,
    cfg: SgmConfig,
    label: String,
) -> MethodRun {
    let mut net = fresh_net(exp, scale);
    let data = &exp.data_small;
    let mut sampler = SgmSampler::new(&data.interior, cfg);
    let opts = TrainOptions {
        iterations: scale.max_iterations,
        batch_interior: scale.batch_small,
        batch_boundary: scale.batch_boundary,
        adam: AdamConfig {
            lr: 2e-3,
            schedule: LrSchedule::Exponential {
                gamma: 0.9,
                decay_steps: 4000,
            },
            ..AdamConfig::default()
        },
        seed: scale.seed ^ 0xBA7C4,
        record_every: scale.record_every,
        max_seconds: Some(scale.budget_seconds),
        synthetic_dt: None,
    };
    let result = {
        let model = PinnModel::new(&exp.problem, data);
        let validator = AveragedValidation(&exp.validation);
        let mut trainer = Trainer {
            net: &mut net,
            model: &model,
        };
        trainer.run(&mut sampler, Some(&validator), &opts)
    };
    let iterations_done = result.history.last().map_or(0, |r| r.iteration + 1);
    MethodRun {
        label,
        result,
        sgm_stats: Some(sampler.stats()),
        mis_probe_evals: None,
        params: net.params(),
        iterations_done,
    }
}

/// Writes one method run's telemetry JSONL to `SGM_RUN_LOG_DIR` (no-op
/// when the var is unset or empty), then resets the metrics registry
/// and drains the span collector so the next method starts from zero.
/// Failures are warnings: telemetry must never abort an experiment that
/// already paid for its training time.
fn capture_telemetry(suite: &str, scale: &Scale, run: &MethodRun) {
    let dir = match std::env::var("SGM_RUN_LOG_DIR") {
        Ok(d) if !d.is_empty() => d,
        // Without a sink, leave the registry accumulating — resetting
        // here would discard metrics a caller might still scrape.
        _ => return,
    };
    use sgm_json::Value;
    use sgm_obs::{RunLog, RunRecord};
    let mut log = RunLog::new(&format!("{suite}/{}", run.label));
    log.meta("experiment", Value::Str(suite.to_string()));
    log.meta("label", Value::Str(run.label.clone()));
    log.meta("budget_seconds", Value::Num(scale.budget_seconds));
    log.meta("iterations", Value::Num(run.iterations_done as f64));
    log.meta(
        "simd_tier",
        Value::Str(sgm_linalg::simd::detected_tier().name().to_string()),
    );
    for r in &run.result.history {
        log.push_record(RunRecord {
            iteration: r.iteration,
            seconds: r.seconds,
            train_loss: r.train_loss,
            val_errors: r.val_errors.clone(),
        });
    }
    let spans = sgm_obs::trace::drain();
    let path = format!("{dir}/{suite}_{}.jsonl", run.label);
    match log.write_jsonl(&path, &spans) {
        Ok(()) => eprintln!("[{suite}] telemetry -> {path}"),
        Err(e) => eprintln!("[{suite}] warning: telemetry write failed for {path}: {e}"),
    }
    sgm_obs::metrics::reset();
}

/// Runs a list of methods and collects a serialisable suite dump.
pub fn run_suite(
    name: &str,
    exp: &Experiment,
    scale: &Scale,
    methods: &[Method],
) -> crate::report::SuiteDump {
    let mut runs = Vec::new();
    for &m in methods {
        let label = m.label(scale);
        eprintln!(
            "[{name}] training {label} (budget {:.0}s)...",
            scale.budget_seconds
        );
        let run = run_method(exp, scale, m);
        let last = run.result.history.last();
        eprintln!(
            "[{name}] {label}: {} iters, final errors {:?}",
            run.iterations_done,
            last.map(|r| r
                .val_errors
                .iter()
                .map(|e| (e * 1e4).round() / 1e4)
                .collect::<Vec<_>>())
        );
        capture_telemetry(name, scale, &run);
        runs.push(crate::report::RunDump::from_run(&run));
    }
    crate::report::SuiteDump {
        experiment: name.to_string(),
        output_names: exp.output_names.clone(),
        arch: crate::report::ArchDump {
            input_dim: exp.input_dim,
            output_dim: exp.output_dim,
            width: scale.width,
            depth: scale.depth,
            fourier_features: FOURIER_FEATURES,
            fourier_sigma: FOURIER_SIGMA,
            init_seed: scale.seed ^ 0xABCD,
        },
        runs,
    }
}

/// Rebuilds a trained network from a dump entry. The frozen Fourier
/// frequency matrix is regenerated from `arch.init_seed`, so the restored
/// network is bit-identical to the trained one.
pub fn net_from_dump(arch: &crate::report::ArchDump, params: &[f64]) -> Mlp {
    let cfg = MlpConfig {
        input_dim: arch.input_dim,
        output_dim: arch.output_dim,
        hidden_width: arch.width,
        hidden_layers: arch.depth,
        activation: Activation::SiLu,
        fourier: if arch.fourier_features > 0 {
            Some(FourierConfig {
                num_features: arch.fourier_features,
                sigma: arch.fourier_sigma,
            })
        } else {
            None
        },
    };
    let mut rng = Rng64::new(arch.init_seed);
    let mut net = Mlp::new(&cfg, &mut rng);
    net.set_params(params);
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_ldc_suite_runs_all_methods() {
        let scale = Scale::smoke();
        let exp = build_ldc(&scale);
        for method in [
            Method::UniformSmall,
            Method::UniformLarge,
            Method::Mis,
            Method::Sgm,
        ] {
            let run = run_method(&exp, &scale, method);
            assert!(
                !run.result.history.is_empty(),
                "{:?} produced no history",
                method
            );
            assert!(run.iterations_done > 10, "{:?} too few iterations", method);
            // Errors are finite and present for u, v, nu.
            let last = run.result.history.last().unwrap();
            assert_eq!(last.val_errors.len(), 3);
            assert!(last.val_errors.iter().all(|e| e.is_finite()));
        }
    }

    #[test]
    fn smoke_ar_with_isr() {
        let scale = Scale::smoke();
        let exp = build_ar(&scale);
        let run = run_method(&exp, &scale, Method::SgmS);
        assert!(run.sgm_stats.is_some());
        let stats = run.sgm_stats.unwrap();
        assert!(stats.refreshes >= 1);
        assert_eq!(run.label, "SGM-S_64");
    }

    #[test]
    fn labels_follow_paper_notation() {
        let scale = Scale::ldc_default();
        assert_eq!(Method::UniformLarge.label(&scale), "U_2048");
        assert_eq!(Method::Sgm.label(&scale), "SGM_256");
    }
}
