//! Micro-benchmarks backing the paper's §3.6 complexity claims plus the
//! parallel-runtime speedups:
//!
//! * kNN construction is `O(N log N)` (HNSW) / near-linear (grid);
//! * effective-resistance estimation and LRD are `O(kN)`;
//! * the ISR solve is cheap on probe-sized sets;
//! * SGM's refresh cost (r·N probes) is far below MIS's (N probes);
//! * the MLP derivative-propagating forward/backward scales linearly in
//!   batch size;
//! * the blocked GEMM beats the naive reference kernel, and the
//!   `*_threads` groups record how the pooled paths scale with the
//!   `sgm-par` thread count;
//! * `simd_kernels` times the SIMD-dispatched hot paths with stable case
//!   names — run it once under `SGM_SIMD=scalar` and once under
//!   `SGM_SIMD=auto`, then compare the two `--json` dumps with the
//!   `bench_diff` binary (this is how `BENCH_PR4.json` is assembled).
//!
//! Run with `cargo bench -p sgm-bench`; `-- --test` dry-runs every case
//! once (tier-1), `-- --json <path>` writes a machine-readable report.
//! Sizes are kept modest so the whole suite finishes in minutes; the
//! *ratios* between size points and thread counts are what the claims
//! rest on.

use sgm_bench::microbench::Runner;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Counting allocator so the trainer-overhead group can report heap
/// allocations per iteration alongside wall-clock (one relaxed atomic
/// per alloc; negligible against the kernels measured here).
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> usize {
    ALLOCS.load(Ordering::Relaxed)
}
use sgm_graph::knn::{brute_knn, build_knn_graph, KnnConfig, KnnStrategy};
use sgm_graph::lrd::{decompose, ErSource, LrdConfig};
use sgm_graph::points::PointCloud;
use sgm_graph::resistance::{approx_edge_resistances, ApproxErOptions};
use sgm_linalg::dense::{gemm, gemm_reference, Matrix};
use sgm_linalg::rng::Rng64;
use sgm_nn::activation::Activation;
use sgm_nn::mlp::{BatchDerivatives, Mlp, MlpConfig};
use sgm_nn::BatchedMlp;
use sgm_par::Parallelism;
use sgm_stability::{spade_scores, SpadeConfig};

fn cloud(n: usize, seed: u64) -> PointCloud {
    let mut rng = Rng64::new(seed);
    PointCloud::uniform_box(n, 2, 0.0, 1.0, &mut rng)
}

/// Thread counts exercised by the `*_threads` groups; 1 maps to the
/// serial oracle path.
const THREAD_POINTS: [usize; 3] = [1, 2, 4];

fn parallelism_for(threads: usize) -> Parallelism {
    if threads <= 1 {
        Parallelism::Serial
    } else {
        Parallelism::Threads(threads)
    }
}

fn bench_gemm(r: &mut Runner) {
    let mut rng = Rng64::new(11);
    for &n in &[128usize, 256, 384] {
        let a = Matrix::gaussian(n, n, &mut rng);
        let b = Matrix::gaussian(n, n, &mut rng);
        let mut c = Matrix::zeros(n, n);
        r.bench("gemm_blocked", &format!("naive_{n}"), || {
            gemm_reference(1.0, &a, &b, 0.0, &mut c);
            c.get(0, 0)
        });
        r.bench("gemm_blocked", &format!("blocked_serial_{n}"), || {
            sgm_par::with_parallelism(Parallelism::Serial, || {
                gemm(1.0, &a, &b, 0.0, &mut c);
                c.get(0, 0)
            })
        });
        r.bench("gemm_blocked", &format!("blocked_auto_{n}"), || {
            gemm(1.0, &a, &b, 0.0, &mut c);
            c.get(0, 0)
        });
    }
}

fn bench_knn(r: &mut Runner) {
    for &n in &[1000usize, 4000, 16000] {
        let pts = cloud(n, 1);
        for (name, strategy) in [("grid", KnnStrategy::Grid), ("hnsw", KnnStrategy::Hnsw)] {
            r.bench("knn_scaling", &format!("{name}_{n}"), || {
                build_knn_graph(
                    &pts,
                    &KnnConfig {
                        k: 8,
                        strategy,
                        ..KnnConfig::default()
                    },
                )
            });
        }
    }
}

fn bench_er_and_lrd(r: &mut Runner) {
    for &n in &[1000usize, 4000, 16000] {
        let pts = cloud(n, 2);
        let graph = build_knn_graph(
            &pts,
            &KnnConfig {
                k: 8,
                strategy: KnnStrategy::Grid,
                ..KnnConfig::default()
            },
        );
        r.bench("er_lrd_scaling", &format!("approx_er_{n}"), || {
            approx_edge_resistances(&graph, &ApproxErOptions::default())
        });
        let er = approx_edge_resistances(&graph, &ApproxErOptions::default());
        r.bench("er_lrd_scaling", &format!("lrd_{n}"), || {
            decompose(
                &graph,
                &LrdConfig {
                    level: 6,
                    er: ErSource::Provided(er.clone()),
                    min_clusters: 32,
                    max_cluster_frac: 0.02,
                    budget_scale: 1.0,
                },
            )
        });
    }
}

fn bench_isr(r: &mut Runner) {
    for &n in &[64usize, 128, 256] {
        let mut rng = Rng64::new(3);
        let inputs = PointCloud::uniform_box(n, 3, 0.0, 1.0, &mut rng);
        let outputs = {
            let mut flat = Vec::with_capacity(n * 2);
            for i in 0..n {
                let p = inputs.point(i);
                flat.push((3.0 * p[0]).sin() + p[2]);
                flat.push(p[0] * p[1]);
            }
            PointCloud::from_flat(2, flat)
        };
        r.bench("isr_probe", &format!("spade_{n}"), || {
            spade_scores(&inputs, &outputs, &SpadeConfig::default())
        });
    }
}

fn mlp_48x4(rng: &mut Rng64) -> Mlp {
    Mlp::new(
        &MlpConfig {
            input_dim: 3,
            output_dim: 4,
            hidden_width: 48,
            hidden_layers: 4,
            activation: Activation::SiLu,
            fourier: None,
        },
        rng,
    )
}

fn bench_mlp(r: &mut Runner) {
    let mut rng = Rng64::new(4);
    let net = mlp_48x4(&mut rng);
    for &b_sz in &[128usize, 512, 2048] {
        let x = Matrix::gaussian(b_sz, 3, &mut rng);
        r.bench("mlp_fwd_bwd", &format!("fwd_derivs_bwd_{b_sz}"), || {
            let (full, cache) = net.forward_with_derivs(&x, &[0, 1]);
            let adj = BatchDerivatives::zeros_like(&full);
            net.backward(&cache, &adj)
        });
        r.bench("mlp_fwd_bwd", &format!("fwd_values_only_{b_sz}"), || {
            net.forward(&x)
        });
    }
}

fn bench_mlp_threads(r: &mut Runner) {
    let mut rng = Rng64::new(12);
    let net = mlp_48x4(&mut rng);
    let x = Matrix::gaussian(2048, 3, &mut rng);
    for &t in &THREAD_POINTS {
        let p = parallelism_for(t);
        r.bench(
            "mlp_fwd_threads",
            &format!("fwd_derivs_bwd_2048_t{t}"),
            || {
                sgm_par::with_parallelism(p, || {
                    let (full, cache) = net.forward_with_derivs(&x, &[0, 1]);
                    let adj = BatchDerivatives::zeros_like(&full);
                    net.backward(&cache, &adj)
                })
            },
        );
    }
}

fn bench_knn_threads(r: &mut Runner) {
    let pts = cloud(8192, 13);
    for &t in &THREAD_POINTS {
        let p = parallelism_for(t);
        r.bench("knn_threads", &format!("brute_8192_t{t}"), || {
            sgm_par::with_parallelism(p, || brute_knn(&pts, 8))
        });
    }
}

fn bench_refresh_overhead(r: &mut Runner) {
    use sgm_core::{MisConfig, MisSampler, SgmConfig, SgmSampler};
    use sgm_physics::PinnModel;
    use sgm_train::{Probe, Sampler};

    let (net, problem, data) = refresh_fixture();
    // SGM probes r·N per refresh; MIS probes the full N. The ratio of
    // these two timings is the overhead reduction claimed in §3.1(3).
    {
        let mut s = SgmSampler::new(
            &data.interior,
            SgmConfig {
                tau_e: 1,
                tau_g: 0,
                background: false,
                min_clusters: 32,
                ..SgmConfig::default()
            },
        );
        let model = PinnModel::new(&problem, &data);
        let probe = Probe::new(&net, &model);
        let mut rng = Rng64::new(7);
        let mut iter = 0usize;
        r.bench("sampler_refresh", "sgm_refresh_r15", || {
            s.refresh(iter, &probe, &mut rng);
            iter += 1;
        });
    }
    {
        let mut s = MisSampler::new(
            data.interior.len(),
            MisConfig {
                tau_e: 1,
                ..MisConfig::default()
            },
        );
        let model = PinnModel::new(&problem, &data);
        let probe = Probe::new(&net, &model);
        let mut rng = Rng64::new(8);
        let mut iter = 0usize;
        r.bench("sampler_refresh", "mis_refresh_full", || {
            s.refresh(iter, &probe, &mut rng);
            iter += 1;
        });
    }
}

fn refresh_fixture() -> (
    Mlp,
    sgm_physics::problem::Problem,
    sgm_physics::problem::TrainSet,
) {
    use sgm_physics::geometry::{Cavity, FillStrategy};
    use sgm_physics::pde::{Pde, PoissonConfig};
    use sgm_physics::problem::{Problem, TrainSet};

    let n = 8000;
    let problem = Problem::new(Pde::Poisson(PoissonConfig {
        forcing: |p: &[f64]| (5.0 * p[0]).sin(),
    }));
    let mut rng = Rng64::new(5);
    let interior = Cavity::default().sample_interior(n, FillStrategy::Halton, &mut rng);
    let data = TrainSet {
        interior,
        boundary: PointCloud::from_flat(2, vec![0.0, 0.0]),
        boundary_targets: Matrix::zeros(1, 1),
    };
    let net = Mlp::new(
        &MlpConfig {
            input_dim: 2,
            output_dim: 1,
            hidden_width: 32,
            hidden_layers: 3,
            activation: Activation::SiLu,
            fourier: None,
        },
        &mut Rng64::new(6),
    );
    (net, problem, data)
}

fn bench_probe_refresh_threads(r: &mut Runner) {
    use sgm_core::{SgmConfig, SgmSampler};
    use sgm_physics::PinnModel;
    use sgm_train::{Probe, Sampler};

    let (net, problem, data) = refresh_fixture();
    for &t in &THREAD_POINTS {
        let p = parallelism_for(t);
        let mut s = SgmSampler::new(
            &data.interior,
            SgmConfig {
                tau_e: 1,
                tau_g: 0,
                background: false,
                min_clusters: 32,
                ..SgmConfig::default()
            },
        );
        let model = PinnModel::new(&problem, &data);
        let probe = Probe::new(&net, &model);
        let mut rng = Rng64::new(7);
        let mut iter = 0usize;
        r.bench(
            "probe_refresh_threads",
            &format!("sgm_r15_8000_t{t}"),
            || {
                sgm_par::with_parallelism(p, || {
                    s.refresh(iter, &probe, &mut rng);
                    iter += 1;
                })
            },
        );
    }
}

/// Old-style allocating training loop vs the staged workspace engine
/// (`sgm-train`), both serial, interior-only, identical batch sizes.
/// Each case runs `K` Adam iterations per timed call; the eprinted
/// alloc/iter figures feed BENCH_PR2.json.
fn bench_trainer_overhead(r: &mut Runner) {
    use sgm_nn::optimizer::{Adam, AdamConfig};
    use sgm_physics::PinnModel;
    use sgm_train::{TrainOptions, Trainer, UniformSampler};

    const K: usize = 20;
    let batch = 256usize;
    let (_, problem, data) = refresh_fixture();
    let n = data.interior.len();
    let mk_net = || {
        Mlp::new(
            &MlpConfig {
                input_dim: 2,
                output_dim: 1,
                hidden_width: 32,
                hidden_layers: 3,
                activation: Activation::SiLu,
                fourier: None,
            },
            &mut Rng64::new(6),
        )
    };
    sgm_par::with_parallelism(Parallelism::Serial, || {
        {
            let mut net = mk_net();
            let mut adam = Adam::new(&net, AdamConfig::default());
            let mut rng = Rng64::new(77);
            let mut allocs = 0usize;
            let mut calls = 0usize;
            r.bench(
                "trainer_overhead",
                &format!("alloc_loop_{K}x_b{batch}"),
                || {
                    let a0 = alloc_count();
                    for _ in 0..K {
                        let idx: Vec<usize> = (0..batch).map(|_| rng.below(n)).collect();
                        let mut x = Matrix::zeros(batch, 2);
                        for (row, &i) in idx.iter().enumerate() {
                            let p = data.interior.point(i);
                            x.set(row, 0, p[0]);
                            x.set(row, 1, p[1]);
                        }
                        let (_loss, grads, _per) = problem.interior_loss_and_grads(&net, &x);
                        adam.step(&mut net, &grads);
                    }
                    allocs += alloc_count() - a0;
                    calls += 1;
                },
            );
            eprintln!(
                "[trainer_overhead] alloc_loop: {:.1} allocs/iter",
                allocs as f64 / (calls * K) as f64
            );
        }
        {
            let mut net = mk_net();
            let model = PinnModel::new(&problem, &data);
            let mut sampler = UniformSampler::new(n);
            let opts = TrainOptions {
                iterations: K,
                batch_interior: batch,
                batch_boundary: 0,
                adam: AdamConfig::default(),
                seed: 78,
                record_every: 10 * K,
                max_seconds: None,
                synthetic_dt: None,
            };
            let mut allocs = 0usize;
            let mut calls = 0usize;
            r.bench(
                "trainer_overhead",
                &format!("engine_run_{K}x_b{batch}"),
                || {
                    let a0 = alloc_count();
                    let mut tr = Trainer {
                        net: &mut net,
                        model: &model,
                    };
                    tr.run(&mut sampler, None, &opts);
                    allocs += alloc_count() - a0;
                    calls += 1;
                },
            );
            eprintln!(
                "[trainer_overhead] engine_run: {:.1} allocs/iter (includes per-run \
                 workspace construction; steady-state is 0 — see train_zero_alloc)",
                allocs as f64 / (calls * K) as f64
            );
        }
    });
}

/// Cost of the observability layer itself. The registry cases time the
/// raw record paths; the engine case re-runs the `trainer_overhead`
/// engine loop with the `ObsHook` installed only under `SGM_OBS_HOOK=1`.
/// Case names are env-independent, so a baseline `--json` dump and an
/// instrumented one diff case-by-case with `bench_diff --strict` — that
/// comparison is the "tracing off costs nothing" acceptance gate.
fn bench_obs_overhead(r: &mut Runner) {
    use sgm_obs::{trace, TraceLevel};
    use sgm_physics::PinnModel;
    use sgm_train::{Hook, ObsHook, TrainOptions, Trainer, UniformSampler};

    static C: sgm_obs::Counter = sgm_obs::Counter::new("bench_obs_counter");
    static H: sgm_obs::Histogram = sgm_obs::Histogram::new("bench_obs_hist");
    r.bench("obs_overhead", "counter_hist_1k", || {
        for i in 0..1000u64 {
            C.add(1);
            H.record(i * 31);
        }
        C.value()
    });
    r.bench("obs_overhead", "span_disabled_1k", || {
        // With SGM_TRACE unset each span is one relaxed load + a None.
        let mut live = 0u64;
        for _ in 0..1000 {
            let s = trace::span(TraceLevel::Full, "bench", "noop");
            live += u64::from(s.context().is_some());
        }
        live
    });

    const K: usize = 20;
    let batch = 256usize;
    let with_obs = std::env::var("SGM_OBS_HOOK").is_ok_and(|v| v == "1");
    let (_, problem, data) = refresh_fixture();
    let n = data.interior.len();
    let mut net = Mlp::new(
        &MlpConfig {
            input_dim: 2,
            output_dim: 1,
            hidden_width: 32,
            hidden_layers: 3,
            activation: Activation::SiLu,
            fourier: None,
        },
        &mut Rng64::new(6),
    );
    let model = PinnModel::new(&problem, &data);
    let mut sampler = UniformSampler::new(n);
    let opts = TrainOptions {
        iterations: K,
        batch_interior: batch,
        batch_boundary: 0,
        adam: sgm_nn::optimizer::AdamConfig::default(),
        seed: 79,
        record_every: 10 * K,
        max_seconds: None,
        synthetic_dt: None,
    };
    let mut obs = ObsHook::new();
    sgm_par::with_parallelism(Parallelism::Serial, || {
        r.bench("obs_overhead", &format!("engine_run_{K}x_b{batch}"), || {
            let mut tr = Trainer {
                net: &mut net,
                model: &model,
            };
            if with_obs {
                let mut hooks: [&mut dyn Hook; 1] = [&mut obs];
                tr.run_hooked(&mut sampler, None, &opts, &mut hooks);
            } else {
                tr.run(&mut sampler, None, &opts);
            }
        });
    });
}

/// Cost of the serving layer itself. The stable-named case runs one
/// quickstart-sized job end-to-end: by default straight through
/// `run_local` (spec build + training engine, no server), and under
/// `SGM_SERVE_JOB=1` through a live `sgm-serve` instance over a real
/// socket (submit → long-poll wait → checkpoint download). The server
/// is started once outside the timed closure and its slice size covers
/// the whole run, so the diff isolates HTTP + scheduler + job-table
/// overhead. Diffing the two `--json` dumps with `bench_diff --strict`
/// is the "engine-in-server costs within noise of engine-direct"
/// acceptance gate.
fn bench_serve_overhead(r: &mut Runner) {
    use sgm_serve::{client, run_local, JobSpec, ServeConfig, Server};

    // Sized so the fixed per-job serving cost (three loopback round
    // trips + scheduler hand-off, ~0.7 ms) is well under the 10 %
    // strict-gate threshold against the training work itself.
    let spec = JobSpec {
        tenant: "bench".into(),
        iterations: 1500,
        interior: 128,
        boundary: 32,
        batch_interior: 16,
        batch_boundary: 8,
        hidden_width: 8,
        hidden_layers: 2,
        record_every: 100,
        ..JobSpec::default()
    };
    let in_server = std::env::var("SGM_SERVE_JOB").is_ok_and(|v| v == "1");
    let server = in_server.then(|| {
        Server::start(ServeConfig {
            workers: 1,
            slice_iterations: spec.iterations, // one slice: no preemption rebuilds
            ..ServeConfig::default()
        })
        .expect("bind bench server")
    });
    let addr = server.as_ref().map(Server::addr);
    r.bench("serve_overhead", "job_1500it_e2e", || {
        if let Some(addr) = addr {
            let id = client::submit(addr, &spec).expect("submit");
            let status =
                client::wait_settled(addr, id, std::time::Duration::from_secs(120)).expect("wait");
            assert_eq!(status.req_str("state").unwrap(), "completed");
            client::checkpoint(addr, id).expect("checkpoint").len()
        } else {
            let (_, state) = sgm_par::with_parallelism(Parallelism::Serial, || run_local(&spec))
                .expect("local run");
            state.to_json().expect("serialise").len()
        }
    });
    if let Some(server) = server {
        assert!(server.shutdown_and_join(), "bench server leaked threads");
    }
}

/// Per-sampler engine cost over a short run — what each draw/adapt
/// strategy adds on top of the shared loss/grad/step work — plus a
/// stable-named acceptance pair for `bench_diff --strict`: the
/// `engine_adapt_stage_*` case runs a draw-only sampler by default and
/// a point-set-adaptive sampler on *non-mutating* iterations under
/// `SGM_SAMPLER_ADAPT=1`. Diffing the two dumps gates the adapt-stage
/// contract: an idle adapt stage (PointSet bookkeeping, coordinate
/// gathers, change-log drains) must cost within noise of not having one.
fn bench_sampler_overhead(r: &mut Runner) {
    use sgm_core::{
        DmisConfig, DmisSampler, MisConfig, MisSampler, RadConfig, RadSampler, RarConfig,
        RarDConfig, RarDSampler, RarSampler, SgmConfig, SgmSampler,
    };
    use sgm_physics::PinnModel;
    use sgm_train::{Sampler, TrainOptions, Trainer, UniformSampler};

    const K: usize = 20;
    let batch = 64usize;
    let tau = 8usize;
    let (_, problem, data) = refresh_fixture();
    let n = data.interior.len();
    let net_cfg = MlpConfig {
        input_dim: 2,
        output_dim: 1,
        hidden_width: 16,
        hidden_layers: 2,
        activation: Activation::Tanh,
        fourier: None,
    };
    let model = PinnModel::new(&problem, &data);
    let opts = TrainOptions {
        iterations: K,
        batch_interior: batch,
        batch_boundary: 0,
        adam: sgm_nn::optimizer::AdamConfig::default(),
        seed: 83,
        record_every: 10 * K,
        max_seconds: None,
        synthetic_dt: None,
    };
    type MkSampler = Box<dyn Fn() -> Box<dyn Sampler>>;
    let mk: Vec<(&str, MkSampler)> = vec![
        (
            "uniform",
            Box::new(move || Box::new(UniformSampler::new(n))),
        ),
        (
            "mis",
            Box::new(move || {
                Box::new(MisSampler::new(
                    n,
                    MisConfig {
                        tau_e: tau,
                        ..MisConfig::default()
                    },
                ))
            }),
        ),
        (
            "rar",
            Box::new(move || {
                Box::new(RarSampler::new(
                    n,
                    RarConfig {
                        tau,
                        ..RarConfig::default()
                    },
                    &mut Rng64::new(17),
                ))
            }),
        ),
        (
            "rad",
            Box::new(move || {
                Box::new(RadSampler::new(
                    n,
                    RadConfig {
                        tau,
                        pool_size: 1024,
                        ..RadConfig::default()
                    },
                ))
            }),
        ),
        (
            "rar_d",
            Box::new(move || {
                Box::new(RarDSampler::new(
                    n,
                    RarDConfig {
                        tau,
                        candidates: 256,
                        add_per_adapt: 32,
                        ..RarDConfig::default()
                    },
                ))
            }),
        ),
        (
            "dmis",
            Box::new(move || {
                Box::new(DmisSampler::new(
                    n,
                    DmisConfig {
                        tau,
                        ..DmisConfig::default()
                    },
                ))
            }),
        ),
    ];
    sgm_par::with_parallelism(Parallelism::Serial, || {
        let mut net = Mlp::new(&net_cfg, &mut Rng64::new(19));
        for (name, mk_sampler) in &mk {
            let mut sampler = mk_sampler();
            r.bench(
                "sampler_overhead",
                &format!("engine_{K}x_b{batch}_{name}"),
                || {
                    let mut tr = Trainer {
                        net: &mut net,
                        model: &model,
                    };
                    tr.run(sampler.as_mut(), None, &opts);
                },
            );
        }
        // SGM separately: graph construction dominates its first run, so
        // build once outside the timed closure like a real training run
        // would.
        let mut sgm = SgmSampler::new(
            &data.interior,
            SgmConfig {
                k: 6,
                min_clusters: 16,
                max_cluster_frac: 0.1,
                tau_e: tau,
                tau_g: 0,
                background: false,
                ..SgmConfig::default()
            },
        );
        r.bench(
            "sampler_overhead",
            &format!("engine_{K}x_b{batch}_sgm"),
            || {
                let mut tr = Trainer {
                    net: &mut net,
                    model: &model,
                };
                tr.run(&mut sgm, None, &opts);
            },
        );
        // The strict-diff pair: same case name in both dumps, sampler
        // chosen by env. `tau: 0` keeps the adaptive sampler's adapt
        // no-op on every iteration, so the diff isolates the *stage*
        // overhead, not any resampling work.
        let adaptive_idle = std::env::var("SGM_SAMPLER_ADAPT").is_ok_and(|v| v == "1");
        let mut sampler: Box<dyn Sampler> = if adaptive_idle {
            Box::new(RadSampler::new(
                n,
                RadConfig {
                    tau: 0,
                    ..RadConfig::default()
                },
            ))
        } else {
            Box::new(UniformSampler::new(n))
        };
        r.bench(
            "sampler_overhead",
            &format!("engine_adapt_stage_{K}x_b{batch}"),
            || {
                let mut tr = Trainer {
                    net: &mut net,
                    model: &model,
                };
                tr.run(sampler.as_mut(), None, &opts);
            },
        );
    });
}

fn bench_thread_scaling(r: &mut Runner) {
    use sgm_graph::partition::{parallel_decompose, GridPartitionConfig};
    let pts = cloud(24_000, 9);
    for &threads in &[1usize, 2, 4] {
        let cfg = GridPartitionConfig {
            tiles_per_axis: 4,
            threads,
            knn: KnnConfig {
                k: 8,
                strategy: KnnStrategy::Grid,
                ..KnnConfig::default()
            },
            lrd: LrdConfig {
                min_clusters: 8,
                ..LrdConfig::default()
            },
        };
        r.bench("rebuild_threads", &format!("s1_s2_t{threads}"), || {
            parallel_decompose(&pts, &cfg)
        });
    }
}

/// SIMD-dispatched hot paths under whatever tier `SGM_SIMD` selects.
/// Case names are tier-independent so `bench_diff` can match a forced
/// `SGM_SIMD=scalar` dump against an `SGM_SIMD=auto` one. Pooled paths
/// run serial here so the tier is the only variable.
fn bench_simd_kernels(r: &mut Runner) {
    use sgm_linalg::simd;
    use sgm_linalg::Csr;

    let mut rng = Rng64::new(21);
    let n = 100_003usize; // large odd: exercises the vector body + tail
    let a: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
    let b: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
    let mut y = vec![0.0; n];
    r.bench("simd_kernels", "dot_100k", || simd::dot(&a, &b));
    r.bench("simd_kernels", "axpy_100k", || {
        simd::axpy(0.5, &a, &mut y);
        y[0]
    });

    let ma = Matrix::gaussian(256, 256, &mut rng);
    let mb = Matrix::gaussian(256, 256, &mut rng);
    let mut mc = Matrix::zeros(256, 256);
    r.bench("simd_kernels", "gemm_256", || {
        sgm_par::with_parallelism(Parallelism::Serial, || {
            gemm(1.0, &ma, &mb, 0.0, &mut mc);
            mc.get(0, 0)
        })
    });

    let pts = cloud(4096, 22);
    r.bench("simd_kernels", "brute_knn_4096", || {
        sgm_par::with_parallelism(Parallelism::Serial, || brute_knn(&pts, 8))
    });
    let q = pts.point(0).to_vec();
    let mut d2 = vec![0.0; pts.len()];
    r.bench("simd_kernels", "dist2_batch_4096x2", || {
        simd::dist2_batch(pts.as_slice(), pts.dim(), &q, &mut d2);
        d2[0]
    });

    // 5-point Laplacian stencil: the CG / effective-resistance workload.
    let rows = 40_000usize;
    let stride = 200usize;
    let mut trip = Vec::new();
    for i in 0..rows {
        trip.push((i, i, 4.0));
        if i >= 1 {
            trip.push((i, i - 1, -1.0));
        }
        if i + 1 < rows {
            trip.push((i, i + 1, -1.0));
        }
        if i >= stride {
            trip.push((i, i - stride, -1.0));
        }
        if i + stride < rows {
            trip.push((i, i + stride, -1.0));
        }
    }
    let csr = Csr::from_triplets(rows, rows, &trip);
    let xs: Vec<f64> = (0..rows).map(|_| rng.gaussian()).collect();
    let mut ys = vec![0.0; rows];
    r.bench("simd_kernels", "spmv_5pt_40k", || {
        csr.mul_vec(&xs, &mut ys);
        ys[0]
    });

    // Workspace (steady-state training) path: this is what the sgm-train
    // engine runs every iteration, so the tier ratio here is the one that
    // matters for wall-clock training speed. Width 128 approximates the
    // paper's width-512 networks (GEMM-dominated) at bench budget; the
    // scaled-down width-48 nets are covered by the `mlp` group.
    let net = Mlp::new(
        &MlpConfig {
            input_dim: 3,
            output_dim: 4,
            hidden_width: 128,
            hidden_layers: 4,
            activation: Activation::SiLu,
            fourier: None,
        },
        &mut rng,
    );
    let x = Matrix::gaussian(256, 3, &mut rng);
    let mut ws = net.make_workspace(256, 2);
    let adj = BatchDerivatives::zeros(256, 4, 2);
    let mut grads = net.zero_gradients();
    r.bench("simd_kernels", "mlp_fwd_bwd_256x128", || {
        sgm_par::with_parallelism(Parallelism::Serial, || {
            net.forward_with_derivs_ws(&x, &[0, 1], &mut ws);
            grads.zero();
            net.backward_ws(&mut ws, &adj, &mut grads);
        })
    });

    let m_len = 20_000usize;
    let g: Vec<f64> = (0..m_len).map(|_| rng.gaussian()).collect();
    let mut p = vec![0.0; m_len];
    let mut m1 = vec![0.0; m_len];
    let mut v1 = vec![0.0; m_len];
    r.bench("simd_kernels", "adam_update_20k", || {
        simd::adam_update(
            &mut p, &g, &mut m1, &mut v1, 0.9, 0.999, 0.1, 0.01, 1e-3, 1e-8,
        );
        p[0]
    });
}

/// Batched multi-model execution: B same-architecture networks stepped
/// through one `BatchedMlp` forward+backward pass versus B sequential
/// solo passes over the same data. Both modes emit identical
/// (group, case) ids — run once with `SGM_MULTI_MODE=seq` and once with
/// `SGM_MULTI_MODE=batched`, then `bench_diff` the two dumps: the
/// speedup column *is* the batched-execution win (this is how
/// `BENCH_PR9.json` is assembled). The CI/pipeline gate runs on the
/// lane-full B=8 width-128 case — the regime the sweep and serve
/// co-execution call sites run in — with `--min-speedup 1.2`, a noise
/// floor under the ~1.4x the case measures on the reference host (see
/// DESIGN.md §6f for why B<8 cases pad to 8 lanes and read as
/// slowdowns here; they are kept in the dump as the honest record).
fn bench_multi_model(r: &mut Runner) {
    let batched = matches!(std::env::var("SGM_MULTI_MODE").as_deref(), Ok("batched"));
    let rows = 128usize;
    let mut rng = Rng64::new(31);
    for &width in &[64usize, 128] {
        let cfg = MlpConfig {
            input_dim: 3,
            output_dim: 4,
            hidden_width: width,
            hidden_layers: 4,
            activation: Activation::SiLu,
            fourier: None,
        };
        for &b in &[1usize, 4, 8, 16] {
            let nets: Vec<Mlp> = (0..b).map(|_| Mlp::new(&cfg, &mut rng)).collect();
            let xs: Vec<Matrix> = (0..b)
                .map(|_| Matrix::gaussian(rows, 3, &mut rng))
                .collect();
            let adj = BatchDerivatives::zeros(rows, 4, 2);
            let name = format!("fwd_bwd_b{b}_w{width}");
            if batched {
                let refs: Vec<&Mlp> = nets.iter().collect();
                let packed = BatchedMlp::pack(&refs);
                let mut ws = packed.make_workspace(rows, 2);
                let mut grads = packed.zero_gradients();
                let xrefs: Vec<&Matrix> = xs.iter().collect();
                r.bench("multi_model", &name, || {
                    sgm_par::with_parallelism(Parallelism::Serial, || {
                        packed.forward_with_derivs_batched(&xrefs, &[0, 1], &mut ws);
                        // The interleave cost of seeding per-instance
                        // adjoints is part of the batched path's price.
                        for lane in 0..b {
                            ws.set_adjoints(lane, &adj);
                        }
                        grads.zero();
                        packed.backward_batched(&mut ws, &mut grads);
                    })
                });
            } else {
                let mut wss: Vec<_> = nets.iter().map(|n| n.make_workspace(rows, 2)).collect();
                let mut gs: Vec<_> = nets.iter().map(|n| n.zero_gradients()).collect();
                r.bench("multi_model", &name, || {
                    sgm_par::with_parallelism(Parallelism::Serial, || {
                        for i in 0..b {
                            nets[i].forward_with_derivs_ws(&xs[i], &[0, 1], &mut wss[i]);
                            gs[i].zero();
                            nets[i].backward_ws(&mut wss[i], &adj, &mut gs[i]);
                        }
                    })
                });
            }
        }
    }
}

fn main() {
    let mut r = Runner::from_args().with_iters(1, 5);
    bench_gemm(&mut r);
    bench_knn(&mut r);
    bench_er_and_lrd(&mut r);
    bench_isr(&mut r);
    bench_mlp(&mut r);
    bench_mlp_threads(&mut r);
    bench_knn_threads(&mut r);
    bench_refresh_overhead(&mut r);
    bench_trainer_overhead(&mut r);
    bench_obs_overhead(&mut r);
    bench_serve_overhead(&mut r);
    bench_sampler_overhead(&mut r);
    bench_probe_refresh_threads(&mut r);
    bench_thread_scaling(&mut r);
    bench_simd_kernels(&mut r);
    bench_multi_model(&mut r);
    r.finish();
}
