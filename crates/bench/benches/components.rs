//! Criterion micro-benchmarks backing the paper's §3.6 complexity claims:
//!
//! * kNN construction is `O(N log N)` (HNSW) / near-linear (grid);
//! * effective-resistance estimation and LRD are `O(kN)`;
//! * the ISR solve is cheap on probe-sized sets;
//! * SGM's refresh cost (r·N probes) is far below MIS's (N probes);
//! * the MLP derivative-propagating forward/backward scales linearly in
//!   batch size.
//!
//! Run with `cargo bench -p sgm-bench`. Sizes are kept modest so the
//! whole suite finishes in a few minutes; the *scaling ratios* between
//! size points are what the claims rest on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sgm_graph::knn::{build_knn_graph, KnnConfig, KnnStrategy};
use sgm_graph::lrd::{decompose, ErSource, LrdConfig};
use sgm_graph::points::PointCloud;
use sgm_graph::resistance::{approx_edge_resistances, ApproxErOptions};
use sgm_linalg::dense::Matrix;
use sgm_linalg::rng::Rng64;
use sgm_nn::activation::Activation;
use sgm_nn::mlp::{BatchDerivatives, Mlp, MlpConfig};
use sgm_stability::{spade_scores, SpadeConfig};
use std::time::Duration;

fn cloud(n: usize, seed: u64) -> PointCloud {
    let mut rng = Rng64::new(seed);
    PointCloud::uniform_box(n, 2, 0.0, 1.0, &mut rng)
}

fn bench_knn(c: &mut Criterion) {
    let mut g = c.benchmark_group("knn_scaling");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for &n in &[1000usize, 4000, 16000] {
        let pts = cloud(n, 1);
        for (name, strategy) in [("grid", KnnStrategy::Grid), ("hnsw", KnnStrategy::Hnsw)] {
            g.bench_with_input(BenchmarkId::new(name, n), &pts, |b, pts| {
                b.iter(|| {
                    build_knn_graph(
                        pts,
                        &KnnConfig {
                            k: 8,
                            strategy,
                            ..KnnConfig::default()
                        },
                    )
                })
            });
        }
    }
    g.finish();
}

fn bench_er_and_lrd(c: &mut Criterion) {
    let mut g = c.benchmark_group("er_lrd_scaling");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for &n in &[1000usize, 4000, 16000] {
        let pts = cloud(n, 2);
        let graph = build_knn_graph(
            &pts,
            &KnnConfig {
                k: 8,
                strategy: KnnStrategy::Grid,
                ..KnnConfig::default()
            },
        );
        g.bench_with_input(BenchmarkId::new("approx_er", n), &graph, |b, graph| {
            b.iter(|| approx_edge_resistances(graph, &ApproxErOptions::default()))
        });
        let er = approx_edge_resistances(&graph, &ApproxErOptions::default());
        g.bench_with_input(BenchmarkId::new("lrd", n), &graph, |b, graph| {
            b.iter(|| {
                decompose(
                    graph,
                    &LrdConfig {
                        level: 6,
                        er: ErSource::Provided(er.clone()),
                        min_clusters: 32,
                        max_cluster_frac: 0.02,
                        budget_scale: 1.0,
                    },
                )
            })
        });
    }
    g.finish();
}

fn bench_isr(c: &mut Criterion) {
    let mut g = c.benchmark_group("isr_probe");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for &n in &[64usize, 128, 256] {
        let mut rng = Rng64::new(3);
        let inputs = PointCloud::uniform_box(n, 3, 0.0, 1.0, &mut rng);
        let outputs = {
            let mut flat = Vec::with_capacity(n * 2);
            for i in 0..n {
                let p = inputs.point(i);
                flat.push((3.0 * p[0]).sin() + p[2]);
                flat.push(p[0] * p[1]);
            }
            PointCloud::from_flat(2, flat)
        };
        g.bench_with_input(
            BenchmarkId::new("spade", n),
            &(inputs, outputs),
            |b, (i, o)| b.iter(|| spade_scores(i, o, &SpadeConfig::default())),
        );
    }
    g.finish();
}

fn bench_mlp(c: &mut Criterion) {
    let mut g = c.benchmark_group("mlp_fwd_bwd");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    let cfg = MlpConfig {
        input_dim: 3,
        output_dim: 4,
        hidden_width: 48,
        hidden_layers: 4,
        activation: Activation::SiLu,
        fourier: None,
    };
    let mut rng = Rng64::new(4);
    let net = Mlp::new(&cfg, &mut rng);
    for &b_sz in &[128usize, 512, 2048] {
        let x = Matrix::gaussian(b_sz, 3, &mut rng);
        g.bench_with_input(BenchmarkId::new("fwd_derivs_bwd", b_sz), &x, |b, x| {
            b.iter(|| {
                let (full, cache) = net.forward_with_derivs(x, &[0, 1]);
                let adj = BatchDerivatives::zeros_like(&full);
                net.backward(&cache, &adj)
            })
        });
        g.bench_with_input(BenchmarkId::new("fwd_values_only", b_sz), &x, |b, x| {
            b.iter(|| net.forward(x))
        });
    }
    g.finish();
}

fn bench_refresh_overhead(c: &mut Criterion) {
    use sgm_core::{MisConfig, MisSampler, SgmConfig, SgmSampler};
    use sgm_physics::geometry::{Cavity, FillStrategy};
    use sgm_physics::pde::{Pde, PoissonConfig};
    use sgm_physics::problem::{Problem, TrainSet};
    use sgm_physics::train::{Probe, Sampler};

    let mut g = c.benchmark_group("sampler_refresh");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let n = 8000;
    let problem = Problem::new(Pde::Poisson(PoissonConfig {
        forcing: |p: &[f64]| (5.0 * p[0]).sin(),
    }));
    let mut rng = Rng64::new(5);
    let interior = Cavity::default().sample_interior(n, FillStrategy::Halton, &mut rng);
    let data = TrainSet {
        interior,
        boundary: PointCloud::from_flat(2, vec![0.0, 0.0]),
        boundary_targets: Matrix::zeros(1, 1),
    };
    let net = Mlp::new(
        &MlpConfig {
            input_dim: 2,
            output_dim: 1,
            hidden_width: 32,
            hidden_layers: 3,
            activation: Activation::SiLu,
            fourier: None,
        },
        &mut Rng64::new(6),
    );
    // SGM probes r·N per refresh; MIS probes the full N. The ratio of
    // these two timings is the overhead reduction claimed in §3.1(3).
    g.bench_function("sgm_refresh_r15", |b| {
        let mut s = SgmSampler::new(
            &data.interior,
            SgmConfig {
                tau_e: 1,
                tau_g: 0,
                background: false,
                min_clusters: 32,
                ..SgmConfig::default()
            },
        );
        let probe = Probe {
            net: &net,
            problem: &problem,
            data: &data,
        };
        let mut rng = Rng64::new(7);
        let mut iter = 0usize;
        b.iter(|| {
            s.refresh(iter, &probe, &mut rng);
            iter += 1;
        })
    });
    g.bench_function("mis_refresh_full", |b| {
        let mut s = MisSampler::new(
            n,
            MisConfig {
                tau_e: 1,
                ..MisConfig::default()
            },
        );
        let probe = Probe {
            net: &net,
            problem: &problem,
            data: &data,
        };
        let mut rng = Rng64::new(8);
        let mut iter = 0usize;
        b.iter(|| {
            s.refresh(iter, &probe, &mut rng);
            iter += 1;
        })
    });
    g.finish();
}

fn bench_thread_scaling(c: &mut Criterion) {
    use sgm_graph::partition::{parallel_decompose, GridPartitionConfig};
    let mut g = c.benchmark_group("rebuild_threads");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let pts = cloud(24_000, 9);
    for &threads in &[1usize, 2, 4] {
        let cfg = GridPartitionConfig {
            tiles_per_axis: 4,
            threads,
            knn: KnnConfig {
                k: 8,
                strategy: KnnStrategy::Grid,
                ..KnnConfig::default()
            },
            lrd: LrdConfig {
                min_clusters: 8,
                ..LrdConfig::default()
            },
        };
        g.bench_with_input(BenchmarkId::new("s1_s2", threads), &cfg, |b, cfg| {
            b.iter(|| parallel_decompose(&pts, cfg))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_knn,
    bench_er_and_lrd,
    bench_isr,
    bench_mlp,
    bench_refresh_overhead,
    bench_thread_scaling
);
criterion_main!(benches);
