//! N-scaling benchmark for the incremental graph refresh (paper-scale
//! point clouds: 64k → 256k → 1M).
//!
//! The same binary measures both engines, selected by environment so the
//! two dumps carry **identical** `(group, name)` ids and diff cleanly
//! with `bench_diff`:
//!
//! ```sh
//! SGM_REFRESH_MODE=full  cargo bench -p sgm-bench --bench refresh_scaling -- --json full.json
//! SGM_REFRESH_MODE=delta cargo bench -p sgm-bench --bench refresh_scaling -- --json delta.json
//! cargo run --release -p sgm-bench --bin bench_diff -- --min-speedup 3 full.json delta.json
//! ```
//!
//! * `full` (default) — a from-scratch S1+S2 rebuild per iteration: the
//!   classic `build_knn_graph` + `decompose` path the delta engine
//!   replaces.
//! * `delta` — a warm [`GraphRefresher`] patching a ~10 % spatially
//!   clustered dirty set per iteration. Iterations alternate between the
//!   perturbed and base clouds so every timed call moves the same number
//!   of points (there is no "already clean" freebie).
//!
//! `SGM_REFRESH_BENCH_MAX_N` caps the size ladder (CI uses 262144 to
//! skip the 1M tier); `--test` dry-runs a 4k cloud only.

use sgm_bench::microbench::Runner;
use sgm_graph::knn::{build_knn_graph, KnnConfig, KnnStrategy};
use sgm_graph::lrd::{decompose, ErSource, LrdConfig};
use sgm_graph::points::PointCloud;
use sgm_graph::refresh::{GraphRefresher, RefreshConfig, RefreshOptions};
use sgm_graph::resistance::ApproxErOptions;
use sgm_linalg::rng::Rng64;

/// Paper-scale size ladder (smallest LDC tier → the 1M stress point).
const SIZES: [usize; 3] = [65_536, 262_144, 1_048_576];

fn base_cloud(n: usize) -> PointCloud {
    let mut rng = Rng64::new(0xBE9C ^ n as u64);
    PointCloud::uniform_box(n, 2, 0.0, 1.0, &mut rng)
}

/// Displaces the points inside a disc holding ~10 % of the unit box by a
/// sub-spacing nudge — the spatially clustered dirty pattern a moving
/// loss front produces (adaptive resampling concentrates somewhere, not
/// uniformly).
fn perturbed(base: &PointCloud) -> PointCloud {
    let r2 = 0.1 / std::f64::consts::PI; // disc area = 10 % of the box
    let (cx, cy) = (0.35, 0.6);
    let nudge = 0.3 / (base.len() as f64).sqrt(); // ~30 % of mean spacing
    let mut rng = Rng64::new(0xD1A7 ^ base.len() as u64);
    let mut out = PointCloud::new(2);
    for i in 0..base.len() {
        let p = base.point(i);
        let (dx, dy) = (p[0] - cx, p[1] - cy);
        if dx * dx + dy * dy <= r2 {
            out.push(&[
                p[0] + rng.uniform_in(-nudge, nudge),
                p[1] + rng.uniform_in(-nudge, nudge),
            ]);
        } else {
            out.push(p);
        }
    }
    out
}

fn knn_cfg() -> KnnConfig {
    KnnConfig {
        k: 8,
        strategy: KnnStrategy::Grid,
        weight_eps: 1e-9,
        seed: 0x5EED,
    }
}

fn lrd_cfg() -> LrdConfig {
    LrdConfig {
        level: 6,
        er: ErSource::Approx(ApproxErOptions {
            seed: 0x5EED,
            ..ApproxErOptions::default()
        }),
        budget_scale: 1.0,
        max_cluster_frac: 0.02,
        min_clusters: 48,
    }
}

fn main() {
    let mut runner = Runner::from_args().with_iters(1, 3);
    let mode = std::env::var("SGM_REFRESH_MODE").unwrap_or_else(|_| "full".into());
    assert!(
        mode == "full" || mode == "delta",
        "SGM_REFRESH_MODE must be `full` or `delta`, got `{mode}`"
    );
    let max_n: usize = std::env::var("SGM_REFRESH_BENCH_MAX_N")
        .ok()
        .map(|v| v.parse().expect("SGM_REFRESH_BENCH_MAX_N: not a number"))
        .unwrap_or(usize::MAX);
    let sizes: Vec<usize> = if runner.is_dry_run() {
        vec![4096]
    } else {
        SIZES.iter().copied().filter(|&n| n <= max_n).collect()
    };

    for n in sizes {
        let base = base_cloud(n);
        let name = format!("n{n}");
        if mode == "full" {
            let (knn, lrd) = (knn_cfg(), lrd_cfg());
            runner.bench("refresh_scaling", &name, || {
                let g = build_knn_graph(&base, &knn);
                decompose(&g, &lrd).num_clusters()
            });
        } else {
            let shaken = perturbed(&base);
            let mut engine = GraphRefresher::new(RefreshConfig {
                knn: knn_cfg(),
                lrd: lrd_cfg(),
                opts: RefreshOptions::default(),
            });
            let (_, warm) = engine.refresh(&base); // untimed full build
            assert!(warm.full_build);
            let mut flip = false;
            runner.bench("refresh_scaling", &name, || {
                flip = !flip;
                let cloud = if flip { &shaken } else { &base };
                let (c, stats) = engine.refresh(cloud);
                assert!(!stats.full_build, "delta iteration fell back to full");
                c.num_clusters()
            });
        }
    }
    runner.finish();
}
