//! # sgm-serve
//!
//! A multi-tenant training-job server over the SGM-PINN stack: a
//! std-only, thread-per-connection HTTP/1.1 front end ([`server`]) on a
//! fair sliced scheduler ([`scheduler`]) that multiplexes many
//! concurrent trainings over one shared worker pool.
//!
//! The design hinges on one invariant: **a job preempted into N slices
//! is bit-identical to the same job run locally in one piece.** Every
//! slice rebuilds the job from its [`JobSpec`] and restores the previous
//! slice's [`RunState`](sgm_train::RunState) — exactly the path a
//! client-uploaded warm resume takes — so checkpoint/download/upload/
//! resume cycles, graceful-shutdown pauses and scheduler preemption all
//! share one determinism proof (the server-resume suite checks it at
//! 1, 2 and 8 intra-slice threads).
//!
//! * [`http`] — a defensive HTTP/1.1 parser with explicit limits; every
//!   malformed input maps to a 4xx, never a panic (property-fuzzed).
//! * [`spec`] — the JSON job schema and its translation to runnable
//!   problems/samplers; [`spec::run_local`] is the reference executor.
//! * [`scheduler`] — admission control (two-layer 429 backpressure),
//!   per-tenant round-robin fairness, slice execution with panic
//!   isolation, wall-budget eviction, graceful-shutdown checkpointing.
//! * [`server`] — the socket layer: connection-thread tracking,
//!   slow-loris timeouts, the endpoint table (see [`server`] docs).
//! * [`client`] — a minimal blocking client so the acceptance suite
//!   (load test, fault injection, resume determinism) exercises the
//!   real sockets.
//!
//! Environment: `SGM_SERVE_ADDR`, `SGM_SERVE_MAX_JOBS`,
//! `SGM_SERVE_QUEUE_DEPTH` (see [`ServeConfig::from_env`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod scheduler;
pub mod server;
pub mod spec;

pub use scheduler::{Job, JobState, Scheduler, ServeConfig, SubmitError};
pub use server::Server;
pub use spec::{run_local, BuiltJob, JobSpec};
