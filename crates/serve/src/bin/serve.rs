//! Standalone job server.
//!
//! ```sh
//! SGM_SERVE_ADDR=127.0.0.1:8900 cargo run --release -p sgm-serve --bin serve
//! ```
//!
//! Configuration comes from the environment (`SGM_SERVE_ADDR`,
//! `SGM_SERVE_MAX_JOBS`, `SGM_SERVE_QUEUE_DEPTH`; see
//! `ServeConfig::from_env`). The process serves until it receives a
//! `POST /shutdown`, then drains: in-flight runs checkpoint to
//! `paused`, the pool exits, and remaining HTTP clients can still
//! download checkpoints until their connections close.

use sgm_serve::{ServeConfig, Server};
use std::time::Duration;

fn main() {
    let mut cfg = ServeConfig::from_env();
    if cfg.addr == "127.0.0.1:0" {
        // A standalone server on an ephemeral port is unusable; pick a
        // stable default unless SGM_SERVE_ADDR says otherwise.
        cfg.addr = "127.0.0.1:8900".into();
    }
    let server = Server::start(cfg).expect("bind");
    println!("sgm-serve listening on http://{}", server.addr());
    println!("POST /shutdown to drain");
    // Serve until a client initiates the drain, then give late readers a
    // moment and exit.
    while !server.scheduler().is_shutting_down() {
        std::thread::sleep(Duration::from_millis(200));
    }
    println!("draining...");
    server.shutdown_and_join();
    println!("bye");
}
