//! Load-test + acceptance harness for the job server.
//!
//! Starts an in-process server, then drives `--jobs` quickstart-sized
//! jobs from `--tenants` concurrent client threads through the real
//! socket layer, and asserts the server's contracts:
//!
//! * **completion** — every submitted job reaches `completed`;
//! * **no silent drops** — every connection gets an HTTP response
//!   (429s are fine; a closed socket with no response is a failure);
//! * **backpressure** — when the offered load exceeds twice the queue
//!   depth, at least one submission must have been refused with 429
//!   (and later retried to success);
//! * **fairness** — max/min per-tenant throughput ≤ `--fairness-max`
//!   (default 3), the scheduler's round-robin gate.
//!
//! Telemetry: one JSONL run log (`--out`) with a record per completed
//! job and the process metric registry (including the
//! `sgm_serve_*` counters), consumable by `validate_telemetry`.
//!
//! ```sh
//! cargo run --release -p sgm-serve --bin load_test -- \
//!     --jobs 1000 --tenants 8 --out target/load_test.jsonl
//! ```

use sgm_json::Value;
use sgm_obs::{RunLog, RunRecord};
use sgm_serve::scheduler::{JOBS_COMPLETED, JOBS_REJECTED};
use sgm_serve::{client, JobSpec, ServeConfig, Server};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
struct Args {
    jobs: usize,
    tenants: usize,
    workers: usize,
    queue_depth: usize,
    max_jobs: usize,
    iterations: usize,
    slice_iterations: usize,
    fairness_max: f64,
    out: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            jobs: 1000,
            tenants: 8,
            workers: 4,
            queue_depth: 32,
            max_jobs: 64,
            iterations: 12,
            slice_iterations: 6,
            fairness_max: 3.0,
            out: None,
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = || {
            it.next()
                .unwrap_or_else(|| panic!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--jobs" => args.jobs = take().parse().expect("--jobs"),
            "--tenants" => args.tenants = take().parse().expect("--tenants"),
            "--workers" => args.workers = take().parse().expect("--workers"),
            "--queue-depth" => args.queue_depth = take().parse().expect("--queue-depth"),
            "--max-jobs" => args.max_jobs = take().parse().expect("--max-jobs"),
            "--iterations" => args.iterations = take().parse().expect("--iterations"),
            "--fairness-max" => args.fairness_max = take().parse().expect("--fairness-max"),
            "--out" => args.out = Some(take()),
            other => panic!("unknown flag {other} (see --jobs/--tenants/--workers/--queue-depth/--max-jobs/--iterations/--fairness-max/--out)"),
        }
    }
    assert!(
        args.jobs >= args.tenants && args.tenants >= 1,
        "need jobs >= tenants >= 1"
    );
    args
}

fn job_spec(tenant: &str, seq: usize, iterations: usize) -> JobSpec {
    // Quickstart-shaped but small; sampler varies so the server runs a
    // heterogeneous mix, seeds vary so jobs are distinct runs.
    let samplers = ["uniform", "mis", "uniform", "rad"];
    JobSpec {
        tenant: tenant.into(),
        sampler: samplers[seq % samplers.len()].into(),
        iterations,
        interior: 64,
        boundary: 16,
        batch_interior: 8,
        batch_boundary: 4,
        hidden_width: 4,
        hidden_layers: 1,
        record_every: iterations.div_ceil(2),
        train_seed: seq as u64 + 1,
        data_seed: 7 + (seq % 3) as u64,
        ..JobSpec::default()
    }
}

#[derive(Debug, Default)]
struct TenantOutcome {
    completed: Vec<(u64, f64, f64)>, // (job id, settle seconds from t0, last loss)
    retries_429: u64,
    failures: Vec<String>,
    finished_at: f64,
}

fn drive_tenant(
    addr: SocketAddr,
    tenant: String,
    jobs: usize,
    iterations: usize,
    t0: Instant,
    dropped: &AtomicU64,
) -> TenantOutcome {
    let mut out = TenantOutcome::default();
    let mut ids = Vec::with_capacity(jobs);
    for seq in 0..jobs {
        let spec = job_spec(&tenant, seq, iterations);
        loop {
            match client::submit(addr, &spec) {
                Ok(id) => {
                    ids.push(id);
                    break;
                }
                Err((429, _)) => {
                    out.retries_429 += 1;
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err((0, msg)) => {
                    dropped.fetch_add(1, Ordering::Relaxed);
                    out.failures
                        .push(format!("{tenant}#{seq}: transport: {msg}"));
                    break;
                }
                Err((status, msg)) => {
                    out.failures
                        .push(format!("{tenant}#{seq}: HTTP {status}: {msg}"));
                    break;
                }
            }
        }
    }
    for id in ids {
        match client::wait_settled(addr, id, Duration::from_secs(600)) {
            Ok(status) => {
                let state = status.req_str("state").unwrap_or("?").to_string();
                if state == "completed" {
                    let loss = status.req_f64("last_train_loss").unwrap_or(f64::NAN);
                    out.completed.push((id, t0.elapsed().as_secs_f64(), loss));
                } else {
                    let why = status
                        .get("error")
                        .and_then(Value::as_str)
                        .unwrap_or("")
                        .to_string();
                    out.failures
                        .push(format!("{tenant} job {id}: state {state} {why}"));
                }
            }
            Err(e) => out.failures.push(format!("{tenant} job {id}: {e}")),
        }
    }
    out.finished_at = t0.elapsed().as_secs_f64();
    out
}

fn main() {
    let args = parse_args();
    let server = Server::start(ServeConfig {
        workers: args.workers,
        queue_depth: args.queue_depth,
        max_jobs: args.max_jobs,
        slice_iterations: args.slice_iterations,
        ..ServeConfig::from_env()
    })
    .expect("bind");
    let addr = server.addr();
    println!(
        "load_test: {} jobs, {} tenants, {} workers, queue depth {} on http://{addr}",
        args.jobs, args.tenants, args.workers, args.queue_depth
    );

    let completed_before = JOBS_COMPLETED.value();
    let rejected_before = JOBS_REJECTED.value();
    let per_tenant = args.jobs / args.tenants;
    let remainder = args.jobs % args.tenants;
    let t0 = Instant::now();
    let dropped = AtomicU64::new(0);
    let outcomes: Vec<(String, TenantOutcome)> = std::thread::scope(|scope| {
        let dropped = &dropped;
        let handles: Vec<_> = (0..args.tenants)
            .map(|t| {
                let tenant = format!("tenant-{t}");
                let jobs = per_tenant + usize::from(t < remainder);
                let name = tenant.clone();
                let h = scope
                    .spawn(move || drive_tenant(addr, tenant, jobs, args.iterations, t0, dropped));
                (name, h)
            })
            .collect();
        handles
            .into_iter()
            .map(|(name, h)| (name, h.join().expect("tenant thread")))
            .collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();

    // ---- Assertions ----
    let mut failures: Vec<String> = Vec::new();
    let total_completed: usize = outcomes.iter().map(|(_, o)| o.completed.len()).sum();
    let total_retries: u64 = outcomes.iter().map(|(_, o)| o.retries_429).sum();
    for (_, o) in &outcomes {
        failures.extend(o.failures.iter().cloned());
    }
    let dropped = dropped.load(Ordering::Relaxed);

    if total_completed != args.jobs {
        failures.push(format!(
            "completion: {total_completed}/{} jobs completed",
            args.jobs
        ));
    }
    if dropped != 0 {
        failures.push(format!("{dropped} connections dropped without a response"));
    }
    let rejected = JOBS_REJECTED.value() - rejected_before;
    if args.jobs >= 2 * args.queue_depth && rejected == 0 {
        failures.push(format!(
            "backpressure never engaged: {} jobs against queue depth {} produced zero 429s",
            args.jobs, args.queue_depth
        ));
    }

    // Fairness: per-tenant throughput over the tenant's own makespan.
    let throughputs: Vec<(String, f64)> = outcomes
        .iter()
        .map(|(name, o)| {
            (
                name.clone(),
                o.completed.len() as f64 / o.finished_at.max(1e-9),
            )
        })
        .collect();
    let min = throughputs
        .iter()
        .map(|(_, v)| *v)
        .fold(f64::INFINITY, f64::min);
    let max = throughputs.iter().map(|(_, v)| *v).fold(0.0, f64::max);
    let ratio = if min > 0.0 { max / min } else { f64::INFINITY };
    if args.tenants > 1 && ratio > args.fairness_max {
        failures.push(format!(
            "fairness: max/min tenant throughput {ratio:.2} > {} ({throughputs:?})",
            args.fairness_max
        ));
    }

    println!(
        "load_test: {total_completed}/{} completed in {elapsed:.2}s \
         ({:.1} jobs/s), {total_retries} retried 429s, {rejected} rejections, \
         fairness ratio {ratio:.2}",
        args.jobs,
        total_completed as f64 / elapsed.max(1e-9),
    );
    let delta_completed = JOBS_COMPLETED.value() - completed_before;
    println!("load_test: server counted {delta_completed} completions");

    // ---- Telemetry ----
    if let Some(path) = &args.out {
        let mut log = RunLog::new("load_test");
        log.meta("jobs", Value::Num(args.jobs as f64))
            .meta("tenants", Value::Num(args.tenants as f64))
            .meta("workers", Value::Num(args.workers as f64))
            .meta("queue_depth", Value::Num(args.queue_depth as f64))
            .meta("fairness_ratio", Value::Num(ratio))
            .meta("retries_429", Value::Num(total_retries as f64))
            .meta("elapsed_seconds", Value::Num(elapsed))
            .meta(
                "simd_tier",
                Value::Str(sgm_linalg::simd::detected_tier().name().to_string()),
            );
        let mut records: Vec<(u64, f64, f64)> = outcomes
            .iter()
            .flat_map(|(_, o)| o.completed.iter().copied())
            .collect();
        records.sort_by_key(|(id, _, _)| *id);
        for (i, (_, seconds, loss)) in records.iter().enumerate() {
            log.push_record(RunRecord {
                iteration: i,
                seconds: *seconds,
                train_loss: *loss,
                val_errors: Vec::new(),
            });
        }
        log.write_jsonl(path, &[]).expect("write run log");
        println!("load_test: wrote {path}");
    }

    assert!(server.shutdown_and_join(), "connection threads leaked");

    if !failures.is_empty() {
        eprintln!("load_test FAILED:");
        for f in failures.iter().take(20) {
            eprintln!("  - {f}");
        }
        if failures.len() > 20 {
            eprintln!("  ... and {} more", failures.len() - 20);
        }
        std::process::exit(1);
    }
    println!("load_test PASSED");
}
