//! The multi-tenant job scheduler.
//!
//! One shared worker pool executes every admitted job in fixed-size
//! iteration **slices** ([`ServeConfig::slice_iterations`]). At each
//! slice boundary the job's full [`RunState`] is captured, so any job
//! can be preempted, cancelled, evicted or checkpointed between slices
//! with zero lost work — and because a slice resumes by rebuilding the
//! job from its spec and restoring the checkpoint (the same path as a
//! client-uploaded warm resume), a run sliced N ways is bit-identical
//! to the same run executed locally in one piece.
//!
//! **Fairness** is round-robin over *tenants*, not jobs: each tenant
//! owns a FIFO of runnable job ids and a rotating cursor picks the next
//! non-empty tenant queue. A tenant submitting 100 jobs cannot starve a
//! tenant with one — per-slice throughput per tenant is equalised,
//! which is what the load test's max/min fairness gate measures.
//!
//! **Backpressure** is two-layered: [`ServeConfig::max_jobs`] bounds
//! jobs in flight (queued + running + paused) and
//! [`ServeConfig::queue_depth`] bounds the runnable queue alone; either
//! limit maps to HTTP 429 at the submission endpoint.

use crate::spec::JobSpec;
use sgm_obs::{Counter, Gauge, Histogram, MetricScope};
use sgm_par::Parallelism;
use sgm_physics::PinnModel;
use sgm_train::{run_lockstep, MultiJob, RunState, Segment, Stage, StageTimes, Trainer, Validator};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Jobs accepted over the server's lifetime.
pub static JOBS_SUBMITTED: Counter = Counter::new("sgm_serve_jobs_submitted_total");
/// Jobs that reached their final iteration.
pub static JOBS_COMPLETED: Counter = Counter::new("sgm_serve_jobs_completed_total");
/// Jobs that failed (training error or worker panic).
pub static JOBS_FAILED: Counter = Counter::new("sgm_serve_jobs_failed_total");
/// Jobs cancelled by a client.
pub static JOBS_CANCELLED: Counter = Counter::new("sgm_serve_jobs_cancelled_total");
/// Jobs evicted for exceeding their wall-clock budget.
pub static JOBS_EVICTED: Counter = Counter::new("sgm_serve_jobs_evicted_total");
/// Submissions refused with 429 (queue or job-cap backpressure).
pub static JOBS_REJECTED: Counter = Counter::new("sgm_serve_jobs_rejected_total");
/// Worker panics survived (the pool thread lives on).
pub static WORKER_PANICS: Counter = Counter::new("sgm_serve_worker_panics_total");
/// Runnable jobs currently queued.
pub static QUEUE_DEPTH: Gauge = Gauge::new("sgm_serve_queue_depth");
/// Jobs in flight (queued + running + paused).
pub static JOBS_IN_FLIGHT: Gauge = Gauge::new("sgm_serve_jobs_in_flight");
/// Wall time per executed slice, nanoseconds.
pub static SLICE_NS: Histogram = Histogram::new("sgm_serve_slice_ns");

/// Server configuration. `addr`, `max_jobs`, `queue_depth` and
/// `co_slice` honor the `SGM_SERVE_ADDR`, `SGM_SERVE_MAX_JOBS`,
/// `SGM_SERVE_QUEUE_DEPTH` and `SGM_SERVE_CO_SLICE` environment
/// variables via [`ServeConfig::from_env`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker threads in the shared training pool.
    pub workers: usize,
    /// Max jobs in flight (queued + running + paused); 429 above.
    pub max_jobs: usize,
    /// Max runnable jobs queued; 429 above.
    pub queue_depth: usize,
    /// Preemption quantum: iterations per slice.
    pub slice_iterations: usize,
    /// Hard cap on a single job's `iterations`; 400 above.
    pub max_iterations: usize,
    /// Default per-job wall budget in seconds when the spec sets none
    /// (`None` = unlimited).
    pub default_wall_budget: Option<f64>,
    /// Socket read timeout (slow-loris defense) in milliseconds.
    pub read_timeout_ms: u64,
    /// Request body cap in bytes.
    pub max_body_bytes: usize,
    /// Intra-slice parallelism applied around every training slice
    /// (`sgm-par`'s setting is thread-local, so workers must re-enter
    /// it).
    pub parallelism: Parallelism,
    /// Lockstep co-execution width: a worker picking a job may batch up
    /// to this many co-compatible queued jobs
    /// ([`JobSpec::co_compatible`]) into one slice executed through the
    /// batched multi-model kernels (`sgm_train::run_lockstep`). `1`
    /// (the default) disables grouping. Per-job checkpoints stay
    /// bit-identical to solo execution; only measured wall clocks
    /// differ (each member is charged the full group slice) and
    /// per-stage timing is not attributed for co-executed slices.
    pub co_slice: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            max_jobs: 256,
            queue_depth: 128,
            slice_iterations: 10,
            max_iterations: 100_000,
            default_wall_budget: None,
            read_timeout_ms: 2_000,
            max_body_bytes: 16 * 1024 * 1024,
            parallelism: Parallelism::Serial,
            co_slice: 1,
        }
    }
}

impl ServeConfig {
    /// Defaults overridden by `SGM_SERVE_ADDR`, `SGM_SERVE_MAX_JOBS`,
    /// `SGM_SERVE_QUEUE_DEPTH` and `SGM_SERVE_CO_SLICE` (invalid
    /// values are ignored).
    pub fn from_env() -> Self {
        let mut cfg = ServeConfig::default();
        if let Ok(v) = std::env::var("SGM_SERVE_ADDR") {
            if !v.is_empty() {
                cfg.addr = v;
            }
        }
        if let Some(n) = env_usize("SGM_SERVE_MAX_JOBS") {
            cfg.max_jobs = n.max(1);
        }
        if let Some(n) = env_usize("SGM_SERVE_QUEUE_DEPTH") {
            cfg.queue_depth = n.max(1);
        }
        if let Some(n) = env_usize("SGM_SERVE_CO_SLICE") {
            cfg.co_slice = n.max(1);
        }
        cfg
    }
}

fn env_usize(key: &str) -> Option<usize> {
    std::env::var(key).ok()?.parse().ok()
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Runnable, waiting for a worker slot.
    Queued,
    /// A worker is executing a slice.
    Running,
    /// Reached its final iteration.
    Completed,
    /// Training error or worker panic (message attached).
    Failed(String),
    /// Cancelled by a client (checkpoint, if any, is kept).
    Cancelled,
    /// Evicted by policy (message attached), e.g. wall-budget overrun.
    Evicted(String),
    /// Checkpointed by a graceful shutdown; resumable via upload.
    Paused,
}

impl JobState {
    /// Whether the job can never run again on this server.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Failed(_) | JobState::Cancelled | JobState::Evicted(_)
        )
    }

    /// Whether a `wait` call should keep blocking on this state.
    pub fn is_settled(&self) -> bool {
        self.is_terminal() || matches!(self, JobState::Paused)
    }

    /// Display name for status payloads.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Failed(_) => "failed",
            JobState::Cancelled => "cancelled",
            JobState::Evicted(_) => "evicted",
            JobState::Paused => "paused",
        }
    }
}

/// One admitted job.
#[derive(Debug)]
pub struct Job {
    /// Server-assigned id.
    pub id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Lifecycle state.
    pub state: JobState,
    /// Latest slice-boundary checkpoint (also present on resume
    /// admission before the first slice runs).
    pub run: Option<RunState>,
    /// Cancellation requested; consumed at the next slice boundary.
    pub cancel: bool,
    /// Measured wall seconds spent executing this job's slices.
    pub wall_seconds: f64,
    /// Per-stage wall nanoseconds accumulated across slices.
    pub stage_ns: [u128; Stage::COUNT],
    /// Per-stage event counts accumulated across slices.
    pub stage_counts: [u64; Stage::COUNT],
    /// Per-run labelled metrics (`run`, `tenant`).
    pub scope: MetricScope,
    /// Iterations completed.
    pub iteration: usize,
    /// Training loss at the latest record, if any.
    pub last_loss: Option<f64>,
}

impl Job {
    fn new(id: u64, spec: JobSpec, run: Option<RunState>) -> Self {
        let scope = MetricScope::new([
            ("run".to_string(), id.to_string()),
            ("tenant".to_string(), spec.tenant.clone()),
        ]);
        let iteration = run.as_ref().map_or(0, |r| r.iteration);
        Job {
            id,
            tenant: spec.tenant.clone(),
            spec,
            state: JobState::Queued,
            run,
            cancel: false,
            wall_seconds: 0.0,
            stage_ns: [0; Stage::COUNT],
            stage_counts: [0; Stage::COUNT],
            scope,
            iteration,
            last_loss: None,
        }
    }

    /// Effective wall budget (spec override, else server default).
    fn wall_budget(&self, cfg: &ServeConfig) -> Option<f64> {
        self.spec.max_wall_seconds.or(cfg.default_wall_budget)
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// Server draining after shutdown — HTTP 503.
    Draining,
    /// Queue/job-cap backpressure — HTTP 429.
    Busy(String),
    /// Spec violates a server policy — HTTP 400.
    Invalid(String),
}

struct Inner {
    jobs: BTreeMap<u64, Job>,
    next_id: u64,
    /// Tenant rotation order (first-seen) + per-tenant runnable FIFOs.
    tenants: Vec<String>,
    queues: BTreeMap<String, VecDeque<u64>>,
    cursor: usize,
    queued: usize,
    shutdown: bool,
}

impl Inner {
    fn in_flight(&self) -> usize {
        self.jobs
            .values()
            .filter(|j| !j.state.is_terminal())
            .count()
    }

    fn publish_gauges(&self) {
        QUEUE_DEPTH.set(self.queued as f64);
        JOBS_IN_FLIGHT.set(self.in_flight() as f64);
    }

    /// Pops the next runnable job id, round-robin over tenants.
    fn pick(&mut self) -> Option<u64> {
        let n = self.tenants.len();
        for step in 0..n {
            let t = &self.tenants[(self.cursor + step) % n];
            if let Some(q) = self.queues.get_mut(t) {
                if let Some(id) = q.pop_front() {
                    self.cursor = (self.cursor + step + 1) % n;
                    self.queued -= 1;
                    return Some(id);
                }
            }
        }
        None
    }

    /// Pops up to `width - 1` additional queued jobs that can share a
    /// lockstep slice with `lead` (scanning tenant queues in rotation
    /// order), returning the whole group with `lead` first. Returns
    /// just `[lead]` when `lead` itself is not co-eligible — e.g. an
    /// adaptive sampler, fault injection, or a resumed checkpoint
    /// carrying point-set state.
    fn pick_co_group(&mut self, lead: u64, width: usize) -> Vec<u64> {
        let mut group = vec![lead];
        if width <= 1 || !co_eligible(&self.jobs[&lead]) {
            return group;
        }
        let lead_spec = self.jobs[&lead].spec.clone();
        let tenants = self.tenants.clone();
        'scan: for t in &tenants {
            let Some(q) = self.queues.get_mut(t) else {
                continue;
            };
            let mut i = 0;
            while i < q.len() {
                if group.len() >= width {
                    break 'scan;
                }
                let id = q[i];
                let job = &self.jobs[&id];
                if co_eligible(job) && lead_spec.co_compatible(&job.spec) {
                    q.remove(i);
                    self.queued -= 1;
                    group.push(id);
                } else {
                    i += 1;
                }
            }
        }
        group
    }

    fn enqueue(&mut self, id: u64) {
        let tenant = self.jobs[&id].tenant.clone();
        if !self.tenants.contains(&tenant) {
            self.tenants.push(tenant.clone());
        }
        self.queues.entry(tenant).or_default().push_back(id);
        self.queued += 1;
    }
}

/// The scheduler: admission control, fair queueing, slice execution,
/// preemption and shutdown checkpointing. Thread-safe; worker threads
/// run [`Scheduler::worker_loop`].
pub struct Scheduler {
    cfg: ServeConfig,
    inner: Mutex<Inner>,
    /// Signalled when a job becomes runnable or shutdown begins.
    work_ready: Condvar,
    /// Signalled on every job state change (wait/long-poll support).
    job_done: Condvar,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler").field("cfg", &self.cfg).finish()
    }
}

impl Scheduler {
    /// A scheduler with the given configuration.
    pub fn new(cfg: ServeConfig) -> Self {
        Scheduler {
            cfg,
            inner: Mutex::new(Inner {
                jobs: BTreeMap::new(),
                next_id: 1,
                tenants: Vec::new(),
                queues: BTreeMap::new(),
                cursor: 0,
                queued: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            job_done: Condvar::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Admits a job, optionally warm-started from an uploaded
    /// checkpoint.
    ///
    /// # Errors
    /// [`SubmitError::Draining`] after shutdown, [`SubmitError::Busy`]
    /// on backpressure, [`SubmitError::Invalid`] for policy violations.
    pub fn submit(&self, spec: JobSpec, resume: Option<RunState>) -> Result<u64, SubmitError> {
        if spec.iterations > self.cfg.max_iterations {
            return Err(SubmitError::Invalid(format!(
                "iterations {} exceeds server cap {}",
                spec.iterations, self.cfg.max_iterations
            )));
        }
        if let Some(st) = &resume {
            if st.iteration >= spec.iterations {
                return Err(SubmitError::Invalid(format!(
                    "checkpoint is at iteration {} of {} — nothing left to run",
                    st.iteration, spec.iterations
                )));
            }
        }
        let mut inner = self.inner.lock().expect("scheduler poisoned");
        if inner.shutdown {
            return Err(SubmitError::Draining);
        }
        if inner.in_flight() >= self.cfg.max_jobs {
            JOBS_REJECTED.inc();
            return Err(SubmitError::Busy(format!(
                "job cap reached ({} in flight)",
                self.cfg.max_jobs
            )));
        }
        if inner.queued >= self.cfg.queue_depth {
            JOBS_REJECTED.inc();
            return Err(SubmitError::Busy(format!(
                "queue full ({} queued)",
                self.cfg.queue_depth
            )));
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.jobs.insert(id, Job::new(id, spec, resume));
        inner.enqueue(id);
        inner.publish_gauges();
        JOBS_SUBMITTED.inc();
        self.work_ready.notify_one();
        Ok(id)
    }

    /// Requests cancellation. Queued jobs settle immediately; running
    /// jobs settle at the next slice boundary. Returns `false` for
    /// unknown ids.
    pub fn cancel(&self, id: u64) -> bool {
        let mut inner = self.inner.lock().expect("scheduler poisoned");
        let Some(job) = inner.jobs.get_mut(&id) else {
            return false;
        };
        if job.state.is_settled() {
            return true;
        }
        job.cancel = true;
        if job.state == JobState::Queued {
            job.state = JobState::Cancelled;
            JOBS_CANCELLED.inc();
            let tenant = job.tenant.clone();
            if let Some(q) = inner.queues.get_mut(&tenant) {
                if let Some(pos) = q.iter().position(|&x| x == id) {
                    q.remove(pos);
                    inner.queued -= 1;
                }
            }
            inner.publish_gauges();
            self.job_done.notify_all();
        }
        true
    }

    /// Runs `f` against the job, if it exists.
    pub fn with_job<R>(&self, id: u64, f: impl FnOnce(&Job) -> R) -> Option<R> {
        let inner = self.inner.lock().expect("scheduler poisoned");
        inner.jobs.get(&id).map(f)
    }

    /// Blocks until the job settles (terminal or paused) or `timeout`
    /// elapses; returns the state at that point (`None` = unknown id).
    pub fn wait(&self, id: u64, timeout: Duration) -> Option<JobState> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock().expect("scheduler poisoned");
        loop {
            let state = inner.jobs.get(&id)?.state.clone();
            if state.is_settled() {
                return Some(state);
            }
            let now = Instant::now();
            if now >= deadline {
                return Some(state);
            }
            let (guard, _) = self
                .job_done
                .wait_timeout(inner, deadline - now)
                .expect("scheduler poisoned");
            inner = guard;
        }
    }

    /// Begins a graceful shutdown: admissions stop, queued jobs pause
    /// in place, running slices finish and checkpoint to `Paused`.
    pub fn begin_shutdown(&self) {
        let mut inner = self.inner.lock().expect("scheduler poisoned");
        inner.shutdown = true;
        let mut drained: Vec<u64> = Vec::new();
        for q in inner.queues.values_mut() {
            drained.extend(q.drain(..));
        }
        inner.queued = 0;
        for id in drained {
            if let Some(job) = inner.jobs.get_mut(&id) {
                job.state = JobState::Paused;
            }
        }
        inner.publish_gauges();
        self.work_ready.notify_all();
        self.job_done.notify_all();
    }

    /// Whether shutdown has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.lock().expect("scheduler poisoned").shutdown
    }

    /// `(queued, running, settled)` job counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let inner = self.inner.lock().expect("scheduler poisoned");
        let mut c = (0, 0, 0);
        for j in inner.jobs.values() {
            match j.state {
                JobState::Queued => c.0 += 1,
                JobState::Running => c.1 += 1,
                _ => c.2 += 1,
            }
        }
        c
    }

    /// Worker-pool thread body: picks jobs fairly, executes one slice,
    /// settles or requeues. Returns when shutdown has begun and no work
    /// remains. Worker panics inside a slice are caught and charged to
    /// the job (or the whole co-executed group), never to the pool
    /// thread.
    ///
    /// With [`ServeConfig::co_slice`] > 1 the worker batches up to that
    /// many co-compatible queued jobs into one lockstep slice executed
    /// through `sgm_train::run_lockstep` — same per-job checkpoints,
    /// one pass through the batched kernels.
    pub fn worker_loop(&self) {
        loop {
            let (group, specs, starts, stop_afters) = {
                let mut inner = self.inner.lock().expect("scheduler poisoned");
                let lead = loop {
                    if let Some(id) = inner.pick() {
                        break id;
                    }
                    if inner.shutdown {
                        return;
                    }
                    inner = self.work_ready.wait(inner).expect("scheduler poisoned");
                };
                let group = inner.pick_co_group(lead, self.cfg.co_slice.max(1));
                // Lockstep requires every member to run the same number
                // of iterations, so the group slice is the shortest
                // remaining stretch (capped by the preemption quantum).
                let steps = group
                    .iter()
                    .map(|id| inner.jobs[id].spec.iterations - inner.jobs[id].iteration)
                    .min()
                    .unwrap_or(0)
                    .min(self.cfg.slice_iterations);
                let mut specs = Vec::with_capacity(group.len());
                let mut starts = Vec::with_capacity(group.len());
                let mut stop_afters = Vec::with_capacity(group.len());
                for &id in &group {
                    let job = inner.jobs.get_mut(&id).expect("picked job exists");
                    job.state = JobState::Running;
                    specs.push(job.spec.clone());
                    starts.push(job.run.clone());
                    stop_afters.push(job.iteration + steps);
                }
                inner.publish_gauges();
                (group, specs, starts, stop_afters)
            };

            let t0 = Instant::now();
            // Per-job outcome: (segment, per-stage timings). Co-executed
            // slices carry no stage attribution; group-level failures
            // (panic or error) are charged to every member.
            type SliceOutcome = Result<(Segment, Option<StageTimes>), (String, bool)>;
            let outcomes: Vec<SliceOutcome> = if group.len() == 1 {
                let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_slice(
                        &specs[0],
                        starts[0].as_ref(),
                        stop_afters[0],
                        self.cfg.parallelism,
                    )
                }));
                vec![match caught {
                    Err(payload) => Err((panic_message(&payload), true)),
                    Ok(Err(msg)) => Err((msg, false)),
                    Ok(Ok((segment, stages))) => Ok((segment, Some(stages))),
                }]
            } else {
                let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_co_slice(&specs, &starts, &stop_afters, self.cfg.parallelism)
                }));
                match caught {
                    Err(payload) => {
                        let msg = panic_message(&payload);
                        group.iter().map(|_| Err((msg.clone(), true))).collect()
                    }
                    Ok(Err(msg)) => group.iter().map(|_| Err((msg.clone(), false))).collect(),
                    Ok(Ok(segments)) => segments.into_iter().map(|s| Ok((s, None))).collect(),
                }
            };
            let elapsed = t0.elapsed();
            SLICE_NS.record(elapsed.as_nanos().min(u64::MAX as u128) as u64);

            let mut inner = self.inner.lock().expect("scheduler poisoned");
            let draining = inner.shutdown;
            let mut requeued = false;
            for (&id, outcome) in group.iter().zip(outcomes) {
                let job = inner.jobs.get_mut(&id).expect("running job exists");
                // Every member is charged the full (shared) slice.
                job.wall_seconds += elapsed.as_secs_f64();
                job.scope.counter("sgm_run_slices_total").inc();
                job.scope
                    .histogram("sgm_run_slice_ns")
                    .record_duration(elapsed);
                job.scope
                    .gauge("sgm_run_wall_seconds")
                    .set(job.wall_seconds);
                let mut requeue = false;
                match outcome {
                    Err((msg, panicked)) => {
                        if panicked {
                            job.state = JobState::Failed(format!("worker panicked: {msg}"));
                            job.scope.counter("sgm_run_worker_panics_total").inc();
                            WORKER_PANICS.inc();
                        } else {
                            job.state = JobState::Failed(msg);
                        }
                        JOBS_FAILED.inc();
                    }
                    Ok((segment, stages)) => {
                        if let Some(stages) = &stages {
                            for s in Stage::ALL {
                                job.stage_ns[s.index()] += stages.total_duration(s).as_nanos();
                                job.stage_counts[s.index()] += stages.count(s);
                            }
                        }
                        if let Some(state) = segment.state {
                            job.iteration = state.iteration;
                            job.run = Some(state);
                        }
                        if let Some(r) = segment.result.history.last() {
                            job.last_loss = Some(r.train_loss);
                            job.scope.gauge("sgm_run_train_loss").set(r.train_loss);
                        }
                        job.scope
                            .gauge("sgm_run_iteration")
                            .set(job.iteration as f64);
                        let budget = job.wall_budget(&self.cfg);
                        if job.cancel {
                            job.state = JobState::Cancelled;
                            JOBS_CANCELLED.inc();
                        } else if job.iteration >= job.spec.iterations {
                            job.state = JobState::Completed;
                            JOBS_COMPLETED.inc();
                        } else if budget.is_some_and(|b| job.wall_seconds > b) {
                            job.state = JobState::Evicted(format!(
                                "wall budget {}s exceeded ({:.3}s used at iteration {})",
                                budget.unwrap_or(0.0),
                                job.wall_seconds,
                                job.iteration
                            ));
                            JOBS_EVICTED.inc();
                        } else if draining {
                            job.state = JobState::Paused;
                        } else {
                            job.state = JobState::Queued;
                            requeue = true;
                        }
                    }
                }
                if requeue {
                    inner.enqueue(id);
                    requeued = true;
                }
            }
            if requeued {
                self.work_ready.notify_one();
            }
            inner.publish_gauges();
            self.job_done.notify_all();
        }
    }
}

/// Whether a job may enter a lockstep co-execution group at all: the
/// spec must be self-compatible (draw-only sampler, no fault injection)
/// and any resume checkpoint must carry no point-set state.
fn co_eligible(job: &Job) -> bool {
    job.spec.co_compatible(&job.spec) && job.run.as_ref().is_none_or(|r| r.points.is_none())
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Builds the job from its spec, restores `start` and runs iterations
/// up to `stop_after` under `parallelism` — the single execution path
/// shared by first slices, preempted continuations and client-uploaded
/// warm resumes.
fn run_slice(
    spec: &JobSpec,
    start: Option<&RunState>,
    stop_after: usize,
    parallelism: Parallelism,
) -> Result<(Segment, StageTimes), String> {
    sgm_par::with_parallelism(parallelism, || {
        let mut built = spec.build()?;
        let model = PinnModel::new(&built.problem, &built.data);
        let mut trainer = Trainer {
            net: &mut built.net,
            model: &model,
        };
        let mut stages = StageTimes::new();
        let mut obs = sgm_train::ObsHook::new();
        let segment = trainer.run_segment(
            built.sampler.as_mut(),
            built.validation.as_ref().map(|v| v as &dyn Validator),
            &built.opts,
            &mut [&mut stages, &mut obs],
            start,
            stop_after,
        )?;
        Ok((segment, stages))
    })
}

/// Builds every job in a co-execution group, restores its checkpoint
/// and runs the whole group through the batched lockstep runner in one
/// pass. Each returned [`Segment`] is bit-identical to the one the solo
/// [`run_slice`] path would have produced for that job (under synthetic
/// clocks; measured clocks share the group's iteration timer).
fn run_co_slice(
    specs: &[JobSpec],
    starts: &[Option<RunState>],
    stop_afters: &[usize],
    parallelism: Parallelism,
) -> Result<Vec<Segment>, String> {
    sgm_par::with_parallelism(parallelism, || {
        let mut nets = Vec::with_capacity(specs.len());
        let mut samplers = Vec::with_capacity(specs.len());
        let mut problems = Vec::with_capacity(specs.len());
        let mut validations = Vec::with_capacity(specs.len());
        let mut optses = Vec::with_capacity(specs.len());
        for spec in specs {
            let built = spec.build()?;
            nets.push(built.net);
            samplers.push(built.sampler);
            problems.push((built.problem, built.data));
            validations.push(built.validation);
            optses.push(built.opts);
        }
        let models: Vec<PinnModel<'_>> = problems
            .iter()
            .map(|(problem, data)| PinnModel::new(problem, data))
            .collect();
        let mut jobs: Vec<MultiJob<'_>> = nets
            .iter_mut()
            .zip(&models)
            .zip(samplers.iter_mut())
            .zip(&validations)
            .zip(&optses)
            .zip(starts)
            .zip(stop_afters)
            .map(
                |((((((net, model), sampler), validation), opts), start), &stop_after)| MultiJob {
                    net,
                    model,
                    sampler: sampler.as_mut(),
                    validator: validation.as_ref().map(|v| v as &dyn Validator),
                    opts,
                    start: start.as_ref(),
                    stop_after,
                },
            )
            .collect();
        run_lockstep(&mut jobs)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn quick_spec(tenant: &str, iterations: usize) -> JobSpec {
        JobSpec {
            tenant: tenant.into(),
            iterations,
            interior: 64,
            boundary: 16,
            batch_interior: 8,
            batch_boundary: 4,
            hidden_width: 4,
            hidden_layers: 1,
            record_every: 5,
            ..JobSpec::default()
        }
    }

    fn with_workers<R>(cfg: ServeConfig, n: usize, f: impl FnOnce(&Scheduler) -> R) -> R {
        let sched = Arc::new(Scheduler::new(cfg));
        let workers: Vec<_> = (0..n)
            .map(|_| {
                let s = Arc::clone(&sched);
                std::thread::spawn(move || s.worker_loop())
            })
            .collect();
        let out = f(&sched);
        sched.begin_shutdown();
        for w in workers {
            w.join().unwrap();
        }
        out
    }

    #[test]
    fn jobs_complete_and_settle() {
        with_workers(ServeConfig::default(), 2, |sched| {
            let a = sched.submit(quick_spec("a", 25), None).unwrap();
            let b = sched.submit(quick_spec("b", 25), None).unwrap();
            for id in [a, b] {
                let st = sched.wait(id, Duration::from_secs(60)).unwrap();
                assert_eq!(st, JobState::Completed, "job {id}");
            }
            let iters = sched.with_job(a, |j| j.iteration).unwrap();
            assert_eq!(iters, 25);
            assert!(
                sched
                    .with_job(a, |j| j.run.as_ref().map(|r| r.iteration))
                    .unwrap()
                    == Some(25)
            );
        });
    }

    #[test]
    fn backpressure_rejects_over_caps() {
        // No workers: nothing drains the queue.
        let sched = Scheduler::new(ServeConfig {
            max_jobs: 2,
            queue_depth: 8,
            ..ServeConfig::default()
        });
        sched.submit(quick_spec("a", 10), None).unwrap();
        sched.submit(quick_spec("a", 10), None).unwrap();
        let err = sched.submit(quick_spec("a", 10), None).unwrap_err();
        assert!(matches!(err, SubmitError::Busy(_)), "{err:?}");

        let sched = Scheduler::new(ServeConfig {
            max_jobs: 64,
            queue_depth: 1,
            ..ServeConfig::default()
        });
        sched.submit(quick_spec("a", 10), None).unwrap();
        let err = sched.submit(quick_spec("a", 10), None).unwrap_err();
        assert!(matches!(err, SubmitError::Busy(_)), "{err:?}");
    }

    #[test]
    fn iteration_cap_is_policy_not_backpressure() {
        let sched = Scheduler::new(ServeConfig {
            max_iterations: 100,
            ..ServeConfig::default()
        });
        let err = sched.submit(quick_spec("a", 101), None).unwrap_err();
        assert!(matches!(err, SubmitError::Invalid(_)), "{err:?}");
    }

    #[test]
    fn queued_cancel_settles_immediately() {
        let sched = Scheduler::new(ServeConfig::default());
        let id = sched.submit(quick_spec("a", 10), None).unwrap();
        assert!(sched.cancel(id));
        let st = sched.with_job(id, |j| j.state.clone()).unwrap();
        assert_eq!(st, JobState::Cancelled);
        assert_eq!(sched.counts().0, 0);
        assert!(!sched.cancel(999), "unknown id");
    }

    #[test]
    fn shutdown_pauses_queued_jobs_and_stops_workers() {
        let sched = Arc::new(Scheduler::new(ServeConfig::default()));
        let id = sched.submit(quick_spec("a", 10), None).unwrap();
        sched.begin_shutdown();
        let st = sched.with_job(id, |j| j.state.clone()).unwrap();
        assert_eq!(st, JobState::Paused);
        assert!(matches!(
            sched.submit(quick_spec("a", 5), None),
            Err(SubmitError::Draining)
        ));
        // A worker started after shutdown exits immediately.
        let s = Arc::clone(&sched);
        std::thread::spawn(move || s.worker_loop()).join().unwrap();
    }

    #[test]
    fn round_robin_interleaves_tenants() {
        let sched = Scheduler::new(ServeConfig::default());
        let ids: Vec<u64> = (0..6)
            .map(|i| {
                let tenant = if i < 4 { "big" } else { "small" };
                sched.submit(quick_spec(tenant, 10), None).unwrap()
            })
            .collect();
        let picked: Vec<u64> = {
            let mut lock = sched.inner.lock().unwrap();
            (0..6).map(|_| lock.pick().unwrap()).collect()
        };
        // big, small alternate until small drains: b s b s b b.
        assert_eq!(picked, vec![ids[0], ids[4], ids[1], ids[5], ids[2], ids[3]]);
    }

    #[test]
    fn worker_panic_fails_job_but_pool_survives() {
        let before = WORKER_PANICS.value();
        with_workers(ServeConfig::default(), 1, |sched| {
            let mut spec = quick_spec("a", 20);
            spec.panic_at_iteration = Some(3);
            let bad = sched.submit(spec, None).unwrap();
            let good = sched.submit(quick_spec("b", 15), None).unwrap();
            let st = sched.wait(bad, Duration::from_secs(60)).unwrap();
            assert!(
                matches!(st, JobState::Failed(ref m) if m.contains("panicked")),
                "{st:?}"
            );
            // Same single worker thread goes on to finish the next job.
            let st = sched.wait(good, Duration::from_secs(60)).unwrap();
            assert_eq!(st, JobState::Completed);
        });
        assert!(WORKER_PANICS.value() > before);
    }

    #[test]
    fn wall_budget_evicts_unfinished_jobs() {
        with_workers(ServeConfig::default(), 1, |sched| {
            let mut spec = quick_spec("a", 10_000);
            spec.max_wall_seconds = Some(1e-9);
            let id = sched.submit(spec, None).unwrap();
            let st = sched.wait(id, Duration::from_secs(60)).unwrap();
            assert!(matches!(st, JobState::Evicted(_)), "{st:?}");
            let (run, iter) = sched
                .with_job(id, |j| (j.run.is_some(), j.iteration))
                .unwrap();
            assert!(run && iter > 0, "evicted job keeps its checkpoint");
        });
    }

    #[test]
    fn co_group_pops_compatible_jobs_across_tenants() {
        let sched = Scheduler::new(ServeConfig {
            co_slice: 4,
            ..ServeConfig::default()
        });
        let a = sched.submit(quick_spec("a", 20), None).unwrap();
        let b = sched.submit(quick_spec("b", 30), None).unwrap(); // compatible, other tenant
        let mut wide = quick_spec("a", 20);
        wide.hidden_width = 6;
        let c = sched.submit(wide, None).unwrap(); // different arch
        let mut adaptive = quick_spec("b", 20);
        adaptive.sampler = "rad".into();
        let d = sched.submit(adaptive, None).unwrap(); // point-adaptive
        let mut mis = quick_spec("c", 40);
        mis.sampler = "mis".into();
        let e = sched.submit(mis, None).unwrap(); // compatible, draw-only

        let mut inner = sched.inner.lock().unwrap();
        let lead = inner.pick().unwrap();
        assert_eq!(lead, a);
        let group = inner.pick_co_group(lead, 4);
        assert_eq!(group, vec![a, b, e]);
        // The incompatible jobs are still queued, in order.
        assert_eq!(inner.queued, 2);
        assert_eq!(inner.pick(), Some(d));
        assert_eq!(inner.pick(), Some(c));
    }

    /// A mixed fleet under co-execution: three groupable jobs (two
    /// samplers, three tenants, different seeds/lr/iterations) plus two
    /// ungroupable ones. Every job must complete with a final
    /// checkpoint bit-identical to its solo local run — co-execution is
    /// a throughput optimisation, never a semantic one.
    #[test]
    fn co_executed_jobs_match_local_runs_bitwise() {
        let mut specs = [
            quick_spec("a", 25),
            quick_spec("b", 40),
            quick_spec("c", 25),
            quick_spec("a", 20),
            quick_spec("b", 20),
        ];
        specs[1].lr = 1e-3;
        specs[1].train_seed = 9;
        specs[2].sampler = "mis".into();
        specs[2].net_seed = 17;
        specs[3].hidden_width = 6; // never groups with the others
        specs[4].sampler = "rad".into(); // adaptive: always solo
        let local: Vec<RunState> = specs
            .iter()
            .map(|s| crate::spec::run_local(s).unwrap().1)
            .collect();
        let cfg = ServeConfig {
            co_slice: 4,
            slice_iterations: 7,
            ..ServeConfig::default()
        };
        with_workers(cfg, 1, |sched| {
            let ids: Vec<u64> = specs
                .iter()
                .map(|s| sched.submit(s.clone(), None).unwrap())
                .collect();
            for (i, &id) in ids.iter().enumerate() {
                let st = sched.wait(id, Duration::from_secs(120)).unwrap();
                assert_eq!(st, JobState::Completed, "job {i}");
                let run = sched.with_job(id, |j| j.run.clone()).unwrap().unwrap();
                assert_eq!(
                    run.to_json().unwrap(),
                    local[i].to_json().unwrap(),
                    "job {i}: server checkpoint diverged from local run"
                );
            }
        });
    }

    #[test]
    fn resume_submission_rejects_spent_checkpoints() {
        with_workers(ServeConfig::default(), 1, |sched| {
            let id = sched.submit(quick_spec("a", 10), None).unwrap();
            sched.wait(id, Duration::from_secs(60)).unwrap();
            let state = sched.with_job(id, |j| j.run.clone()).unwrap().unwrap();
            let err = sched.submit(quick_spec("a", 10), Some(state)).unwrap_err();
            assert!(matches!(err, SubmitError::Invalid(_)), "{err:?}");
        });
    }
}
