//! Job specifications: the JSON schema a client submits and its
//! translation into a runnable training job.
//!
//! PDE configs carry function pointers ([`PoissonConfig::forcing`]), so
//! a spec cannot serialise an arbitrary problem — it selects a named
//! **preset** (currently `poisson-sine`, the quickstart's manufactured
//! Poisson problem) plus sizes and seeds. Everything except `tenant`
//! has a default, so a minimal submission is `{"tenant": "alice"}`.
//!
//! [`JobSpec::build`] is deliberately re-entrant: the scheduler rebuilds
//! the job from the spec at the start of *every* slice and restores the
//! checkpointed [`RunState`](sgm_train::RunState) into it, which is
//! exactly the warm-resume path — so preemption cannot diverge from a
//! client-uploaded resume.

use sgm_core::{
    DmisConfig, DmisSampler, MisConfig, MisSampler, RadConfig, RadSampler, RarConfig, RarDConfig,
    RarDSampler, RarSampler, SgmConfig, SgmSampler, UniformSampler,
};
use sgm_graph::points::PointCloud;
use sgm_json::{obj, JsonError, Value};
use sgm_linalg::dense::Matrix;
use sgm_linalg::rng::Rng64;
use sgm_nn::activation::Activation;
use sgm_nn::mlp::{Mlp, MlpConfig};
use sgm_nn::optimizer::{AdamConfig, LrSchedule};
use sgm_physics::geometry::{Cavity, FillStrategy};
use sgm_physics::pde::{Pde, PoissonConfig};
use sgm_physics::problem::{Problem, TrainSet};
use sgm_physics::validate::ValidationSet;
use sgm_physics::PinnModel;
use sgm_train::{
    PointChanges, PointSet, Probe, RunState, Sampler, TrainOptions, TrainResult, Trainer, Validator,
};

/// A validated training-job specification.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Tenant identity (fair scheduling is per tenant).
    pub tenant: String,
    /// Problem preset name (`poisson-sine`).
    pub preset: String,
    /// Interior collocation points.
    pub interior: usize,
    /// Boundary points.
    pub boundary: usize,
    /// Seed for collocation/boundary data.
    pub data_seed: u64,
    /// Validation grid resolution per axis (0 disables validation).
    pub validation_grid: usize,
    /// Hidden layer width.
    pub hidden_width: usize,
    /// Hidden layer count.
    pub hidden_layers: usize,
    /// Activation name (`silu`, `tanh`, `sin`, `identity`).
    pub activation: String,
    /// Network init seed.
    pub net_seed: u64,
    /// Sampler kind (`uniform`, `mis`, `rar`, `rad`, `rard`, `dmis`,
    /// `sgm`).
    pub sampler: String,
    /// Override for the sampler's refresh/adapt period (`τ`); `None`
    /// keeps the sampler's default.
    pub sampler_tau: Option<usize>,
    /// SGD iterations.
    pub iterations: usize,
    /// Interior mini-batch size.
    pub batch_interior: usize,
    /// Boundary mini-batch size.
    pub batch_boundary: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Batching RNG seed.
    pub train_seed: u64,
    /// Record cadence in iterations.
    pub record_every: usize,
    /// Synthetic per-iteration clock advance (deterministic timestamps);
    /// `None` uses measured wall time.
    pub synthetic_dt: Option<f64>,
    /// Per-job wall-clock budget in seconds (`None` = server default).
    pub max_wall_seconds: Option<f64>,
    /// Test-only fault injection: panic inside the sampler's refresh at
    /// this iteration.
    pub panic_at_iteration: Option<usize>,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            tenant: String::new(),
            preset: "poisson-sine".into(),
            interior: 256,
            boundary: 64,
            data_seed: 7,
            validation_grid: 0,
            hidden_width: 8,
            hidden_layers: 2,
            activation: "silu".into(),
            net_seed: 3,
            sampler: "uniform".into(),
            sampler_tau: None,
            iterations: 30,
            batch_interior: 16,
            batch_boundary: 8,
            lr: 3e-3,
            train_seed: 1,
            record_every: 10,
            synthetic_dt: Some(1e-3),
            max_wall_seconds: None,
            panic_at_iteration: None,
        }
    }
}

const SAMPLER_KINDS: [&str; 7] = ["uniform", "mis", "rar", "rad", "rard", "dmis", "sgm"];

fn opt_u64(v: &Value, key: &str) -> Result<Option<u64>, JsonError> {
    Ok(v.opt_f64(key)?.map(|f| f as u64))
}

impl JobSpec {
    /// Parses and validates a spec from a JSON object.
    ///
    /// # Errors
    /// Returns a message naming the offending field for any schema or
    /// range violation — the server maps these to HTTP 400.
    pub fn from_json(v: &Value) -> Result<JobSpec, String> {
        let d = JobSpec::default();
        let tenant = v.req_str("tenant").map_err(|e| e.to_string())?.to_string();
        if tenant.is_empty() || tenant.len() > 64 {
            return Err("tenant must be 1..=64 characters".into());
        }
        let err = |e: JsonError| e.to_string();
        let spec = JobSpec {
            tenant,
            preset: v
                .opt_str("preset")
                .map_err(err)?
                .map(str::to_string)
                .unwrap_or(d.preset),
            interior: v.opt_usize("interior").map_err(err)?.unwrap_or(d.interior),
            boundary: v.opt_usize("boundary").map_err(err)?.unwrap_or(d.boundary),
            data_seed: opt_u64(v, "data_seed").map_err(err)?.unwrap_or(d.data_seed),
            validation_grid: v
                .opt_usize("validation_grid")
                .map_err(err)?
                .unwrap_or(d.validation_grid),
            hidden_width: v
                .opt_usize("hidden_width")
                .map_err(err)?
                .unwrap_or(d.hidden_width),
            hidden_layers: v
                .opt_usize("hidden_layers")
                .map_err(err)?
                .unwrap_or(d.hidden_layers),
            activation: v
                .opt_str("activation")
                .map_err(err)?
                .map(str::to_string)
                .unwrap_or(d.activation),
            net_seed: opt_u64(v, "net_seed").map_err(err)?.unwrap_or(d.net_seed),
            sampler: v
                .opt_str("sampler")
                .map_err(err)?
                .map(str::to_string)
                .unwrap_or(d.sampler),
            sampler_tau: v.opt_usize("sampler_tau").map_err(err)?,
            iterations: v
                .opt_usize("iterations")
                .map_err(err)?
                .unwrap_or(d.iterations),
            batch_interior: v
                .opt_usize("batch_interior")
                .map_err(err)?
                .unwrap_or(d.batch_interior),
            batch_boundary: v
                .opt_usize("batch_boundary")
                .map_err(err)?
                .unwrap_or(d.batch_boundary),
            lr: v.opt_f64("lr").map_err(err)?.unwrap_or(d.lr),
            train_seed: opt_u64(v, "train_seed")
                .map_err(err)?
                .unwrap_or(d.train_seed),
            record_every: v
                .opt_usize("record_every")
                .map_err(err)?
                .unwrap_or(d.record_every),
            synthetic_dt: match v.get("synthetic_dt") {
                Some(Value::Null) | None => d.synthetic_dt,
                Some(_) => Some(v.req_f64("synthetic_dt").map_err(err)?),
            },
            max_wall_seconds: v.opt_f64("max_wall_seconds").map_err(err)?,
            panic_at_iteration: v.opt_usize("panic_at_iteration").map_err(err)?,
        };
        spec.validate()?;
        Ok(spec)
    }

    fn validate(&self) -> Result<(), String> {
        if self.preset != "poisson-sine" {
            return Err(format!("unknown preset {:?}", self.preset));
        }
        if !SAMPLER_KINDS.contains(&self.sampler.as_str()) {
            return Err(format!(
                "unknown sampler {:?} (expected one of {SAMPLER_KINDS:?})",
                self.sampler
            ));
        }
        parse_activation(&self.activation)?;
        if self.interior == 0 || self.interior > 1 << 20 {
            return Err("interior must be 1..=1048576".into());
        }
        if self.boundary == 0 || self.boundary > 1 << 16 {
            return Err("boundary must be 1..=65536".into());
        }
        if self.validation_grid > 256 {
            return Err("validation_grid must be <= 256".into());
        }
        if self.hidden_width == 0 || self.hidden_width > 1024 {
            return Err("hidden_width must be 1..=1024".into());
        }
        if self.hidden_layers == 0 || self.hidden_layers > 16 {
            return Err("hidden_layers must be 1..=16".into());
        }
        if self.iterations == 0 {
            return Err("iterations must be >= 1".into());
        }
        if self.batch_interior == 0 || self.batch_interior > self.interior {
            return Err("batch_interior must be 1..=interior".into());
        }
        if self.batch_boundary == 0 || self.batch_boundary > self.boundary {
            return Err("batch_boundary must be 1..=boundary".into());
        }
        if !(self.lr.is_finite() && self.lr > 0.0) {
            return Err("lr must be finite and positive".into());
        }
        if self.record_every == 0 {
            return Err("record_every must be >= 1".into());
        }
        if let Some(dt) = self.synthetic_dt {
            if !(dt.is_finite() && dt > 0.0) {
                return Err("synthetic_dt must be finite and positive".into());
            }
        }
        if let Some(w) = self.max_wall_seconds {
            if !(w.is_finite() && w > 0.0) {
                return Err("max_wall_seconds must be finite and positive".into());
            }
        }
        Ok(())
    }

    /// Serialises the spec (inverse of [`JobSpec::from_json`]).
    pub fn to_json(&self) -> Value {
        let mut fields: Vec<(&str, Value)> = vec![
            ("tenant", Value::Str(self.tenant.clone())),
            ("preset", Value::Str(self.preset.clone())),
            ("interior", Value::Num(self.interior as f64)),
            ("boundary", Value::Num(self.boundary as f64)),
            ("data_seed", Value::Num(self.data_seed as f64)),
            ("validation_grid", Value::Num(self.validation_grid as f64)),
            ("hidden_width", Value::Num(self.hidden_width as f64)),
            ("hidden_layers", Value::Num(self.hidden_layers as f64)),
            ("activation", Value::Str(self.activation.clone())),
            ("net_seed", Value::Num(self.net_seed as f64)),
            ("sampler", Value::Str(self.sampler.clone())),
            ("iterations", Value::Num(self.iterations as f64)),
            ("batch_interior", Value::Num(self.batch_interior as f64)),
            ("batch_boundary", Value::Num(self.batch_boundary as f64)),
            ("lr", Value::Num(self.lr)),
            ("train_seed", Value::Num(self.train_seed as f64)),
            ("record_every", Value::Num(self.record_every as f64)),
        ];
        if let Some(t) = self.sampler_tau {
            fields.push(("sampler_tau", Value::Num(t as f64)));
        }
        if let Some(dt) = self.synthetic_dt {
            fields.push(("synthetic_dt", Value::Num(dt)));
        } else {
            fields.push(("synthetic_dt", Value::Null));
        }
        if let Some(w) = self.max_wall_seconds {
            fields.push(("max_wall_seconds", Value::Num(w)));
        }
        if let Some(p) = self.panic_at_iteration {
            fields.push(("panic_at_iteration", Value::Num(p as f64)));
        }
        obj(fields)
    }
}

impl JobSpec {
    /// Whether this spec's sampler only draws batches from a fixed
    /// collocation set (never mutates points) — a precondition for
    /// lockstep co-execution, which cannot carry per-job point-set
    /// state through the batched path.
    pub fn draw_only_sampler(&self) -> bool {
        matches!(self.sampler.as_str(), "uniform" | "mis" | "rar" | "sgm")
    }

    /// Whether two jobs may share one lockstep co-execution slice: same
    /// problem preset and network architecture, same interior batch and
    /// effective boundary batch, both draw-only and fault-free.
    /// Everything else — seeds, learning rates, iteration counts,
    /// datasets, validation, sampler kind — may differ per lane; the
    /// batched runner keeps each job's `RunState` bit-identical to solo
    /// execution regardless of grouping.
    pub fn co_compatible(&self, other: &JobSpec) -> bool {
        self.draw_only_sampler()
            && other.draw_only_sampler()
            && self.panic_at_iteration.is_none()
            && other.panic_at_iteration.is_none()
            && self.preset == other.preset
            && self.hidden_width == other.hidden_width
            && self.hidden_layers == other.hidden_layers
            && self.activation == other.activation
            && self.batch_interior == other.batch_interior
            && self.batch_boundary.min(self.boundary) == other.batch_boundary.min(other.boundary)
    }
}

fn parse_activation(name: &str) -> Result<Activation, String> {
    match name {
        "silu" => Ok(Activation::SiLu),
        "tanh" => Ok(Activation::Tanh),
        "sin" => Ok(Activation::Sin),
        "identity" => Ok(Activation::Identity),
        other => Err(format!(
            "unknown activation {other:?} (expected silu|tanh|sin|identity)"
        )),
    }
}

/// A spec translated into runnable pieces. The model borrows both the
/// problem and the data, so it is constructed at the call site
/// (`PinnModel::new(&built.problem, &built.data)`).
pub struct BuiltJob {
    /// The PDE.
    pub problem: Problem,
    /// Collocation + boundary data.
    pub data: TrainSet,
    /// Validation grid, when requested.
    pub validation: Option<ValidationSet>,
    /// Freshly initialised network.
    pub net: Mlp,
    /// Training options.
    pub opts: TrainOptions,
    /// The configured sampler.
    pub sampler: Box<dyn Sampler>,
}

impl std::fmt::Debug for BuiltJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuiltJob").finish_non_exhaustive()
    }
}

fn poisson_sine() -> Problem {
    Problem::new(Pde::Poisson(PoissonConfig {
        forcing: |p: &[f64]| {
            let pi = std::f64::consts::PI;
            2.0 * pi * pi * (pi * p[0]).sin() * (pi * p[1]).sin()
        },
    }))
}

impl JobSpec {
    /// Instantiates the job: data, network, options and sampler. Pure in
    /// the spec — two builds from the same spec are bit-identical, which
    /// is what makes rebuild-per-slice preemption sound.
    ///
    /// # Errors
    /// Returns a message for invalid field combinations.
    pub fn build(&self) -> Result<BuiltJob, String> {
        self.validate()?;
        let problem = poisson_sine();

        let mut rng = Rng64::new(self.data_seed);
        let interior =
            Cavity::default().sample_interior(self.interior, FillStrategy::Halton, &mut rng);
        let mut bpts = Vec::new();
        for i in 0..self.boundary {
            let t = rng.uniform();
            let (x, y) = match i % 4 {
                0 => (t, 0.0),
                1 => (t, 1.0),
                2 => (0.0, t),
                _ => (1.0, t),
            };
            bpts.extend_from_slice(&[x, y]);
        }
        let data = TrainSet {
            interior,
            boundary: PointCloud::from_flat(2, bpts),
            boundary_targets: Matrix::zeros(self.boundary, 1),
        };

        let validation = (self.validation_grid > 0).then(|| {
            let pi = std::f64::consts::PI;
            let g = self.validation_grid;
            let mut pts = Matrix::zeros(g * g, 2);
            let mut targets = Matrix::zeros(g * g, 1);
            for i in 0..g {
                for j in 0..g {
                    let (x, y) = ((i as f64 + 0.5) / g as f64, (j as f64 + 0.5) / g as f64);
                    pts.set(i * g + j, 0, x);
                    pts.set(i * g + j, 1, y);
                    targets.set(i * g + j, 0, (pi * x).sin() * (pi * y).sin());
                }
            }
            ValidationSet {
                points: pts,
                targets,
                output_indices: vec![0],
                names: vec!["u".into()],
            }
        });

        let mut net_rng = Rng64::new(self.net_seed);
        let net = Mlp::new(
            &MlpConfig {
                input_dim: 2,
                output_dim: 1,
                hidden_width: self.hidden_width,
                hidden_layers: self.hidden_layers,
                activation: parse_activation(&self.activation)?,
                fourier: None,
            },
            &mut net_rng,
        );

        let opts = TrainOptions {
            iterations: self.iterations,
            batch_interior: self.batch_interior,
            batch_boundary: self.batch_boundary,
            adam: AdamConfig {
                lr: self.lr,
                schedule: LrSchedule::Constant,
                ..AdamConfig::default()
            },
            seed: self.train_seed,
            record_every: self.record_every,
            max_seconds: None,
            synthetic_dt: self.synthetic_dt,
        };

        let n = self.interior;
        let tau = self.sampler_tau;
        let mut sampler: Box<dyn Sampler> = match self.sampler.as_str() {
            "uniform" => Box::new(UniformSampler::new(n)),
            "mis" => Box::new(MisSampler::new(
                n,
                MisConfig {
                    tau_e: tau.unwrap_or(MisConfig::default().tau_e),
                    ..MisConfig::default()
                },
            )),
            "rar" => {
                let mut srng = Rng64::new(self.data_seed ^ 0x5A17);
                Box::new(RarSampler::new(
                    n,
                    RarConfig {
                        tau: tau.unwrap_or(RarConfig::default().tau),
                        ..RarConfig::default()
                    },
                    &mut srng,
                ))
            }
            "rad" => Box::new(RadSampler::new(
                n,
                RadConfig {
                    tau: tau.unwrap_or(RadConfig::default().tau),
                    pool_size: (4 * n).max(64),
                    ..RadConfig::default()
                },
            )),
            "rard" => Box::new(RarDSampler::new(
                n,
                RarDConfig {
                    tau: tau.unwrap_or(RarDConfig::default().tau),
                    max_points: 4 * n,
                    ..RarDConfig::default()
                },
            )),
            "dmis" => Box::new(DmisSampler::new(
                n,
                DmisConfig {
                    tau: tau.unwrap_or(DmisConfig::default().tau),
                    grid: 8,
                    ..DmisConfig::default()
                },
            )),
            "sgm" => Box::new(SgmSampler::new(
                &data.interior,
                SgmConfig {
                    k: 8,
                    tau_e: tau.unwrap_or(50),
                    tau_g: 0,
                    min_clusters: 8,
                    ..SgmConfig::default()
                },
            )),
            other => return Err(format!("unknown sampler {other:?}")),
        };
        if let Some(at) = self.panic_at_iteration {
            sampler = Box::new(PanicAt { inner: sampler, at });
        }

        Ok(BuiltJob {
            problem,
            data,
            validation,
            net,
            opts,
            sampler,
        })
    }
}

/// Fault-injection wrapper: behaves exactly like `inner` but panics in
/// `refresh` at iteration `at`. `name` delegates, so checkpoints taken
/// before the fault restore into the unwrapped sampler.
struct PanicAt {
    inner: Box<dyn Sampler>,
    at: usize,
}

impl Sampler for PanicAt {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn fill_batch(&mut self, batch_size: usize, out: &mut Vec<usize>, rng: &mut Rng64) {
        self.inner.fill_batch(batch_size, out, rng);
    }

    fn refresh(&mut self, iter: usize, probe: &Probe<'_>, rng: &mut Rng64) {
        assert!(iter != self.at, "injected fault at iteration {iter}");
        self.inner.refresh(iter, probe, rng);
    }

    fn adapts_points(&self) -> bool {
        self.inner.adapts_points()
    }

    fn adapt(&mut self, points: &mut PointSet, iter: usize, probe: &Probe<'_>, rng: &mut Rng64) {
        self.inner.adapt(points, iter, probe, rng);
    }

    fn on_points_changed(&mut self, points: &PointSet, changes: &PointChanges) {
        self.inner.on_points_changed(points, changes);
    }

    fn sync_points(&mut self, points: &PointSet) {
        self.inner.sync_points(points);
    }

    fn save_state(&self) -> Value {
        self.inner.save_state()
    }

    fn load_state(&mut self, state: &Value) -> Result<(), String> {
        self.inner.load_state(state)
    }
}

/// Runs a spec to completion in the calling thread (no server), and
/// returns the result plus the final-iteration [`RunState`] — the
/// reference answer the resume-determinism suite compares server runs
/// against.
///
/// # Errors
/// Propagates build and training errors.
pub fn run_local(spec: &JobSpec) -> Result<(TrainResult, RunState), String> {
    let mut built = spec.build()?;
    let model = PinnModel::new(&built.problem, &built.data);
    let mut trainer = Trainer {
        net: &mut built.net,
        model: &model,
    };
    let seg = trainer.run_segment(
        built.sampler.as_mut(),
        built.validation.as_ref().map(|v| v as &dyn Validator),
        &built.opts,
        &mut [],
        None,
        built.opts.iterations,
    )?;
    let state = seg
        .state
        .ok_or_else(|| "budget expired before the final iteration".to_string())?;
    Ok((seg.result, state))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_json(extra: &str) -> Value {
        let body = if extra.is_empty() {
            r#"{"tenant": "t"}"#.to_string()
        } else {
            format!(r#"{{"tenant": "t", {extra}}}"#)
        };
        Value::parse(&body).unwrap()
    }

    #[test]
    fn minimal_spec_uses_defaults_and_round_trips() {
        let spec = JobSpec::from_json(&spec_json("")).unwrap();
        assert_eq!(spec.tenant, "t");
        assert_eq!(spec.sampler, "uniform");
        assert_eq!(spec.iterations, 30);
        let back = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn every_sampler_kind_builds_and_round_trips() {
        for kind in SAMPLER_KINDS {
            let spec = JobSpec::from_json(&spec_json(&format!(r#""sampler": "{kind}""#))).unwrap();
            let built = spec.build().unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(built.opts.iterations, 30, "{kind}");
            let back = JobSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(spec, back, "{kind}");
        }
    }

    #[test]
    fn invalid_fields_are_rejected_with_messages() {
        for (extra, needle) in [
            (r#""sampler": "magic""#, "unknown sampler"),
            (r#""preset": "heat""#, "unknown preset"),
            (r#""activation": "relu6""#, "unknown activation"),
            (r#""iterations": 0"#, "iterations"),
            (r#""interior": 4, "batch_interior": 8"#, "batch_interior"),
            (r#""lr": -1.0"#, "lr"),
            (r#""max_wall_seconds": 0.0"#, "max_wall_seconds"),
            (r#""iterations": "many""#, "iterations"),
        ] {
            let err = JobSpec::from_json(&spec_json(extra)).unwrap_err();
            assert!(err.contains(needle), "{extra}: {err}");
        }
        assert!(JobSpec::from_json(&Value::parse("{}").unwrap())
            .unwrap_err()
            .contains("tenant"));
    }

    #[test]
    fn build_is_deterministic() {
        let spec = JobSpec {
            tenant: "t".into(),
            sampler: "mis".into(),
            iterations: 12,
            ..JobSpec::default()
        };
        let (ra, sa) = run_local(&spec).unwrap();
        let (rb, sb) = run_local(&spec).unwrap();
        assert_eq!(ra.history, rb.history);
        assert_eq!(sa.to_json().unwrap(), sb.to_json().unwrap());
        assert_eq!(sa.iteration, 12);
    }

    #[test]
    fn panic_at_fires_inside_refresh() {
        let spec = JobSpec {
            tenant: "t".into(),
            iterations: 10,
            panic_at_iteration: Some(4),
            ..JobSpec::default()
        };
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_local(&spec)));
        assert!(caught.is_err());
    }
}
