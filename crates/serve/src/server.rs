//! The HTTP front end: a thread-per-connection listener routing the job
//! API onto a [`Scheduler`].
//!
//! One request per connection (`Connection: close`), a read timeout per
//! socket (slow-loris defense → 408), and every connection thread is
//! tracked by a count-to-zero latch, so shutdown can prove no thread
//! leaked — the protocol property suite asserts the open-connection
//! gauge returns to baseline after every hostile input.
//!
//! # Endpoints
//!
//! | method & path              | effect                                      |
//! |----------------------------|---------------------------------------------|
//! | `POST /jobs`               | submit a [`JobSpec`]; 202 `{"id": n}`       |
//! | `POST /jobs/resume`        | submit `{"spec":…, "state":…}` warm resume  |
//! | `GET /jobs/<id>`           | status + per-run metrics snapshot           |
//! | `GET /jobs/<id>/wait`      | long-poll until settled (`?timeout_ms=N`)   |
//! | `POST /jobs/<id>/cancel`   | cancel (settles at the slice boundary)      |
//! | `GET /jobs/<id>/checkpoint`| latest [`RunState`] JSON; 409 if none yet   |
//! | `GET /metrics`             | Prometheus text: process + per-run scopes   |
//! | `GET /healthz`             | liveness                                    |
//! | `POST /shutdown`           | drain: stop admissions, checkpoint runs     |

use crate::http::{self, HttpError, Limits, Request};
use crate::scheduler::{JobState, Scheduler, ServeConfig, SubmitError};
use crate::spec::JobSpec;
use sgm_json::{obj, Value};
use sgm_obs::{Counter, Gauge};
use sgm_train::RunState;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Requests fully parsed and routed.
pub static REQUESTS_TOTAL: Counter = Counter::new("sgm_serve_requests_total");
/// Requests answered with a 4xx/5xx status.
pub static HTTP_ERRORS_TOTAL: Counter = Counter::new("sgm_serve_http_errors_total");
/// Connections currently being served (returns to 0 when idle — the
/// protocol suite's no-thread-leak witness).
pub static CONNECTIONS_OPEN: Gauge = Gauge::new("sgm_serve_connections_open");

/// Counts live connection threads; `wait_zero` is the no-leak latch.
#[derive(Debug, Default)]
struct ConnTracker {
    count: Mutex<usize>,
    zero: Condvar,
}

impl ConnTracker {
    fn enter(&self) {
        let mut c = self.count.lock().expect("tracker poisoned");
        *c += 1;
        CONNECTIONS_OPEN.set(*c as f64);
    }

    fn exit(&self) {
        let mut c = self.count.lock().expect("tracker poisoned");
        *c -= 1;
        CONNECTIONS_OPEN.set(*c as f64);
        if *c == 0 {
            self.zero.notify_all();
        }
    }

    fn wait_zero(&self, timeout: Duration) -> bool {
        let (c, res) = self
            .zero
            .wait_timeout_while(self.count.lock().expect("tracker poisoned"), timeout, |c| {
                *c > 0
            })
            .expect("tracker poisoned");
        drop(c);
        !res.timed_out()
    }
}

/// A running job server: listener + connection threads + worker pool.
#[derive(Debug)]
pub struct Server {
    sched: Arc<Scheduler>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    tracker: Arc<ConnTracker>,
    listener: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `cfg.addr` and starts the worker pool and listener.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let workers_n = cfg.workers.max(1);
        let read_timeout = Duration::from_millis(cfg.read_timeout_ms.max(1));
        let limits = Limits {
            max_body_bytes: cfg.max_body_bytes,
            ..Limits::default()
        };
        let sched = Arc::new(Scheduler::new(cfg));
        let workers: Vec<_> = (0..workers_n)
            .map(|_| {
                let s = Arc::clone(&sched);
                std::thread::spawn(move || s.worker_loop())
            })
            .collect();
        let stop = Arc::new(AtomicBool::new(false));
        let tracker = Arc::new(ConnTracker::default());
        let listener_thread = {
            let sched = Arc::clone(&sched);
            let stop = Arc::clone(&stop);
            let tracker = Arc::clone(&tracker);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    tracker.enter();
                    let sched = Arc::clone(&sched);
                    let tracker = Arc::clone(&tracker);
                    let limits = limits.clone();
                    std::thread::spawn(move || {
                        handle_connection(stream, &sched, &limits, read_timeout);
                        tracker.exit();
                    });
                }
            })
        };
        Ok(Server {
            sched,
            addr,
            stop,
            tracker,
            listener: Some(listener_thread),
            workers,
        })
    }

    /// The bound address (resolves `:0` to the picked port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The scheduler (for in-process inspection in tests/benches).
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.sched
    }

    /// Graceful shutdown: drain the scheduler (in-flight runs
    /// checkpoint to `Paused`), join the worker pool, stop accepting,
    /// and wait for every connection thread to finish. Returns `true`
    /// when all connection threads exited within the grace period.
    pub fn shutdown_and_join(mut self) -> bool {
        self.sched.begin_shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(l) = self.listener.take() {
            let _ = l.join();
        }
        self.tracker.wait_zero(Duration::from_secs(10))
    }
}

fn handle_connection(
    stream: TcpStream,
    sched: &Scheduler,
    limits: &Limits,
    read_timeout: Duration,
) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut out = stream;
    let responded = match http::read_request(&mut reader, limits) {
        Ok(req) => {
            REQUESTS_TOTAL.inc();
            let (status, headers, body) = route(sched, &req);
            if status >= 400 {
                HTTP_ERRORS_TOTAL.inc();
            }
            write_with_headers(&mut out, status, &headers, &body).is_ok()
        }
        Err(err) => {
            if matches!(err, HttpError::Io(_)) {
                HTTP_ERRORS_TOTAL.inc();
            }
            match err.status() {
                Some((status, msg)) => {
                    HTTP_ERRORS_TOTAL.inc();
                    http::respond_error(&mut out, status, &msg).is_ok()
                }
                // Closed / broken connections get no response by
                // design — the client is gone.
                None => false,
            }
        }
    };
    if responded {
        // Lingering close: drain unread request bytes (bounded) before
        // dropping the socket, so an early error response is not
        // clobbered by a TCP RST while the client is still sending.
        lingering_drain(&mut reader);
    }
}

fn lingering_drain(reader: &mut impl std::io::Read) {
    let mut buf = [0u8; 4096];
    let mut total = 0usize;
    while total < 256 * 1024 {
        match reader.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => total += n,
        }
    }
}

type Response = (u16, Vec<(String, String)>, Vec<u8>);

fn json_response(status: u16, v: &Value) -> Response {
    (
        status,
        vec![("Content-Type".into(), "application/json".into())],
        v.to_string_compact().into_bytes(),
    )
}

fn error_response(status: u16, msg: &str) -> Response {
    json_response(status, &obj([("error", Value::Str(msg.into()))]))
}

fn write_with_headers(
    w: &mut impl Write,
    status: u16,
    headers: &[(String, String)],
    body: &[u8],
) -> std::io::Result<()> {
    write!(w, "HTTP/1.1 {status} {}\r\n", http::status_reason(status))?;
    for (k, v) in headers {
        write!(w, "{k}: {v}\r\n")?;
    }
    write!(
        w,
        "Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    w.write_all(body)?;
    w.flush()
}

fn parse_body(req: &Request) -> Result<Value, String> {
    let text = std::str::from_utf8(&req.body).map_err(|_| "body is not UTF-8".to_string())?;
    Value::parse(text).map_err(|e| format!("invalid JSON body: {e}"))
}

fn route(sched: &Scheduler, req: &Request) -> Response {
    let path = req.path_only().to_string();
    let segs: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segs.as_slice()) {
        ("GET", ["healthz"]) => json_response(200, &obj([("ok", Value::Bool(true))])),
        ("GET", ["metrics"]) => {
            let mut text = sgm_obs::metrics::prometheus_text();
            let ids = all_job_ids(sched);
            for id in ids {
                if let Some(t) = sched.with_job(id, |j| j.scope.prometheus_text()) {
                    text.push_str(&t);
                }
            }
            (
                200,
                vec![("Content-Type".into(), "text/plain; version=0.0.4".into())],
                text.into_bytes(),
            )
        }
        ("POST", ["shutdown"]) => {
            sched.begin_shutdown();
            json_response(200, &obj([("draining", Value::Bool(true))]))
        }
        ("POST", ["jobs"]) => {
            let spec = match parse_body(req).and_then(|v| JobSpec::from_json(&v)) {
                Ok(s) => s,
                Err(e) => return error_response(400, &e),
            };
            submit_response(sched, spec, None)
        }
        ("POST", ["jobs", "resume"]) => {
            let body = match parse_body(req) {
                Ok(v) => v,
                Err(e) => return error_response(400, &e),
            };
            let Some(spec_v) = body.get("spec") else {
                return error_response(400, "missing field \"spec\"");
            };
            let Some(state_v) = body.get("state") else {
                return error_response(400, "missing field \"state\"");
            };
            let spec = match JobSpec::from_json(spec_v) {
                Ok(s) => s,
                Err(e) => return error_response(400, &e),
            };
            let state = match RunState::from_json(&state_v.to_string_compact()) {
                Ok(s) => s,
                Err(e) => return error_response(400, &format!("invalid checkpoint: {e:?}")),
            };
            submit_response(sched, spec, Some(state))
        }
        ("GET", ["jobs", id]) => match parse_id(id) {
            Some(id) => match status_value(sched, id) {
                Some(v) => json_response(200, &v),
                None => error_response(404, "no such job"),
            },
            None => error_response(400, "invalid job id"),
        },
        ("GET", ["jobs", id, "wait"]) => match parse_id(id) {
            Some(id) => {
                let timeout_ms: u64 = req
                    .query_param("timeout_ms")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(10_000)
                    .min(120_000);
                match sched.wait(id, Duration::from_millis(timeout_ms)) {
                    Some(_) => match status_value(sched, id) {
                        Some(v) => json_response(200, &v),
                        None => error_response(404, "no such job"),
                    },
                    None => error_response(404, "no such job"),
                }
            }
            None => error_response(400, "invalid job id"),
        },
        ("POST", ["jobs", id, "cancel"]) => match parse_id(id) {
            Some(id) if sched.cancel(id) => {
                json_response(200, &obj([("cancelled", Value::Bool(true))]))
            }
            Some(_) => error_response(404, "no such job"),
            None => error_response(400, "invalid job id"),
        },
        ("GET", ["jobs", id, "checkpoint"]) => match parse_id(id) {
            Some(id) => {
                let found = sched.with_job(id, |j| j.run.as_ref().map(|r| r.to_json()));
                match found {
                    None => error_response(404, "no such job"),
                    Some(None) => error_response(409, "no checkpoint yet"),
                    Some(Some(Ok(text))) => (
                        200,
                        vec![("Content-Type".into(), "application/json".into())],
                        text.into_bytes(),
                    ),
                    Some(Some(Err(e))) => error_response(500, &format!("{e:?}")),
                }
            }
            None => error_response(400, "invalid job id"),
        },
        (method, _) if !matches!(method, "GET" | "POST") => {
            error_response(405, "method not allowed")
        }
        _ => error_response(404, "no such endpoint"),
    }
}

fn submit_response(sched: &Scheduler, spec: JobSpec, resume: Option<RunState>) -> Response {
    match sched.submit(spec, resume) {
        Ok(id) => json_response(202, &obj([("id", Value::Num(id as f64))])),
        Err(SubmitError::Invalid(msg)) => error_response(400, &msg),
        Err(SubmitError::Draining) => error_response(503, "server is draining"),
        Err(SubmitError::Busy(msg)) => {
            let body = obj([("error", Value::Str(msg))]);
            (
                429,
                vec![
                    ("Content-Type".into(), "application/json".into()),
                    ("Retry-After".into(), "1".into()),
                ],
                body.to_string_compact().into_bytes(),
            )
        }
    }
}

fn parse_id(s: &str) -> Option<u64> {
    s.parse().ok()
}

fn all_job_ids(sched: &Scheduler) -> Vec<u64> {
    // Ids are dense from 1; probe until the first gap past the live
    // range. Cheap relative to a scrape and avoids a jobs() iterator
    // that would clone the map.
    let mut ids = Vec::new();
    let mut id = 1u64;
    while sched.with_job(id, |_| ()).is_some() {
        ids.push(id);
        id += 1;
    }
    ids
}

/// Status payload for one job (used by `GET /jobs/<id>` and `wait`).
fn status_value(sched: &Scheduler, id: u64) -> Option<Value> {
    sched.with_job(id, |job| {
        let mut fields: Vec<(&str, Value)> = vec![
            ("id", Value::Num(job.id as f64)),
            ("tenant", Value::Str(job.tenant.clone())),
            ("state", Value::Str(job.state.name().into())),
            ("iteration", Value::Num(job.iteration as f64)),
            ("iterations_total", Value::Num(job.spec.iterations as f64)),
            ("wall_seconds", Value::Num(job.wall_seconds)),
            (
                "train_seconds",
                Value::Num(job.run.as_ref().map_or(0.0, |r| r.train_seconds)),
            ),
            ("has_checkpoint", Value::Bool(job.run.is_some())),
        ];
        match &job.state {
            JobState::Failed(msg) | JobState::Evicted(msg) => {
                fields.push(("error", Value::Str(msg.clone())));
            }
            _ => {}
        }
        if let Some(loss) = job.last_loss {
            fields.push(("last_train_loss", Value::Num(loss)));
        }
        let stages = sgm_train::Stage::ALL
            .iter()
            .map(|s| {
                (
                    s.name().to_string(),
                    obj([
                        ("ns", Value::Num(job.stage_ns[s.index()] as f64)),
                        ("count", Value::Num(job.stage_counts[s.index()] as f64)),
                    ]),
                )
            })
            .collect();
        fields.push(("stages", Value::Obj(stages)));
        fields.push(("metrics", job.scope.json_value()));
        obj(fields)
    })
}
