//! A tiny blocking HTTP client for the job API.
//!
//! Exists so the acceptance suite (load test, fault tests, resume
//! tests, benches) exercises the server through the *real* socket
//! layer rather than in-process calls. One request per connection,
//! mirroring the server's `Connection: close` contract.

use crate::spec::JobSpec;
use sgm_json::{obj, Value};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed client-side response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response headers.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The body parsed as JSON.
    ///
    /// # Errors
    /// Returns a message when the body is not UTF-8 JSON.
    pub fn json(&self) -> Result<Value, String> {
        let text = std::str::from_utf8(&self.body).map_err(|_| "body is not UTF-8".to_string())?;
        Value::parse(text).map_err(|e| e.to_string())
    }
}

/// Reads a response: status line, headers, `Content-Length` body.
fn read_response(stream: TcpStream) -> Result<ClientResponse, String> {
    let mut reader = BufReader::new(stream);
    use std::io::BufRead;
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| e.to_string())?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    let mut headers = Vec::new();
    let mut length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).map_err(|e| e.to_string())?;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        if let Some((k, v)) = line.split_once(':') {
            let v = v.trim().to_string();
            if k.eq_ignore_ascii_case("Content-Length") {
                length = v.parse().map_err(|_| format!("bad length {v:?}"))?;
            }
            headers.push((k.to_string(), v));
        }
    }
    let mut body = vec![0u8; length];
    use std::io::Read;
    reader.read_exact(&mut body).map_err(|e| e.to_string())?;
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

/// Sends one request and reads the response.
///
/// # Errors
/// Returns a message on connect/read/parse failure.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> Result<ClientResponse, String> {
    let mut stream =
        TcpStream::connect_timeout(&addr, Duration::from_secs(10)).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(Duration::from_secs(150)))
        .map_err(|e| e.to_string())?;
    let body = body.unwrap_or(&[]);
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: sgm\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .map_err(|e| e.to_string())?;
    stream.write_all(body).map_err(|e| e.to_string())?;
    stream.flush().map_err(|e| e.to_string())?;
    read_response(stream)
}

/// Sends raw bytes verbatim and reads whatever response comes back
/// (`None` when the server closed without responding) — the fuzz
/// suite's entry point for malformed requests.
///
/// # Errors
/// Returns a message on connect/write failure.
pub fn request_raw(addr: SocketAddr, bytes: &[u8]) -> Result<Option<ClientResponse>, String> {
    let mut stream =
        TcpStream::connect_timeout(&addr, Duration::from_secs(10)).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(Duration::from_secs(150)))
        .map_err(|e| e.to_string())?;
    // Ignore write errors: the server may legitimately answer (and
    // stop reading) before the full payload is delivered.
    let _ = stream.write_all(bytes);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    match read_response(stream) {
        Ok(r) => Ok(Some(r)),
        Err(_) => Ok(None),
    }
}

/// Submits a job spec; returns the job id.
///
/// # Errors
/// Returns `Err((status, message))` for any non-202 response, with
/// status 0 for transport errors.
pub fn submit(addr: SocketAddr, spec: &JobSpec) -> Result<u64, (u16, String)> {
    let body = spec.to_json().to_string_compact();
    let resp = request(addr, "POST", "/jobs", Some(body.as_bytes())).map_err(|e| (0, e))?;
    submitted_id(&resp)
}

/// Submits a warm resume (`spec` + checkpoint JSON text).
///
/// # Errors
/// Returns `Err((status, message))` for any non-202 response, with
/// status 0 for transport errors.
pub fn submit_resume(
    addr: SocketAddr,
    spec: &JobSpec,
    state_json: &str,
) -> Result<u64, (u16, String)> {
    let state = Value::parse(state_json).map_err(|e| (0, e.to_string()))?;
    let body = obj([("spec", spec.to_json()), ("state", state)]).to_string_compact();
    let resp = request(addr, "POST", "/jobs/resume", Some(body.as_bytes())).map_err(|e| (0, e))?;
    submitted_id(&resp)
}

fn submitted_id(resp: &ClientResponse) -> Result<u64, (u16, String)> {
    if resp.status != 202 {
        let msg = resp
            .json()
            .ok()
            .and_then(|v| v.req_str("error").ok().map(str::to_string))
            .unwrap_or_default();
        return Err((resp.status, msg));
    }
    let v = resp.json().map_err(|e| (resp.status, e))?;
    v.req_usize("id")
        .map(|id| id as u64)
        .map_err(|e| (resp.status, e.to_string()))
}

/// Long-polls `GET /jobs/<id>/wait` until the job settles; returns the
/// final status JSON.
///
/// # Errors
/// Returns a message on transport errors or deadline expiry.
pub fn wait_settled(addr: SocketAddr, id: u64, deadline: Duration) -> Result<Value, String> {
    let t0 = std::time::Instant::now();
    loop {
        let resp = request(
            addr,
            "GET",
            &format!("/jobs/{id}/wait?timeout_ms=5000"),
            None,
        )?;
        if resp.status != 200 {
            return Err(format!("wait returned {}", resp.status));
        }
        let v = resp.json()?;
        let state = v.req_str("state").map_err(|e| e.to_string())?;
        if !matches!(state, "queued" | "running") {
            return Ok(v);
        }
        if t0.elapsed() > deadline {
            return Err(format!("job {id} still {state} after {deadline:?}"));
        }
    }
}

/// Downloads the job's checkpoint as raw JSON text.
///
/// # Errors
/// Returns `Err((status, message))` for any non-200 response, with
/// status 0 for transport errors.
pub fn checkpoint(addr: SocketAddr, id: u64) -> Result<String, (u16, String)> {
    let resp = request(addr, "GET", &format!("/jobs/{id}/checkpoint"), None).map_err(|e| (0, e))?;
    if resp.status != 200 {
        return Err((
            resp.status,
            String::from_utf8_lossy(&resp.body).into_owned(),
        ));
    }
    String::from_utf8(resp.body).map_err(|_| (200, "checkpoint is not UTF-8".into()))
}
