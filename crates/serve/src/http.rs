//! A minimal, defensive HTTP/1.1 layer.
//!
//! The server speaks just enough HTTP for its job API: one request per
//! connection, explicit `Content-Length` bodies, `Connection: close`
//! semantics. What it lacks in features it makes up for in paranoia —
//! every limit is explicit (header bytes, header count, body bytes),
//! every malformed input maps to a 4xx status instead of a panic, and
//! the parser is generic over [`BufRead`] so the protocol property
//! sweep can fuzz it without sockets.
//!
//! | condition                         | status |
//! |-----------------------------------|--------|
//! | malformed request line / headers  | 400    |
//! | invalid / conflicting length      | 400    |
//! | unsupported transfer encoding     | 400    |
//! | header section over the limit     | 431    |
//! | declared body over the limit      | 413    |
//! | read timeout (slow-loris)         | 408    |
//! | truncated mid-request             | 400    |
//!
//! A clean EOF *before any request byte* is a client disconnect, not an
//! error the server owes a response to ([`HttpError::Closed`]).

use std::io::{BufRead, ErrorKind, Write};

/// Parser limits. Defaults are generous for the job API (checkpoint
/// uploads are a few hundred kB) while bounding hostile inputs.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Max bytes across the request line + all header lines.
    pub max_header_bytes: usize,
    /// Max number of header lines.
    pub max_headers: usize,
    /// Max declared body size in bytes.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_header_bytes: 16 * 1024,
            max_headers: 64,
            max_body_bytes: 16 * 1024 * 1024,
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (verbatim, e.g. `GET`).
    pub method: String,
    /// Request target (path + optional query, verbatim).
    pub path: String,
    /// Header name/value pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (first match).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The path without its query string.
    pub fn path_only(&self) -> &str {
        self.path.split('?').next().unwrap_or(&self.path)
    }

    /// Value of query parameter `key`, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        let q = self.path.split_once('?')?.1;
        q.split('&').find_map(|kv| {
            let (k, v) = kv.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum HttpError {
    /// Clean EOF before any request byte — client went away; the
    /// server owes no response.
    Closed,
    /// Malformed request (line, header, length, truncation) → 400.
    BadRequest(String),
    /// Header section exceeded [`Limits::max_header_bytes`] or
    /// [`Limits::max_headers`] → 431.
    HeaderTooLarge,
    /// Declared body exceeded [`Limits::max_body_bytes`] → 413.
    BodyTooLarge,
    /// The socket read timed out mid-request (slow-loris) → 408.
    Timeout,
    /// The connection broke mid-request; no response possible.
    Io(std::io::Error),
}

impl HttpError {
    /// The 4xx status owed for this error, or `None` when the
    /// connection is gone and no response can be delivered.
    pub fn status(&self) -> Option<(u16, String)> {
        match self {
            HttpError::Closed | HttpError::Io(_) => None,
            HttpError::BadRequest(msg) => Some((400, msg.clone())),
            HttpError::HeaderTooLarge => Some((431, "header section too large".into())),
            HttpError::BodyTooLarge => Some((413, "body too large".into())),
            HttpError::Timeout => Some((408, "request timed out".into())),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::HeaderTooLarge => write!(f, "header section too large"),
            HttpError::BodyTooLarge => write!(f, "body too large"),
            HttpError::Timeout => write!(f, "request timed out"),
            HttpError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

fn map_io(e: std::io::Error) -> HttpError {
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => HttpError::Timeout,
        _ => HttpError::Io(e),
    }
}

/// Reads one `\n`-terminated line (CR stripped), charging its bytes
/// against `*budget`. Returns `None` on clean EOF at a line start.
fn read_line(
    r: &mut impl BufRead,
    budget: &mut usize,
    first_byte_seen: &mut bool,
) -> Result<Option<String>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        let n = r.read(&mut byte).map_err(map_io)?;
        if n == 0 {
            if line.is_empty() && !*first_byte_seen {
                return Ok(None);
            }
            return Err(HttpError::BadRequest("truncated request".into()));
        }
        *first_byte_seen = true;
        if *budget == 0 {
            return Err(HttpError::HeaderTooLarge);
        }
        *budget -= 1;
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line)
                .map(Some)
                .map_err(|_| HttpError::BadRequest("non-UTF-8 header bytes".into()));
        }
        line.push(byte[0]);
    }
}

/// Parses one request from `r`. See the module table for the error →
/// status mapping.
pub fn read_request(r: &mut impl BufRead, limits: &Limits) -> Result<Request, HttpError> {
    let mut budget = limits.max_header_bytes;
    let mut seen = false;
    let request_line = match read_line(r, &mut budget, &mut seen)? {
        Some(l) => l,
        None => return Err(HttpError::Closed),
    };
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty()
        || !method.bytes().all(|b| b.is_ascii_uppercase())
        || path.is_empty()
        || !path.starts_with('/')
        || parts.next().is_some()
    {
        return Err(HttpError::BadRequest(format!(
            "malformed request line {request_line:?}"
        )));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::BadRequest(format!(
            "unsupported version {version:?}"
        )));
    }
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = read_line(r, &mut budget, &mut seen)?
            .ok_or_else(|| HttpError::BadRequest("truncated headers".into()))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::HeaderTooLarge);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header {line:?}")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadRequest(format!(
                "malformed header name {name:?}"
            )));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }
    let mut req = Request {
        method,
        path,
        headers,
        body: Vec::new(),
    };
    if let Some(te) = req.header("Transfer-Encoding") {
        return Err(HttpError::BadRequest(format!(
            "transfer-encoding {te:?} not supported"
        )));
    }
    let mut content_length = 0u64;
    let mut cl_seen: Option<u64> = None;
    for (k, v) in &req.headers {
        if k.eq_ignore_ascii_case("Content-Length") {
            let n: u64 = v
                .parse()
                .map_err(|_| HttpError::BadRequest(format!("invalid content-length {v:?}")))?;
            if let Some(prev) = cl_seen {
                if prev != n {
                    return Err(HttpError::BadRequest("conflicting content-length".into()));
                }
            }
            cl_seen = Some(n);
            content_length = n;
        }
    }
    if content_length > limits.max_body_bytes as u64 {
        return Err(HttpError::BodyTooLarge);
    }
    if content_length > 0 {
        let mut body = vec![0u8; content_length as usize];
        r.read_exact(&mut body).map_err(|e| {
            if e.kind() == ErrorKind::UnexpectedEof {
                HttpError::BadRequest("truncated body".into())
            } else {
                map_io(e)
            }
        })?;
        req.body = body;
    }
    Ok(req)
}

/// Canonical reason phrase for the statuses this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete response (`Connection: close`, explicit length).
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status_reason(status),
        body.len()
    )?;
    w.write_all(body)?;
    w.flush()
}

/// Writes a JSON response.
pub fn respond_json(
    w: &mut impl Write,
    status: u16,
    body: &sgm_json::Value,
) -> std::io::Result<()> {
    write_response(
        w,
        status,
        "application/json",
        body.to_string_compact().as_bytes(),
    )
}

/// Writes the standard `{"error": msg}` JSON body for a status.
pub fn respond_error(w: &mut impl Write, status: u16, msg: &str) -> std::io::Result<()> {
    let body = sgm_json::obj([("error", sgm_json::Value::Str(msg.into()))]);
    respond_json(w, status, &body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(bytes), &Limits::default())
    }

    #[test]
    fn parses_request_with_body() {
        let req =
            parse(b"POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn parses_bare_lf_lines() {
        let req = parse(b"GET /healthz HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(req.path_only(), "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn query_params_split_off_path() {
        let req = parse(b"GET /jobs/3/wait?timeout_ms=50 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path_only(), "/jobs/3/wait");
        assert_eq!(req.query_param("timeout_ms"), Some("50"));
        assert_eq!(req.query_param("missing"), None);
    }

    #[test]
    fn clean_eof_is_closed_not_an_error_status() {
        let err = parse(b"").unwrap_err();
        assert!(matches!(err, HttpError::Closed));
        assert!(err.status().is_none());
    }

    #[test]
    fn truncation_maps_to_400() {
        for bytes in [
            &b"GET"[..],
            &b"GET /x HTTP/1.1\r\nHost"[..],
            &b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"[..],
        ] {
            let err = parse(bytes).unwrap_err();
            let (status, _) = err.status().expect("owes a response");
            assert_eq!(status, 400, "{bytes:?}");
        }
    }

    #[test]
    fn invalid_lengths_map_to_400() {
        for cl in ["-1", "abc", "1e3", "2,2", "", "18446744073709551616"] {
            let bytes = format!("POST /x HTTP/1.1\r\nContent-Length: {cl}\r\n\r\n");
            let err = parse(bytes.as_bytes()).unwrap_err();
            assert_eq!(err.status().unwrap().0, 400, "content-length {cl:?}");
        }
        // Conflicting duplicates are rejected; agreeing duplicates pass.
        let err = parse(b"POST /x HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\nab")
            .unwrap_err();
        assert_eq!(err.status().unwrap().0, 400);
        let ok = parse(b"POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nab");
        assert_eq!(ok.unwrap().body, b"ab");
    }

    #[test]
    fn oversized_headers_map_to_431() {
        let big = format!(
            "GET /x HTTP/1.1\r\nX-Big: {}\r\n\r\n",
            "a".repeat(32 * 1024)
        );
        assert_eq!(parse(big.as_bytes()).unwrap_err().status().unwrap().0, 431);
        let many: String = (0..100).fold("GET /x HTTP/1.1\r\n".to_string(), |mut s, i| {
            s.push_str(&format!("X-{i}: v\r\n"));
            s
        }) + "\r\n";
        assert_eq!(parse(many.as_bytes()).unwrap_err().status().unwrap().0, 431);
    }

    #[test]
    fn oversized_body_maps_to_413() {
        let bytes = b"POST /x HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
        assert_eq!(parse(bytes).unwrap_err().status().unwrap().0, 413);
    }

    #[test]
    fn response_writer_emits_complete_message() {
        let mut out = Vec::new();
        write_response(&mut out, 429, "application/json", b"{}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
