//! Server-side resume determinism (pattern from
//! `tests/parallel_determinism.rs`).
//!
//! The server's core invariant: a job executed through the server —
//! sliced by the scheduler, preempted, cancelled, checkpointed over
//! HTTP, re-uploaded and resumed — produces a final [`RunState`]
//! **bit-identical** to the same spec run locally in one uninterrupted
//! piece, at every intra-slice thread count {1, 2, 8}.
//!
//! Both a stateful draw-only sampler (`mis`) and a point-set-adaptive
//! one (`rad`, RunState v2 with a points checkpoint) are exercised, on
//! a synthetic clock so every timestamp is deterministic.

use sgm_par::Parallelism;
use sgm_serve::{client, run_local, JobSpec, ServeConfig, Server};
use std::time::Duration;

const PARALLELISMS: [Parallelism; 3] = [
    Parallelism::Serial,
    Parallelism::Threads(2),
    Parallelism::Threads(8),
];

fn spec(sampler: &str) -> JobSpec {
    JobSpec {
        tenant: "determinism".into(),
        sampler: sampler.into(),
        sampler_tau: Some(7), // refresh/adapt inside slices, not only at boundaries
        iterations: 60,
        interior: 128,
        boundary: 32,
        batch_interior: 16,
        batch_boundary: 8,
        hidden_width: 8,
        hidden_layers: 2,
        validation_grid: 6,
        record_every: 9, // off-boundary records cross slice boundaries
        ..JobSpec::default()
    }
}

fn reference_state_json(spec: &JobSpec, p: Parallelism) -> String {
    let (_, state) = sgm_par::with_parallelism(p, || run_local(spec)).expect("local run");
    state.to_json().expect("serialise")
}

#[test]
fn server_sliced_run_matches_local_run_bitwise() {
    for p in PARALLELISMS {
        let server = Server::start(ServeConfig {
            workers: 2,
            slice_iterations: 7, // 60 iterations → 9 preemptions, ragged boundary
            parallelism: p,
            ..ServeConfig::default()
        })
        .expect("bind");
        let addr = server.addr();
        for sampler in ["mis", "rad"] {
            let spec = spec(sampler);
            let want = reference_state_json(&spec, p);
            let id = client::submit(addr, &spec).expect("submit");
            let status = client::wait_settled(addr, id, Duration::from_secs(300)).expect("wait");
            assert_eq!(
                status.req_str("state").unwrap(),
                "completed",
                "{sampler} at {p:?}"
            );
            let got = client::checkpoint(addr, id).expect("download checkpoint");
            assert_eq!(
                got, want,
                "{sampler} at {p:?}: server-sliced state diverged from local run"
            );
        }
        assert!(server.shutdown_and_join());
    }
}

#[test]
fn preempt_checkpoint_upload_resume_is_bit_identical() {
    for p in PARALLELISMS {
        let server = Server::start(ServeConfig {
            workers: 2,
            slice_iterations: 5,
            parallelism: p,
            ..ServeConfig::default()
        })
        .expect("bind");
        let addr = server.addr();
        for sampler in ["mis", "rad"] {
            let spec = spec(sampler);
            let want = reference_state_json(&spec, p);

            // Run the job partway, then preempt it mid-flight. A tiny
            // wall budget evicts deterministically at the *first*
            // slice boundary, checkpoint in hand — unlike a cancel
            // issued from a polling loop, it cannot race the job to
            // completion on a loaded machine.
            let mut bounded = spec.clone();
            bounded.max_wall_seconds = Some(1e-6);
            let id = client::submit(addr, &bounded).expect("submit");
            let status = client::wait_settled(addr, id, Duration::from_secs(120)).expect("wait");
            assert_eq!(
                status.req_str("state").unwrap(),
                "evicted",
                "{sampler} at {p:?}: expected a mid-flight preemption"
            );
            let mid_iter = status.req_usize("iteration").unwrap();
            assert!(
                mid_iter > 0 && mid_iter < spec.iterations,
                "{sampler} at {p:?}: preempted at {mid_iter}, wanted mid-flight"
            );

            // Download the checkpoint, upload it as a warm resume, run
            // to completion.
            let ckpt = client::checkpoint(addr, id).expect("download");
            let resumed = client::submit_resume(addr, &spec, &ckpt).expect("resume");
            let status =
                client::wait_settled(addr, resumed, Duration::from_secs(300)).expect("wait");
            assert_eq!(status.req_str("state").unwrap(), "completed");
            let got = client::checkpoint(addr, resumed).expect("final checkpoint");
            assert_eq!(
                got, want,
                "{sampler} at {p:?}: resumed-from-iteration-{mid_iter} state \
                 diverged from the uninterrupted local run"
            );
        }
        assert!(server.shutdown_and_join());
    }
}
