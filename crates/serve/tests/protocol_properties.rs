//! Protocol property suite: seeded fuzz of the HTTP parser and the job
//! JSON schema, in memory and through real sockets.
//!
//! The server's contract under hostile input is threefold: respond 4xx
//! (never panic), never close a started request without a response, and
//! never leak a connection thread. The socket sweep drives mutated
//! requests at a live server and then proves all three — including the
//! open-connection gauge returning to its baseline.

use sgm_json::Value;
use sgm_linalg::rng::Rng64;
use sgm_serve::server::CONNECTIONS_OPEN;
use sgm_serve::{client, JobSpec, ServeConfig, Server};
use sgm_testkit::sweep::Sweep;
use std::io::BufReader;
use std::time::{Duration, Instant};

const VALID_SUBMIT: &[u8] =
    b"POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 15\r\n\r\n{\"tenant\": \"a\"}";

/// One fuzzed request: a mutation recipe applied to a valid submit.
#[derive(Debug, Clone)]
struct FuzzCase {
    bytes: Vec<u8>,
}

fn gen_case(rng: &mut Rng64) -> FuzzCase {
    let mut bytes = VALID_SUBMIT.to_vec();
    match rng.below(8) {
        // Truncate anywhere (headers or body).
        0 => bytes.truncate(rng.below(bytes.len())),
        // Flip a byte.
        1 => {
            let i = rng.below(bytes.len());
            bytes[i] = (rng.below(256)) as u8;
        }
        // Invalid content-length values.
        2 => {
            let cl = ["-1", "abc", "1e9", "999999999999999999999999", "2,2", ""];
            let v = cl[rng.below(cl.len())];
            bytes = format!("POST /jobs HTTP/1.1\r\nContent-Length: {v}\r\n\r\n{{}}").into_bytes();
        }
        // Oversized single header.
        3 => {
            let n = 1 + rng.below(64 * 1024);
            bytes =
                format!("GET /healthz HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(n)).into_bytes();
        }
        // Too many headers.
        4 => {
            let mut s = String::from("GET /healthz HTTP/1.1\r\n");
            for i in 0..(1 + rng.below(200)) {
                s.push_str(&format!("X-{i}: v\r\n"));
            }
            s.push_str("\r\n");
            bytes = s.into_bytes();
        }
        // Declared length longer than the sent body (truncated upload).
        5 => {
            let declared = 16 + rng.below(64);
            bytes =
                format!("POST /jobs HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n{{\"tenant\"")
                    .into_bytes();
        }
        // Pure binary garbage.
        6 => {
            bytes = (0..1 + rng.below(128))
                .map(|_| rng.below(256) as u8)
                .collect();
        }
        // Malformed request lines.
        7 => {
            let lines = [
                "GARBAGE\r\n\r\n",
                "GET\r\n\r\n",
                "GET /x HTTP/9.9\r\n\r\n",
                "get /x HTTP/1.1\r\n\r\n",
                "GET x HTTP/1.1\r\n\r\n",
                "GET /x HTTP/1.1 extra\r\n\r\n",
                "POST /jobs HTTP/1.1\r\nNoColonHere\r\n\r\n",
                "POST /jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            ];
            bytes = lines[rng.below(lines.len())].as_bytes().to_vec();
        }
        _ => unreachable!(),
    }
    FuzzCase { bytes }
}

fn shrink_case(c: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();
    if c.bytes.len() > 1 {
        out.push(FuzzCase {
            bytes: c.bytes[..c.bytes.len() / 2].to_vec(),
        });
        out.push(FuzzCase {
            bytes: c.bytes[..c.bytes.len() - 1].to_vec(),
        });
    }
    out
}

#[test]
fn parser_never_panics_and_maps_errors_to_4xx() {
    Sweep::new(0x005e_2101, 400).run(gen_case, shrink_case, |case| {
        let mut reader = BufReader::new(&case.bytes[..]);
        // A panic inside read_request is converted to Err by the sweep
        // harness and fails the property.
        match sgm_serve::http::read_request(&mut reader, &Default::default()) {
            Ok(_) => Ok(()),
            Err(e) => match e.status() {
                None => Ok(()), // closed/broken: no response owed
                Some((status, _)) if (400..500).contains(&status) => Ok(()),
                Some((status, msg)) => {
                    Err(format!("non-4xx status {status} ({msg}) for parse error"))
                }
            },
        }
    });
}

/// Random JSON values aimed at the job schema: valid specs, wrong
/// types, missing fields, deep junk. `from_json` must return `Err`,
/// never panic.
#[test]
fn job_schema_never_panics_on_arbitrary_json() {
    fn gen_value(rng: &mut Rng64, depth: usize) -> Value {
        match if depth == 0 {
            rng.below(4)
        } else {
            rng.below(6)
        } {
            0 => Value::Null,
            1 => Value::Bool(rng.below(2) == 0),
            2 => Value::Num(match rng.below(4) {
                0 => 0.0,
                1 => -1.5,
                2 => 1e308,
                _ => rng.below(1000) as f64,
            }),
            3 => Value::Str(["", "a", "uniform", "poisson-sine", "\u{1f600}"][rng.below(5)].into()),
            4 => Value::Arr(
                (0..rng.below(3))
                    .map(|_| gen_value(rng, depth - 1))
                    .collect(),
            ),
            _ => {
                let keys = [
                    "tenant",
                    "sampler",
                    "iterations",
                    "interior",
                    "batch_interior",
                    "lr",
                    "synthetic_dt",
                    "preset",
                    "activation",
                    "junk",
                ];
                Value::Obj(
                    (0..rng.below(6))
                        .map(|_| {
                            (
                                keys[rng.below(keys.len())].to_string(),
                                gen_value(rng, depth - 1),
                            )
                        })
                        .collect(),
                )
            }
        }
    }
    Sweep::new(0x005e_2102, 500).run(
        |rng| gen_value(rng, 3),
        |_| Vec::new(),
        |v| {
            // Ok or Err both fine; only a panic (captured by the
            // harness) fails the property.
            let _ = JobSpec::from_json(v);
            Ok(())
        },
    );
}

fn wait_gauge_zero(deadline: Duration) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < deadline {
        if CONNECTIONS_OPEN.value() == 0.0 {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

/// The socket-level property: every non-empty fuzzed request gets an
/// HTTP response (4xx for the malformed ones), the server stays live
/// throughout, and no connection thread outlives its request.
#[test]
fn fuzzed_sockets_get_responses_and_leak_no_threads() {
    let server = Server::start(ServeConfig {
        workers: 1,
        read_timeout_ms: 500,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr();

    Sweep::new(0x005e_2103, 120).run(gen_case, shrink_case, |case| {
        let resp = client::request_raw(addr, &case.bytes).map_err(|e| format!("transport: {e}"))?;
        match resp {
            None if case.bytes.is_empty() => Ok(()),
            None => Err("request dropped without a response".into()),
            Some(r) if r.status < 500 => Ok(()),
            Some(r) => Err(format!("server answered {}", r.status)),
        }
    });

    // Liveness after the storm: a well-formed request still works and
    // the job pipeline still runs.
    let resp = client::request(addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!(resp.status, 200);
    let id = client::submit(
        addr,
        &JobSpec {
            tenant: "after-fuzz".into(),
            iterations: 6,
            interior: 32,
            boundary: 8,
            batch_interior: 4,
            batch_boundary: 2,
            hidden_width: 4,
            hidden_layers: 1,
            record_every: 3,
            ..JobSpec::default()
        },
    )
    .expect("submit after fuzz");
    let status = client::wait_settled(addr, id, Duration::from_secs(60)).expect("wait");
    assert_eq!(status.req_str("state").unwrap(), "completed");

    // No leaked connection threads: the open-connection gauge drains to
    // zero once the last response is written.
    assert!(
        wait_gauge_zero(Duration::from_secs(10)),
        "connection gauge stuck at {}",
        CONNECTIONS_OPEN.value()
    );
    assert!(server.shutdown_and_join(), "threads leaked past shutdown");
}
