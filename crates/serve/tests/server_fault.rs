//! Server fault injection: hostile clients and dying workers.
//!
//! Companion to `crates/core/tests/testkit_fault.rs` (which scripts
//! faults into the background rebuild worker): here the faults hit the
//! *server* — a client that vanishes mid-run, a slow-loris reader, and
//! a worker thread that panics inside a training slice. In every case
//! the server must apply its policy (evict/fail the affected job,
//! answer 408, count the death) and stay fully live for other tenants.
//!
//! Thread-leak checks use each server's own connection tracker (via
//! `shutdown_and_join`), not the global gauge, so tests can run in
//! parallel.

use sgm_serve::scheduler::WORKER_PANICS;
use sgm_serve::{client, JobSpec, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn quick_spec(tenant: &str, iterations: usize) -> JobSpec {
    JobSpec {
        tenant: tenant.into(),
        iterations,
        interior: 64,
        boundary: 16,
        batch_interior: 8,
        batch_boundary: 4,
        hidden_width: 4,
        hidden_layers: 1,
        record_every: 5,
        ..JobSpec::default()
    }
}

#[test]
fn client_disconnect_mid_run_does_not_kill_the_job() {
    let server = Server::start(ServeConfig {
        workers: 1,
        slice_iterations: 5,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr();
    let id = client::submit(addr, &quick_spec("ghost", 40)).expect("submit");

    // A long-poll watcher that sends its request and vanishes without
    // reading the response.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        write!(
            s,
            "GET /jobs/{id}/wait?timeout_ms=30000 HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n"
        )
        .expect("write");
        s.flush().ok();
        // Dropped here: the server-side wait thread must notice the
        // broken pipe (at response time) and exit, not wedge.
    }

    // The job is unaffected by its watcher dying.
    let status = client::wait_settled(addr, id, Duration::from_secs(120)).expect("wait");
    assert_eq!(status.req_str("state").unwrap(), "completed");
    assert_eq!(status.req_usize("iteration").unwrap(), 40);
    assert!(
        server.shutdown_and_join(),
        "disconnected watcher leaked its connection thread"
    );
}

#[test]
fn slow_loris_reader_gets_408_and_frees_its_thread() {
    let server = Server::start(ServeConfig {
        workers: 1,
        read_timeout_ms: 300,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr();

    // Drip half a request line and stall past the read timeout.
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"GET /healthz HT").expect("write");
    s.flush().ok();
    std::thread::sleep(Duration::from_millis(600));
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).expect("read 408");
    let text = String::from_utf8_lossy(&buf);
    assert!(text.starts_with("HTTP/1.1 408 "), "got: {text:?}");

    // The server took no damage: normal requests still work.
    let resp = client::request(addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!(resp.status, 200);
    assert!(server.shutdown_and_join(), "slow-loris leaked its thread");
}

#[test]
fn worker_panic_fails_only_the_faulted_job_and_is_counted() {
    let before = WORKER_PANICS.value();
    let server = Server::start(ServeConfig {
        workers: 2,
        slice_iterations: 5,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr();

    let mut bad = quick_spec("faulty", 30);
    bad.panic_at_iteration = Some(7); // mid second slice
    let bad_id = client::submit(addr, &bad).expect("submit bad");
    let good_ids: Vec<u64> = (0..3)
        .map(|i| client::submit(addr, &quick_spec(&format!("ok-{i}"), 25)).expect("submit good"))
        .collect();

    let status = client::wait_settled(addr, bad_id, Duration::from_secs(120)).expect("wait bad");
    assert_eq!(status.req_str("state").unwrap(), "failed");
    let msg = status.req_str("error").unwrap();
    assert!(msg.contains("panicked"), "error was {msg:?}");
    assert!(
        WORKER_PANICS.value() > before,
        "worker death was not counted"
    );

    // The pool survived its member's panic: every other tenant's job
    // still completes on the same two threads.
    for id in good_ids {
        let status = client::wait_settled(addr, id, Duration::from_secs(120)).expect("wait good");
        assert_eq!(status.req_str("state").unwrap(), "completed", "job {id}");
    }
    // And the server still accepts new work after the death.
    let late = client::submit(addr, &quick_spec("late", 10)).expect("submit late");
    let status = client::wait_settled(addr, late, Duration::from_secs(120)).expect("wait late");
    assert_eq!(status.req_str("state").unwrap(), "completed");

    assert!(server.shutdown_and_join(), "threads leaked");
}

#[test]
fn cancel_of_a_running_job_settles_at_a_slice_boundary() {
    let server = Server::start(ServeConfig {
        workers: 1,
        slice_iterations: 5,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr();
    // Long enough (~5k slices) that the cancel below always lands
    // mid-flight, far from both endpoints.
    let id = client::submit(addr, &quick_spec("walkaway", 25_000)).expect("submit");
    let t0 = std::time::Instant::now();
    loop {
        let status = client::request(addr, "GET", &format!("/jobs/{id}"), None)
            .expect("status")
            .json()
            .expect("status json");
        if status.req_usize("iteration").unwrap() >= 5 {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(120),
            "job never reached iteration 5"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let resp = client::request(addr, "POST", &format!("/jobs/{id}/cancel"), None).expect("cancel");
    assert_eq!(resp.status, 200);
    let status = client::wait_settled(addr, id, Duration::from_secs(120)).expect("wait");
    assert_eq!(status.req_str("state").unwrap(), "cancelled");
    let at = status.req_usize("iteration").unwrap();
    assert!(
        at > 0 && at < 25_000,
        "cancelled at {at}, wanted mid-flight"
    );
    assert!(at.is_multiple_of(5), "settled off a slice boundary: {at}");
    // The preemption left a resumable checkpoint behind.
    assert!(status.req_bool("has_checkpoint").unwrap());
    client::checkpoint(addr, id).expect("checkpoint after cancel");
    assert!(server.shutdown_and_join());
}

#[test]
fn missing_checkpoints_are_409_not_500() {
    // A fault-adjacent edge: a job that dies before its first slice
    // boundary has no checkpoint — downloading one must be a clean
    // conflict, not an internal error.
    let server = Server::start(ServeConfig::default()).expect("bind");
    let addr = server.addr();
    let mut spec = quick_spec("doomed", 30);
    spec.panic_at_iteration = Some(0); // first refresh of the first slice
    let id = client::submit(addr, &spec).expect("submit");
    let status = client::wait_settled(addr, id, Duration::from_secs(120)).expect("wait");
    assert_eq!(status.req_str("state").unwrap(), "failed");
    assert!(!status.req_bool("has_checkpoint").unwrap());
    let err = client::checkpoint(addr, id).expect_err("no checkpoint to download");
    assert_eq!(err.0, 409, "{err:?}");
    let err = client::checkpoint(addr, 999_999).expect_err("unknown job");
    assert_eq!(err.0, 404, "{err:?}");
    assert!(server.shutdown_and_join());
}
