//! Regression guard wiring the testkit's finite-difference checker into
//! the crate that owns `PinnModel`: the optimiser-facing gradient must
//! match central differences of the batch loss.

use sgm_graph::points::PointCloud;
use sgm_linalg::dense::Matrix;
use sgm_linalg::rng::Rng64;
use sgm_nn::activation::Activation;
use sgm_nn::mlp::{Mlp, MlpConfig};
use sgm_physics::geometry::{Cavity, FillStrategy};
use sgm_physics::pde::{Pde, PoissonConfig};
use sgm_physics::problem::{Problem, TrainSet};
use sgm_physics::PinnModel;
use sgm_testkit::gradcheck::{central_diff_grad, max_rel_err};
use sgm_train::LossModel;

fn smooth_forcing(p: &[f64]) -> f64 {
    (3.0 * p[0]).sin() * (2.0 * p[1]).cos()
}

#[test]
fn pinn_gradient_matches_central_differences() {
    let mut rng = Rng64::new(0xFD);
    let interior = Cavity::default().sample_interior(64, FillStrategy::Halton, &mut rng);
    let data = TrainSet {
        interior,
        boundary: PointCloud::from_flat(2, vec![0.0, 0.0]),
        boundary_targets: Matrix::zeros(1, 1),
    };
    let prob = Problem::new(Pde::Poisson(PoissonConfig {
        forcing: smooth_forcing,
    }));
    let model = PinnModel::new(&prob, &data);
    let net = Mlp::new(
        &MlpConfig {
            input_dim: 2,
            output_dim: 1,
            hidden_width: 6,
            hidden_layers: 1,
            activation: Activation::Tanh,
            fourier: None,
        },
        &mut Rng64::new(0xFE),
    );

    let bi: Vec<usize> = (0..32).collect();
    let bb = vec![0];
    let mut ws = model.make_workspace(&net, bi.len(), bb.len());
    model.gather(&bi, &bb, &mut *ws);
    let mut grads = net.zero_gradients();
    model.loss_and_grad(&net, &mut *ws, &mut grads);

    let fd = central_diff_grad(
        |p| {
            let mut probe = net.clone();
            probe.set_params(p);
            model.batch_loss(&probe, &bi, &bb)
        },
        &net.params(),
        6e-6,
    );
    let e = max_rel_err(&fd, &grads.flat());
    assert!(e < 1e-6, "fd vs analytic gradient: {e:e}");
}
