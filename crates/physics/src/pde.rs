//! PDE residual definitions with exact adjoints.
//!
//! A PINN loss is `Σ_k w_k · mean_b r_k(q_b)²`, where each residual `r_k`
//! is an algebraic function of the network *quantities* at sample `b`:
//! output values, first input derivatives and (diagonal) second input
//! derivatives, all delivered by [`sgm_nn::mlp::BatchDerivatives`]. Every
//! PDE here therefore implements two things:
//!
//! * [`Pde::residuals`] — the residual values `r_k(q_b)`;
//! * [`Pde::accumulate_adjoints`] — given upstream factors
//!   `f_{b,k} = ∂L/∂r_{b,k}`, accumulate `f · ∂r/∂q` into an adjoint
//!   [`sgm_nn::mlp::BatchDerivatives`], which the `sgm-nn` backward pass turns into
//!   exact parameter gradients.
//!
//! Implemented systems:
//!
//! * [`Pde::NavierStokes`] — 2-D steady incompressible Navier–Stokes in
//!   the variable-viscosity form used by Modulus's LDC example:
//!   continuity, x/y momentum, optionally the **zero-equation turbulence
//!   closure** (Prandtl mixing length) that makes total viscosity `ν` a
//!   fourth network output constrained by
//!   `ν = ν_mol + l(x)²·√(2(u_x²+v_y²)+(u_y+v_x)²)`.
//! * [`Pde::Poisson`] — `−∇²u = f`, the quickstart example.

use sgm_linalg::dense::Matrix;
use sgm_nn::mlp::BatchDerivatives;

/// Zero-equation (mixing-length) turbulence closure configuration.
#[derive(Debug, Clone)]
pub struct ZeroEqConfig {
    /// Von Kármán constant (Modulus default 0.419).
    pub karman: f64,
    /// Mixing-length cap (Modulus: `0.09 × max wall distance`).
    pub mixing_cap: f64,
    /// Wall-distance function of the domain.
    pub wall_distance: fn(&[f64]) -> f64,
    /// Smoothing floor inside the strain-rate square root.
    pub sqrt_eps: f64,
}

/// 2-D steady incompressible Navier–Stokes configuration.
///
/// Outputs are `[u, v, p]`, plus `ν` (total kinematic viscosity) when the
/// zero-equation closure is enabled.
#[derive(Debug, Clone)]
pub struct NsConfig {
    /// Molecular kinematic viscosity (1/Re for unit scales).
    pub nu: f64,
    /// Optional zero-equation turbulence closure.
    pub zero_eq: Option<ZeroEqConfig>,
}

/// Poisson problem `−∇²u = f` with caller-supplied forcing.
#[derive(Debug, Clone)]
pub struct PoissonConfig {
    /// Forcing term `f(x)` (receives the full input row).
    pub forcing: fn(&[f64]) -> f64,
}

/// Viscous Burgers equation `u_t + u u_x = ν u_xx` on inputs `(x, t)`
/// — the classic PINN benchmark (Raissi et al.). Input column 0 is space,
/// column 1 is time.
#[derive(Debug, Clone)]
pub struct BurgersConfig {
    /// Viscosity ν (the standard benchmark uses `0.01/π`).
    pub nu: f64,
}

/// Steady heat conduction `∇·(κ∇T) + q = 0` with spatially varying
/// conductivity — the chip-thermal-analysis workload from the paper's
/// introduction. Conductivity and power-density maps are data (closures of
/// position), the temperature `T` is the single network output.
#[derive(Debug, Clone)]
pub struct HeatConfig {
    /// Thermal conductivity `κ(x)`.
    pub conductivity: fn(&[f64]) -> f64,
    /// Gradient `(κ_x, κ_y)` of the conductivity map.
    pub conductivity_grad: fn(&[f64]) -> [f64; 2],
    /// Volumetric heat source `q(x)` (power density).
    pub source: fn(&[f64]) -> f64,
}

/// Helmholtz equation `∇²u + k² u = f` — the frequency-domain
/// computational-electromagnetics workload from the paper's introduction.
#[derive(Debug, Clone)]
pub struct HelmholtzConfig {
    /// Wavenumber `k`.
    pub wavenumber: f64,
    /// Forcing `f(x)`.
    pub forcing: fn(&[f64]) -> f64,
}

/// A PDE system the trainer can minimise.
#[derive(Debug, Clone)]
pub enum Pde {
    /// 2-D steady incompressible Navier–Stokes (optionally turbulent).
    NavierStokes(NsConfig),
    /// Scalar Poisson equation.
    Poisson(PoissonConfig),
    /// 1-D viscous Burgers in `(x, t)`.
    Burgers(BurgersConfig),
    /// Steady heat conduction with varying conductivity (chip thermal).
    Heat(HeatConfig),
    /// Helmholtz equation (CEM).
    Helmholtz(HelmholtzConfig),
}

impl Pde {
    /// Number of network outputs this PDE expects.
    pub fn output_dim(&self) -> usize {
        match self {
            Pde::NavierStokes(c) => {
                if c.zero_eq.is_some() {
                    4
                } else {
                    3
                }
            }
            Pde::Poisson(_) | Pde::Burgers(_) | Pde::Heat(_) | Pde::Helmholtz(_) => 1,
        }
    }

    /// Number of residual equations.
    pub fn num_residuals(&self) -> usize {
        match self {
            Pde::NavierStokes(c) => {
                if c.zero_eq.is_some() {
                    4
                } else {
                    3
                }
            }
            Pde::Poisson(_) | Pde::Burgers(_) | Pde::Heat(_) | Pde::Helmholtz(_) => 1,
        }
    }

    /// Human-readable residual names, aligned with residual indices.
    pub fn residual_names(&self) -> Vec<&'static str> {
        match self {
            Pde::NavierStokes(c) => {
                let mut v = vec!["continuity", "momentum_x", "momentum_y"];
                if c.zero_eq.is_some() {
                    v.push("zero_eq");
                }
                v
            }
            Pde::Poisson(_) => vec!["poisson"],
            Pde::Burgers(_) => vec!["burgers"],
            Pde::Heat(_) => vec!["heat"],
            Pde::Helmholtz(_) => vec!["helmholtz"],
        }
    }

    /// Input dimensions to differentiate (always the two spatial
    /// coordinates; design parameters like `r_i` are extra columns that
    /// enter the network but not the differential operators).
    pub fn diff_dims(&self) -> Vec<usize> {
        vec![0, 1]
    }

    /// Residual values, `B × num_residuals`.
    ///
    /// # Panics
    /// Panics if `d` does not carry both spatial derivative sets or the
    /// output dimension mismatches.
    pub fn residuals(&self, x: &Matrix, d: &BatchDerivatives) -> Matrix {
        let mut r = Matrix::zeros(d.values.rows(), self.num_residuals());
        self.residuals_into(x, d, &mut r);
        r
    }

    /// Like [`Pde::residuals`], writing into a preallocated
    /// `B × num_residuals` buffer (the zero-allocation training path).
    ///
    /// # Panics
    /// Panics on shape mismatches.
    pub fn residuals_into(&self, x: &Matrix, d: &BatchDerivatives, r: &mut Matrix) {
        let b = d.values.rows();
        assert!(
            d.jac.len() >= 2 && d.hess.len() >= 2,
            "need x,y derivatives"
        );
        assert_eq!(d.values.cols(), self.output_dim(), "output dim mismatch");
        assert_eq!(
            (r.rows(), r.cols()),
            (b, self.num_residuals()),
            "residual buffer shape"
        );
        r.fill(0.0);
        match self {
            Pde::NavierStokes(cfg) => {
                for i in 0..b {
                    let q = NsQuantities::read(cfg, x, d, i);
                    let (rc, ru, rv, rnu) = q.residuals(cfg);
                    r.set(i, 0, rc);
                    r.set(i, 1, ru);
                    r.set(i, 2, rv);
                    if cfg.zero_eq.is_some() {
                        r.set(i, 3, rnu);
                    }
                }
            }
            Pde::Poisson(cfg) => {
                for i in 0..b {
                    let u_xx = d.hess[0].get(i, 0);
                    let u_yy = d.hess[1].get(i, 0);
                    r.set(i, 0, u_xx + u_yy + (cfg.forcing)(x.row(i)));
                }
            }
            Pde::Burgers(cfg) => {
                // Inputs are (x, t): jac[0] = ∂/∂x, jac[1] = ∂/∂t.
                for i in 0..b {
                    let u = d.values.get(i, 0);
                    let u_x = d.jac[0].get(i, 0);
                    let u_t = d.jac[1].get(i, 0);
                    let u_xx = d.hess[0].get(i, 0);
                    r.set(i, 0, u_t + u * u_x - cfg.nu * u_xx);
                }
            }
            Pde::Heat(cfg) => {
                for i in 0..b {
                    let p = x.row(i);
                    let k = (cfg.conductivity)(p);
                    let [kx, ky] = (cfg.conductivity_grad)(p);
                    let t_x = d.jac[0].get(i, 0);
                    let t_y = d.jac[1].get(i, 0);
                    let t_xx = d.hess[0].get(i, 0);
                    let t_yy = d.hess[1].get(i, 0);
                    r.set(
                        i,
                        0,
                        k * (t_xx + t_yy) + kx * t_x + ky * t_y + (cfg.source)(p),
                    );
                }
            }
            Pde::Helmholtz(cfg) => {
                let k2 = cfg.wavenumber * cfg.wavenumber;
                for i in 0..b {
                    let u = d.values.get(i, 0);
                    let u_xx = d.hess[0].get(i, 0);
                    let u_yy = d.hess[1].get(i, 0);
                    r.set(i, 0, u_xx + u_yy + k2 * u - (cfg.forcing)(x.row(i)));
                }
            }
        }
    }

    /// Accumulates `factors[b][k] · ∂r_k/∂q` into `adj` for every network
    /// quantity `q` the residuals read.
    ///
    /// # Panics
    /// Panics on shape mismatches.
    pub fn accumulate_adjoints(
        &self,
        x: &Matrix,
        d: &BatchDerivatives,
        factors: &Matrix,
        adj: &mut BatchDerivatives,
    ) {
        let b = d.values.rows();
        assert_eq!(factors.rows(), b, "factor rows");
        assert_eq!(factors.cols(), self.num_residuals(), "factor cols");
        match self {
            Pde::NavierStokes(cfg) => {
                for i in 0..b {
                    let q = NsQuantities::read(cfg, x, d, i);
                    q.accumulate(cfg, factors.row(i), i, adj);
                }
            }
            Pde::Poisson(_) => {
                for i in 0..b {
                    let f = factors.get(i, 0);
                    adj.hess[0].add_at(i, 0, f);
                    adj.hess[1].add_at(i, 0, f);
                }
            }
            Pde::Burgers(cfg) => {
                for i in 0..b {
                    let f = factors.get(i, 0);
                    let u = d.values.get(i, 0);
                    let u_x = d.jac[0].get(i, 0);
                    adj.values.add_at(i, 0, f * u_x);
                    adj.jac[0].add_at(i, 0, f * u);
                    adj.jac[1].add_at(i, 0, f);
                    adj.hess[0].add_at(i, 0, -f * cfg.nu);
                }
            }
            Pde::Heat(cfg) => {
                for i in 0..b {
                    let f = factors.get(i, 0);
                    let p = x.row(i);
                    let k = (cfg.conductivity)(p);
                    let [kx, ky] = (cfg.conductivity_grad)(p);
                    adj.jac[0].add_at(i, 0, f * kx);
                    adj.jac[1].add_at(i, 0, f * ky);
                    adj.hess[0].add_at(i, 0, f * k);
                    adj.hess[1].add_at(i, 0, f * k);
                }
            }
            Pde::Helmholtz(cfg) => {
                let k2 = cfg.wavenumber * cfg.wavenumber;
                for i in 0..b {
                    let f = factors.get(i, 0);
                    adj.values.add_at(i, 0, f * k2);
                    adj.hess[0].add_at(i, 0, f);
                    adj.hess[1].add_at(i, 0, f);
                }
            }
        }
    }
}

/// All per-sample quantities the NS residuals read, gathered once.
#[derive(Debug, Clone, Copy)]
struct NsQuantities {
    u: f64,
    v: f64,
    u_x: f64,
    u_y: f64,
    v_x: f64,
    v_y: f64,
    p_x: f64,
    p_y: f64,
    u_xx: f64,
    u_yy: f64,
    v_xx: f64,
    v_yy: f64,
    nu_val: f64,
    nu_x: f64,
    nu_y: f64,
    /// Mixing length at this sample (zero-eq only).
    l_mix: f64,
}

impl NsQuantities {
    fn read(cfg: &NsConfig, x: &Matrix, d: &BatchDerivatives, i: usize) -> Self {
        let turbulent = cfg.zero_eq.is_some();
        let l_mix = cfg.zero_eq.as_ref().map_or(0.0, |z| {
            ((z.wall_distance)(x.row(i)) * z.karman).min(z.mixing_cap)
        });
        NsQuantities {
            u: d.values.get(i, 0),
            v: d.values.get(i, 1),
            u_x: d.jac[0].get(i, 0),
            u_y: d.jac[1].get(i, 0),
            v_x: d.jac[0].get(i, 1),
            v_y: d.jac[1].get(i, 1),
            p_x: d.jac[0].get(i, 2),
            p_y: d.jac[1].get(i, 2),
            u_xx: d.hess[0].get(i, 0),
            u_yy: d.hess[1].get(i, 0),
            v_xx: d.hess[0].get(i, 1),
            v_yy: d.hess[1].get(i, 1),
            nu_val: if turbulent {
                d.values.get(i, 3)
            } else {
                cfg.nu
            },
            nu_x: if turbulent { d.jac[0].get(i, 3) } else { 0.0 },
            nu_y: if turbulent { d.jac[1].get(i, 3) } else { 0.0 },
            l_mix,
        }
    }

    fn strain(&self, cfg: &NsConfig) -> (f64, f64) {
        let eps = cfg.zero_eq.as_ref().map_or(1e-10, |z| z.sqrt_eps);
        let g = 2.0 * self.u_x * self.u_x
            + 2.0 * self.v_y * self.v_y
            + (self.u_y + self.v_x) * (self.u_y + self.v_x);
        ((g + eps).sqrt(), g)
    }

    fn residuals(&self, cfg: &NsConfig) -> (f64, f64, f64, f64) {
        let rc = self.u_x + self.v_y;
        let ru = self.u * self.u_x + self.v * self.u_y + self.p_x
            - self.nu_val * (self.u_xx + self.u_yy)
            - self.nu_x * self.u_x
            - self.nu_y * self.u_y;
        let rv = self.u * self.v_x + self.v * self.v_y + self.p_y
            - self.nu_val * (self.v_xx + self.v_yy)
            - self.nu_x * self.v_x
            - self.nu_y * self.v_y;
        let rnu = if cfg.zero_eq.is_some() {
            let (s, _) = self.strain(cfg);
            self.nu_val - cfg.nu - self.l_mix * self.l_mix * s
        } else {
            0.0
        };
        (rc, ru, rv, rnu)
    }

    #[allow(clippy::too_many_lines)]
    fn accumulate(&self, cfg: &NsConfig, f: &[f64], i: usize, adj: &mut BatchDerivatives) {
        let turbulent = cfg.zero_eq.is_some();
        let (fc, fu, fv) = (f[0], f[1], f[2]);
        // Continuity: r = u_x + v_y.
        adj.jac[0].add_at(i, 0, fc);
        adj.jac[1].add_at(i, 1, fc);
        // Momentum x.
        adj.values.add_at(i, 0, fu * self.u_x);
        adj.values.add_at(i, 1, fu * self.u_y);
        adj.jac[0].add_at(i, 0, fu * (self.u - self.nu_x));
        adj.jac[1].add_at(i, 0, fu * (self.v - self.nu_y));
        adj.jac[0].add_at(i, 2, fu);
        adj.hess[0].add_at(i, 0, -fu * self.nu_val);
        adj.hess[1].add_at(i, 0, -fu * self.nu_val);
        // Momentum y.
        adj.values.add_at(i, 0, fv * self.v_x);
        adj.values.add_at(i, 1, fv * self.v_y);
        adj.jac[0].add_at(i, 1, fv * (self.u - self.nu_x));
        adj.jac[1].add_at(i, 1, fv * (self.v - self.nu_y));
        adj.jac[1].add_at(i, 2, fv);
        adj.hess[0].add_at(i, 1, -fv * self.nu_val);
        adj.hess[1].add_at(i, 1, -fv * self.nu_val);
        if turbulent {
            // ν-dependence of the momentum equations.
            adj.values.add_at(i, 3, -fu * (self.u_xx + self.u_yy));
            adj.jac[0].add_at(i, 3, -fu * self.u_x);
            adj.jac[1].add_at(i, 3, -fu * self.u_y);
            adj.values.add_at(i, 3, -fv * (self.v_xx + self.v_yy));
            adj.jac[0].add_at(i, 3, -fv * self.v_x);
            adj.jac[1].add_at(i, 3, -fv * self.v_y);
            // Zero-equation residual: r = ν − ν_mol − l²√(G+ε).
            let fnu = f[3];
            let (s, _g) = self.strain(cfg);
            let l2 = self.l_mix * self.l_mix;
            adj.values.add_at(i, 3, fnu);
            adj.jac[0].add_at(i, 0, -fnu * l2 * 2.0 * self.u_x / s);
            adj.jac[1].add_at(i, 1, -fnu * l2 * 2.0 * self.v_y / s);
            let cross = -fnu * l2 * (self.u_y + self.v_x) / s;
            adj.jac[1].add_at(i, 0, cross);
            adj.jac[0].add_at(i, 1, cross);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{AnnulusChannel, Cavity};
    use sgm_autodiff::dual::Dual2;

    /// Builds BatchDerivatives for an analytic field (u,v,p[,nu]) via
    /// second-order duals — an NN-free way to exercise the residuals.
    fn derivs_of(
        fields: &[&dyn Fn(Dual2, Dual2) -> Dual2],
        pts: &[(f64, f64)],
    ) -> BatchDerivatives {
        let b = pts.len();
        let o = fields.len();
        let mut out = BatchDerivatives {
            values: Matrix::zeros(b, o),
            jac: vec![Matrix::zeros(b, o), Matrix::zeros(b, o)],
            hess: vec![Matrix::zeros(b, o), Matrix::zeros(b, o)],
        };
        for (i, &(x, y)) in pts.iter().enumerate() {
            for (k, f) in fields.iter().enumerate() {
                let fx = f(Dual2::variable(x), Dual2::constant(y));
                let fy = f(Dual2::constant(x), Dual2::variable(y));
                out.values.set(i, k, fx.v);
                out.jac[0].set(i, k, fx.d);
                out.jac[1].set(i, k, fy.d);
                out.hess[0].set(i, k, fx.dd);
                out.hess[1].set(i, k, fy.dd);
            }
        }
        out
    }

    #[test]
    fn poisson_residual_zero_on_harmonic() {
        fn zero(_: &[f64]) -> f64 {
            0.0
        }
        let pde = Pde::Poisson(PoissonConfig { forcing: zero });
        let u = |x: Dual2, y: Dual2| x * x - y * y;
        let pts = [(0.3, 0.7), (-1.0, 0.2)];
        let d = derivs_of(&[&u], &pts);
        let x = Matrix::from_rows(&[&[0.3, 0.7], &[-1.0, 0.2]]);
        let r = pde.residuals(&x, &d);
        for i in 0..2 {
            assert!(r.get(i, 0).abs() < 1e-10);
        }
    }

    #[test]
    fn poisson_manufactured_forcing() {
        // u = sin(πx)sin(πy) solves −∇²u = 2π² u.
        fn f(p: &[f64]) -> f64 {
            let pi = std::f64::consts::PI;
            2.0 * pi * pi * (pi * p[0]).sin() * (pi * p[1]).sin()
        }
        let pde = Pde::Poisson(PoissonConfig { forcing: f });
        let pi = std::f64::consts::PI;
        let u = move |x: Dual2, y: Dual2| (x * pi).sin() * (y * pi).sin();
        let pts = [(0.25, 0.6), (0.8, 0.1)];
        let d = derivs_of(&[&u], &pts);
        let x = Matrix::from_rows(&[&[0.25, 0.6], &[0.8, 0.1]]);
        let r = pde.residuals(&x, &d);
        for i in 0..2 {
            assert!(r.get(i, 0).abs() < 1e-10, "residual {}", r.get(i, 0));
        }
    }

    #[test]
    fn ns_residuals_vanish_on_exact_annulus_flow() {
        let ring = AnnulusChannel::default();
        let c = ring.inlet_velocity * 0.9; // r_i = 0.9
        let u = move |x: Dual2, y: Dual2| {
            let r2 = x * x + y * y;
            // C x / r² — implement division via multiplication by r^{-2}
            // using the identity a/b = a·b^{-1}; Dual2 has no div, so use
            // powi on a reciprocal trick: r2.powi(-1).
            x * r2.powi(-1) * c
        };
        let v = move |x: Dual2, y: Dual2| y * (x * x + y * y).powi(-1) * c;
        let p = move |x: Dual2, y: Dual2| (x * x + y * y).powi(-1) * (-c * c / 2.0);
        let pde = Pde::NavierStokes(NsConfig {
            nu: 0.1,
            zero_eq: None,
        });
        let pts = [(1.2, 0.3), (0.9, -1.0), (-1.5, 0.5)];
        let d = derivs_of(&[&u, &v, &p], &pts);
        let x = Matrix::from_rows(&[&[1.2, 0.3], &[0.9, -1.0], &[-1.5, 0.5]]);
        let r = pde.residuals(&x, &d);
        for i in 0..3 {
            for k in 0..3 {
                assert!(
                    r.get(i, k).abs() < 1e-9,
                    "residual[{i}][{k}] = {}",
                    r.get(i, k)
                );
            }
        }
    }

    #[test]
    fn zero_eq_residual_consistent() {
        // Constant shear u = y, v = 0: G = 1, so ν must equal
        // ν_mol + l². Use a constant ν output field with that value.
        let zcfg = ZeroEqConfig {
            karman: 0.419,
            mixing_cap: 0.045,
            wall_distance: Cavity::wall_distance,
            sqrt_eps: 0.0,
        };
        let nu_mol = 0.01;
        let pde = Pde::NavierStokes(NsConfig {
            nu: nu_mol,
            zero_eq: Some(zcfg),
        });
        let pt = (0.5, 0.9); // wall distance 0.1 ⇒ l = min(0.0419, 0.045)
        let l = (0.1f64 * 0.419).min(0.045);
        let nu_tot = nu_mol + l * l; // since √G = 1
        let u = |_x: Dual2, y: Dual2| y;
        let v = |_x: Dual2, _y: Dual2| Dual2::constant(0.0);
        let p = |_x: Dual2, _y: Dual2| Dual2::constant(0.0);
        let nu = move |_x: Dual2, _y: Dual2| Dual2::constant(nu_tot);
        let d = derivs_of(&[&u, &v, &p, &nu], &[pt]);
        let x = Matrix::from_rows(&[&[pt.0, pt.1]]);
        let r = pde.residuals(&x, &d);
        assert!(
            r.get(0, 3).abs() < 1e-12,
            "zero-eq residual {}",
            r.get(0, 3)
        );
    }

    /// Finite-difference check of every adjoint entry: perturb each network
    /// quantity and compare dL/dq with the accumulated adjoint, where
    /// L = Σ_k w_k r_k² at a single sample.
    #[test]
    fn adjoints_match_finite_difference() {
        let zcfg = ZeroEqConfig {
            karman: 0.419,
            mixing_cap: 0.045,
            wall_distance: Cavity::wall_distance,
            sqrt_eps: 1e-6,
        };
        for pde in [
            Pde::NavierStokes(NsConfig {
                nu: 0.02,
                zero_eq: None,
            }),
            Pde::NavierStokes(NsConfig {
                nu: 0.02,
                zero_eq: Some(zcfg),
            }),
            Pde::Poisson(PoissonConfig {
                forcing: |p: &[f64]| p[0] + p[1],
            }),
            Pde::Burgers(BurgersConfig { nu: 0.01 }),
            Pde::Heat(HeatConfig {
                conductivity: |p: &[f64]| 1.0 + 0.5 * p[0],
                conductivity_grad: |_p: &[f64]| [0.5, 0.0],
                source: |p: &[f64]| p[0] * p[1],
            }),
            Pde::Helmholtz(HelmholtzConfig {
                wavenumber: 2.0,
                forcing: |p: &[f64]| (p[0] + p[1]).sin(),
            }),
        ] {
            let o = pde.output_dim();
            let nr = pde.num_residuals();
            let x = Matrix::from_rows(&[&[0.4, 0.7]]);
            let weights: Vec<f64> = (0..nr).map(|k| 1.0 + 0.5 * k as f64).collect();
            // Arbitrary quantity values.
            let mut seed = 0.3;
            let mut next = || {
                seed = (seed * 7.77 + 0.1) % 1.3;
                seed - 0.5
            };
            let mut d = BatchDerivatives {
                values: Matrix::zeros(1, o),
                jac: vec![Matrix::zeros(1, o), Matrix::zeros(1, o)],
                hess: vec![Matrix::zeros(1, o), Matrix::zeros(1, o)],
            };
            for k in 0..o {
                d.values.set(0, k, next());
                d.jac[0].set(0, k, next());
                d.jac[1].set(0, k, next());
                d.hess[0].set(0, k, next());
                d.hess[1].set(0, k, next());
            }
            let loss = |d: &BatchDerivatives| -> f64 {
                let r = pde.residuals(&x, d);
                (0..nr).map(|k| weights[k] * r.get(0, k).powi(2)).sum()
            };
            // Adjoints via accumulate.
            let r = pde.residuals(&x, &d);
            let mut factors = Matrix::zeros(1, nr);
            for (k, &wk) in weights.iter().enumerate().take(nr) {
                factors.set(0, k, 2.0 * wk * r.get(0, k));
            }
            let mut adj = BatchDerivatives::zeros_like(&d);
            pde.accumulate_adjoints(&x, &d, &factors, &mut adj);
            // Compare against FD for every quantity.
            let h = 1e-6;
            let check = |get: &dyn Fn(&BatchDerivatives) -> f64,
                         set: &dyn Fn(&mut BatchDerivatives, f64),
                         adj_v: f64,
                         tag: &str| {
                let orig = get(&d);
                let mut dp = d.clone();
                set(&mut dp, orig + h);
                let lp = loss(&dp);
                set(&mut dp, orig - h);
                let lm = loss(&dp);
                let fd = (lp - lm) / (2.0 * h);
                assert!(
                    (fd - adj_v).abs() < 1e-5 * (1.0 + fd.abs()),
                    "{tag}: adj {adj_v} vs fd {fd}"
                );
            };
            for k in 0..o {
                check(
                    &|d| d.values.get(0, k),
                    &|d, v| d.values.set(0, k, v),
                    adj.values.get(0, k),
                    &format!("val[{k}]"),
                );
                for dim in 0..2 {
                    check(
                        &|d| d.jac[dim].get(0, k),
                        &|d, v| d.jac[dim].set(0, k, v),
                        adj.jac[dim].get(0, k),
                        &format!("jac{dim}[{k}]"),
                    );
                    check(
                        &|d| d.hess[dim].get(0, k),
                        &|d, v| d.hess[dim].set(0, k, v),
                        adj.hess[dim].get(0, k),
                        &format!("hess{dim}[{k}]"),
                    );
                }
            }
        }
    }

    #[test]
    fn burgers_residual_on_travelling_wave() {
        // u(x, t) = tanh((x − t)/(2ν))·(−1) form; simpler: the stationary
        // viscous shock u = −tanh(x/(2ν)) solves Burgers with u_t = 0:
        // u u_x = ν u_xx.
        let nu = 0.1;
        let pde = Pde::Burgers(BurgersConfig { nu });
        let u = move |x: Dual2, _t: Dual2| -(x * (1.0 / (2.0 * nu))).tanh();
        let pts = [(0.2, 0.5), (-0.3, 1.0), (0.0, 0.1)];
        // Need t-derivatives too: derivs_of differentiates dim 0 = x and
        // dim 1 = t separately, which matches Burgers' diff_dims.
        let d = derivs_of(&[&u], &pts);
        let x = Matrix::from_rows(&[&[0.2, 0.5], &[-0.3, 1.0], &[0.0, 0.1]]);
        let r = pde.residuals(&x, &d);
        for i in 0..3 {
            assert!(r.get(i, 0).abs() < 1e-9, "residual {}", r.get(i, 0));
        }
    }

    #[test]
    fn heat_residual_with_uniform_conductivity_reduces_to_poisson() {
        let pde = Pde::Heat(HeatConfig {
            conductivity: |_| 2.0,
            conductivity_grad: |_| [0.0, 0.0],
            source: |_| 0.0,
        });
        // Harmonic T ⇒ residual 0.
        let t_field = |x: Dual2, y: Dual2| x * y;
        let d = derivs_of(&[&t_field], &[(0.4, 0.9)]);
        let x = Matrix::from_rows(&[&[0.4, 0.9]]);
        let r = pde.residuals(&x, &d);
        assert!(r.get(0, 0).abs() < 1e-12);
    }

    #[test]
    fn helmholtz_residual_on_plane_wave() {
        // u = sin(kx) solves ∇²u + k²u = 0.
        let k = 3.0;
        let pde = Pde::Helmholtz(HelmholtzConfig {
            wavenumber: k,
            forcing: |_| 0.0,
        });
        let u = move |x: Dual2, _y: Dual2| (x * k).sin();
        let d = derivs_of(&[&u], &[(0.3, 0.8), (1.2, -0.5)]);
        let x = Matrix::from_rows(&[&[0.3, 0.8], &[1.2, -0.5]]);
        let r = pde.residuals(&x, &d);
        for i in 0..2 {
            assert!(r.get(i, 0).abs() < 1e-9, "residual {}", r.get(i, 0));
        }
    }

    #[test]
    fn output_dims_and_names() {
        let lam = Pde::NavierStokes(NsConfig {
            nu: 0.1,
            zero_eq: None,
        });
        assert_eq!(lam.output_dim(), 3);
        assert_eq!(lam.num_residuals(), 3);
        assert_eq!(lam.residual_names().len(), 3);
        let pois = Pde::Poisson(PoissonConfig { forcing: |_| 0.0 });
        assert_eq!(pois.output_dim(), 1);
        assert_eq!(pois.diff_dims(), vec![0, 1]);
    }
}
