//! A trainable PINN problem: PDE + collocation data + loss weights.

use crate::pde::Pde;
use sgm_graph::points::PointCloud;
use sgm_linalg::dense::Matrix;
use sgm_nn::batched::BatchedMlp;
use sgm_nn::mlp::{BatchDerivatives, Gradients, Mlp};

/// Smallest probe batch that [`Problem::sample_losses_at`] routes
/// through the lane-replicated batched fast path. Below this the
/// pack/workspace setup outweighs the fused-kernel win.
pub const PROBE_FUSE_MIN_ROWS: usize = 64;

/// The collocation data a problem trains on.
#[derive(Debug, Clone)]
pub struct TrainSet {
    /// Interior collocation points, `N × input_dim` (the paper's sample
    /// matrix `X ∈ ℝ^{N×M}`). Importance sampling operates on this set.
    pub interior: PointCloud,
    /// Boundary points (`N_b × input_dim`).
    pub boundary: PointCloud,
    /// Dirichlet targets per boundary point and output; `NaN` entries are
    /// unconstrained.
    pub boundary_targets: Matrix,
}

impl TrainSet {
    /// Number of interior samples.
    pub fn num_interior(&self) -> usize {
        self.interior.len()
    }

    /// Number of boundary samples.
    pub fn num_boundary(&self) -> usize {
        self.boundary.len()
    }
}

/// A PDE plus loss weighting.
#[derive(Debug, Clone)]
pub struct Problem {
    /// The governing equations.
    pub pde: Pde,
    /// Per-residual weights `w_F` (length = `pde.num_residuals()`).
    pub residual_weights: Vec<f64>,
    /// Weight on the boundary-condition loss `w_C`.
    pub bc_weight: f64,
}

impl Problem {
    /// A problem with unit weights.
    pub fn new(pde: Pde) -> Self {
        let n = pde.num_residuals();
        Problem {
            pde,
            residual_weights: vec![1.0; n],
            bc_weight: 1.0,
        }
    }

    /// Gathers rows `idx` of a cloud into a batch matrix.
    pub fn gather(cloud: &PointCloud, idx: &[usize]) -> Matrix {
        let mut m = Matrix::zeros(idx.len(), cloud.dim());
        Self::gather_into(cloud, idx, &mut m);
        m
    }

    /// Like [`Problem::gather`], writing into a preallocated
    /// `idx.len() × dim` buffer (the zero-allocation training path).
    ///
    /// # Panics
    /// Panics if the buffer shape does not match.
    pub fn gather_into(cloud: &PointCloud, idx: &[usize], m: &mut Matrix) {
        assert_eq!(
            (m.rows(), m.cols()),
            (idx.len(), cloud.dim()),
            "gather buffer shape"
        );
        for (r, &i) in idx.iter().enumerate() {
            m.row_mut(r).copy_from_slice(cloud.point(i));
        }
    }

    /// Boundary (Dirichlet) loss alone at batch rows `idx` — no
    /// gradients; the record-path evaluation.
    pub fn boundary_loss(&self, net: &Mlp, data: &TrainSet, idx: &[usize]) -> f64 {
        if idx.is_empty() {
            return 0.0;
        }
        let x = Self::gather(&data.boundary, idx);
        let vals = net.forward(&x);
        let o = vals.cols();
        let inv_b = 1.0 / idx.len() as f64;
        let mut total = 0.0;
        for (row, &i) in idx.iter().enumerate() {
            for k in 0..o {
                let t = data.boundary_targets.get(i, k);
                if t.is_nan() {
                    continue;
                }
                let r = vals.get(row, k) - t;
                total += self.bc_weight * r * r * inv_b;
            }
        }
        total
    }

    /// Interior PDE loss and parameter gradients for a batch `x`.
    /// Returns `(total weighted loss, gradients, per-sample losses)` where
    /// the per-sample loss is `Σ_k w_k r_k²` (the quantity importance
    /// samplers rank by).
    pub fn interior_loss_and_grads(&self, net: &Mlp, x: &Matrix) -> (f64, Gradients, Vec<f64>) {
        let b = x.rows();
        let (d, cache) = net.forward_with_derivs(x, &self.pde.diff_dims());
        let r = self.pde.residuals(x, &d);
        let nr = self.pde.num_residuals();
        let mut per_sample = vec![0.0; b];
        let mut factors = Matrix::zeros(b, nr);
        let inv_b = 1.0 / b as f64;
        let mut total = 0.0;
        for (i, ps) in per_sample.iter_mut().enumerate() {
            for k in 0..nr {
                let w = self.residual_weights[k];
                let rv = r.get(i, k);
                *ps += w * rv * rv;
                total += w * rv * rv * inv_b;
                factors.set(i, k, 2.0 * w * rv * inv_b);
            }
        }
        let mut adj = BatchDerivatives::zeros_like(&d);
        self.pde.accumulate_adjoints(x, &d, &factors, &mut adj);
        let grads = net.backward(&cache, &adj);
        (total, grads, per_sample)
    }

    /// Boundary (Dirichlet) loss and gradients for batch rows `idx` of the
    /// training set's boundary cloud.
    pub fn boundary_loss_and_grads(
        &self,
        net: &Mlp,
        data: &TrainSet,
        idx: &[usize],
    ) -> (f64, Gradients) {
        let x = Self::gather(&data.boundary, idx);
        let b = x.rows();
        let (d, cache) = net.forward_with_derivs(&x, &[]);
        let o = d.values.cols();
        let mut adj = BatchDerivatives::zeros_like(&d);
        let inv_b = 1.0 / b.max(1) as f64;
        let mut total = 0.0;
        for (row, &i) in idx.iter().enumerate() {
            for k in 0..o {
                let t = data.boundary_targets.get(i, k);
                if t.is_nan() {
                    continue;
                }
                let r = d.values.get(row, k) - t;
                total += self.bc_weight * r * r * inv_b;
                adj.values.set(row, k, 2.0 * self.bc_weight * r * inv_b);
            }
        }
        let grads = net.backward(&cache, &adj);
        (total, grads)
    }

    /// Per-sample interior losses for arbitrary indices — the **loss
    /// probe** importance samplers call on small subsets (no gradients,
    /// values + derivatives forward pass only).
    pub fn interior_sample_losses(&self, net: &Mlp, data: &TrainSet, idx: &[usize]) -> Vec<f64> {
        if idx.is_empty() {
            return Vec::new();
        }
        let x = Self::gather(&data.interior, idx);
        self.sample_losses_at(net, &x)
    }

    /// Per-sample interior losses at arbitrary coordinates (one row per
    /// point) — how point-set-adaptive samplers score proposal locations
    /// that are not in the collocation set yet.
    ///
    /// Probe batches of [`PROBE_FUSE_MIN_ROWS`] rows or more run through
    /// the lane-replicated [`BatchedMlp`] fast path: the network is
    /// packed 8× and the rows split across lanes, so one register-tiled
    /// pass evaluates 8 row blocks at once. Results are bit-identical to
    /// the sequential path on every SIMD tier — per-row arithmetic does
    /// not depend on how rows are grouped.
    pub fn sample_losses_at(&self, net: &Mlp, x: &Matrix) -> Vec<f64> {
        if x.rows() == 0 {
            return Vec::new();
        }
        if x.rows() >= PROBE_FUSE_MIN_ROWS {
            return self.sample_losses_fused(net, x);
        }
        let (d, _cache) = net.forward_with_derivs(x, &self.pde.diff_dims());
        let r = self.pde.residuals(x, &d);
        self.weighted_row_losses(&r, x.rows())
    }

    /// `Σ_k w_k r²_{ik}` per row of a residual matrix.
    fn weighted_row_losses(&self, r: &Matrix, rows: usize) -> Vec<f64> {
        let nr = self.pde.num_residuals();
        (0..rows)
            .map(|i| {
                (0..nr)
                    .map(|k| self.residual_weights[k] * r.get(i, k).powi(2))
                    .sum()
            })
            .collect()
    }

    /// The fused probe path: lane-replicate `net` across all 8 batch
    /// lanes, give each lane a contiguous row block (the last block
    /// padded by repeating the final row), and evaluate residuals per
    /// lane from the deinterleaved derivatives.
    fn sample_losses_fused(&self, net: &Mlp, x: &Matrix) -> Vec<f64> {
        const LANES: usize = 8;
        let rows = x.rows();
        let dim = x.cols();
        let chunk = rows.div_ceil(LANES);
        let dd = self.pde.diff_dims();
        let mut lane_x: Vec<Matrix> = (0..LANES).map(|_| Matrix::zeros(chunk, dim)).collect();
        for (l, lx) in lane_x.iter_mut().enumerate() {
            for r in 0..chunk {
                let src = (l * chunk + r).min(rows - 1);
                lx.row_mut(r).copy_from_slice(x.row(src));
            }
        }
        let packed = BatchedMlp::pack(&[net; LANES]);
        let mut ws = packed.make_workspace(chunk, dd.len());
        let xrefs: Vec<&Matrix> = lane_x.iter().collect();
        packed.forward_with_derivs_batched(&xrefs, &dd, &mut ws);
        let nr = self.pde.num_residuals();
        let mut d = BatchDerivatives::zeros(chunk, self.pde.output_dim(), dd.len());
        let mut resid = Matrix::zeros(chunk, nr);
        let mut out = vec![0.0; rows];
        for (l, lx) in lane_x.iter().enumerate() {
            let base = l * chunk;
            if base >= rows {
                break;
            }
            ws.extract_derivs(l, &mut d);
            self.pde.residuals_into(lx, &d, &mut resid);
            for r in 0..chunk.min(rows - base) {
                out[base + r] = (0..nr)
                    .map(|k| self.residual_weights[k] * resid.get(r, k).powi(2))
                    .sum();
            }
        }
        out
    }

    /// Network outputs at arbitrary interior indices (what the ISR stage
    /// builds its output graph from).
    pub fn interior_outputs(&self, net: &Mlp, data: &TrainSet, idx: &[usize]) -> Matrix {
        let x = Self::gather(&data.interior, idx);
        net.forward(&x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Cavity, FillStrategy};
    use crate::pde::{NsConfig, PoissonConfig};
    use sgm_linalg::rng::Rng64;
    use sgm_nn::activation::Activation;
    use sgm_nn::mlp::MlpConfig;

    fn poisson_problem() -> Problem {
        Problem::new(Pde::Poisson(PoissonConfig {
            forcing: |p: &[f64]| {
                let pi = std::f64::consts::PI;
                2.0 * pi * pi * (pi * p[0]).sin() * (pi * p[1]).sin()
            },
        }))
    }

    fn small_net(out: usize, seed: u64) -> Mlp {
        let cfg = MlpConfig {
            input_dim: 2,
            output_dim: out,
            hidden_width: 10,
            hidden_layers: 2,
            activation: Activation::SiLu,
            fourier: None,
        };
        let mut rng = Rng64::new(seed);
        Mlp::new(&cfg, &mut rng)
    }

    fn cavity_data(seed: u64, out: usize) -> TrainSet {
        let cav = Cavity::default();
        let mut rng = Rng64::new(seed);
        let interior = cav.sample_interior(64, FillStrategy::Uniform, &mut rng);
        // Zero-Dirichlet targets on a few wall points (enough for probes).
        let boundary =
            sgm_graph::points::PointCloud::from_flat(2, vec![0.0, 0.5, 1.0, 0.5, 0.5, 0.0]);
        let boundary_targets = Matrix::zeros(3, out);
        TrainSet {
            interior,
            boundary,
            boundary_targets,
        }
    }

    #[test]
    fn interior_loss_grad_matches_finite_difference() {
        let prob = poisson_problem();
        let mut net = small_net(1, 1);
        let x = Matrix::from_rows(&[&[0.3, 0.4], &[0.8, 0.2]]);
        let (_l0, grads, _ps) = prob.interior_loss_and_grads(&net, &x);
        let flat = grads.flat();
        let params = net.params();
        let h = 1e-6;
        for &pi in &[0usize, 5, params.len() / 2, params.len() - 1] {
            let mut p = params.clone();
            p[pi] += h;
            net.set_params(&p);
            let (lp, _, _) = prob.interior_loss_and_grads(&net, &x);
            p[pi] -= 2.0 * h;
            net.set_params(&p);
            let (lm, _, _) = prob.interior_loss_and_grads(&net, &x);
            net.set_params(&params);
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (flat[pi] - fd).abs() < 1e-5 * (1.0 + fd.abs()),
                "param {pi}: {} vs {fd}",
                flat[pi]
            );
        }
    }

    #[test]
    fn boundary_loss_grad_matches_finite_difference() {
        let prob = poisson_problem();
        let mut net = small_net(1, 2);
        let data = TrainSet {
            interior: sgm_graph::points::PointCloud::from_flat(2, vec![0.5, 0.5]),
            boundary: sgm_graph::points::PointCloud::from_flat(2, vec![0.0, 0.3, 1.0, 0.6]),
            boundary_targets: Matrix::from_rows(&[&[0.0], &[0.5]]),
        };
        let idx = [0usize, 1];
        let (_l, grads) = prob.boundary_loss_and_grads(&net, &data, &idx);
        let flat = grads.flat();
        let params = net.params();
        let h = 1e-6;
        for &pi in &[0usize, 7, params.len() - 1] {
            let mut p = params.clone();
            p[pi] += h;
            net.set_params(&p);
            let (lp, _) = prob.boundary_loss_and_grads(&net, &data, &idx);
            p[pi] -= 2.0 * h;
            net.set_params(&p);
            let (lm, _) = prob.boundary_loss_and_grads(&net, &data, &idx);
            net.set_params(&params);
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (flat[pi] - fd).abs() < 1e-5 * (1.0 + fd.abs()),
                "param {pi}: {} vs {fd}",
                flat[pi]
            );
        }
    }

    #[test]
    fn nan_targets_are_unconstrained() {
        let prob = Problem::new(Pde::NavierStokes(NsConfig {
            nu: 0.1,
            zero_eq: None,
        }));
        let net = small_net(3, 2);
        let mut tgt = Matrix::zeros(1, 3);
        tgt.set(0, 0, f64::NAN);
        tgt.set(0, 1, f64::NAN);
        tgt.set(0, 2, f64::NAN);
        let data = TrainSet {
            interior: sgm_graph::points::PointCloud::from_flat(2, vec![0.5, 0.5]),
            boundary: sgm_graph::points::PointCloud::from_flat(2, vec![0.2, 0.9]),
            boundary_targets: tgt,
        };
        let (l, g) = prob.boundary_loss_and_grads(&net, &data, &[0]);
        assert_eq!(l, 0.0);
        assert_eq!(g.l2_norm(), 0.0);
    }

    #[test]
    fn per_sample_losses_sum_to_total() {
        let prob = poisson_problem();
        let net = small_net(1, 3);
        let x = Matrix::from_rows(&[&[0.1, 0.9], &[0.4, 0.4], &[0.7, 0.3]]);
        let (total, _, per) = prob.interior_loss_and_grads(&net, &x);
        let mean: f64 = per.iter().sum::<f64>() / per.len() as f64;
        assert!((total - mean).abs() < 1e-12);
    }

    #[test]
    fn probe_matches_batch_losses() {
        let prob = poisson_problem();
        let net = small_net(1, 4);
        let data = cavity_data(5, 1);
        let idx = [3usize, 10, 20];
        let probe = prob.interior_sample_losses(&net, &data, &idx);
        let x = Problem::gather(&data.interior, &idx);
        let (_t, _g, per) = prob.interior_loss_and_grads(&net, &x);
        for i in 0..3 {
            assert!((probe[i] - per[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn outputs_probe_shape() {
        let prob = poisson_problem();
        let net = small_net(1, 6);
        let data = cavity_data(6, 1);
        let out = prob.interior_outputs(&net, &data, &[0, 1, 2, 3]);
        assert_eq!(out.rows(), 4);
        assert_eq!(out.cols(), 1);
    }

    /// The fused (lane-replicated `BatchedMlp`) probe path must return
    /// the same bits as the sequential forward on every available SIMD
    /// tier, including batch sizes that do not divide evenly across the
    /// 8 lanes.
    #[test]
    fn fused_probe_matches_sequential_bitwise() {
        use sgm_linalg::simd;
        let problems = [
            (poisson_problem(), small_net(1, 11)),
            (
                Problem::new(Pde::NavierStokes(NsConfig {
                    nu: 0.05,
                    zero_eq: None,
                })),
                small_net(3, 12),
            ),
        ];
        for (prob, net) in &problems {
            for rows in [PROBE_FUSE_MIN_ROWS, 100, 129] {
                let mut rng = Rng64::new(rows as u64);
                let mut x = Matrix::zeros(rows, 2);
                for i in 0..rows {
                    x.set(i, 0, rng.uniform());
                    x.set(i, 1, rng.uniform());
                }
                for &t in simd::available_tiers() {
                    let fused = simd::with_tier(t, || prob.sample_losses_fused(net, &x));
                    let seq = simd::with_tier(t, || {
                        let (d, _cache) = net.forward_with_derivs(&x, &prob.pde.diff_dims());
                        let r = prob.pde.residuals(&x, &d);
                        prob.weighted_row_losses(&r, rows)
                    });
                    assert_eq!(fused.len(), rows);
                    for i in 0..rows {
                        assert_eq!(
                            fused[i].to_bits(),
                            seq[i].to_bits(),
                            "tier {} rows {rows} row {i}: {} vs {}",
                            t.name(),
                            fused[i],
                            seq[i]
                        );
                    }
                }
            }
        }
    }
}
