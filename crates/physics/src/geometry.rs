//! Problem geometries and collocation-point generation.
//!
//! Two domains from the paper:
//!
//! * [`Cavity`] — the unit lid-driven cavity (§4.1), lid moving at
//!   `u = 1 m/s` along the top wall.
//! * [`AnnulusChannel`] — the annular ring (§4.2): flow from an inner
//!   inlet circle of parameterised radius `r_i` to the outer circle.
//!   Samples carry the design parameter as a third input column, so one
//!   network learns the whole family of geometries.
//!
//! Interior clouds can be drawn uniformly or from a Halton
//! low-discrepancy sequence (PINN practice favours the latter for
//! coverage at small N).

use sgm_graph::points::PointCloud;
use sgm_linalg::dense::Matrix;
use sgm_linalg::rng::Rng64;

/// Deterministic Halton sequence value (base `b`, index `i ≥ 1`).
pub fn halton(mut i: usize, b: usize) -> f64 {
    let mut f = 1.0;
    let mut r = 0.0;
    while i > 0 {
        f /= b as f64;
        r += f * (i % b) as f64;
        i /= b;
    }
    r
}

/// How interior points are placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillStrategy {
    /// i.i.d. uniform.
    Uniform,
    /// Halton low-discrepancy sequence (deterministic given the offset).
    Halton,
}

/// The unit lid-driven cavity `[0,1]²` with a moving top lid.
#[derive(Debug, Clone, PartialEq)]
pub struct Cavity {
    /// Lid velocity (paper: 1 m/s).
    pub lid_velocity: f64,
}

impl Default for Cavity {
    fn default() -> Self {
        Cavity { lid_velocity: 1.0 }
    }
}

impl Cavity {
    /// Interior collocation points (2 columns: x, y).
    pub fn sample_interior(&self, n: usize, fill: FillStrategy, rng: &mut Rng64) -> PointCloud {
        let mut data = Vec::with_capacity(n * 2);
        for i in 0..n {
            let (x, y) = match fill {
                FillStrategy::Uniform => (rng.uniform(), rng.uniform()),
                FillStrategy::Halton => (halton(i + 1, 2), halton(i + 1, 3)),
            };
            data.push(x);
            data.push(y);
        }
        PointCloud::from_flat(2, data)
    }

    /// Boundary points with Dirichlet targets for `(u, v)`.
    ///
    /// Returns `(points, targets)` where `targets` has one row per point
    /// and `output_dim` columns; entries beyond `u, v` are NaN
    /// (unconstrained). The lid profile is regularised near the corners
    /// (`u = lid · x(1−x)·4` capped at lid) — standard practice to avoid
    /// the corner singularity dominating training.
    pub fn sample_boundary(
        &self,
        n_per_side: usize,
        output_dim: usize,
        rng: &mut Rng64,
    ) -> (PointCloud, Matrix) {
        assert!(output_dim >= 2, "need at least u, v outputs");
        let n = n_per_side * 4;
        let mut pts = Vec::with_capacity(n * 2);
        let mut tgt = Matrix::zeros(n, output_dim);
        for r in 0..n {
            for c in 0..output_dim {
                tgt.set(r, c, f64::NAN);
            }
        }
        let mut row = 0;
        for side in 0..4 {
            for _ in 0..n_per_side {
                let t = rng.uniform();
                let (x, y, u) = match side {
                    0 => (t, 0.0, 0.0),                 // bottom
                    1 => (t, 1.0, self.lid_profile(t)), // lid
                    2 => (0.0, t, 0.0),                 // left
                    _ => (1.0, t, 0.0),                 // right
                };
                pts.push(x);
                pts.push(y);
                tgt.set(row, 0, u);
                tgt.set(row, 1, 0.0); // v = 0 everywhere on the boundary
                row += 1;
            }
        }
        (PointCloud::from_flat(2, pts), tgt)
    }

    /// Corner-regularised lid velocity profile.
    pub fn lid_profile(&self, x: f64) -> f64 {
        let ramp = (4.0 * x * (1.0 - x)).min(1.0);
        self.lid_velocity * ramp.powf(0.25)
    }

    /// Distance to the nearest wall (for the zero-eq mixing length).
    pub fn wall_distance(p: &[f64]) -> f64 {
        let (x, y) = (p[0], p[1]);
        x.min(1.0 - x).min(y).min(1.0 - y).max(0.0)
    }
}

/// Annular channel: annulus `r_i ≤ r ≤ r_o` around the origin, flow
/// injected radially at the inner circle. The inner radius is a *design
/// parameter*: every sample is `(x, y, r_i)` with `r_i` drawn from
/// `param_range`, so one network amortises the whole family (paper §4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct AnnulusChannel {
    /// Outer radius (fixed).
    pub r_outer: f64,
    /// Range of the parameterised inner radius (paper: `[0.75, 1.1]`).
    pub param_range: (f64, f64),
    /// Radial inlet speed at the inner circle (paper: 1.5 m/s).
    pub inlet_velocity: f64,
}

impl Default for AnnulusChannel {
    fn default() -> Self {
        AnnulusChannel {
            r_outer: 2.0,
            param_range: (0.75, 1.1),
            inlet_velocity: 1.5,
        }
    }
}

impl AnnulusChannel {
    /// Exact steady incompressible Navier–Stokes solution of the radial
    /// source flow at parameter `r_i`: `u = C x/r²`, `v = C y/r²`,
    /// `p = p∞ − C²/(2 r²)` with `C = U_in · r_i` (potential flow ⇒ the
    /// viscous term vanishes identically, so this is exact for every ν).
    /// This plays the role of the paper's OpenFOAM validation data.
    pub fn exact_solution(&self, x: f64, y: f64, r_i: f64) -> (f64, f64, f64) {
        let r2 = (x * x + y * y).max(1e-12);
        let c = self.inlet_velocity * r_i;
        let u = c * x / r2;
        let v = c * y / r2;
        let p = -c * c / (2.0 * r2);
        (u, v, p)
    }

    /// Interior collocation points, 3 columns `(x, y, r_i)`. Spatial
    /// positions are drawn inside the annulus *for that sample's* `r_i`.
    pub fn sample_interior(&self, n: usize, fill: FillStrategy, rng: &mut Rng64) -> PointCloud {
        let mut data = Vec::with_capacity(n * 3);
        let (plo, phi) = self.param_range;
        let mut i = 0usize;
        while data.len() < n * 3 {
            i += 1;
            let (a, b, c) = match fill {
                FillStrategy::Uniform => (rng.uniform(), rng.uniform(), rng.uniform()),
                FillStrategy::Halton => (halton(i, 2), halton(i, 3), halton(i, 5)),
            };
            let r_i = plo + (phi - plo) * c;
            // Area-uniform radius in [r_i, r_o].
            let r = (r_i * r_i + (self.r_outer * self.r_outer - r_i * r_i) * a).sqrt();
            let th = 2.0 * std::f64::consts::PI * b;
            data.push(r * th.cos());
            data.push(r * th.sin());
            data.push(r_i);
        }
        PointCloud::from_flat(3, data)
    }

    /// Boundary points (inner + outer circles) with Dirichlet targets for
    /// `(u, v, p)` taken from the exact solution. Rows alternate between
    /// circles; each row carries its own sampled `r_i`.
    pub fn sample_boundary(
        &self,
        n_per_circle: usize,
        output_dim: usize,
        rng: &mut Rng64,
    ) -> (PointCloud, Matrix) {
        assert!(output_dim >= 3, "need u, v, p outputs");
        let n = n_per_circle * 2;
        let mut pts = Vec::with_capacity(n * 3);
        let mut tgt = Matrix::zeros(n, output_dim);
        for r in 0..n {
            for c in 0..output_dim {
                tgt.set(r, c, f64::NAN);
            }
        }
        let (plo, phi) = self.param_range;
        for row in 0..n {
            let r_i = rng.uniform_in(plo, phi);
            let inner = row % 2 == 0;
            let radius = if inner { r_i } else { self.r_outer };
            let th = rng.uniform_in(0.0, 2.0 * std::f64::consts::PI);
            let (x, y) = (radius * th.cos(), radius * th.sin());
            pts.push(x);
            pts.push(y);
            pts.push(r_i);
            let (u, v, p) = self.exact_solution(x, y, r_i);
            tgt.set(row, 0, u);
            tgt.set(row, 1, v);
            tgt.set(row, 2, p);
        }
        (PointCloud::from_flat(3, pts), tgt)
    }

    /// A validation grid at a fixed `r_i`: polar grid over the annulus.
    /// Returns `(points (x, y, r_i), exact (u, v, p))`.
    pub fn validation_grid(&self, r_i: f64, nr: usize, nth: usize) -> (Matrix, Matrix) {
        let n = nr * nth;
        let mut pts = Matrix::zeros(n, 3);
        let mut exact = Matrix::zeros(n, 3);
        let mut row = 0;
        for ir in 0..nr {
            let r = r_i + (self.r_outer - r_i) * (ir as f64 + 0.5) / nr as f64;
            for it in 0..nth {
                let th = 2.0 * std::f64::consts::PI * it as f64 / nth as f64;
                let (x, y) = (r * th.cos(), r * th.sin());
                pts.set(row, 0, x);
                pts.set(row, 1, y);
                pts.set(row, 2, r_i);
                let (u, v, p) = self.exact_solution(x, y, r_i);
                exact.set(row, 0, u);
                exact.set(row, 1, v);
                exact.set(row, 2, p);
                row += 1;
            }
        }
        (pts, exact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halton_is_low_discrepancy() {
        // First few base-2 Halton values.
        assert!((halton(1, 2) - 0.5).abs() < 1e-12);
        assert!((halton(2, 2) - 0.25).abs() < 1e-12);
        assert!((halton(3, 2) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn cavity_interior_inside_unit_square() {
        let c = Cavity::default();
        let mut rng = Rng64::new(1);
        for fill in [FillStrategy::Uniform, FillStrategy::Halton] {
            let pts = c.sample_interior(200, fill, &mut rng);
            for i in 0..pts.len() {
                let p = pts.point(i);
                assert!((0.0..=1.0).contains(&p[0]) && (0.0..=1.0).contains(&p[1]));
            }
        }
    }

    #[test]
    fn cavity_boundary_targets() {
        let c = Cavity::default();
        let mut rng = Rng64::new(2);
        let (pts, tgt) = c.sample_boundary(25, 4, &mut rng);
        assert_eq!(pts.len(), 100);
        for i in 0..100 {
            let p = pts.point(i);
            let on_edge = p[0] == 0.0 || p[0] == 1.0 || p[1] == 0.0 || p[1] == 1.0;
            assert!(on_edge, "point {p:?} not on boundary");
            // v target always 0; u target 0 except on the lid.
            assert_eq!(tgt.get(i, 1), 0.0);
            if p[1] != 1.0 {
                assert_eq!(tgt.get(i, 0), 0.0);
            }
            // p and nu unconstrained
            assert!(tgt.get(i, 2).is_nan());
            assert!(tgt.get(i, 3).is_nan());
        }
    }

    #[test]
    fn lid_profile_vanishes_at_corners() {
        let c = Cavity::default();
        assert_eq!(c.lid_profile(0.0), 0.0);
        assert_eq!(c.lid_profile(1.0), 0.0);
        assert!((c.lid_profile(0.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wall_distance_center_and_edge() {
        assert!((Cavity::wall_distance(&[0.5, 0.5]) - 0.5).abs() < 1e-12);
        assert_eq!(Cavity::wall_distance(&[0.0, 0.3]), 0.0);
        assert!((Cavity::wall_distance(&[0.1, 0.9]) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn annulus_interior_respects_radii() {
        let a = AnnulusChannel::default();
        let mut rng = Rng64::new(3);
        let pts = a.sample_interior(300, FillStrategy::Uniform, &mut rng);
        assert_eq!(pts.dim(), 3);
        for i in 0..pts.len() {
            let p = pts.point(i);
            let r = (p[0] * p[0] + p[1] * p[1]).sqrt();
            let r_i = p[2];
            assert!((0.75..=1.1).contains(&r_i));
            assert!(r >= r_i - 1e-9 && r <= a.r_outer + 1e-9, "r={r}, r_i={r_i}");
        }
    }

    #[test]
    fn exact_solution_is_divergence_free_and_unforced() {
        // Finite-difference check of continuity and x-momentum (ν arbitrary).
        let a = AnnulusChannel::default();
        let r_i = 0.9;
        let h = 1e-5;
        let nu = 0.1;
        let at = |x: f64, y: f64| a.exact_solution(x, y, r_i);
        let (x0, y0) = (1.2, 0.4);
        let (u, _v, _) = at(x0, y0);
        let (up, _, pp) = at(x0 + h, y0);
        let (um, _, pm) = at(x0 - h, y0);
        let (u_n, vn, _) = at(x0, y0 + h);
        let (u_s, vs, _) = at(x0, y0 - h);
        let u_x = (up - um) / (2.0 * h);
        let v_y = (vn - vs) / (2.0 * h);
        assert!((u_x + v_y).abs() < 1e-6, "continuity {}", u_x + v_y);
        let u_y = (u_n - u_s) / (2.0 * h);
        let p_x = (pp - pm) / (2.0 * h);
        let (uc, vc, _) = at(x0, y0);
        let u_xx = (up - 2.0 * u + um) / (h * h);
        let u_yy = (u_n - 2.0 * u + u_s) / (h * h);
        let mom_x = uc * u_x + vc * u_y + p_x - nu * (u_xx + u_yy);
        assert!(mom_x.abs() < 1e-4, "momentum-x residual {mom_x}");
    }

    #[test]
    fn annulus_boundary_targets_match_exact() {
        let a = AnnulusChannel::default();
        let mut rng = Rng64::new(4);
        let (pts, tgt) = a.sample_boundary(50, 3, &mut rng);
        for i in 0..pts.len() {
            let p = pts.point(i);
            let (u, v, pr) = a.exact_solution(p[0], p[1], p[2]);
            assert!((tgt.get(i, 0) - u).abs() < 1e-12);
            assert!((tgt.get(i, 1) - v).abs() < 1e-12);
            assert!((tgt.get(i, 2) - pr).abs() < 1e-12);
        }
    }

    #[test]
    fn validation_grid_shapes() {
        let a = AnnulusChannel::default();
        let (pts, exact) = a.validation_grid(1.0, 8, 16);
        assert_eq!(pts.rows(), 128);
        assert_eq!(exact.cols(), 3);
        // All grid points inside the annulus for r_i = 1.
        for i in 0..pts.rows() {
            let r = (pts.get(i, 0).powi(2) + pts.get(i, 1).powi(2)).sqrt();
            assert!((1.0..=2.0).contains(&r));
        }
    }
}
