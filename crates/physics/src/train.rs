//! The training loop and the sampler interface.
//!
//! The trainer is deliberately sampler-agnostic: every iteration it asks a
//! [`Sampler`] for the interior mini-batch indices and offers it a
//! [`Probe`] through which the sampler may (on its own schedule, e.g.
//! every `τ_e` iterations) evaluate per-sample losses or network outputs
//! on subsets of the dataset. The uniform / MIS / SGM-PINN samplers in
//! `sgm-core` all implement this trait, so the experiment harness compares
//! them under identical training mechanics — exactly the paper's setup on
//! Modulus.

use crate::problem::{Problem, TrainSet};
use crate::validate::ValidationSet;
use sgm_linalg::dense::Matrix;
use sgm_linalg::rng::Rng64;
use sgm_nn::mlp::Mlp;
use sgm_nn::optimizer::{Adam, AdamConfig};
use std::time::Instant;

/// Read-only view the trainer lends to samplers so they can score samples.
#[derive(Debug)]
pub struct Probe<'a> {
    /// Current network.
    pub net: &'a Mlp,
    /// The problem (for loss evaluation).
    pub problem: &'a Problem,
    /// The full training set.
    pub data: &'a TrainSet,
}

impl Probe<'_> {
    /// Per-sample interior losses at the given indices (paper: the
    /// `r × N` loss calculations every `τ_e` iterations).
    pub fn sample_losses(&self, idx: &[usize]) -> Vec<f64> {
        self.problem.interior_sample_losses(self.net, self.data, idx)
    }

    /// Network outputs at the given interior indices (the ISR stage
    /// builds its output graph from these).
    pub fn outputs(&self, idx: &[usize]) -> Matrix {
        self.problem.interior_outputs(self.net, self.data, idx)
    }

    /// Input rows at the given interior indices.
    pub fn inputs(&self, idx: &[usize]) -> Matrix {
        Problem::gather(&self.data.interior, idx)
    }

    /// Size of the interior dataset.
    pub fn num_interior(&self) -> usize {
        self.data.num_interior()
    }
}

/// Chooses interior mini-batches; may maintain internal importance state.
pub trait Sampler {
    /// Short display name (used in experiment tables).
    fn name(&self) -> &str;

    /// Indices of the next interior mini-batch.
    fn next_batch(&mut self, batch_size: usize, rng: &mut Rng64) -> Vec<usize>;

    /// Called once per iteration *before* the batch is drawn; samplers
    /// refresh importance state here on their own schedule.
    fn refresh(&mut self, iter: usize, probe: &Probe<'_>, rng: &mut Rng64) {
        let _ = (iter, probe, rng);
    }
}

/// Trivial uniform sampler (the `U_β` baselines).
#[derive(Debug, Clone, Default)]
pub struct UniformSampler {
    n: usize,
}

impl UniformSampler {
    /// Uniform sampler over `n` interior points.
    pub fn new(n: usize) -> Self {
        UniformSampler { n }
    }
}

impl Sampler for UniformSampler {
    fn name(&self) -> &str {
        "uniform"
    }
    fn next_batch(&mut self, batch_size: usize, rng: &mut Rng64) -> Vec<usize> {
        (0..batch_size).map(|_| rng.below(self.n)).collect()
    }
}

/// Training-loop options.
#[derive(Debug, Clone)]
pub struct TrainOptions {
    /// SGD iterations.
    pub iterations: usize,
    /// Interior mini-batch size (the paper's β).
    pub batch_interior: usize,
    /// Boundary mini-batch size.
    pub batch_boundary: usize,
    /// Optimiser configuration.
    pub adam: AdamConfig,
    /// RNG seed for batching.
    pub seed: u64,
    /// Record loss/validation every this many iterations.
    pub record_every: usize,
    /// Optional wall-clock budget in seconds; training stops at the first
    /// iteration boundary past it (how the experiment harness gives every
    /// sampler the same time budget, as in the paper's wall-time plots).
    pub max_seconds: Option<f64>,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            iterations: 1000,
            batch_interior: 128,
            batch_boundary: 64,
            adam: AdamConfig::default(),
            seed: 7,
            record_every: 100,
            max_seconds: None,
        }
    }
}

/// One history record.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Iteration index.
    pub iteration: usize,
    /// Wall-clock seconds since training started.
    pub seconds: f64,
    /// Total training loss (interior + boundary) at this iteration's batch.
    pub train_loss: f64,
    /// Validation errors per validated output (averaged over validation
    /// sets), empty when no validation set was provided.
    pub val_errors: Vec<f64>,
}

/// The outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// Periodic records, oldest first.
    pub history: Vec<Record>,
    /// Wall-clock duration of the whole run in seconds.
    pub total_seconds: f64,
    /// Sampler name used.
    pub sampler: String,
}

impl TrainResult {
    /// Minimum validation error and the wall-clock time it was reached,
    /// for validated output column `col`.
    pub fn min_error(&self, col: usize) -> Option<(f64, f64)> {
        self.history
            .iter()
            .filter(|r| col < r.val_errors.len())
            .map(|r| (r.val_errors[col], r.seconds))
            .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
    }

    /// First wall-clock time at which the error for `col` dropped to
    /// `target` or below (the paper's `T(M_β_j)` entries).
    pub fn time_to_error(&self, col: usize, target: f64) -> Option<f64> {
        self.history
            .iter()
            .find(|r| col < r.val_errors.len() && r.val_errors[col] <= target)
            .map(|r| r.seconds)
    }
}

/// Runs training with the given sampler.
#[derive(Debug)]
pub struct Trainer<'a> {
    /// The network being trained.
    pub net: &'a mut Mlp,
    /// Problem definition.
    pub problem: &'a Problem,
    /// Collocation data.
    pub data: &'a TrainSet,
}

impl Trainer<'_> {
    /// Runs the loop; validation errors are averaged over `validation`
    /// sets at every recording point.
    ///
    /// # Panics
    /// Panics if batch sizes are zero or exceed the dataset sizes.
    pub fn run(
        &mut self,
        sampler: &mut dyn Sampler,
        validation: &[ValidationSet],
        opts: &TrainOptions,
    ) -> TrainResult {
        assert!(opts.batch_interior > 0, "batch_interior must be positive");
        assert!(
            opts.batch_interior <= self.data.num_interior(),
            "batch larger than dataset"
        );
        let mut rng = Rng64::new(opts.seed);
        let mut adam = Adam::new(self.net, opts.adam.clone());
        let n_boundary = self.data.num_boundary();
        let mut history = Vec::new();
        let start = Instant::now();
        for iter in 0..opts.iterations {
            if let Some(budget) = opts.max_seconds {
                if start.elapsed().as_secs_f64() >= budget {
                    break;
                }
            }
            {
                let probe = Probe {
                    net: self.net,
                    problem: self.problem,
                    data: self.data,
                };
                sampler.refresh(iter, &probe, &mut rng);
            }
            let idx = sampler.next_batch(opts.batch_interior, &mut rng);
            let x = Problem::gather(&self.data.interior, &idx);
            let (li, mut grads, _per) = self.problem.interior_loss_and_grads(self.net, &x);
            let mut total = li;
            if opts.batch_boundary > 0 && n_boundary > 0 {
                let bidx: Vec<usize> = (0..opts.batch_boundary.min(n_boundary))
                    .map(|_| rng.below(n_boundary))
                    .collect();
                let (lb, gb) = self.problem.boundary_loss_and_grads(self.net, self.data, &bidx);
                grads.add_assign(&gb);
                total += lb;
            }
            adam.step(self.net, &grads);

            if iter % opts.record_every == 0 || iter + 1 == opts.iterations {
                let val_errors = if validation.is_empty() {
                    Vec::new()
                } else {
                    ValidationSet::average_errors(validation, self.net)
                };
                history.push(Record {
                    iteration: iter,
                    seconds: start.elapsed().as_secs_f64(),
                    train_loss: total,
                    val_errors,
                });
            }
        }
        TrainResult {
            history,
            total_seconds: start.elapsed().as_secs_f64(),
            sampler: sampler.name().to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Cavity, FillStrategy};
    use crate::pde::{Pde, PoissonConfig};
    use sgm_nn::activation::Activation;
    use sgm_nn::mlp::MlpConfig;
    use sgm_nn::optimizer::LrSchedule;

    fn poisson_setup(seed: u64) -> (Mlp, Problem, TrainSet, ValidationSet) {
        let pde = Pde::Poisson(PoissonConfig {
            forcing: |p: &[f64]| {
                let pi = std::f64::consts::PI;
                2.0 * pi * pi * (pi * p[0]).sin() * (pi * p[1]).sin()
            },
        });
        let problem = Problem::new(pde);
        let cav = Cavity::default();
        let mut rng = Rng64::new(seed);
        let interior = cav.sample_interior(512, FillStrategy::Halton, &mut rng);
        // Dirichlet u = 0 on all walls.
        let n_b = 64;
        let mut bpts = Vec::new();
        let mut tgt = Matrix::zeros(n_b, 1);
        for i in 0..n_b {
            let t = rng.uniform();
            let (x, y) = match i % 4 {
                0 => (t, 0.0),
                1 => (t, 1.0),
                2 => (0.0, t),
                _ => (1.0, t),
            };
            bpts.push(x);
            bpts.push(y);
            tgt.set(i, 0, 0.0);
        }
        let data = TrainSet {
            interior,
            boundary: sgm_graph::points::PointCloud::from_flat(2, bpts),
            boundary_targets: tgt,
        };
        // Validation grid with exact solution.
        let g = 12;
        let mut pts = Matrix::zeros(g * g, 2);
        let mut targets = Matrix::zeros(g * g, 1);
        let pi = std::f64::consts::PI;
        for i in 0..g {
            for j in 0..g {
                let (x, y) = ((i as f64 + 0.5) / g as f64, (j as f64 + 0.5) / g as f64);
                pts.set(i * g + j, 0, x);
                pts.set(i * g + j, 1, y);
                targets.set(i * g + j, 0, (pi * x).sin() * (pi * y).sin());
            }
        }
        let val = ValidationSet {
            points: pts,
            targets,
            output_indices: vec![0],
            names: vec!["u".into()],
        };
        let cfg = MlpConfig {
            input_dim: 2,
            output_dim: 1,
            hidden_width: 24,
            hidden_layers: 2,
            activation: Activation::Tanh,
            fourier: None,
        };
        let mut nrng = Rng64::new(seed + 1);
        (Mlp::new(&cfg, &mut nrng), problem, data, val)
    }

    #[test]
    fn training_reduces_validation_error() {
        let (mut net, problem, data, val) = poisson_setup(11);
        let mut sampler = UniformSampler::new(data.num_interior());
        let opts = TrainOptions {
            iterations: 800,
            batch_interior: 64,
            batch_boundary: 32,
            adam: AdamConfig {
                lr: 5e-3,
                schedule: LrSchedule::Constant,
                ..AdamConfig::default()
            },
            seed: 3,
            record_every: 100,
            max_seconds: None,
        };
        let result = {
            let mut tr = Trainer {
                net: &mut net,
                problem: &problem,
                data: &data,
            };
            tr.run(&mut sampler, std::slice::from_ref(&val), &opts)
        };
        let first = result.history.first().unwrap().val_errors[0];
        let (best, _t) = result.min_error(0).unwrap();
        assert!(
            best < 0.5 * first,
            "validation error did not improve: {first} -> {best}"
        );
        assert_eq!(result.sampler, "uniform");
    }

    #[test]
    fn history_timestamps_monotone() {
        let (mut net, problem, data, val) = poisson_setup(12);
        let mut sampler = UniformSampler::new(data.num_interior());
        let opts = TrainOptions {
            iterations: 50,
            batch_interior: 16,
            batch_boundary: 8,
            record_every: 10,
            ..TrainOptions::default()
        };
        let result = {
            let mut tr = Trainer {
                net: &mut net,
                problem: &problem,
                data: &data,
            };
            tr.run(&mut sampler, std::slice::from_ref(&val), &opts)
        };
        for w in result.history.windows(2) {
            assert!(w[1].seconds >= w[0].seconds);
            assert!(w[1].iteration > w[0].iteration);
        }
        assert!(result.total_seconds >= result.history.last().unwrap().seconds);
    }

    #[test]
    fn time_to_error_finds_first_crossing() {
        let result = TrainResult {
            history: vec![
                Record {
                    iteration: 0,
                    seconds: 1.0,
                    train_loss: 1.0,
                    val_errors: vec![0.5],
                },
                Record {
                    iteration: 10,
                    seconds: 2.0,
                    train_loss: 0.5,
                    val_errors: vec![0.2],
                },
                Record {
                    iteration: 20,
                    seconds: 3.0,
                    train_loss: 0.4,
                    val_errors: vec![0.25],
                },
            ],
            total_seconds: 3.0,
            sampler: "test".into(),
        };
        assert_eq!(result.time_to_error(0, 0.2), Some(2.0));
        assert_eq!(result.time_to_error(0, 0.1), None);
        let (best, at) = result.min_error(0).unwrap();
        assert_eq!((best, at), (0.2, 2.0));
    }

    #[test]
    fn uniform_sampler_covers_dataset() {
        let mut s = UniformSampler::new(20);
        let mut rng = Rng64::new(1);
        let mut seen = vec![false; 20];
        for _ in 0..50 {
            for i in s.next_batch(10, &mut rng) {
                assert!(i < 20);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }
}
