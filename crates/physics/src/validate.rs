//! Validation against reference solution fields.
//!
//! The paper reports relative L2 "validation errors" of each output
//! (`u, v, ν` for LDC; `u, v, p` for the annular ring) against OpenFOAM
//! fields. Here the reference comes from `sgm-cfd` (FDM solve or exact
//! solution) but the metric is identical.

use sgm_linalg::dense::Matrix;
use sgm_linalg::stats::relative_l2;
use sgm_nn::mlp::Mlp;

/// A set of reference points and target fields to validate against.
#[derive(Debug, Clone)]
pub struct ValidationSet {
    /// Evaluation points, `N × input_dim`.
    pub points: Matrix,
    /// Reference values, `N × num_targets`.
    pub targets: Matrix,
    /// Which network output each target column corresponds to.
    pub output_indices: Vec<usize>,
    /// Display names aligned with `output_indices` (e.g. `["u","v","nu"]`).
    pub names: Vec<String>,
}

impl ValidationSet {
    /// Relative L2 error of each validated output.
    ///
    /// # Panics
    /// Panics if the network output dimension is smaller than the largest
    /// validated index.
    pub fn errors(&self, net: &Mlp) -> Vec<f64> {
        let pred = net.forward(&self.points);
        self.output_indices
            .iter()
            .enumerate()
            .map(|(col, &oi)| {
                assert!(oi < pred.cols(), "output index {oi} out of range");
                let n = self.points.rows();
                let a: Vec<f64> = (0..n).map(|r| pred.get(r, oi)).collect();
                let b: Vec<f64> = (0..n).map(|r| self.targets.get(r, col)).collect();
                relative_l2(&a, &b)
            })
            .collect()
    }

    /// Number of validation points.
    pub fn len(&self) -> usize {
        self.points.rows()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.points.rows() == 0
    }

    /// Merges several validation sets by averaging their errors — the
    /// paper's AR table averages validation errors over
    /// `r_i ∈ {1.0, 0.875, 0.75}`.
    pub fn average_errors(sets: &[ValidationSet], net: &Mlp) -> Vec<f64> {
        assert!(!sets.is_empty(), "no validation sets");
        let per: Vec<Vec<f64>> = sets.iter().map(|s| s.errors(net)).collect();
        let k = per[0].len();
        (0..k)
            .map(|i| per.iter().map(|e| e[i]).sum::<f64>() / per.len() as f64)
            .collect()
    }
}

impl sgm_train::Validator for ValidationSet {
    fn val_errors(&self, net: &Mlp) -> Vec<f64> {
        self.errors(net)
    }
}

/// A slice of validation sets viewed as one `sgm-train` validator:
/// errors are averaged across sets (the paper's AR table averages over
/// `r_i ∈ {1.0, 0.875, 0.75}`); an empty slice reports no errors.
#[derive(Debug, Clone, Copy)]
pub struct AveragedValidation<'a>(pub &'a [ValidationSet]);

impl sgm_train::Validator for AveragedValidation<'_> {
    fn val_errors(&self, net: &Mlp) -> Vec<f64> {
        if self.0.is_empty() {
            Vec::new()
        } else {
            ValidationSet::average_errors(self.0, net)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgm_linalg::rng::Rng64;
    use sgm_nn::activation::Activation;
    use sgm_nn::mlp::MlpConfig;

    fn net() -> Mlp {
        let cfg = MlpConfig {
            input_dim: 2,
            output_dim: 2,
            hidden_width: 6,
            hidden_layers: 1,
            activation: Activation::Tanh,
            fourier: None,
        };
        let mut rng = Rng64::new(3);
        Mlp::new(&cfg, &mut rng)
    }

    #[test]
    fn zero_error_when_targets_match_predictions() {
        let net = net();
        let pts = Matrix::from_rows(&[&[0.1, 0.2], &[0.5, 0.6], &[0.9, 0.1]]);
        let pred = net.forward(&pts);
        let mut targets = Matrix::zeros(3, 2);
        for r in 0..3 {
            targets.set(r, 0, pred.get(r, 0));
            targets.set(r, 1, pred.get(r, 1));
        }
        let vs = ValidationSet {
            points: pts,
            targets,
            output_indices: vec![0, 1],
            names: vec!["u".into(), "v".into()],
        };
        for e in vs.errors(&net) {
            assert!(e < 1e-12);
        }
    }

    #[test]
    fn error_is_relative() {
        let net = net();
        let pts = Matrix::from_rows(&[&[0.3, 0.3]]);
        let pred = net.forward(&pts);
        // Target = 2 × prediction ⇒ relative error |p − 2p| / |2p| = 0.5.
        let targets = Matrix::from_rows(&[&[2.0 * pred.get(0, 0)]]);
        let vs = ValidationSet {
            points: pts,
            targets,
            output_indices: vec![0],
            names: vec!["u".into()],
        };
        let e = vs.errors(&net);
        assert!((e[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn average_over_sets() {
        let net = net();
        let mk = |scale: f64| {
            let pts = Matrix::from_rows(&[&[0.3, 0.3]]);
            let pred = net.forward(&pts);
            ValidationSet {
                points: pts,
                targets: Matrix::from_rows(&[&[scale * pred.get(0, 0)]]),
                output_indices: vec![0],
                names: vec!["u".into()],
            }
        };
        // errors: |1-2|/2 = 0.5 and |1-4|/4 = 0.75 ⇒ mean 0.625
        let sets = [mk(2.0), mk(4.0)];
        let avg = ValidationSet::average_errors(&sets, &net);
        assert!((avg[0] - 0.625).abs() < 1e-12);
    }

    #[test]
    fn zero_norm_reference_falls_back_to_absolute_error() {
        // An all-zero reference field (e.g. a quiescent region) must not
        // divide by zero: the metric degrades to the absolute L2 norm of
        // the prediction, which is finite and positive for a generic net.
        let net = net();
        let pts = Matrix::from_rows(&[&[0.2, 0.4], &[0.7, 0.3]]);
        let vs = ValidationSet {
            points: pts.clone(),
            targets: Matrix::zeros(2, 1),
            output_indices: vec![0],
            names: vec!["u".into()],
        };
        let e = vs.errors(&net)[0];
        assert!(e.is_finite(), "zero-norm reference produced {e}");
        let pred = net.forward(&pts);
        let abs = (pred.get(0, 0).powi(2) + pred.get(1, 0).powi(2)).sqrt();
        assert!(
            (e - abs).abs() < 1e-12,
            "expected absolute norm {abs}, got {e}"
        );
    }

    #[test]
    #[should_panic(expected = "output index 5 out of range")]
    fn mismatched_output_index_panics_with_context() {
        let net = net(); // 2 outputs; index 5 is invalid
        let vs = ValidationSet {
            points: Matrix::from_rows(&[&[0.1, 0.1]]),
            targets: Matrix::zeros(1, 1),
            output_indices: vec![5],
            names: vec!["bogus".into()],
        };
        let _ = vs.errors(&net);
    }

    #[test]
    fn single_point_set_matches_scalar_relative_error() {
        let net = net();
        let pts = Matrix::from_rows(&[&[0.4, 0.8]]);
        let pred = net.forward(&pts);
        let t = pred.get(0, 1) + 0.3;
        let vs = ValidationSet {
            points: pts,
            targets: Matrix::from_rows(&[&[t]]),
            output_indices: vec![1],
            names: vec!["v".into()],
        };
        assert_eq!(vs.len(), 1);
        assert!(!vs.is_empty());
        let e = vs.errors(&net)[0];
        assert!((e - 0.3 / t.abs()).abs() < 1e-12);
    }

    #[test]
    fn empty_set_reports_empty_and_zero_errors() {
        let net = net();
        let vs = ValidationSet {
            points: Matrix::zeros(0, 2),
            targets: Matrix::zeros(0, 1),
            output_indices: vec![0],
            names: vec!["u".into()],
        };
        assert!(vs.is_empty());
        assert_eq!(vs.len(), 0);
        // No points: numerator and denominator are both empty sums, so
        // the error is exactly zero rather than NaN.
        assert_eq!(vs.errors(&net), vec![0.0]);
    }

    #[test]
    fn validated_subset_of_outputs_uses_target_columns_in_order() {
        // Validating only output 1 against target column 0 exercises the
        // (col, output_index) mapping.
        let net = net();
        let pts = Matrix::from_rows(&[&[0.25, 0.75], &[0.5, 0.5]]);
        let pred = net.forward(&pts);
        let mut targets = Matrix::zeros(2, 1);
        targets.set(0, 0, pred.get(0, 1));
        targets.set(1, 0, pred.get(1, 1));
        let vs = ValidationSet {
            points: pts,
            targets,
            output_indices: vec![1],
            names: vec!["v".into()],
        };
        assert!(vs.errors(&net)[0] < 1e-12);
    }
}
