//! # sgm-physics
//!
//! The PINN problem layer: geometries and collocation sampling, PDE
//! residuals with exact adjoints, loss assembly, a sampler-pluggable
//! training loop, and validation against reference fields.
//!
//! * [`geometry`] — the paper's two domains: the unit lid-driven cavity
//!   (LDC, §4.1) and the annular ring with parameterised inner radius
//!   (AR, §4.2), plus Halton low-discrepancy interior sampling and wall
//!   distances for the zero-equation turbulence closure.
//! * [`pde`] — residual definitions: 2-D steady incompressible
//!   Navier–Stokes (optionally with the zero-equation mixing-length
//!   turbulence model, outputs `u, v, p, ν` as in Modulus's LDC example)
//!   and a Poisson equation for quickstarts. Each PDE also provides the
//!   exact partial derivatives of its residuals with respect to every
//!   network quantity it reads (values / first / second derivatives), so
//!   the `sgm-nn` backward pass yields exact parameter gradients.
//! * [`problem`] — bundles a PDE, a training set (interior + boundary
//!   clouds) and loss weights; computes batch losses, gradients and
//!   per-sample loss probes (what importance samplers consume).
//! * [`train`] — the [`train::Sampler`] trait (implemented by the
//!   uniform / MIS / SGM samplers in `sgm-core`) and the wall-clock
//!   instrumented training loop.
//! * [`validate`] — reference grids and relative-L2 validation errors
//!   (the metric reported in the paper's tables).

pub mod geometry;
pub mod pde;
pub mod problem;
pub mod train;
pub mod validate;

pub use pde::{NsConfig, Pde, PoissonConfig, ZeroEqConfig};
pub use problem::{Problem, TrainSet};
pub use train::{Sampler, TrainOptions, Trainer};
pub use validate::ValidationSet;
