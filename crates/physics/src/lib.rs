//! # sgm-physics
//!
//! The PINN problem layer: geometries and collocation sampling, PDE
//! residuals with exact adjoints, loss assembly, a sampler-pluggable
//! training loop, and validation against reference fields.
//!
//! * [`geometry`] — the paper's two domains: the unit lid-driven cavity
//!   (LDC, §4.1) and the annular ring with parameterised inner radius
//!   (AR, §4.2), plus Halton low-discrepancy interior sampling and wall
//!   distances for the zero-equation turbulence closure.
//! * [`pde`] — residual definitions: 2-D steady incompressible
//!   Navier–Stokes (optionally with the zero-equation mixing-length
//!   turbulence model, outputs `u, v, p, ν` as in Modulus's LDC example)
//!   and a Poisson equation for quickstarts. Each PDE also provides the
//!   exact partial derivatives of its residuals with respect to every
//!   network quantity it reads (values / first / second derivatives), so
//!   the `sgm-nn` backward pass yields exact parameter gradients.
//! * [`problem`] — bundles a PDE, a training set (interior + boundary
//!   clouds) and loss weights; computes batch losses, gradients and
//!   per-sample loss probes (what importance samplers consume).
//! * [`model`] — the `sgm-train` [`sgm_train::LossModel`] implementation
//!   ([`PinnModel`]) that plugs a problem into the staged training
//!   engine with preallocated workspaces. The training loop itself
//!   lives in `sgm-train`; this crate only describes the objective.
//! * [`validate`] — reference grids and relative-L2 validation errors
//!   (the metric reported in the paper's tables), usable as
//!   `sgm-train` validators.

pub mod geometry;
pub mod model;
pub mod pde;
pub mod problem;
pub mod validate;

pub use model::{PinnModel, PinnWorkspace};
pub use pde::{NsConfig, Pde, PoissonConfig, ZeroEqConfig};
pub use problem::{Problem, TrainSet};
pub use validate::{AveragedValidation, ValidationSet};
