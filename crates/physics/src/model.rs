//! The [`LossModel`] implementation for PINN problems — the bridge
//! between the physics layer and the `sgm-train` engine.
//!
//! [`PinnModel`] wraps a [`Problem`] + [`TrainSet`] pair and exposes the
//! engine-facing interface: gather batches into a preallocated
//! [`PinnWorkspace`], compute the weighted interior + boundary loss with
//! exact parameter gradients through the allocation-free `sgm-nn`
//! workspace path, and serve the probe evaluations importance samplers
//! request. The engine itself (in `sgm-train`) never sees a PDE.

use crate::problem::{Problem, TrainSet};
use sgm_graph::points::PointCloud;
use sgm_linalg::dense::Matrix;
use sgm_nn::mlp::{BatchDerivatives, Gradients, Mlp, MlpWorkspace};
use sgm_train::{BatchedLossModel, LossModel, ModelWorkspace};
use std::any::Any;

/// A [`Problem`] + [`TrainSet`] pair viewed as a training objective.
#[derive(Debug, Clone, Copy)]
pub struct PinnModel<'a> {
    /// PDE + loss weights.
    pub problem: &'a Problem,
    /// Collocation data.
    pub data: &'a TrainSet,
}

impl<'a> PinnModel<'a> {
    /// Bundles a problem with its collocation data.
    pub fn new(problem: &'a Problem, data: &'a TrainSet) -> Self {
        PinnModel { problem, data }
    }
}

/// Preallocated per-run scratch for [`PinnModel`]: interior and boundary
/// batch matrices, network workspaces, residual/factor buffers and
/// adjoint accumulators. Steady-state iterations touch only these
/// buffers — no heap allocations under serial parallelism.
#[derive(Debug)]
pub struct PinnWorkspace {
    diff_dims: Vec<usize>,
    /// Interior batch rows, `bi × dim`.
    xi: Matrix,
    nni: MlpWorkspace,
    /// Residual values, `bi × num_residuals`.
    resid: Matrix,
    /// Adjoint seed factors `2 w_k r_k / bi`.
    factors: Matrix,
    adj_i: BatchDerivatives,
    /// Effective boundary batch size (0 = no boundary term).
    bb: usize,
    /// Boundary batch rows, `bb × dim`.
    xb: Matrix,
    nnb: MlpWorkspace,
    adj_b: BatchDerivatives,
    /// Boundary indices of the current batch (for target lookups).
    bidx: Vec<usize>,
}

impl ModelWorkspace for PinnWorkspace {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl PinnWorkspace {
    fn of(ws: &mut dyn ModelWorkspace) -> &mut PinnWorkspace {
        ws.as_any_mut()
            .downcast_mut()
            .expect("workspace was not created by PinnModel")
    }

    fn of_ref(ws: &dyn ModelWorkspace) -> &PinnWorkspace {
        ws.as_any()
            .downcast_ref()
            .expect("workspace was not created by PinnModel")
    }
}

impl LossModel for PinnModel<'_> {
    fn num_interior(&self) -> usize {
        self.data.num_interior()
    }

    fn num_boundary(&self) -> usize {
        self.data.num_boundary()
    }

    fn make_workspace(
        &self,
        net: &Mlp,
        batch_interior: usize,
        batch_boundary: usize,
    ) -> Box<dyn ModelWorkspace> {
        let diff_dims = self.problem.pde.diff_dims();
        let nd = diff_dims.len();
        let nr = self.problem.pde.num_residuals();
        let out = self.problem.pde.output_dim();
        Box::new(PinnWorkspace {
            xi: Matrix::zeros(batch_interior, self.data.interior.dim()),
            nni: net.make_workspace(batch_interior, nd),
            resid: Matrix::zeros(batch_interior, nr),
            factors: Matrix::zeros(batch_interior, nr),
            adj_i: BatchDerivatives::zeros(batch_interior, out, nd),
            bb: batch_boundary,
            xb: Matrix::zeros(batch_boundary, self.data.boundary.dim()),
            nnb: net.make_workspace(batch_boundary, 0),
            adj_b: BatchDerivatives::zeros(batch_boundary, out, 0),
            bidx: Vec::with_capacity(batch_boundary),
            diff_dims,
        })
    }

    fn gather(&self, interior_idx: &[usize], boundary_idx: &[usize], ws: &mut dyn ModelWorkspace) {
        let ws = PinnWorkspace::of(ws);
        Problem::gather_into(&self.data.interior, interior_idx, &mut ws.xi);
        if ws.bb > 0 {
            Problem::gather_into(&self.data.boundary, boundary_idx, &mut ws.xb);
            ws.bidx.clear();
            ws.bidx.extend_from_slice(boundary_idx);
        }
    }

    fn loss_and_grad(&self, net: &Mlp, ws: &mut dyn ModelWorkspace, grads: &mut Gradients) -> f64 {
        let ws = PinnWorkspace::of(ws);
        let mut total = 0.0;
        // Interior PDE term.
        net.forward_with_derivs_ws(&ws.xi, &ws.diff_dims, &mut ws.nni);
        {
            let PinnWorkspace {
                nni,
                xi,
                resid,
                factors,
                adj_i,
                ..
            } = &mut *ws;
            let d = nni.derivs();
            self.problem.pde.residuals_into(xi, d, resid);
            let bi = xi.rows();
            let nr = self.problem.pde.num_residuals();
            let inv_b = 1.0 / bi as f64;
            for i in 0..bi {
                for k in 0..nr {
                    let w = self.problem.residual_weights[k];
                    let rv = resid.get(i, k);
                    total += w * rv * rv * inv_b;
                    factors.set(i, k, 2.0 * w * rv * inv_b);
                }
            }
            adj_i.zero();
            self.problem.pde.accumulate_adjoints(xi, d, factors, adj_i);
        }
        net.backward_ws(&mut ws.nni, &ws.adj_i, grads);

        // Boundary (Dirichlet) term, sharing the same gradient
        // accumulator.
        if ws.bb > 0 {
            net.forward_with_derivs_ws(&ws.xb, &[], &mut ws.nnb);
            {
                let PinnWorkspace {
                    nnb, adj_b, bidx, ..
                } = &mut *ws;
                let vals = &nnb.derivs().values;
                let o = vals.cols();
                let inv_b = 1.0 / bidx.len() as f64;
                adj_b.zero();
                for (row, &i) in bidx.iter().enumerate() {
                    for k in 0..o {
                        let t = self.data.boundary_targets.get(i, k);
                        if t.is_nan() {
                            continue;
                        }
                        let r = vals.get(row, k) - t;
                        total += self.problem.bc_weight * r * r * inv_b;
                        adj_b
                            .values
                            .set(row, k, 2.0 * self.problem.bc_weight * r * inv_b);
                    }
                }
            }
            net.backward_ws(&mut ws.nnb, &ws.adj_b, grads);
        }
        total
    }

    fn batch_loss(&self, net: &Mlp, interior_idx: &[usize], boundary_idx: &[usize]) -> f64 {
        let per = self
            .problem
            .interior_sample_losses(net, self.data, interior_idx);
        let mut total = per.iter().sum::<f64>() / interior_idx.len().max(1) as f64;
        if !boundary_idx.is_empty() {
            total += self.problem.boundary_loss(net, self.data, boundary_idx);
        }
        total
    }

    fn sample_losses(&self, net: &Mlp, idx: &[usize]) -> Vec<f64> {
        self.problem.interior_sample_losses(net, self.data, idx)
    }

    fn outputs(&self, net: &Mlp, idx: &[usize]) -> Matrix {
        self.problem.interior_outputs(net, self.data, idx)
    }

    fn inputs(&self, idx: &[usize]) -> Matrix {
        Problem::gather(&self.data.interior, idx)
    }

    fn interior_cloud(&self) -> Option<PointCloud> {
        Some(self.data.interior.clone())
    }

    fn gather_from(
        &self,
        points: &PointCloud,
        interior_idx: &[usize],
        boundary_idx: &[usize],
        ws: &mut dyn ModelWorkspace,
    ) {
        let ws = PinnWorkspace::of(ws);
        Problem::gather_into(points, interior_idx, &mut ws.xi);
        if ws.bb > 0 {
            Problem::gather_into(&self.data.boundary, boundary_idx, &mut ws.xb);
            ws.bidx.clear();
            ws.bidx.extend_from_slice(boundary_idx);
        }
    }

    fn batch_loss_from(
        &self,
        net: &Mlp,
        points: &PointCloud,
        interior_idx: &[usize],
        boundary_idx: &[usize],
    ) -> f64 {
        let x = Problem::gather(points, interior_idx);
        let per = self.problem.sample_losses_at(net, &x);
        let mut total = per.iter().sum::<f64>() / interior_idx.len().max(1) as f64;
        if !boundary_idx.is_empty() {
            total += self.problem.boundary_loss(net, self.data, boundary_idx);
        }
        total
    }

    fn losses_at(&self, net: &Mlp, coords: &Matrix) -> Vec<f64> {
        self.problem.sample_losses_at(net, coords)
    }
}

/// The staged halves of [`LossModel::loss_and_grad`], exposed so the
/// lockstep runner (`sgm_train::multi`) can route the network forward
/// and backward passes through the batched kernels. The adjoint
/// arithmetic here is byte-for-byte the middle of `loss_and_grad`,
/// reading from the passed derivatives instead of the internal network
/// workspace — for bit-identical derivative inputs it produces
/// bit-identical adjoints, which is what the lockstep determinism
/// contract rests on.
impl BatchedLossModel for PinnModel<'_> {
    fn diff_dims(&self) -> Vec<usize> {
        self.problem.pde.diff_dims()
    }

    fn interior_input<'a>(&self, ws: &'a dyn ModelWorkspace) -> &'a Matrix {
        &PinnWorkspace::of_ref(ws).xi
    }

    fn boundary_input<'a>(&self, ws: &'a dyn ModelWorkspace) -> Option<&'a Matrix> {
        let ws = PinnWorkspace::of_ref(ws);
        (ws.bb > 0).then_some(&ws.xb)
    }

    fn interior_adjoints(
        &self,
        ws: &mut dyn ModelWorkspace,
        derivs: &BatchDerivatives,
        adj: &mut BatchDerivatives,
    ) -> f64 {
        let ws = PinnWorkspace::of(ws);
        let PinnWorkspace {
            xi, resid, factors, ..
        } = &mut *ws;
        self.problem.pde.residuals_into(xi, derivs, resid);
        let bi = xi.rows();
        let nr = self.problem.pde.num_residuals();
        let inv_b = 1.0 / bi as f64;
        let mut total = 0.0;
        for i in 0..bi {
            for k in 0..nr {
                let w = self.problem.residual_weights[k];
                let rv = resid.get(i, k);
                total += w * rv * rv * inv_b;
                factors.set(i, k, 2.0 * w * rv * inv_b);
            }
        }
        adj.zero();
        self.problem
            .pde
            .accumulate_adjoints(xi, derivs, factors, adj);
        total
    }

    fn boundary_adjoints(
        &self,
        ws: &mut dyn ModelWorkspace,
        values: &Matrix,
        adj: &mut BatchDerivatives,
    ) -> f64 {
        let ws = PinnWorkspace::of(ws);
        let o = values.cols();
        let inv_b = 1.0 / ws.bidx.len() as f64;
        adj.zero();
        let mut total = 0.0;
        for (row, &i) in ws.bidx.iter().enumerate() {
            for k in 0..o {
                let t = self.data.boundary_targets.get(i, k);
                if t.is_nan() {
                    continue;
                }
                let r = values.get(row, k) - t;
                total += self.problem.bc_weight * r * r * inv_b;
                adj.values
                    .set(row, k, 2.0 * self.problem.bc_weight * r * inv_b);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Cavity, FillStrategy};
    use crate::pde::{Pde, PoissonConfig};
    use crate::validate::ValidationSet;
    use sgm_linalg::rng::Rng64;
    use sgm_nn::activation::Activation;
    use sgm_nn::mlp::MlpConfig;
    use sgm_nn::optimizer::{AdamConfig, LrSchedule};
    use sgm_train::{Sampler, TrainOptions, Trainer, UniformSampler};

    fn poisson_setup(seed: u64) -> (Mlp, Problem, TrainSet, ValidationSet) {
        let pde = Pde::Poisson(PoissonConfig {
            forcing: |p: &[f64]| {
                let pi = std::f64::consts::PI;
                2.0 * pi * pi * (pi * p[0]).sin() * (pi * p[1]).sin()
            },
        });
        let problem = Problem::new(pde);
        let cav = Cavity::default();
        let mut rng = Rng64::new(seed);
        let interior = cav.sample_interior(512, FillStrategy::Halton, &mut rng);
        // Dirichlet u = 0 on all walls.
        let n_b = 64;
        let mut bpts = Vec::new();
        let mut tgt = Matrix::zeros(n_b, 1);
        for i in 0..n_b {
            let t = rng.uniform();
            let (x, y) = match i % 4 {
                0 => (t, 0.0),
                1 => (t, 1.0),
                2 => (0.0, t),
                _ => (1.0, t),
            };
            bpts.push(x);
            bpts.push(y);
            tgt.set(i, 0, 0.0);
        }
        let data = TrainSet {
            interior,
            boundary: sgm_graph::points::PointCloud::from_flat(2, bpts),
            boundary_targets: tgt,
        };
        // Validation grid with exact solution.
        let g = 12;
        let mut pts = Matrix::zeros(g * g, 2);
        let mut targets = Matrix::zeros(g * g, 1);
        let pi = std::f64::consts::PI;
        for i in 0..g {
            for j in 0..g {
                let (x, y) = ((i as f64 + 0.5) / g as f64, (j as f64 + 0.5) / g as f64);
                pts.set(i * g + j, 0, x);
                pts.set(i * g + j, 1, y);
                targets.set(i * g + j, 0, (pi * x).sin() * (pi * y).sin());
            }
        }
        let val = ValidationSet {
            points: pts,
            targets,
            output_indices: vec![0],
            names: vec!["u".into()],
        };
        let cfg = MlpConfig {
            input_dim: 2,
            output_dim: 1,
            hidden_width: 24,
            hidden_layers: 2,
            activation: Activation::Tanh,
            fourier: None,
        };
        let mut nrng = Rng64::new(seed + 1);
        (Mlp::new(&cfg, &mut nrng), problem, data, val)
    }

    #[test]
    fn training_reduces_validation_error() {
        let (mut net, problem, data, val) = poisson_setup(11);
        let model = PinnModel::new(&problem, &data);
        let mut sampler = UniformSampler::new(data.num_interior());
        let opts = TrainOptions {
            iterations: 800,
            batch_interior: 64,
            batch_boundary: 32,
            adam: AdamConfig {
                lr: 5e-3,
                schedule: LrSchedule::Constant,
                ..AdamConfig::default()
            },
            seed: 3,
            record_every: 100,
            max_seconds: None,
            synthetic_dt: None,
        };
        let result = Trainer {
            net: &mut net,
            model: &model,
        }
        .run(&mut sampler, Some(&val), &opts);
        let first = result.history.first().unwrap().val_errors[0];
        let (best, _t) = result.min_error(0).unwrap();
        assert!(
            best < 0.5 * first,
            "validation error did not improve: {first} -> {best}"
        );
        assert_eq!(result.sampler, "uniform");
    }

    #[test]
    fn history_timestamps_monotone_and_clocks_split() {
        let (mut net, problem, data, val) = poisson_setup(12);
        let model = PinnModel::new(&problem, &data);
        let mut sampler = UniformSampler::new(data.num_interior());
        let opts = TrainOptions {
            iterations: 50,
            batch_interior: 16,
            batch_boundary: 8,
            record_every: 10,
            ..TrainOptions::default()
        };
        let result = Trainer {
            net: &mut net,
            model: &model,
        }
        .run(&mut sampler, Some(&val), &opts);
        for w in result.history.windows(2) {
            assert!(w[1].seconds >= w[0].seconds);
            assert!(w[1].iteration > w[0].iteration);
        }
        // Record timestamps are on the training clock, which excludes
        // validation time.
        assert!(result.train_seconds >= result.history.last().unwrap().seconds);
        assert!(result.record_seconds > 0.0, "validation took time");
        assert_eq!(
            result.total_seconds,
            result.train_seconds + result.record_seconds
        );
    }

    /// The workspace-based `loss_and_grad` path must agree with the
    /// original allocating `interior_loss_and_grads` +
    /// `boundary_loss_and_grads` composition.
    #[test]
    fn loss_and_grad_matches_allocating_composition() {
        let (net, problem, data, _val) = poisson_setup(13);
        let model = PinnModel::new(&problem, &data);
        let mut rng = Rng64::new(77);
        let mut sampler = UniformSampler::new(data.num_interior());
        let mut idx = Vec::new();
        sampler.fill_batch(32, &mut idx, &mut rng);
        let bidx: Vec<usize> = (0..16).map(|_| rng.below(data.num_boundary())).collect();

        let x = Problem::gather(&data.interior, &idx);
        let (li, mut g_ref, _per) = problem.interior_loss_and_grads(&net, &x);
        let (lb, gb) = problem.boundary_loss_and_grads(&net, &data, &bidx);
        g_ref.add_assign(&gb);
        let total_ref = li + lb;

        let mut ws = model.make_workspace(&net, idx.len(), bidx.len());
        model.gather(&idx, &bidx, &mut *ws);
        let mut grads = net.zero_gradients();
        let total = model.loss_and_grad(&net, &mut *ws, &mut grads);

        assert!(
            (total - total_ref).abs() <= 1e-12 * total_ref.abs(),
            "loss mismatch: {total} vs {total_ref}"
        );
        for (a, b) in grads.flat().iter().zip(&g_ref.flat()) {
            assert!(
                (a - b).abs() <= 1e-12 * (1.0 + b.abs()),
                "grad mismatch: {a} vs {b}"
            );
        }
    }

    /// `batch_loss` (the record-path evaluation) equals the training
    /// loss value for the same weights and batch.
    #[test]
    fn batch_loss_matches_loss_and_grad() {
        let (net, problem, data, _val) = poisson_setup(14);
        let model = PinnModel::new(&problem, &data);
        let idx: Vec<usize> = (0..24).collect();
        let bidx: Vec<usize> = (0..12).collect();
        let mut ws = model.make_workspace(&net, idx.len(), bidx.len());
        model.gather(&idx, &bidx, &mut *ws);
        let mut grads = net.zero_gradients();
        let with_grad = model.loss_and_grad(&net, &mut *ws, &mut grads);
        let without = model.batch_loss(&net, &idx, &bidx);
        assert!(
            (with_grad - without).abs() <= 1e-12 * with_grad.abs(),
            "{with_grad} vs {without}"
        );
    }

    /// Workspaces are reusable: repeated gather/loss cycles give the
    /// same results as fresh evaluations.
    #[test]
    fn workspace_reuse_is_stable() {
        let (net, problem, data, _val) = poisson_setup(15);
        let model = PinnModel::new(&problem, &data);
        let mut ws = model.make_workspace(&net, 16, 8);
        let mut rng = Rng64::new(5);
        for _ in 0..3 {
            let idx: Vec<usize> = (0..16).map(|_| rng.below(data.num_interior())).collect();
            let bidx: Vec<usize> = (0..8).map(|_| rng.below(data.num_boundary())).collect();
            model.gather(&idx, &bidx, &mut *ws);
            let mut g1 = net.zero_gradients();
            let l1 = model.loss_and_grad(&net, &mut *ws, &mut g1);
            // Fresh workspace for the same batch.
            let mut ws2 = model.make_workspace(&net, 16, 8);
            model.gather(&idx, &bidx, &mut *ws2);
            let mut g2 = net.zero_gradients();
            let l2 = model.loss_and_grad(&net, &mut *ws2, &mut g2);
            assert_eq!(l1.to_bits(), l2.to_bits());
            for (a, b) in g1.flat().iter().zip(&g2.flat()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// A 3-job PINN parameter sweep through the batched lockstep runner
    /// reproduces each solo `Trainer` run bit for bit — losses,
    /// validation errors, clocks and final parameters. This is the full
    /// batched path: fourier-less tanh nets, second derivatives along
    /// both inputs, and a Dirichlet boundary term.
    #[test]
    fn pinn_lockstep_sweep_matches_solo_bitwise() {
        use sgm_train::{ParamSweep, SweepJob};
        const DT: f64 = 1.0 / 1024.0;
        let setups: Vec<_> = (0..3).map(|i| poisson_setup(40 + i)).collect();
        let optses: Vec<TrainOptions> = (0..3)
            .map(|i| TrainOptions {
                iterations: 30,
                batch_interior: 24,
                batch_boundary: 12,
                adam: AdamConfig {
                    lr: [5e-3, 1e-3, 2e-3][i],
                    schedule: if i == 2 {
                        LrSchedule::Exponential {
                            gamma: 0.9,
                            decay_steps: 5,
                        }
                    } else {
                        LrSchedule::Constant
                    },
                    ..AdamConfig::default()
                },
                seed: 7 + i as u64,
                record_every: 10,
                max_seconds: None,
                synthetic_dt: Some(DT),
            })
            .collect();

        // Solo reference runs.
        let mut solo = Vec::new();
        for (i, (net, problem, data, val)) in setups.iter().enumerate() {
            let mut n = net.clone();
            let model = PinnModel::new(problem, data);
            let mut sampler = UniformSampler::new(data.num_interior());
            let r = Trainer {
                net: &mut n,
                model: &model,
            }
            .run(&mut sampler, Some(val), &optses[i]);
            solo.push((n, r));
        }

        // The same three runs as one lockstep batch.
        let mut nets: Vec<Mlp> = setups.iter().map(|s| s.0.clone()).collect();
        let models: Vec<PinnModel<'_>> = setups
            .iter()
            .map(|(_, problem, data, _)| PinnModel::new(problem, data))
            .collect();
        let mut samplers: Vec<UniformSampler> = setups
            .iter()
            .map(|(_, _, data, _)| UniformSampler::new(data.num_interior()))
            .collect();
        let mut jobs: Vec<SweepJob<'_>> = nets
            .iter_mut()
            .zip(&models)
            .zip(&mut samplers)
            .zip(&optses)
            .zip(&setups)
            .map(|((((net, model), sampler), opts), setup)| SweepJob {
                net,
                model,
                sampler,
                validator: Some(&setup.3),
                opts,
            })
            .collect();
        let results = ParamSweep::run(&mut jobs).unwrap();
        drop(jobs);

        for i in 0..3 {
            let (sn, sr) = &solo[i];
            let br = &results[i];
            assert_eq!(sr.history.len(), br.history.len(), "job {i}: history");
            for (a, b) in sr.history.iter().zip(&br.history) {
                assert_eq!(a.iteration, b.iteration, "job {i}");
                assert_eq!(a.seconds.to_bits(), b.seconds.to_bits(), "job {i}");
                assert_eq!(
                    a.train_loss.to_bits(),
                    b.train_loss.to_bits(),
                    "job {i} iter {}",
                    a.iteration
                );
                assert_eq!(a.val_errors.len(), b.val_errors.len(), "job {i}");
                for (x, y) in a.val_errors.iter().zip(&b.val_errors) {
                    assert_eq!(x.to_bits(), y.to_bits(), "job {i} iter {}", a.iteration);
                }
            }
            for (a, b) in sn.params().iter().zip(&nets[i].params()) {
                assert_eq!(a.to_bits(), b.to_bits(), "job {i}: params");
            }
        }
    }
}
