//! Regression guard wiring the testkit's property sweep into the crate
//! that owns `RunState`: random single-byte corruption of a saved run
//! never panics the loader.

use sgm_json::{obj, Value};
use sgm_linalg::rng::Rng64;
use sgm_nn::activation::Activation;
use sgm_nn::checkpoint::Checkpoint;
use sgm_nn::mlp::{Mlp, MlpConfig};
use sgm_testkit::sweep::Sweep;
use sgm_train::{Record, RunState};

#[test]
fn corrupting_one_byte_never_panics_the_loader() {
    let net = Mlp::new(
        &MlpConfig {
            input_dim: 2,
            output_dim: 1,
            hidden_width: 4,
            hidden_layers: 1,
            activation: Activation::Tanh,
            fourier: None,
        },
        &mut Rng64::new(5),
    );
    let json = RunState {
        version: 1,
        iteration: 3,
        train_seconds: 0.5,
        record_seconds: 0.1,
        net: Checkpoint::capture(&net),
        adam_t: 3,
        adam_m: vec![0.1, f64::NAN],
        adam_v: vec![0.2, f64::INFINITY],
        rng_state: [1, 2, 3, 4],
        rng_gauss_spare: None,
        history: vec![Record {
            iteration: 1,
            seconds: 0.2,
            train_loss: 0.5,
            val_errors: vec![0.1],
        }],
        sampler_name: "uniform".into(),
        sampler_state: obj([("cursor", Value::Num(0.0))]),
        points: None,
    }
    .to_json()
    .expect("state saves");

    Sweep::new(0x5EEDED, 60).run(
        |rng| (rng.below(json.len()), b' ' + rng.below(95) as u8),
        |&(pos, byte)| {
            if pos > 0 {
                vec![(pos / 2, byte)]
            } else {
                Vec::new()
            }
        },
        |&(pos, byte)| {
            let mut bytes = json.clone().into_bytes();
            bytes[pos] = byte;
            // Ok and Err are both acceptable; the Sweep catches panics.
            let _ = RunState::from_json(&String::from_utf8(bytes).unwrap());
            Ok(())
        },
    );
}
