//! The engine-owned, mutable collocation set.
//!
//! Classic samplers only reweight draws over a fixed cloud; the adaptive
//! rivals (DMIS, RAD, RAR-D) *move, add or drop* collocation points. The
//! [`PointSet`] is the single authoritative copy of the interior
//! coordinates during such a run: the engine builds it from
//! [`LossModel::interior_cloud`](crate::LossModel::interior_cloud) before
//! the first iteration, lends it mutably to
//! [`Sampler::adapt`](crate::Sampler::adapt) each iteration, and gathers
//! every subsequent batch from it instead of from the model's internal
//! dataset.
//!
//! Every mutation is recorded in a [`PointChanges`] log that the engine
//! drains once per iteration — it drives workspace re-validation, the
//! [`on_points_changed`](crate::Sampler::on_points_changed) notification
//! (how the SGM graph layer learns which rows to patch through its
//! incremental-kNN delta path) and the `sgm_train_points_*` metrics.
//!
//! # Allocation contract
//!
//! Iterations where `adapt` does not mutate the set must stay
//! allocation-free: the change log's `moved` buffer keeps its capacity
//! across [`PointSet::drain_changes`] calls, and a no-op adapt touches
//! nothing. Mutating iterations run probe evaluations and may allocate —
//! they are the adaptive analogue of the `τ_e` refresh, not the
//! steady-state path.

use sgm_graph::points::PointCloud;

/// Log of one adapt phase's mutations, in engine-visible form.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PointChanges {
    /// Indices whose coordinates were overwritten (deduplicated, sorted).
    pub moved: Vec<usize>,
    /// Points appended at the end of the set.
    pub added: usize,
    /// Points dropped from the end of the set.
    pub dropped: usize,
}

impl PointChanges {
    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.moved.is_empty() && self.added == 0 && self.dropped == 0
    }

    fn clear(&mut self) {
        self.moved.clear();
        self.added = 0;
        self.dropped = 0;
    }
}

/// Mutable interior collocation set with a change log and an epoch
/// counter (bumped once per mutating adapt phase; checkpointed so a
/// resumed run knows how many mutations preceded it).
#[derive(Debug, Clone, PartialEq)]
pub struct PointSet {
    cloud: PointCloud,
    epoch: u64,
    pending: PointChanges,
}

impl PointSet {
    /// Wraps an initial cloud (epoch 0, no pending changes).
    pub fn new(cloud: PointCloud) -> Self {
        PointSet {
            cloud,
            epoch: 0,
            pending: PointChanges::default(),
        }
    }

    /// Rebuilds a set from checkpointed parts (resume path).
    ///
    /// # Panics
    /// Panics if the flat buffer is not a multiple of `dim`.
    pub fn from_parts(dim: usize, coords: Vec<f64>, epoch: u64) -> Self {
        PointSet {
            cloud: PointCloud::from_flat(dim, coords),
            epoch,
            pending: PointChanges::default(),
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.cloud.len()
    }

    /// True when the set holds no points.
    pub fn is_empty(&self) -> bool {
        self.cloud.is_empty()
    }

    /// Coordinate dimension.
    pub fn dim(&self) -> usize {
        self.cloud.dim()
    }

    /// Mutations applied so far (one per mutating adapt phase).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Read-only view of the current coordinates.
    pub fn cloud(&self) -> &PointCloud {
        &self.cloud
    }

    /// Flat row-major coordinate buffer.
    pub fn coords(&self) -> &[f64] {
        self.cloud.as_slice()
    }

    /// Borrow of point `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn point(&self, i: usize) -> &[f64] {
        self.cloud.point(i)
    }

    /// Moves point `i` to `p`, logging it.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds or `p.len() != dim`.
    pub fn set_point(&mut self, i: usize, p: &[f64]) {
        assert!(i < self.len(), "set_point index {i} out of bounds");
        self.cloud.set_point(i, p);
        self.pending.moved.push(i);
    }

    /// Appends a point, logging it.
    ///
    /// # Panics
    /// Panics if `p.len() != dim`.
    pub fn push(&mut self, p: &[f64]) {
        self.cloud.push(p);
        self.pending.added += 1;
    }

    /// Drops all points past the first `n`, logging the removal.
    ///
    /// # Panics
    /// Panics if `n == 0` (an empty collocation set cannot be trained
    /// on) or `n > len`.
    pub fn truncate(&mut self, n: usize) {
        assert!(n > 0, "cannot truncate point set to zero points");
        assert!(n <= self.len(), "truncate {n} beyond len {}", self.len());
        self.pending.dropped += self.len() - n;
        self.cloud.truncate(n);
    }

    /// Drains the pending change log into `out` (deduplicating the moved
    /// list and dropping moved indices that no longer exist). Returns
    /// `true` — after bumping the epoch — when anything changed. The
    /// engine calls this once per iteration, reusing one `out` across
    /// the run so quiet iterations stay allocation-free.
    pub fn drain_changes(&mut self, out: &mut PointChanges) -> bool {
        out.clear();
        if self.pending.is_empty() {
            return false;
        }
        std::mem::swap(&mut out.moved, &mut self.pending.moved);
        out.moved.sort_unstable();
        out.moved.dedup();
        out.moved.retain(|&i| i < self.len());
        out.added = self.pending.added;
        out.dropped = self.pending.dropped;
        self.pending.clear();
        self.epoch += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set3() -> PointSet {
        PointSet::new(PointCloud::from_flat(2, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]))
    }

    #[test]
    fn mutations_are_logged_and_epoch_bumps_per_drain() {
        let mut ps = set3();
        assert_eq!(ps.epoch(), 0);
        ps.set_point(1, &[5.0, 5.0]);
        ps.set_point(1, &[6.0, 6.0]);
        ps.push(&[7.0, 7.0]);
        let mut ch = PointChanges::default();
        assert!(ps.drain_changes(&mut ch));
        assert_eq!(ch.moved, vec![1]);
        assert_eq!(ch.added, 1);
        assert_eq!(ch.dropped, 0);
        assert_eq!(ps.epoch(), 1);
        assert_eq!(ps.point(1), &[6.0, 6.0]);
        assert_eq!(ps.len(), 4);
        // Quiet drain: no change, no epoch bump.
        assert!(!ps.drain_changes(&mut ch));
        assert_eq!(ps.epoch(), 1);
    }

    #[test]
    fn truncate_logs_dropped_and_filters_moved() {
        let mut ps = set3();
        ps.set_point(2, &[9.0, 9.0]);
        ps.truncate(2);
        let mut ch = PointChanges::default();
        assert!(ps.drain_changes(&mut ch));
        assert_eq!(ch.dropped, 1);
        // The moved index no longer exists — it must not be reported.
        assert!(ch.moved.is_empty());
        assert_eq!(ps.len(), 2);
    }

    #[test]
    #[should_panic(expected = "zero points")]
    fn truncate_to_zero_panics() {
        set3().truncate(0);
    }

    #[test]
    fn from_parts_roundtrips() {
        let mut ps = set3();
        ps.push(&[3.0, 3.0]);
        let mut ch = PointChanges::default();
        ps.drain_changes(&mut ch);
        let back = PointSet::from_parts(ps.dim(), ps.coords().to_vec(), ps.epoch());
        assert_eq!(back, ps);
    }
}
