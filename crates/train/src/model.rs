//! The problem-side interface of the engine.
//!
//! A [`LossModel`] is everything the trainer needs to know about the
//! thing being optimised: dataset sizes, how to gather a batch into a
//! preallocated workspace, and how to turn the gathered batch into a
//! loss value and exact parameter gradients. `sgm-physics` implements it
//! for PINN problems; the engine itself stays PDE-agnostic.

use sgm_graph::points::PointCloud;
use sgm_linalg::dense::Matrix;
use sgm_nn::mlp::{BatchDerivatives, Gradients, Mlp};
use std::any::Any;

/// Opaque per-run scratch owned by the engine but understood only by the
/// [`LossModel`] that created it. Models downcast through [`Any`] to
/// their concrete workspace type.
pub trait ModelWorkspace: Any {
    /// Upcast for downcasting in model implementations.
    fn as_any(&self) -> &dyn Any;
    /// Mutable upcast for downcasting in model implementations.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// A differentiable training objective over an indexed collocation set.
///
/// The hot-path contract: [`LossModel::gather`] and
/// [`LossModel::loss_and_grad`] must not allocate once the workspace
/// returned by [`LossModel::make_workspace`] exists (under serial
/// parallelism) — the engine's zero-allocation guarantee is only as
/// good as the model's. The probe-path methods ([`LossModel::batch_loss`],
/// [`LossModel::sample_losses`], [`LossModel::outputs`],
/// [`LossModel::inputs`]) run off the training clock and may allocate.
pub trait LossModel: Sync {
    /// Number of interior collocation points.
    fn num_interior(&self) -> usize;

    /// Number of boundary points (0 when the problem has no boundary
    /// term).
    fn num_boundary(&self) -> usize;

    /// Builds the per-run workspace for fixed batch shapes
    /// (`batch_boundary` is the *effective* boundary batch, already
    /// clamped by the engine to the boundary set size).
    fn make_workspace(
        &self,
        net: &Mlp,
        batch_interior: usize,
        batch_boundary: usize,
    ) -> Box<dyn ModelWorkspace>;

    /// Copies the rows selected by `interior_idx` / `boundary_idx` into
    /// the workspace. Index slice lengths always equal the batch shapes
    /// the workspace was built for.
    fn gather(&self, interior_idx: &[usize], boundary_idx: &[usize], ws: &mut dyn ModelWorkspace);

    /// Loss of the gathered batch under `net`, with exact parameter
    /// gradients **accumulated** into `grads` (the engine zeroes `grads`
    /// beforehand).
    fn loss_and_grad(&self, net: &Mlp, ws: &mut dyn ModelWorkspace, grads: &mut Gradients) -> f64;

    /// Batch loss alone (no gradients) at the given indices — the
    /// record-path evaluation, charged to the recording clock.
    fn batch_loss(&self, net: &Mlp, interior_idx: &[usize], boundary_idx: &[usize]) -> f64;

    /// Per-sample interior losses at the given indices (the paper's
    /// `r × N` probe evaluations every `τ_e` iterations).
    fn sample_losses(&self, net: &Mlp, idx: &[usize]) -> Vec<f64>;

    /// Network outputs at the given interior indices (the ISR stage
    /// builds its output graph from these).
    fn outputs(&self, net: &Mlp, idx: &[usize]) -> Matrix;

    /// Input rows at the given interior indices.
    fn inputs(&self, idx: &[usize]) -> Matrix;

    // --- Point-set mutation support (optional) -----------------------
    //
    // Adaptive samplers (DMIS / RAD / RAR-D) mutate the collocation set
    // during training. Models that support this return their initial
    // interior coordinates from `interior_cloud` and MUST then override
    // every `*_from` / `*_at` method below: the engine routes all batch
    // work through them whenever a mutable point set exists, so the
    // panicking defaults are only reachable through an incomplete
    // implementation, never through a draw-only run.

    /// Initial interior coordinates, as one input row per point — the
    /// seed of the engine-owned mutable [`PointSet`](crate::PointSet).
    /// `None` (the default) means the model does not support point-set
    /// mutation and adaptive samplers cannot be used with it.
    fn interior_cloud(&self) -> Option<PointCloud> {
        None
    }

    /// Like [`LossModel::gather`], but reading interior coordinates from
    /// `points` (the current, possibly mutated set) instead of the
    /// model's internal dataset.
    fn gather_from(
        &self,
        points: &PointCloud,
        interior_idx: &[usize],
        boundary_idx: &[usize],
        ws: &mut dyn ModelWorkspace,
    ) {
        let _ = (points, interior_idx, boundary_idx, ws);
        unimplemented!("model returned Some from interior_cloud but does not implement gather_from")
    }

    /// Like [`LossModel::batch_loss`], but reading interior coordinates
    /// from `points`.
    fn batch_loss_from(
        &self,
        net: &Mlp,
        points: &PointCloud,
        interior_idx: &[usize],
        boundary_idx: &[usize],
    ) -> f64 {
        let _ = (net, points, interior_idx, boundary_idx);
        unimplemented!(
            "model returned Some from interior_cloud but does not implement batch_loss_from"
        )
    }

    /// Per-sample interior losses at arbitrary coordinates (one row per
    /// point) — the probe path adaptive samplers use to score both the
    /// current set and proposal candidates.
    fn losses_at(&self, net: &Mlp, coords: &Matrix) -> Vec<f64> {
        let _ = (net, coords);
        unimplemented!("model returned Some from interior_cloud but does not implement losses_at")
    }

    /// Network outputs at arbitrary coordinates. The default forwards
    /// the rows through the network directly, which is correct whenever
    /// the interior input rows *are* the coordinates (true for every
    /// model in this workspace).
    fn outputs_at(&self, net: &Mlp, coords: &Matrix) -> Matrix {
        net.forward(coords)
    }
}

/// A [`LossModel`] whose loss/gradient computation factors through the
/// network's derivative interface, enabling batched multi-model
/// execution (see `crate::multi`).
///
/// [`LossModel::loss_and_grad`] stages as
/// `forward → adjoint seeding → backward`; this trait exposes the
/// adjoint-seeding middle so a lockstep runner can route the forward and
/// backward halves through [`sgm_nn::BatchedMlp`] while each model still
/// computes its own adjoints from its own (deinterleaved) derivatives.
/// The contract: for identical derivative inputs, the adjoints written
/// by [`BatchedLossModel::interior_adjoints`] /
/// [`BatchedLossModel::boundary_adjoints`] must be bit-identical to the
/// ones [`LossModel::loss_and_grad`] seeds internally — that is what
/// keeps lockstep runs bit-identical to solo runs.
pub trait BatchedLossModel: LossModel {
    /// Input dimensions the interior forward pass differentiates along
    /// (the PDE's `diff_dims`; empty for value-only objectives).
    fn diff_dims(&self) -> Vec<usize>;

    /// The gathered interior batch rows inside `ws`.
    fn interior_input<'a>(&self, ws: &'a dyn ModelWorkspace) -> &'a Matrix;

    /// The gathered boundary batch rows inside `ws`, `None` when the
    /// objective has no boundary term.
    fn boundary_input<'a>(&self, ws: &'a dyn ModelWorkspace) -> Option<&'a Matrix>;

    /// Computes the interior loss and writes the interior adjoints for
    /// the given forward `derivs` (values + requested jac/hess) into
    /// `adj`. Returns the interior loss term.
    fn interior_adjoints(
        &self,
        ws: &mut dyn ModelWorkspace,
        derivs: &BatchDerivatives,
        adj: &mut BatchDerivatives,
    ) -> f64;

    /// Computes the boundary loss and writes the value adjoints for the
    /// given boundary outputs into `adj` (which carries no derivative
    /// buffers). Returns the boundary loss term.
    fn boundary_adjoints(
        &self,
        ws: &mut dyn ModelWorkspace,
        values: &Matrix,
        adj: &mut BatchDerivatives,
    ) -> f64;
}

/// Off-clock validation evaluated at recording points.
///
/// Implemented by `sgm-physics`' validation sets; the engine only needs
/// the per-output error vector.
pub trait Validator {
    /// Relative errors per validated output, empty when nothing is
    /// validated.
    fn val_errors(&self, net: &Mlp) -> Vec<f64>;
}
