//! The training engine of the SGM-PINN reproduction.
//!
//! Every experiment in the paper (Tables 1–2, Figures 2–4) is a
//! wall-clock race between samplers, so the training loop is the
//! measurement instrument. This crate makes it a first-class subsystem:
//!
//! * **Staged pipeline** — each iteration runs an explicit
//!   `refresh → adapt → draw → gather → loss/grad → step → record`
//!   sequence (see [`Stage`]), instrumentable per stage through the
//!   [`Hook`] trait.
//! * **Mutable collocation sets** — samplers that opt into
//!   [`Sampler::adapts_points`] receive the engine-owned [`PointSet`]
//!   every iteration and may move/add/drop collocation points; the
//!   engine re-gathers batches from the mutated set, logs
//!   [`PointChanges`] to hooks and checkpoints the coordinates.
//! * **Clean layering** — the engine knows nothing about PDEs. Physics
//!   crates implement [`LossModel`]; sampler crates implement
//!   [`Sampler`]. Both traits are defined *here*, so `sgm-core` and
//!   `sgm-physics` depend on `sgm-train` rather than on each other.
//! * **Zero-allocation hot path** — all per-iteration buffers (batch
//!   indices, gather matrices, network scratch, gradient accumulators,
//!   optimiser scratch) are preallocated once per run; under
//!   `Parallelism::Serial` a steady-state iteration performs no heap
//!   allocations at all.
//! * **Honest clocks** — training time and recording/validation time
//!   are accounted separately; [`Record::seconds`] and
//!   [`TrainResult::time_to_error`] measure only training, which is
//!   what the paper's `T(M_β_j)` columns measure.
//! * **Resumable runs** — [`RunState`] captures network, Adam moments,
//!   RNG state, sampler state, clocks and history; a killed run resumes
//!   bit-identically (see [`Trainer::run_until`] / [`Trainer::resume`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod hooks;
pub mod model;
pub mod multi;
pub mod obs;
pub mod pointset;
pub mod result;
pub mod runstate;
pub mod sampler;

pub use engine::{Segment, TrainOptions, Trainer};
pub use hooks::{Hook, Stage, StageTimes};
pub use model::{BatchedLossModel, LossModel, ModelWorkspace, Validator};
pub use multi::{run_lockstep, MultiJob, ParamSweep, SweepJob};
pub use obs::ObsHook;
pub use pointset::{PointChanges, PointSet};
pub use result::{Record, TrainResult};
pub use runstate::{PointsCheckpoint, RunState, RunStateError};
pub use sampler::{Probe, Sampler, UniformSampler};
