//! Training history and result queries.

/// One history record.
///
/// `train_loss` is the batch loss of this iteration's mini-batch
/// evaluated **after** the optimiser step, i.e. against the same weights
/// `val_errors` is measured with — losses and validation errors in one
/// record always describe one set of weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Iteration index.
    pub iteration: usize,
    /// Training-clock seconds at this record: time spent in the
    /// refresh/draw/gather/loss/step stages only. Recording and
    /// validation time is excluded (tracked separately in
    /// [`TrainResult::record_seconds`]).
    pub seconds: f64,
    /// Post-step total training loss (interior + boundary) on this
    /// iteration's batch.
    pub train_loss: f64,
    /// Validation errors per validated output (averaged over validation
    /// sets), empty when no validation set was provided.
    pub val_errors: Vec<f64>,
}

/// The outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// Periodic records, oldest first.
    pub history: Vec<Record>,
    /// Seconds spent in the training stages (the paper's clock).
    pub train_seconds: f64,
    /// Seconds spent recording (post-step loss + validation).
    pub record_seconds: f64,
    /// Wall-clock duration of the whole run:
    /// `train_seconds + record_seconds`.
    pub total_seconds: f64,
    /// Sampler name used.
    pub sampler: String,
}

impl TrainResult {
    /// Minimum validation error and the training-clock time it was
    /// reached, for validated output column `col`. Non-finite errors
    /// (diverged records) are skipped.
    pub fn min_error(&self, col: usize) -> Option<(f64, f64)> {
        self.history
            .iter()
            .filter(|r| col < r.val_errors.len() && r.val_errors[col].is_finite())
            .map(|r| (r.val_errors[col], r.seconds))
            .min_by(|a, b| a.0.total_cmp(&b.0))
    }

    /// First training-clock time at which the error for `col` dropped
    /// to `target` or below (the paper's `T(M_β_j)` entries).
    pub fn time_to_error(&self, col: usize, target: f64) -> Option<f64> {
        self.history
            .iter()
            .find(|r| col < r.val_errors.len() && r.val_errors[col] <= target)
            .map(|r| r.seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(iteration: usize, seconds: f64, err: f64) -> Record {
        Record {
            iteration,
            seconds,
            train_loss: err,
            val_errors: vec![err],
        }
    }

    #[test]
    fn time_to_error_finds_first_crossing() {
        let result = TrainResult {
            history: vec![rec(0, 1.0, 0.5), rec(10, 2.0, 0.2), rec(20, 3.0, 0.25)],
            train_seconds: 3.0,
            record_seconds: 0.0,
            total_seconds: 3.0,
            sampler: "test".into(),
        };
        assert_eq!(result.time_to_error(0, 0.2), Some(2.0));
        assert_eq!(result.time_to_error(0, 0.1), None);
        let (best, at) = result.min_error(0).unwrap();
        assert_eq!((best, at), (0.2, 2.0));
    }

    #[test]
    fn min_error_skips_non_finite_records() {
        let result = TrainResult {
            history: vec![
                rec(0, 1.0, f64::NAN),
                rec(10, 2.0, 0.3),
                rec(20, 3.0, f64::INFINITY),
                rec(30, 4.0, 0.4),
            ],
            train_seconds: 4.0,
            record_seconds: 0.0,
            total_seconds: 4.0,
            sampler: "test".into(),
        };
        // NaN / inf entries must neither win nor panic.
        assert_eq!(result.min_error(0), Some((0.3, 2.0)));
    }

    #[test]
    fn min_error_none_when_all_non_finite_or_missing() {
        let result = TrainResult {
            history: vec![rec(0, 1.0, f64::NAN)],
            train_seconds: 1.0,
            record_seconds: 0.0,
            total_seconds: 1.0,
            sampler: "test".into(),
        };
        assert_eq!(result.min_error(0), None);
        assert_eq!(result.min_error(3), None);
    }
}
