//! The sampler interface and the uniform baseline.
//!
//! The trainer is deliberately sampler-agnostic: every iteration it asks
//! a [`Sampler`] to fill the interior mini-batch index buffer and offers
//! it a [`Probe`] through which the sampler may (on its own schedule,
//! e.g. every `τ_e` iterations) evaluate per-sample losses or network
//! outputs on subsets of the dataset. The uniform / MIS / RAR / SGM-PINN
//! samplers all implement this trait, so the experiment harness compares
//! them under identical training mechanics — exactly the paper's setup
//! on Modulus.
//!
//! # The draw/adapt split
//!
//! The trait has two capabilities. Every sampler implements the **draw**
//! side ([`Sampler::fill_batch`] + [`Sampler::refresh`]): reweighting
//! mini-batch draws over a fixed collocation set. Samplers that also
//! mutate the collocation *set* — DMIS, RAD, RAR-D — opt into the
//! **adapt** side by returning `true` from [`Sampler::adapts_points`]
//! and implementing [`Sampler::adapt`], which receives the engine-owned
//! [`PointSet`] mutably once per iteration (between `Refresh` and
//! `Draw`). After a mutating adapt the engine re-validates batch shapes,
//! gathers all subsequent batches from the mutated set and calls
//! [`Sampler::on_points_changed`] so graph-backed samplers can patch
//! their structures incrementally.
//!
//! # Allocation contract
//!
//! [`Sampler::fill_batch`] must not allocate in steady state (the engine
//! reuses one index buffer for the whole run). [`Sampler::adapt`] must
//! not allocate on iterations where it leaves the set untouched; on
//! mutating iterations it runs probe evaluations and may allocate, like
//! a `τ_e` refresh.

use crate::model::LossModel;
use crate::pointset::{PointChanges, PointSet};
use sgm_json::Value;
use sgm_linalg::dense::Matrix;
use sgm_linalg::rng::Rng64;
use sgm_nn::mlp::Mlp;

/// Read-only view the trainer lends to samplers so they can score
/// samples. When the run has a mutable [`PointSet`] (an adaptive
/// sampler is active), all index-based methods read the *current*
/// coordinates from it rather than the model's initial dataset.
pub struct Probe<'a> {
    /// Current network.
    pub net: &'a Mlp,
    /// The training objective (for loss/output evaluation).
    pub model: &'a (dyn LossModel + 'a),
    points: Option<&'a PointSet>,
}

impl std::fmt::Debug for Probe<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Probe").finish_non_exhaustive()
    }
}

impl<'a> Probe<'a> {
    /// A probe over the model's own (fixed) collocation set.
    pub fn new(net: &'a Mlp, model: &'a (dyn LossModel + 'a)) -> Self {
        Probe {
            net,
            model,
            points: None,
        }
    }

    /// A probe whose index-based methods read coordinates from `points`
    /// (the engine uses this whenever an adaptive sampler owns the set).
    pub fn with_points(
        net: &'a Mlp,
        model: &'a (dyn LossModel + 'a),
        points: Option<&'a PointSet>,
    ) -> Self {
        Probe { net, model, points }
    }

    /// The engine-owned point set, when one exists.
    pub fn points(&self) -> Option<&'a PointSet> {
        self.points
    }

    fn gather_points(&self, ps: &PointSet, idx: &[usize]) -> Matrix {
        let mut m = Matrix::zeros(idx.len(), ps.dim());
        for (r, &i) in idx.iter().enumerate() {
            for (c, &v) in ps.point(i).iter().enumerate() {
                m.set(r, c, v);
            }
        }
        m
    }

    /// Per-sample interior losses at the given indices (paper: the
    /// `r × N` loss calculations every `τ_e` iterations).
    pub fn sample_losses(&self, idx: &[usize]) -> Vec<f64> {
        match self.points {
            Some(ps) => self.model.losses_at(self.net, &self.gather_points(ps, idx)),
            None => self.model.sample_losses(self.net, idx),
        }
    }

    /// Per-sample interior losses at arbitrary coordinates (one row per
    /// candidate point) — how the adaptive samplers score proposal
    /// points that are not in the set yet.
    pub fn losses_at(&self, coords: &Matrix) -> Vec<f64> {
        self.model.losses_at(self.net, coords)
    }

    /// Network outputs at the given interior indices (the ISR stage
    /// builds its output graph from these).
    pub fn outputs(&self, idx: &[usize]) -> Matrix {
        match self.points {
            Some(ps) => self
                .model
                .outputs_at(self.net, &self.gather_points(ps, idx)),
            None => self.model.outputs(self.net, idx),
        }
    }

    /// Input rows at the given interior indices.
    pub fn inputs(&self, idx: &[usize]) -> Matrix {
        match self.points {
            Some(ps) => self.gather_points(ps, idx),
            None => self.model.inputs(idx),
        }
    }

    /// Size of the interior dataset (the *current* point-set size when
    /// an adaptive sampler owns it).
    pub fn num_interior(&self) -> usize {
        match self.points {
            Some(ps) => ps.len(),
            None => self.model.num_interior(),
        }
    }
}

/// Chooses interior mini-batches; may maintain internal importance
/// state, and may opt into mutating the collocation set itself (see the
/// module docs for the draw/adapt split).
pub trait Sampler {
    /// Short display name (used in experiment tables).
    fn name(&self) -> &str;

    /// Writes the indices of the next interior mini-batch into `out`
    /// (clearing it first). The engine reuses one buffer for the whole
    /// run, so implementations must not allocate here in steady state.
    fn fill_batch(&mut self, batch_size: usize, out: &mut Vec<usize>, rng: &mut Rng64);

    /// Called once per iteration *before* the batch is drawn; samplers
    /// refresh importance state here on their own schedule.
    fn refresh(&mut self, iter: usize, probe: &Probe<'_>, rng: &mut Rng64) {
        let _ = (iter, probe, rng);
    }

    /// Whether this sampler mutates the collocation set. When `true`,
    /// the engine builds a [`PointSet`] from
    /// [`LossModel::interior_cloud`] (which must return `Some`), runs
    /// the `Adapt` stage every iteration and gathers batches from the
    /// set. Draw-only samplers keep the default `false` and pay nothing.
    fn adapts_points(&self) -> bool {
        false
    }

    /// Mutates the collocation set (move / add / drop points) on the
    /// sampler's own schedule. Runs between `Refresh` and `Draw`; only
    /// called when [`Sampler::adapts_points`] is `true`. Must not
    /// allocate on iterations where it leaves the set untouched.
    ///
    /// The probe passed here has no point-set view (the sampler holds
    /// the set mutably): score coordinates read from `points` through
    /// [`Probe::losses_at`] rather than the index-based methods, which
    /// would see the model's initial dataset.
    fn adapt(&mut self, points: &mut PointSet, iter: usize, probe: &Probe<'_>, rng: &mut Rng64) {
        let _ = (points, iter, probe, rng);
    }

    /// Notification that the adapt phase mutated the set (issued by the
    /// engine after draining the change log, before the draw). Samplers
    /// layered on graph structures patch them here — the SGM sampler
    /// routes `changes.moved` into its incremental-kNN delta path.
    fn on_points_changed(&mut self, points: &PointSet, changes: &PointChanges) {
        let _ = (points, changes);
    }

    /// Coordinate resynchronisation on resume: called once after
    /// [`Sampler::load_state`] when the checkpoint carried a point set,
    /// with the restored coordinates. Unlike
    /// [`Sampler::on_points_changed`] this must not mark anything dirty
    /// — the restored state already reflects these coordinates.
    fn sync_points(&mut self, points: &PointSet) {
        let _ = points;
    }

    /// Serialisable importance state for run checkpointing. Stateless
    /// samplers return [`Value::Null`].
    fn save_state(&self) -> Value {
        Value::Null
    }

    /// Restores state captured by [`Sampler::save_state`]. The default
    /// accepts only [`Value::Null`] (stateless samplers).
    ///
    /// # Errors
    /// Returns a message when the payload does not match this sampler.
    fn load_state(&mut self, state: &Value) -> Result<(), String> {
        match state {
            Value::Null => Ok(()),
            _ => Err(format!(
                "sampler {:?} does not accept saved state",
                self.name()
            )),
        }
    }
}

/// Trivial uniform sampler (the `U_β` baselines).
#[derive(Debug, Clone, Default)]
pub struct UniformSampler {
    n: usize,
}

impl UniformSampler {
    /// Uniform sampler over `n` interior points.
    pub fn new(n: usize) -> Self {
        UniformSampler { n }
    }
}

impl Sampler for UniformSampler {
    fn name(&self) -> &str {
        "uniform"
    }

    fn fill_batch(&mut self, batch_size: usize, out: &mut Vec<usize>, rng: &mut Rng64) {
        out.clear();
        for _ in 0..batch_size {
            out.push(rng.below(self.n));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn next_batch(s: &mut dyn Sampler, batch: usize, rng: &mut Rng64) -> Vec<usize> {
        let mut out = Vec::new();
        s.fill_batch(batch, &mut out, rng);
        out
    }

    #[test]
    fn uniform_sampler_covers_dataset() {
        let mut s = UniformSampler::new(20);
        let mut rng = Rng64::new(1);
        let mut seen = [false; 20];
        for _ in 0..50 {
            for i in next_batch(&mut s, 10, &mut rng) {
                assert!(i < 20);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn fill_batch_clears_stale_contents() {
        let mut a = UniformSampler::new(33);
        let mut b = UniformSampler::new(33);
        let mut ra = Rng64::new(5);
        let mut rb = Rng64::new(5);
        let mut buf = vec![999usize; 4];
        a.fill_batch(7, &mut buf, &mut ra);
        assert_eq!(buf, next_batch(&mut b, 7, &mut rb));
    }

    #[test]
    fn default_state_roundtrip() {
        let mut s = UniformSampler::new(5);
        let saved = s.save_state();
        assert!(matches!(saved, Value::Null));
        assert!(s.load_state(&saved).is_ok());
        assert!(s.load_state(&Value::Num(1.0)).is_err());
    }

    #[test]
    fn draw_only_samplers_do_not_adapt() {
        let s = UniformSampler::new(5);
        assert!(!s.adapts_points());
    }
}
