//! The sampler interface and the uniform baseline.
//!
//! The trainer is deliberately sampler-agnostic: every iteration it asks
//! a [`Sampler`] to fill the interior mini-batch index buffer and offers
//! it a [`Probe`] through which the sampler may (on its own schedule,
//! e.g. every `τ_e` iterations) evaluate per-sample losses or network
//! outputs on subsets of the dataset. The uniform / MIS / RAR / SGM-PINN
//! samplers all implement this trait, so the experiment harness compares
//! them under identical training mechanics — exactly the paper's setup
//! on Modulus.

use crate::model::LossModel;
use sgm_json::Value;
use sgm_linalg::dense::Matrix;
use sgm_linalg::rng::Rng64;
use sgm_nn::mlp::Mlp;

/// Read-only view the trainer lends to samplers so they can score
/// samples.
pub struct Probe<'a> {
    /// Current network.
    pub net: &'a Mlp,
    /// The training objective (for loss/output evaluation).
    pub model: &'a (dyn LossModel + 'a),
}

impl std::fmt::Debug for Probe<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Probe").finish_non_exhaustive()
    }
}

impl Probe<'_> {
    /// Per-sample interior losses at the given indices (paper: the
    /// `r × N` loss calculations every `τ_e` iterations).
    pub fn sample_losses(&self, idx: &[usize]) -> Vec<f64> {
        self.model.sample_losses(self.net, idx)
    }

    /// Network outputs at the given interior indices (the ISR stage
    /// builds its output graph from these).
    pub fn outputs(&self, idx: &[usize]) -> Matrix {
        self.model.outputs(self.net, idx)
    }

    /// Input rows at the given interior indices.
    pub fn inputs(&self, idx: &[usize]) -> Matrix {
        self.model.inputs(idx)
    }

    /// Size of the interior dataset.
    pub fn num_interior(&self) -> usize {
        self.model.num_interior()
    }
}

/// Chooses interior mini-batches; may maintain internal importance
/// state.
pub trait Sampler {
    /// Short display name (used in experiment tables).
    fn name(&self) -> &str;

    /// Writes the indices of the next interior mini-batch into `out`
    /// (clearing it first). The engine reuses one buffer for the whole
    /// run, so implementations must not allocate here in steady state.
    fn fill_batch(&mut self, batch_size: usize, out: &mut Vec<usize>, rng: &mut Rng64);

    /// Allocating convenience wrapper around [`Sampler::fill_batch`].
    fn next_batch(&mut self, batch_size: usize, rng: &mut Rng64) -> Vec<usize> {
        let mut out = Vec::with_capacity(batch_size);
        self.fill_batch(batch_size, &mut out, rng);
        out
    }

    /// Called once per iteration *before* the batch is drawn; samplers
    /// refresh importance state here on their own schedule.
    fn refresh(&mut self, iter: usize, probe: &Probe<'_>, rng: &mut Rng64) {
        let _ = (iter, probe, rng);
    }

    /// Serialisable importance state for run checkpointing. Stateless
    /// samplers return [`Value::Null`].
    fn save_state(&self) -> Value {
        Value::Null
    }

    /// Restores state captured by [`Sampler::save_state`]. The default
    /// accepts only [`Value::Null`] (stateless samplers).
    ///
    /// # Errors
    /// Returns a message when the payload does not match this sampler.
    fn load_state(&mut self, state: &Value) -> Result<(), String> {
        match state {
            Value::Null => Ok(()),
            _ => Err(format!(
                "sampler {:?} does not accept saved state",
                self.name()
            )),
        }
    }
}

/// Trivial uniform sampler (the `U_β` baselines).
#[derive(Debug, Clone, Default)]
pub struct UniformSampler {
    n: usize,
}

impl UniformSampler {
    /// Uniform sampler over `n` interior points.
    pub fn new(n: usize) -> Self {
        UniformSampler { n }
    }
}

impl Sampler for UniformSampler {
    fn name(&self) -> &str {
        "uniform"
    }

    fn fill_batch(&mut self, batch_size: usize, out: &mut Vec<usize>, rng: &mut Rng64) {
        out.clear();
        for _ in 0..batch_size {
            out.push(rng.below(self.n));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_sampler_covers_dataset() {
        let mut s = UniformSampler::new(20);
        let mut rng = Rng64::new(1);
        let mut seen = [false; 20];
        for _ in 0..50 {
            for i in s.next_batch(10, &mut rng) {
                assert!(i < 20);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn fill_batch_clears_and_matches_next_batch() {
        let mut a = UniformSampler::new(33);
        let mut b = UniformSampler::new(33);
        let mut ra = Rng64::new(5);
        let mut rb = Rng64::new(5);
        let mut buf = vec![999usize; 4];
        a.fill_batch(7, &mut buf, &mut ra);
        assert_eq!(buf, b.next_batch(7, &mut rb));
    }

    #[test]
    fn default_state_roundtrip() {
        let mut s = UniformSampler::new(5);
        let saved = s.save_state();
        assert!(matches!(saved, Value::Null));
        assert!(s.load_state(&saved).is_ok());
        assert!(s.load_state(&Value::Num(1.0)).is_err());
    }
}
