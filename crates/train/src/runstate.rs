//! Full-run checkpointing: everything needed to resume a killed run
//! bit-identically.
//!
//! A [`RunState`] extends the network checkpoint (`sgm-nn::checkpoint`)
//! with the optimiser moments, the batching RNG state, both clocks, the
//! history so far and the sampler's importance state. Restoring it and
//! continuing produces the same weights and the same history records,
//! bit for bit, as the uninterrupted run (timestamps included when the
//! engine runs on a synthetic clock, see
//! [`TrainOptions::synthetic_dt`](crate::TrainOptions)).
//!
//! The RNG words are 64-bit integers, which `f64`-backed JSON numbers
//! cannot hold exactly, so they serialise as fixed-width hex strings.
//!
//! # Format versions
//!
//! *Version 1* covers draw-only runs over a fixed collocation set.
//! *Version 2* adds the `points` field: when an adaptive sampler owns a
//! mutable [`PointSet`](crate::PointSet), the checkpoint carries the
//! current coordinates (losslessly encoded) and the mutation epoch, so
//! a resume reconstructs the mutated set bit-exactly. Readers accept
//! both versions; writers emit 2 only when a point set exists.

use crate::result::Record;
use sgm_json::{lossless_num, lossless_num_arr, num_arr, obj, JsonError, Value};
use sgm_nn::checkpoint::{Checkpoint, CheckpointError};

/// Snapshot of the engine-owned mutable collocation set (format v2).
#[derive(Debug, Clone, PartialEq)]
pub struct PointsCheckpoint {
    /// Coordinate dimension.
    pub dim: usize,
    /// Mutation epoch at capture time.
    pub epoch: u64,
    /// Flat row-major coordinates (bit-exact).
    pub coords: Vec<f64>,
}

/// Serialisable snapshot of a training run after some iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct RunState {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Iterations completed; resuming continues at this iteration index.
    pub iteration: usize,
    /// Training-clock seconds accumulated so far.
    pub train_seconds: f64,
    /// Recording-clock seconds accumulated so far.
    pub record_seconds: f64,
    /// Network snapshot (architecture + parameters, bit-exact).
    pub net: Checkpoint,
    /// Adam step count.
    pub adam_t: usize,
    /// Adam first moments.
    pub adam_m: Vec<f64>,
    /// Adam second moments.
    pub adam_v: Vec<f64>,
    /// Batching RNG: the four xoshiro256** words.
    pub rng_state: [u64; 4],
    /// Batching RNG: cached Box–Muller spare.
    pub rng_gauss_spare: Option<f64>,
    /// History records produced so far.
    pub history: Vec<Record>,
    /// Name of the sampler that produced `sampler_state`.
    pub sampler_name: String,
    /// Sampler importance state ([`Value::Null`] for stateless samplers).
    pub sampler_state: Value,
    /// Mutable collocation set, present iff the run's sampler adapts
    /// the point set (format v2).
    pub points: Option<PointsCheckpoint>,
}

/// Errors from run-state restore.
#[derive(Debug)]
pub enum RunStateError {
    /// Unknown format version.
    Version(u32),
    /// Underlying JSON error.
    Json(JsonError),
    /// Embedded network checkpoint error.
    Checkpoint(CheckpointError),
    /// Malformed or missing field.
    Field(String),
}

impl std::fmt::Display for RunStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunStateError::Version(v) => write!(f, "unsupported run-state version {v}"),
            RunStateError::Json(e) => write!(f, "json error: {e}"),
            RunStateError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            RunStateError::Field(s) => write!(f, "bad field: {s}"),
        }
    }
}

impl std::error::Error for RunStateError {}

impl From<JsonError> for RunStateError {
    fn from(e: JsonError) -> Self {
        RunStateError::Json(e)
    }
}

impl From<CheckpointError> for RunStateError {
    fn from(e: CheckpointError) -> Self {
        RunStateError::Checkpoint(e)
    }
}

/// Reads a number that may have been serialised as `null` (non-finite
/// floats — a diverged run's loss — round-trip as NaN).
fn f64_or_nan(v: &Value, what: &str) -> Result<f64, RunStateError> {
    match v {
        Value::Null => Ok(f64::NAN),
        _ => v
            .as_f64()
            .ok_or_else(|| RunStateError::Field(format!("{what}: expected number"))),
    }
}

fn record_to_value(r: &Record) -> Value {
    obj([
        ("iteration", Value::Num(r.iteration as f64)),
        ("seconds", Value::Num(r.seconds)),
        ("train_loss", Value::Num(r.train_loss)),
        ("val_errors", num_arr(&r.val_errors)),
    ])
}

fn record_from_value(v: &Value) -> Result<Record, RunStateError> {
    let errs = v
        .get("val_errors")
        .and_then(Value::as_arr)
        .ok_or_else(|| RunStateError::Field("record val_errors".into()))?;
    Ok(Record {
        iteration: v.req_usize("iteration")?,
        seconds: v.req_f64("seconds")?,
        train_loss: f64_or_nan(
            v.get("train_loss")
                .ok_or_else(|| RunStateError::Field("record train_loss".into()))?,
            "train_loss",
        )?,
        val_errors: errs
            .iter()
            .map(|e| f64_or_nan(e, "val_errors"))
            .collect::<Result<_, _>>()?,
    })
}

impl RunState {
    /// JSON serialisation. Floats use shortest-roundtrip formatting, RNG
    /// words hex strings and Adam moments the lossless `f64:` encoding
    /// for non-finite values (a diverged run's moments must resume
    /// bit-exactly too), so `from_json(to_json())` is bit-exact.
    ///
    /// # Errors
    /// Returns [`RunStateError::Field`] when `sampler_state` contains a
    /// non-finite number: plain JSON would silently turn it into `null`
    /// and corrupt the resume, so saving fails loudly instead. Samplers
    /// that must checkpoint non-finite floats encode them with
    /// [`sgm_json::lossless_num`].
    pub fn to_json(&self) -> Result<String, RunStateError> {
        if let Some(path) = self.sampler_state.find_non_finite() {
            return Err(RunStateError::Field(format!(
                "sampler_state.{path} is non-finite and would not survive a \
                 JSON roundtrip; encode it with sgm_json::lossless_num"
            )));
        }
        let net = Value::parse(&self.net.to_json()?)?;
        let v = obj([
            ("version", Value::Num(self.version as f64)),
            ("iteration", Value::Num(self.iteration as f64)),
            ("train_seconds", Value::Num(self.train_seconds)),
            ("record_seconds", Value::Num(self.record_seconds)),
            ("net", net),
            ("adam_t", Value::Num(self.adam_t as f64)),
            ("adam_m", lossless_num_arr(&self.adam_m)),
            ("adam_v", lossless_num_arr(&self.adam_v)),
            (
                "rng_state",
                Value::Arr(
                    self.rng_state
                        .iter()
                        .map(|w| Value::Str(format!("{w:016x}")))
                        .collect(),
                ),
            ),
            (
                "rng_gauss_spare",
                match self.rng_gauss_spare {
                    Some(g) => lossless_num(g),
                    None => Value::Null,
                },
            ),
            (
                "history",
                Value::Arr(self.history.iter().map(record_to_value).collect()),
            ),
            ("sampler_name", Value::Str(self.sampler_name.clone())),
            ("sampler_state", self.sampler_state.clone()),
            (
                "points",
                match &self.points {
                    Some(p) => obj([
                        ("dim", Value::Num(p.dim as f64)),
                        ("epoch", Value::Num(p.epoch as f64)),
                        ("coords", lossless_num_arr(&p.coords)),
                    ]),
                    None => Value::Null,
                },
            ),
        ]);
        Ok(v.to_string_compact())
    }

    /// JSON deserialisation.
    ///
    /// # Errors
    /// Propagates parse/shape errors.
    pub fn from_json(s: &str) -> Result<Self, RunStateError> {
        let v = Value::parse(s)?;
        let version = v.req_usize("version")? as u32;
        if version != 1 && version != 2 {
            return Err(RunStateError::Version(version));
        }
        let net = Checkpoint::from_json(
            &v.get("net")
                .ok_or_else(|| RunStateError::Field("net".into()))?
                .to_string_compact(),
        )?;
        let words = v
            .get("rng_state")
            .and_then(Value::as_arr)
            .ok_or_else(|| RunStateError::Field("rng_state".into()))?;
        if words.len() != 4 {
            return Err(RunStateError::Field(format!(
                "rng_state: expected 4 words, got {}",
                words.len()
            )));
        }
        let mut rng_state = [0u64; 4];
        for (dst, w) in rng_state.iter_mut().zip(words) {
            let s = w
                .as_str()
                .ok_or_else(|| RunStateError::Field("rng_state word".into()))?;
            *dst = u64::from_str_radix(s, 16)
                .map_err(|e| RunStateError::Field(format!("rng_state word {s:?}: {e}")))?;
        }
        let rng_gauss_spare = match v.get("rng_gauss_spare") {
            None | Some(Value::Null) => None,
            Some(g) => Some(
                g.as_lossless_f64()
                    .ok_or_else(|| RunStateError::Field("rng_gauss_spare".into()))?,
            ),
        };
        let history = v
            .get("history")
            .and_then(Value::as_arr)
            .ok_or_else(|| RunStateError::Field("history".into()))?
            .iter()
            .map(record_from_value)
            .collect::<Result<_, _>>()?;
        let points = match v.get("points") {
            None | Some(Value::Null) => None,
            Some(p) => {
                let dim = p.req_usize("dim").map_err(|_| {
                    RunStateError::Field("points.dim: expected positive integer".into())
                })?;
                if dim == 0 {
                    return Err(RunStateError::Field("points.dim: must be positive".into()));
                }
                let coords = p
                    .req_lossless_f64_arr("coords")
                    .map_err(|e| RunStateError::Field(format!("points.coords: {e}")))?;
                if !coords.len().is_multiple_of(dim) {
                    return Err(RunStateError::Field(format!(
                        "points.coords: {} values not a multiple of dim {dim}",
                        coords.len()
                    )));
                }
                Some(PointsCheckpoint {
                    dim,
                    epoch: p
                        .get("epoch")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| RunStateError::Field("points.epoch".into()))?,
                    coords,
                })
            }
        };
        Ok(RunState {
            version,
            iteration: v.req_usize("iteration")?,
            train_seconds: v.req_f64("train_seconds")?,
            record_seconds: v.req_f64("record_seconds")?,
            net,
            adam_t: v.req_usize("adam_t")?,
            adam_m: v.req_lossless_f64_arr("adam_m")?,
            adam_v: v.req_lossless_f64_arr("adam_v")?,
            rng_state,
            rng_gauss_spare,
            history,
            sampler_name: v.req_str("sampler_name")?.to_string(),
            sampler_state: v
                .get("sampler_state")
                .cloned()
                .ok_or_else(|| RunStateError::Field("sampler_state".into()))?,
            points,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgm_linalg::rng::Rng64;
    use sgm_nn::activation::Activation;
    use sgm_nn::mlp::{Mlp, MlpConfig};

    fn sample_state() -> RunState {
        let net = Mlp::new(
            &MlpConfig {
                input_dim: 2,
                output_dim: 1,
                hidden_width: 6,
                hidden_layers: 1,
                activation: Activation::Tanh,
                fourier: None,
            },
            &mut Rng64::new(3),
        );
        let mut rng = Rng64::new(0xDEAD_BEEF_0123_4567);
        for _ in 0..7 {
            rng.next_u64();
        }
        rng.gaussian(); // populate the Box–Muller spare
        let (rng_state, rng_gauss_spare) = rng.state();
        RunState {
            version: 1,
            iteration: 23,
            train_seconds: 1.5,
            record_seconds: 0.25,
            net: Checkpoint::capture(&net),
            adam_t: 23,
            adam_m: vec![0.1, -0.25e-17, 3.0],
            adam_v: vec![1e-300, 2.0, 0.5],
            rng_state,
            rng_gauss_spare,
            history: vec![Record {
                iteration: 20,
                seconds: 1.3,
                train_loss: f64::NAN,
                val_errors: vec![0.5, f64::INFINITY],
            }],
            sampler_name: "sgm".into(),
            sampler_state: obj([("cursor", Value::Num(12.0))]),
            points: None,
        }
    }

    #[test]
    fn json_roundtrip_is_bit_exact() {
        let st = sample_state();
        let back = RunState::from_json(&st.to_json().unwrap()).unwrap();
        assert_eq!(back.version, st.version);
        assert_eq!(back.iteration, st.iteration);
        assert_eq!(back.train_seconds.to_bits(), st.train_seconds.to_bits());
        assert_eq!(back.net, st.net);
        assert_eq!(back.adam_t, st.adam_t);
        for (a, b) in st.adam_m.iter().zip(&back.adam_m) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in st.adam_v.iter().zip(&back.adam_v) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(back.rng_state, st.rng_state);
        assert_eq!(
            back.rng_gauss_spare.map(f64::to_bits),
            st.rng_gauss_spare.map(f64::to_bits)
        );
        assert_eq!(back.sampler_name, st.sampler_name);
        assert_eq!(back.sampler_state, st.sampler_state);
        // Non-finite history entries round-trip as NaN (JSON null).
        assert!(back.history[0].train_loss.is_nan());
        assert!(back.history[0].val_errors[1].is_nan());
        assert_eq!(back.history[0].val_errors[0], 0.5);
        // Restored RNG continues the stream identically.
        let mut a = Rng64::from_state(st.rng_state, st.rng_gauss_spare);
        let mut b = Rng64::from_state(back.rng_state, back.rng_gauss_spare);
        for _ in 0..8 {
            assert_eq!(a.gaussian().to_bits(), b.gaussian().to_bits());
        }
    }

    #[test]
    fn v2_point_set_roundtrips_bit_exactly() {
        let mut st = sample_state();
        st.version = 2;
        st.points = Some(PointsCheckpoint {
            dim: 2,
            epoch: 3,
            coords: vec![
                0.1,
                0.2,
                -0.0,
                1e-300,
                0.5,
                f64::from_bits(0x3ff0_0000_0000_0001),
            ],
        });
        let back = RunState::from_json(&st.to_json().unwrap()).unwrap();
        let bp = back.points.expect("points survive");
        let sp = st.points.unwrap();
        assert_eq!(bp.dim, sp.dim);
        assert_eq!(bp.epoch, sp.epoch);
        for (a, b) in sp.coords.iter().zip(&bp.coords) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn v2_points_shape_errors_are_descriptive() {
        let mut st = sample_state();
        st.version = 2;
        st.points = Some(PointsCheckpoint {
            dim: 2,
            epoch: 1,
            coords: vec![1.0, 2.0],
        });
        let full = Value::parse(&st.to_json().unwrap()).unwrap();
        let set_dim = |d: f64| {
            let mut m = full.as_obj().unwrap().clone();
            let mut pts = m["points"].as_obj().unwrap().clone();
            pts.insert("dim".into(), Value::Num(d));
            m.insert("points".into(), Value::Obj(pts));
            Value::Obj(m).to_string_compact()
        };
        // Ragged coords: 2 values for dim 3.
        let err = RunState::from_json(&set_dim(3.0)).unwrap_err();
        assert!(err.to_string().contains("points.coords"), "{err}");
        // Zero dim.
        let err = RunState::from_json(&set_dim(0.0)).unwrap_err();
        assert!(err.to_string().contains("points.dim"), "{err}");
    }

    #[test]
    fn rejects_unknown_version() {
        let mut st = sample_state();
        st.version = 9;
        let json = st.to_json().unwrap();
        assert!(matches!(
            RunState::from_json(&json),
            Err(RunStateError::Version(9))
        ));
    }

    #[test]
    fn rejects_malformed_rng_words() {
        let st = sample_state();
        let json = st
            .to_json()
            .unwrap()
            .replacen(&format!("{:016x}", st.rng_state[0]), "zz", 1);
        assert!(matches!(
            RunState::from_json(&json),
            Err(RunStateError::Field(_))
        ));
    }

    #[test]
    fn non_finite_adam_moments_roundtrip_bit_exactly() {
        let mut st = sample_state();
        st.adam_m = vec![f64::NAN, f64::INFINITY, -0.0, 1.5];
        st.adam_v = vec![f64::NEG_INFINITY, f64::from_bits(0x7ff8_0000_0000_0001)];
        st.rng_gauss_spare = Some(f64::NAN);
        let back = RunState::from_json(&st.to_json().unwrap()).unwrap();
        for (a, b) in st.adam_m.iter().zip(&back.adam_m) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in st.adam_v.iter().zip(&back.adam_v) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(
            st.rng_gauss_spare.map(f64::to_bits),
            back.rng_gauss_spare.map(f64::to_bits)
        );
    }

    #[test]
    fn non_finite_sampler_state_fails_loudly_at_save() {
        let mut st = sample_state();
        st.sampler_state = obj([("scores", num_arr(&[0.5, f64::NAN]))]);
        let err = st.to_json().unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("sampler_state.scores[1]"),
            "error must name the offending path: {msg}"
        );
        // Lossless-encoded values are fine.
        st.sampler_state = obj([("scores", sgm_json::lossless_num_arr(&[0.5, f64::NAN]))]);
        let back = RunState::from_json(&st.to_json().unwrap()).unwrap();
        let xs = back.sampler_state.req_lossless_f64_arr("scores").unwrap();
        assert!(xs[1].is_nan());
    }

    #[test]
    fn truncated_json_is_a_descriptive_error_not_a_panic() {
        let json = sample_state().to_json().unwrap();
        // Cut at several points, including mid-token.
        for cut in [0, 1, json.len() / 3, json.len() / 2, json.len() - 1] {
            let err = RunState::from_json(&json[..cut]).unwrap_err();
            assert!(matches!(err, RunStateError::Json(_)), "cut at {cut}: {err}");
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn missing_fields_name_the_field() {
        let full = Value::parse(&sample_state().to_json().unwrap()).unwrap();
        let obj_map = full.as_obj().unwrap();
        for key in [
            "iteration",
            "train_seconds",
            "net",
            "adam_t",
            "adam_m",
            "rng_state",
            "history",
            "sampler_name",
            "sampler_state",
        ] {
            let mut m = obj_map.clone();
            m.remove(key);
            let err = RunState::from_json(&Value::Obj(m).to_string_compact()).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(key), "dropping `{key}` gave: {msg}");
        }
    }

    #[test]
    fn corrupt_field_types_are_descriptive_errors() {
        let full = Value::parse(&sample_state().to_json().unwrap()).unwrap();
        let corruptions: &[(&str, Value)] = &[
            ("adam_m", Value::Str("nope".into())),
            (
                "adam_m",
                Value::Arr(vec![Value::Num(1.0), Value::Bool(true)]),
            ),
            ("rng_state", num_arr(&[1.0, 2.0])), // wrong arity
            ("rng_state", num_arr(&[1.0, 2.0, 3.0, 4.0])), // numbers, not hex strings
            ("history", Value::Num(3.0)),
            ("iteration", Value::Str("ten".into())),
            ("rng_gauss_spare", Value::Str("not-hex".into())),
            ("version", Value::Num(-1.0)),
        ];
        for (key, bad) in corruptions {
            let mut m = full.as_obj().unwrap().clone();
            m.insert(key.to_string(), bad.clone());
            let text = Value::Obj(m).to_string_compact();
            let err = RunState::from_json(&text).unwrap_err();
            assert!(
                !err.to_string().is_empty(),
                "corrupting `{key}` must error descriptively"
            );
        }
    }
}
