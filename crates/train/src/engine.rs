//! The staged training loop.
//!
//! Each iteration runs the fixed stage sequence
//! `Refresh → Adapt → Draw → Gather → LossGrad → Step` (+ an off-clock
//! `Record` stage at recording points). All per-iteration buffers live
//! in run-scoped workspaces created before the first iteration, so a
//! steady-state iteration performs no heap allocations under serial
//! parallelism.
//!
//! # The adapt stage
//!
//! When the sampler opts into point-set mutation
//! ([`Sampler::adapts_points`]), the engine owns a mutable [`PointSet`]
//! seeded from [`LossModel::interior_cloud`] and lends it to
//! [`Sampler::adapt`] every iteration. After a mutating adapt the engine
//! drains the change log, re-validates that the interior batch still
//! fits the (possibly shrunk) set, notifies the sampler via
//! [`Sampler::on_points_changed`] and reports the changes to hooks; all
//! batch gathers and record-path losses then read coordinates from the
//! set (`gather_from` / `batch_loss_from`), so the next `Gather`
//! re-fills the workspace from the mutated coordinates — there is no
//! stale-workspace window because gathers always rewrite every row.
//!
//! # Time accounting
//!
//! Two clocks are kept. The **training clock** advances by the measured
//! duration of the five training stages (or by
//! [`TrainOptions::synthetic_dt`] when set); it is what
//! [`Record::seconds`], [`TrainOptions::max_seconds`] and
//! [`TrainResult::time_to_error`] read. The **recording clock**
//! accumulates post-step loss evaluation and validation time, which the
//! paper's wall-time comparisons deliberately exclude.

use crate::hooks::{Hook, Stage};
use crate::model::{LossModel, Validator};
use crate::pointset::{PointChanges, PointSet};
use crate::result::{Record, TrainResult};
use crate::runstate::{PointsCheckpoint, RunState};
use crate::sampler::{Probe, Sampler};
use sgm_linalg::rng::Rng64;
use sgm_nn::checkpoint::Checkpoint;
use sgm_nn::mlp::Mlp;
use sgm_nn::optimizer::{Adam, AdamConfig};
use sgm_obs::{trace, TraceLevel};
use std::time::Instant;

/// Training-loop options.
#[derive(Debug, Clone)]
pub struct TrainOptions {
    /// SGD iterations.
    pub iterations: usize,
    /// Interior mini-batch size (the paper's β).
    pub batch_interior: usize,
    /// Boundary mini-batch size.
    pub batch_boundary: usize,
    /// Optimiser configuration.
    pub adam: AdamConfig,
    /// RNG seed for batching.
    pub seed: u64,
    /// Record loss/validation every this many iterations.
    pub record_every: usize,
    /// Optional training-clock budget in seconds; training stops at the
    /// first iteration boundary past it (how the experiment harness
    /// gives every sampler the same time budget, as in the paper's
    /// wall-time plots). Recording time does not count against it.
    pub max_seconds: Option<f64>,
    /// When set, the training clock advances by exactly this many
    /// seconds per iteration instead of measured wall time, and the
    /// recording clock stays at zero. This makes every timestamp in the
    /// run deterministic — the resume tests rely on it to compare
    /// histories bit-for-bit.
    pub synthetic_dt: Option<f64>,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            iterations: 1000,
            batch_interior: 128,
            batch_boundary: 64,
            adam: AdamConfig::default(),
            seed: 7,
            record_every: 100,
            max_seconds: None,
            synthetic_dt: None,
        }
    }
}

/// Outcome of one preemptible segment (see [`Trainer::run_segment`]).
#[derive(Debug, Clone)]
pub struct Segment {
    /// Cumulative result so far (history includes restored records).
    pub result: TrainResult,
    /// Full run state at the `stop_after` boundary; `None` only when
    /// the `max_seconds` budget expired before the boundary.
    pub state: Option<RunState>,
}

/// Runs training with the given sampler.
pub struct Trainer<'a> {
    /// The network being trained.
    pub net: &'a mut Mlp,
    /// The training objective.
    pub model: &'a (dyn LossModel + 'a),
}

impl std::fmt::Debug for Trainer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trainer").finish_non_exhaustive()
    }
}

impl Trainer<'_> {
    /// Runs the loop from iteration 0.
    ///
    /// # Panics
    /// Panics if batch sizes are zero or exceed the dataset sizes.
    pub fn run(
        &mut self,
        sampler: &mut dyn Sampler,
        validator: Option<&dyn Validator>,
        opts: &TrainOptions,
    ) -> TrainResult {
        self.run_hooked(sampler, validator, opts, &mut [])
    }

    /// Like [`Trainer::run`] with per-stage instrumentation hooks.
    ///
    /// # Panics
    /// Panics if batch sizes are zero or exceed the dataset sizes.
    pub fn run_hooked(
        &mut self,
        sampler: &mut dyn Sampler,
        validator: Option<&dyn Validator>,
        opts: &TrainOptions,
        hooks: &mut [&mut dyn Hook],
    ) -> TrainResult {
        self.run_core(sampler, validator, opts, hooks, None, None)
            .expect("fresh run cannot fail to restore")
            .0
    }

    /// Trains for exactly `stop_after` iterations and returns the full
    /// run state at that point (records produced on the way are kept
    /// inside the state). Feeding the state to [`Trainer::resume`] —
    /// against fresh net/sampler instances, even in another process —
    /// continues the run bit-identically.
    ///
    /// # Panics
    /// Panics if `stop_after` is 0, exceeds `opts.iterations`, or lies
    /// beyond the `opts.max_seconds` budget (there is no state to
    /// return then), or on bad batch sizes.
    pub fn run_until(
        &mut self,
        sampler: &mut dyn Sampler,
        validator: Option<&dyn Validator>,
        opts: &TrainOptions,
        stop_after: usize,
    ) -> RunState {
        assert!(
            stop_after >= 1 && stop_after <= opts.iterations,
            "stop_after {stop_after} outside 1..={}",
            opts.iterations
        );
        self.run_core(sampler, validator, opts, &mut [], None, Some(stop_after))
            .expect("fresh run cannot fail to restore")
            .1
            .expect("stopped before reaching stop_after (budget exhausted?)")
    }

    /// Runs one preemptible segment of a (possibly ongoing) run: from
    /// `start` (or iteration 0 when `None`) up to and including
    /// iteration `stop_after - 1`, then captures the full run state.
    /// Chaining segments — each restoring the previous segment's state
    /// into fresh net/sampler instances — reproduces an uninterrupted
    /// [`Trainer::run`] bit-identically, which is what the job server
    /// builds its run-N-iterations-then-yield scheduling on.
    ///
    /// The returned [`Segment::state`] is `Some` at the `stop_after`
    /// boundary — including when `stop_after == opts.iterations`, so
    /// the final segment still yields a downloadable checkpoint — and
    /// `None` only when the `opts.max_seconds` budget expired before
    /// the boundary was reached.
    ///
    /// # Errors
    /// Returns a message when `stop_after` is outside
    /// `1..=opts.iterations`, when `start` does not lie before
    /// `stop_after`, or when the state does not match the network
    /// architecture or the sampler.
    ///
    /// # Panics
    /// Panics on bad batch sizes (as every entry point does).
    pub fn run_segment(
        &mut self,
        sampler: &mut dyn Sampler,
        validator: Option<&dyn Validator>,
        opts: &TrainOptions,
        hooks: &mut [&mut dyn Hook],
        start: Option<&RunState>,
        stop_after: usize,
    ) -> Result<Segment, String> {
        if stop_after == 0 || stop_after > opts.iterations {
            return Err(format!(
                "stop_after {stop_after} outside 1..={}",
                opts.iterations
            ));
        }
        if let Some(st) = start {
            if st.iteration >= stop_after {
                return Err(format!(
                    "state is already at iteration {}, past stop_after {stop_after}",
                    st.iteration
                ));
            }
        }
        let (result, state) =
            self.run_core(sampler, validator, opts, hooks, start, Some(stop_after))?;
        Ok(Segment { result, state })
    }

    /// Resumes a run captured by [`Trainer::run_until`] (or a
    /// JSON-round-tripped copy) and trains to completion. The network
    /// behind `self.net` is overwritten with the checkpointed
    /// parameters and `sampler` is restored from the saved sampler
    /// state, so both may be fresh instances.
    ///
    /// # Errors
    /// Returns a message when the state does not match the network
    /// architecture or the sampler.
    pub fn resume(
        &mut self,
        sampler: &mut dyn Sampler,
        validator: Option<&dyn Validator>,
        opts: &TrainOptions,
        state: &RunState,
    ) -> Result<TrainResult, String> {
        Ok(self
            .run_core(sampler, validator, opts, &mut [], Some(state), None)?
            .0)
    }

    fn run_core(
        &mut self,
        sampler: &mut dyn Sampler,
        validator: Option<&dyn Validator>,
        opts: &TrainOptions,
        hooks: &mut [&mut dyn Hook],
        start: Option<&RunState>,
        stop_after: Option<usize>,
    ) -> Result<(TrainResult, Option<RunState>), String> {
        assert!(opts.batch_interior > 0, "batch_interior must be positive");
        assert!(
            opts.batch_interior <= self.model.num_interior(),
            "batch larger than dataset"
        );
        // The mutable collocation set, owned by the engine whenever the
        // sampler adapts points. Seeded from the model; overwritten from
        // the checkpoint on resume.
        let mut points: Option<PointSet> = if sampler.adapts_points() {
            let cloud = self.model.interior_cloud().unwrap_or_else(|| {
                panic!(
                    "sampler {:?} adapts the point set but the model provides no interior_cloud",
                    sampler.name()
                )
            });
            Some(PointSet::new(cloud))
        } else {
            None
        };
        let mut start_iter = 0usize;
        let mut train_clock = 0.0;
        let mut record_clock = 0.0;
        let mut history: Vec<Record> = Vec::new();
        let mut rng = Rng64::new(opts.seed);
        if let Some(st) = start {
            if st.sampler_name != sampler.name() {
                return Err(format!(
                    "state saved with sampler {:?}, resuming with {:?}",
                    st.sampler_name,
                    sampler.name()
                ));
            }
            let restored = st.net.restore().map_err(|e| format!("net restore: {e}"))?;
            if restored.num_params() != self.net.num_params() {
                return Err(format!(
                    "state has {} parameters, network has {}",
                    restored.num_params(),
                    self.net.num_params()
                ));
            }
            *self.net = restored;
            rng = Rng64::from_state(st.rng_state, st.rng_gauss_spare);
            sampler.load_state(&st.sampler_state)?;
            match &st.points {
                Some(p) => {
                    if !sampler.adapts_points() {
                        return Err(format!(
                            "state carries a mutated point set but sampler {:?} \
                             does not adapt points",
                            sampler.name()
                        ));
                    }
                    let reference = points.as_ref().expect("adapting sampler has a set");
                    if p.dim != reference.dim() {
                        return Err(format!(
                            "state point set has dim {}, model has dim {}",
                            p.dim,
                            reference.dim()
                        ));
                    }
                    if p.coords.len() < p.dim * opts.batch_interior {
                        return Err(format!(
                            "state point set has {} points, batch_interior is {}",
                            p.coords.len() / p.dim,
                            opts.batch_interior
                        ));
                    }
                    let ps = PointSet::from_parts(p.dim, p.coords.clone(), p.epoch);
                    sampler.sync_points(&ps);
                    points = Some(ps);
                }
                // v1 state (or pre-mutation run): keep the model's
                // initial cloud.
                None => {
                    if let Some(ps) = &points {
                        sampler.sync_points(ps);
                    }
                }
            }
            history = st.history.clone();
            train_clock = st.train_seconds;
            record_clock = st.record_seconds;
            start_iter = st.iteration;
        }
        let mut adam = Adam::new(self.net, opts.adam.clone());
        if let Some(st) = start {
            if st.adam_m.len() != self.net.num_params() {
                return Err(format!(
                    "state has {} Adam moments, network has {} parameters",
                    st.adam_m.len(),
                    self.net.num_params()
                ));
            }
            adam.restore_state(st.adam_t, &st.adam_m, &st.adam_v);
        }
        let n_boundary = self.model.num_boundary();
        let bb = if n_boundary > 0 {
            opts.batch_boundary.min(n_boundary)
        } else {
            0
        };
        // Per-run workspaces: everything the hot loop touches is
        // allocated here, once.
        let mut ws = self.model.make_workspace(self.net, opts.batch_interior, bb);
        let mut grads = self.net.zero_gradients();
        let mut idx: Vec<usize> = Vec::with_capacity(opts.batch_interior);
        let mut bidx: Vec<usize> = Vec::with_capacity(bb);
        let mut changes = PointChanges::default();
        let mut saved: Option<RunState> = None;

        for iter in start_iter..opts.iterations {
            if let Some(budget) = opts.max_seconds {
                if train_clock >= budget {
                    break;
                }
            }
            let t0 = Instant::now();
            {
                // The span is open while the sampler runs, so sampler
                // internals (and any background-rebuild request) parent
                // under it.
                let _s = trace::span(TraceLevel::Stages, "engine", "stage_refresh");
                let probe = Probe::with_points(self.net, self.model, points.as_ref());
                sampler.refresh(iter, &probe, &mut rng);
            }
            let t1 = Instant::now();
            let mut points_changed = false;
            if let Some(ps) = points.as_mut() {
                let _s = trace::span(TraceLevel::Stages, "engine", "stage_adapt");
                {
                    let probe = Probe::new(self.net, self.model);
                    sampler.adapt(ps, iter, &probe, &mut rng);
                }
                if ps.drain_changes(&mut changes) {
                    assert!(
                        opts.batch_interior <= ps.len(),
                        "adapt at iteration {iter} shrank the point set to {} points, \
                         below batch_interior {}",
                        ps.len(),
                        opts.batch_interior
                    );
                    sampler.on_points_changed(ps, &changes);
                    points_changed = true;
                }
            }
            let t1a = Instant::now();
            {
                let _s = trace::span(TraceLevel::Stages, "engine", "stage_draw");
                sampler.fill_batch(opts.batch_interior, &mut idx, &mut rng);
                bidx.clear();
                for _ in 0..bb {
                    bidx.push(rng.below(n_boundary));
                }
            }
            let t2 = Instant::now();
            {
                let _s = trace::span(TraceLevel::Stages, "engine", "stage_gather");
                match &points {
                    Some(ps) => self.model.gather_from(ps.cloud(), &idx, &bidx, &mut *ws),
                    None => self.model.gather(&idx, &bidx, &mut *ws),
                }
            }
            let t3 = Instant::now();
            {
                let _s = trace::span(TraceLevel::Stages, "engine", "stage_loss_grad");
                grads.zero();
                self.model.loss_and_grad(self.net, &mut *ws, &mut grads);
            }
            let t4 = Instant::now();
            {
                let _s = trace::span(TraceLevel::Stages, "engine", "stage_step");
                adam.step(self.net, &grads);
            }
            let t5 = Instant::now();
            for h in hooks.iter_mut() {
                h.on_stage(iter, Stage::Refresh, t1 - t0);
                h.on_stage(iter, Stage::Adapt, t1a - t1);
                h.on_stage(iter, Stage::Draw, t2 - t1a);
                h.on_stage(iter, Stage::Gather, t3 - t2);
                h.on_stage(iter, Stage::LossGrad, t4 - t3);
                h.on_stage(iter, Stage::Step, t5 - t4);
                if points_changed {
                    let ps = points.as_ref().expect("changed set exists");
                    h.on_points(iter, ps.len(), &changes);
                }
                h.on_iteration(iter);
            }
            train_clock += opts.synthetic_dt.unwrap_or_else(|| (t5 - t0).as_secs_f64());

            if iter % opts.record_every == 0 || iter + 1 == opts.iterations {
                let r0 = Instant::now();
                let record = {
                    let _s = trace::span(TraceLevel::Stages, "engine", "stage_record");
                    // Post-step loss: the record pairs this loss with the
                    // weights it was computed with (and with val_errors).
                    let train_loss = match &points {
                        Some(ps) => self
                            .model
                            .batch_loss_from(self.net, ps.cloud(), &idx, &bidx),
                        None => self.model.batch_loss(self.net, &idx, &bidx),
                    };
                    let val_errors = match validator {
                        Some(v) => v.val_errors(self.net),
                        None => Vec::new(),
                    };
                    Record {
                        iteration: iter,
                        seconds: train_clock,
                        train_loss,
                        val_errors,
                    }
                };
                let rec_dt = r0.elapsed();
                for h in hooks.iter_mut() {
                    h.on_stage(iter, Stage::Record, rec_dt);
                    h.on_record(&record);
                }
                if opts.synthetic_dt.is_none() {
                    record_clock += rec_dt.as_secs_f64();
                }
                history.push(record);
            }

            if stop_after == Some(iter + 1) {
                let (rng_state, rng_gauss_spare) = rng.state();
                let (adam_t, adam_m, adam_v) = adam.state();
                saved = Some(RunState {
                    version: if points.is_some() { 2 } else { 1 },
                    iteration: iter + 1,
                    train_seconds: train_clock,
                    record_seconds: record_clock,
                    net: Checkpoint::capture(self.net),
                    adam_t,
                    adam_m: adam_m.to_vec(),
                    adam_v: adam_v.to_vec(),
                    rng_state,
                    rng_gauss_spare,
                    history: history.clone(),
                    sampler_name: sampler.name().to_string(),
                    sampler_state: sampler.save_state(),
                    points: points.as_ref().map(|ps| PointsCheckpoint {
                        dim: ps.dim(),
                        epoch: ps.epoch(),
                        coords: ps.coords().to_vec(),
                    }),
                });
                break;
            }
        }
        Ok((
            TrainResult {
                history,
                train_seconds: train_clock,
                record_seconds: record_clock,
                total_seconds: train_clock + record_clock,
                sampler: sampler.name().to_string(),
            },
            saved,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelWorkspace;
    use crate::sampler::UniformSampler;
    use sgm_graph::points::PointCloud;
    use sgm_json::{obj, Value};
    use sgm_linalg::dense::Matrix;
    use sgm_nn::activation::Activation;
    use sgm_nn::mlp::{BatchDerivatives, Gradients, MlpConfig, MlpWorkspace};
    use sgm_nn::optimizer::LrSchedule;
    use std::any::Any;

    /// Minimal engine-level model: mean-squared regression of the
    /// network against `target(x) = sin(2x)` (no PDE machinery). The
    /// stored `y` equals `target` of the stored `x` rows, so the index
    /// and coordinate paths agree bit-for-bit on unmutated points.
    struct Regression {
        x: Matrix,
        y: Vec<f64>,
    }

    fn target(x: f64) -> f64 {
        (2.0 * x).sin()
    }

    struct RegressionWs {
        xb: Matrix,
        yb: Vec<f64>,
        nn: MlpWorkspace,
        adj: BatchDerivatives,
    }

    impl ModelWorkspace for RegressionWs {
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    impl Regression {
        fn loss_at(&self, net: &Mlp, idx: &[usize]) -> f64 {
            let coords = self.inputs(idx);
            let out = net.forward(&coords);
            idx.iter()
                .enumerate()
                .map(|(r, &i)| (out.get(r, 0) - self.y[i]).powi(2))
                .sum::<f64>()
                / idx.len().max(1) as f64
        }
        fn coord_losses(&self, net: &Mlp, coords: &Matrix) -> Vec<f64> {
            let out = net.forward(coords);
            (0..coords.rows())
                .map(|r| (out.get(r, 0) - target(coords.get(r, 0))).powi(2))
                .collect()
        }
    }

    impl LossModel for Regression {
        fn num_interior(&self) -> usize {
            self.x.rows()
        }
        fn num_boundary(&self) -> usize {
            0
        }
        fn make_workspace(
            &self,
            net: &Mlp,
            batch_interior: usize,
            _batch_boundary: usize,
        ) -> Box<dyn ModelWorkspace> {
            Box::new(RegressionWs {
                xb: Matrix::zeros(batch_interior, self.x.cols()),
                yb: vec![0.0; batch_interior],
                nn: net.make_workspace(batch_interior, 0),
                adj: BatchDerivatives::zeros(batch_interior, 1, 0),
            })
        }
        fn gather(
            &self,
            interior_idx: &[usize],
            _boundary_idx: &[usize],
            ws: &mut dyn ModelWorkspace,
        ) {
            let ws: &mut RegressionWs = ws.as_any_mut().downcast_mut().unwrap();
            for (r, &i) in interior_idx.iter().enumerate() {
                for c in 0..self.x.cols() {
                    ws.xb.set(r, c, self.x.get(i, c));
                }
                ws.yb[r] = self.y[i];
            }
        }
        fn loss_and_grad(
            &self,
            net: &Mlp,
            ws: &mut dyn ModelWorkspace,
            grads: &mut Gradients,
        ) -> f64 {
            let ws: &mut RegressionWs = ws.as_any_mut().downcast_mut().unwrap();
            net.forward_with_derivs_ws(&ws.xb, &[], &mut ws.nn);
            let b = ws.xb.rows();
            let inv = 1.0 / b as f64;
            let mut loss = 0.0;
            for r in 0..b {
                let d = ws.nn.derivs().values.get(r, 0) - ws.yb[r];
                loss += d * d * inv;
                ws.adj.values.set(r, 0, 2.0 * d * inv);
            }
            net.backward_ws(&mut ws.nn, &ws.adj, grads);
            loss
        }
        fn batch_loss(&self, net: &Mlp, interior_idx: &[usize], _boundary_idx: &[usize]) -> f64 {
            self.loss_at(net, interior_idx)
        }
        fn sample_losses(&self, net: &Mlp, idx: &[usize]) -> Vec<f64> {
            idx.iter().map(|&i| self.loss_at(net, &[i])).collect()
        }
        fn outputs(&self, net: &Mlp, idx: &[usize]) -> Matrix {
            net.forward(&self.inputs(idx))
        }
        fn inputs(&self, idx: &[usize]) -> Matrix {
            let mut m = Matrix::zeros(idx.len(), self.x.cols());
            for (r, &i) in idx.iter().enumerate() {
                for c in 0..self.x.cols() {
                    m.set(r, c, self.x.get(i, c));
                }
            }
            m
        }
        fn interior_cloud(&self) -> Option<PointCloud> {
            let mut flat = Vec::with_capacity(self.x.rows());
            for r in 0..self.x.rows() {
                flat.push(self.x.get(r, 0));
            }
            Some(PointCloud::from_flat(1, flat))
        }
        fn gather_from(
            &self,
            points: &PointCloud,
            interior_idx: &[usize],
            _boundary_idx: &[usize],
            ws: &mut dyn ModelWorkspace,
        ) {
            let ws: &mut RegressionWs = ws.as_any_mut().downcast_mut().unwrap();
            for (r, &i) in interior_idx.iter().enumerate() {
                let x = points.point(i)[0];
                ws.xb.set(r, 0, x);
                ws.yb[r] = target(x);
            }
        }
        fn batch_loss_from(
            &self,
            net: &Mlp,
            points: &PointCloud,
            interior_idx: &[usize],
            _boundary_idx: &[usize],
        ) -> f64 {
            let mut coords = Matrix::zeros(interior_idx.len(), 1);
            for (r, &i) in interior_idx.iter().enumerate() {
                coords.set(r, 0, points.point(i)[0]);
            }
            let losses = self.coord_losses(net, &coords);
            losses.iter().sum::<f64>() / losses.len().max(1) as f64
        }
        fn losses_at(&self, net: &Mlp, coords: &Matrix) -> Vec<f64> {
            self.coord_losses(net, coords)
        }
    }

    fn setup(seed: u64) -> (Mlp, Regression) {
        let mut rng = Rng64::new(seed);
        let n = 64;
        let x = Matrix::gaussian(n, 1, &mut rng);
        let y = (0..n).map(|i| (2.0 * x.get(i, 0)).sin()).collect();
        let net = Mlp::new(
            &MlpConfig {
                input_dim: 1,
                output_dim: 1,
                hidden_width: 12,
                hidden_layers: 2,
                activation: Activation::Tanh,
                fourier: None,
            },
            &mut Rng64::new(seed + 1),
        );
        (net, Regression { x, y })
    }

    /// Exactly representable synthetic step so accumulated clocks are
    /// exact in the assertions below.
    const DT: f64 = 1.0 / 1024.0;

    fn opts(iterations: usize) -> TrainOptions {
        TrainOptions {
            iterations,
            batch_interior: 16,
            batch_boundary: 0,
            adam: AdamConfig {
                lr: 1e-2,
                schedule: LrSchedule::Constant,
                ..AdamConfig::default()
            },
            seed: 3,
            record_every: 20,
            max_seconds: None,
            synthetic_dt: Some(DT),
        }
    }

    #[test]
    fn training_reduces_loss_and_hooks_see_all_stages() {
        let (mut net, model) = setup(40);
        let mut sampler = UniformSampler::new(model.num_interior());
        let mut times = crate::hooks::StageTimes::new();
        let o = opts(200);
        let result = {
            let mut hooks: [&mut dyn Hook; 1] = [&mut times];
            Trainer {
                net: &mut net,
                model: &model,
            }
            .run_hooked(&mut sampler, None, &o, &mut hooks)
        };
        let first = result.history.first().unwrap().train_loss;
        let last = result.history.last().unwrap().train_loss;
        assert!(last < 0.5 * first, "loss did not drop: {first} -> {last}");
        assert_eq!(times.iterations(), 200);
        // With a synthetic clock the result's clocks are deterministic.
        assert_eq!(result.train_seconds, 200.0 * DT);
        assert_eq!(result.record_seconds, 0.0);
        assert_eq!(result.total_seconds, result.train_seconds);
        assert_eq!(result.history.last().unwrap().iteration, 199);
    }

    #[test]
    fn record_seconds_use_training_clock_only() {
        let (mut net, model) = setup(41);
        let mut sampler = UniformSampler::new(model.num_interior());
        let o = opts(50);
        let result = Trainer {
            net: &mut net,
            model: &model,
        }
        .run(&mut sampler, None, &o);
        for r in &result.history {
            assert_eq!(r.seconds, (r.iteration + 1) as f64 * DT);
        }
    }

    #[test]
    fn budget_counts_training_time() {
        let (mut net, model) = setup(42);
        let mut sampler = UniformSampler::new(model.num_interior());
        let o = TrainOptions {
            max_seconds: Some(10.5 * DT),
            record_every: 1,
            ..opts(1000)
        };
        let result = Trainer {
            net: &mut net,
            model: &model,
        }
        .run(&mut sampler, None, &o);
        // Iteration k starts only while the clock (k·DT) is below the
        // 10.5·DT budget, so iterations 0..=10 run and 11 does not.
        assert_eq!(result.history.last().unwrap().iteration, 10);
    }

    #[test]
    fn resume_matches_uninterrupted_run() {
        let o = opts(60);
        let (mut net_a, model) = setup(43);
        let mut sampler_a = UniformSampler::new(model.num_interior());
        let full = Trainer {
            net: &mut net_a,
            model: &model,
        }
        .run(&mut sampler_a, None, &o);

        let (mut net_b, _) = setup(43);
        let mut sampler_b = UniformSampler::new(model.num_interior());
        let state = Trainer {
            net: &mut net_b,
            model: &model,
        }
        .run_until(&mut sampler_b, None, &o, 23);
        let state = RunState::from_json(&state.to_json().unwrap()).unwrap();

        let (mut net_c, _) = setup(43);
        let mut sampler_c = UniformSampler::new(model.num_interior());
        let resumed = Trainer {
            net: &mut net_c,
            model: &model,
        }
        .resume(&mut sampler_c, None, &o, &state)
        .unwrap();

        assert_eq!(full.history.len(), resumed.history.len());
        for (a, b) in full.history.iter().zip(&resumed.history) {
            assert_eq!(a.iteration, b.iteration);
            assert_eq!(a.seconds.to_bits(), b.seconds.to_bits());
            assert_eq!(a.train_loss.to_bits(), b.train_loss.to_bits());
        }
        for (a, b) in net_a.params().iter().zip(&net_c.params()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Test sampler that appends `add` points every `tau` iterations
    /// (uniform coordinates from the engine RNG) and draws uniformly
    /// over the current set.
    struct Densify {
        n: usize,
        tau: usize,
        add: usize,
    }

    impl Sampler for Densify {
        fn name(&self) -> &str {
            "densify-test"
        }
        fn fill_batch(&mut self, batch_size: usize, out: &mut Vec<usize>, rng: &mut Rng64) {
            out.clear();
            for _ in 0..batch_size {
                out.push(rng.below(self.n));
            }
        }
        fn adapts_points(&self) -> bool {
            true
        }
        fn adapt(
            &mut self,
            points: &mut PointSet,
            iter: usize,
            _probe: &Probe<'_>,
            rng: &mut Rng64,
        ) {
            if iter > 0 && iter.is_multiple_of(self.tau) {
                for _ in 0..self.add {
                    points.push(&[rng.uniform_in(-1.0, 1.0)]);
                }
            }
        }
        fn on_points_changed(&mut self, points: &PointSet, _changes: &PointChanges) {
            self.n = points.len();
        }
        fn sync_points(&mut self, points: &PointSet) {
            self.n = points.len();
        }
        fn save_state(&self) -> Value {
            obj([("n", Value::Num(self.n as f64))])
        }
        fn load_state(&mut self, state: &Value) -> Result<(), String> {
            self.n = state.req_usize("n").map_err(|e| e.to_string())?;
            Ok(())
        }
    }

    /// Test sampler that *moves* one point per `tau` iterations to a
    /// fresh coordinate from the engine RNG (fixed set size).
    struct Jitter {
        n: usize,
        tau: usize,
    }

    impl Sampler for Jitter {
        fn name(&self) -> &str {
            "jitter-test"
        }
        fn fill_batch(&mut self, batch_size: usize, out: &mut Vec<usize>, rng: &mut Rng64) {
            out.clear();
            for _ in 0..batch_size {
                out.push(rng.below(self.n));
            }
        }
        fn adapts_points(&self) -> bool {
            true
        }
        fn adapt(
            &mut self,
            points: &mut PointSet,
            iter: usize,
            _probe: &Probe<'_>,
            rng: &mut Rng64,
        ) {
            if iter > 0 && iter.is_multiple_of(self.tau) {
                let i = rng.below(points.len());
                points.set_point(i, &[rng.uniform_in(-1.0, 1.0)]);
            }
        }
    }

    /// Test sampler that truncates the set below the batch size.
    struct Shrinker;

    impl Sampler for Shrinker {
        fn name(&self) -> &str {
            "shrinker-test"
        }
        fn fill_batch(&mut self, batch_size: usize, out: &mut Vec<usize>, rng: &mut Rng64) {
            out.clear();
            for _ in 0..batch_size {
                out.push(rng.below(4));
            }
        }
        fn adapts_points(&self) -> bool {
            true
        }
        fn adapt(
            &mut self,
            points: &mut PointSet,
            iter: usize,
            _probe: &Probe<'_>,
            _rng: &mut Rng64,
        ) {
            if iter == 3 {
                points.truncate(4);
            }
        }
    }

    #[derive(Default)]
    struct PointsLog {
        events: Vec<(usize, usize, usize, usize, usize)>,
    }

    impl Hook for PointsLog {
        fn on_points(&mut self, iter: usize, total: usize, changes: &crate::PointChanges) {
            self.events.push((
                iter,
                total,
                changes.moved.len(),
                changes.added,
                changes.dropped,
            ));
        }
    }

    #[test]
    fn adapt_growth_keeps_batches_valid_and_notifies_hooks() {
        let (mut net, model) = setup(50);
        let n0 = model.num_interior();
        let mut sampler = Densify {
            n: n0,
            tau: 10,
            add: 8,
        };
        let mut log = PointsLog::default();
        let o = opts(45);
        let result = {
            let mut hooks: [&mut dyn Hook; 1] = [&mut log];
            Trainer {
                net: &mut net,
                model: &model,
            }
            .run_hooked(&mut sampler, None, &o, &mut hooks)
        };
        // Adapt fired at iterations 10, 20, 30, 40.
        assert_eq!(log.events.len(), 4);
        for (k, &(iter, total, moved, added, dropped)) in log.events.iter().enumerate() {
            assert_eq!(iter, 10 * (k + 1));
            assert_eq!(total, n0 + 8 * (k + 1));
            assert_eq!((moved, added, dropped), (0, 8, 0));
        }
        assert_eq!(sampler.n, n0 + 32);
        // Batches over the grown set trained without index trouble and
        // the loss stayed finite.
        assert!(result.history.iter().all(|r| r.train_loss.is_finite()));
    }

    #[test]
    #[should_panic(expected = "below batch_interior")]
    fn adapt_shrinking_below_batch_panics_descriptively() {
        let (mut net, model) = setup(51);
        let mut sampler = Shrinker;
        let o = opts(10);
        let _ = Trainer {
            net: &mut net,
            model: &model,
        }
        .run(&mut sampler, None, &o);
    }

    #[test]
    fn adaptive_resume_matches_uninterrupted_run_across_mutations() {
        // Both samplers mutate the set before and after the checkpoint
        // at iteration 23, so resume must restore mutated coordinates
        // (growth AND moves) bit-exactly.
        let o = opts(60);
        for case in 0..2 {
            let mk: &dyn Fn(usize) -> Box<dyn Sampler> = if case == 0 {
                &|n| Box::new(Densify { n, tau: 7, add: 3 })
            } else {
                &|n| Box::new(Jitter { n, tau: 7 })
            };
            let (mut net_a, model) = setup(43);
            let mut sampler_a = mk(model.num_interior());
            let full = Trainer {
                net: &mut net_a,
                model: &model,
            }
            .run(sampler_a.as_mut(), None, &o);

            let (mut net_b, _) = setup(43);
            let mut sampler_b = mk(model.num_interior());
            let state = Trainer {
                net: &mut net_b,
                model: &model,
            }
            .run_until(sampler_b.as_mut(), None, &o, 23);
            let state = RunState::from_json(&state.to_json().unwrap()).unwrap();
            assert_eq!(state.version, 2, "adaptive runs checkpoint as v2");
            assert!(state.points.is_some());

            let (mut net_c, _) = setup(43);
            let mut sampler_c = mk(model.num_interior());
            let resumed = Trainer {
                net: &mut net_c,
                model: &model,
            }
            .resume(sampler_c.as_mut(), None, &o, &state)
            .unwrap();

            assert_eq!(full.history.len(), resumed.history.len());
            for (a, b) in full.history.iter().zip(&resumed.history) {
                assert_eq!(a.iteration, b.iteration);
                assert_eq!(
                    a.train_loss.to_bits(),
                    b.train_loss.to_bits(),
                    "case {case} iter {}",
                    a.iteration
                );
            }
            for (a, b) in net_a.params().iter().zip(&net_c.params()) {
                assert_eq!(a.to_bits(), b.to_bits(), "case {case}");
            }
        }
    }

    #[test]
    fn chained_segments_match_uninterrupted_run() {
        // Slice the run into uneven segments through fresh net/sampler
        // instances each time (the server's scheduling pattern) and
        // compare against one uninterrupted run, bit for bit.
        let o = opts(60);
        let (mut net_a, model) = setup(47);
        let mut sampler_a = UniformSampler::new(model.num_interior());
        let full = Trainer {
            net: &mut net_a,
            model: &model,
        }
        .run(&mut sampler_a, None, &o);

        let mut state: Option<RunState> = None;
        let mut last = None;
        for stop in [7usize, 8, 31, 60] {
            let (mut net, _) = setup(47);
            let mut sampler = UniformSampler::new(model.num_interior());
            let seg = Trainer {
                net: &mut net,
                model: &model,
            }
            .run_segment(&mut sampler, None, &o, &mut [], state.as_ref(), stop)
            .unwrap();
            let st = seg.state.expect("segment boundary state");
            assert_eq!(st.iteration, stop);
            // Round-trip through JSON, as the server's checkpoint
            // download / warm-resume path does.
            state = Some(RunState::from_json(&st.to_json().unwrap()).unwrap());
            last = Some((seg.result, net));
        }
        let (result, net) = last.unwrap();
        assert_eq!(full.history.len(), result.history.len());
        for (a, b) in full.history.iter().zip(&result.history) {
            assert_eq!(a.iteration, b.iteration);
            assert_eq!(a.seconds.to_bits(), b.seconds.to_bits());
            assert_eq!(a.train_loss.to_bits(), b.train_loss.to_bits());
        }
        for (a, b) in net_a.params().iter().zip(&net.params()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // The final segment (stop_after == iterations) still yields a
        // checkpoint at the end of the run.
        assert_eq!(state.unwrap().iteration, 60);
    }

    #[test]
    fn run_segment_rejects_bad_boundaries() {
        let o = opts(20);
        let (mut net, model) = setup(48);
        let mut sampler = UniformSampler::new(model.num_interior());
        let mut t = Trainer {
            net: &mut net,
            model: &model,
        };
        assert!(t
            .run_segment(&mut sampler, None, &o, &mut [], None, 0)
            .is_err());
        assert!(t
            .run_segment(&mut sampler, None, &o, &mut [], None, 21)
            .is_err());
        let seg = t
            .run_segment(&mut sampler, None, &o, &mut [], None, 10)
            .unwrap();
        let st = seg.state.unwrap();
        // A boundary at or before the state's iteration is an error,
        // not a panic — the server feeds client-controlled values here.
        let mut s2 = UniformSampler::new(model.num_interior());
        let err = t
            .run_segment(&mut s2, None, &o, &mut [], Some(&st), 10)
            .unwrap_err();
        assert!(err.contains("past stop_after"), "{err}");
    }

    #[test]
    fn resume_rejects_point_state_with_draw_only_sampler() {
        let o = opts(30);
        let (mut net, model) = setup(52);
        let mut adaptive = Densify {
            n: model.num_interior(),
            tau: 5,
            add: 2,
        };
        let mut state = Trainer {
            net: &mut net,
            model: &model,
        }
        .run_until(&mut adaptive, None, &o, 12);
        // Pretend the state came from the uniform sampler: the point
        // set must still be rejected.
        state.sampler_name = "uniform".into();
        state.sampler_state = Value::Null;
        let mut uniform = UniformSampler::new(model.num_interior());
        let err = Trainer {
            net: &mut net,
            model: &model,
        }
        .resume(&mut uniform, None, &o, &state)
        .unwrap_err();
        assert!(err.contains("does not adapt"), "{err}");
    }

    #[test]
    fn resume_rejects_wrong_sampler() {
        let o = opts(30);
        let (mut net, model) = setup(44);
        let mut sampler = UniformSampler::new(model.num_interior());
        let mut state = Trainer {
            net: &mut net,
            model: &model,
        }
        .run_until(&mut sampler, None, &o, 5);
        state.sampler_name = "other".into();
        let err = Trainer {
            net: &mut net,
            model: &model,
        }
        .resume(&mut sampler, None, &o, &state);
        assert!(err.is_err());
    }
}
