//! [`ObsHook`] — the bridge from the engine's [`Hook`] events to the
//! `sgm-obs` metrics registry.
//!
//! Installing it adds, per stage, one histogram record (a few relaxed
//! atomics, no locks, no allocation in steady state) — the
//! `tests/train_zero_alloc.rs` suite and the `obs_overhead` bench group
//! in `sgm-bench` pin both halves of that claim.

use crate::hooks::{Hook, Stage};
use crate::result::Record;
use sgm_obs::{Counter, Gauge, Histogram};
use std::time::Duration;

/// Wall time per engine stage (nanoseconds), indexed like
/// [`Stage::index`].
static STAGE_NS: [Histogram; Stage::COUNT] = [
    Histogram::new("sgm_train_stage_refresh_ns"),
    Histogram::new("sgm_train_stage_draw_ns"),
    Histogram::new("sgm_train_stage_gather_ns"),
    Histogram::new("sgm_train_stage_loss_grad_ns"),
    Histogram::new("sgm_train_stage_step_ns"),
    Histogram::new("sgm_train_stage_record_ns"),
];
static ITERATIONS: Counter = Counter::new("sgm_train_iterations_total");
static RECORDS: Counter = Counter::new("sgm_train_records_total");
static TRAIN_LOSS: Gauge = Gauge::new("sgm_train_loss");

/// A [`Hook`] that mirrors engine stage timings and convergence points
/// into the process metrics registry:
///
/// | metric | kind | meaning |
/// |---|---|---|
/// | `sgm_train_stage_<stage>_ns` | histogram | wall time of each stage |
/// | `sgm_train_iterations_total` | counter | completed iterations |
/// | `sgm_train_records_total` | counter | history records produced |
/// | `sgm_train_loss` | gauge | most recent recorded training loss |
#[derive(Debug, Clone, Copy, Default)]
pub struct ObsHook;

impl ObsHook {
    /// A fresh hook (stateless — all state lives in the registry).
    pub fn new() -> Self {
        ObsHook
    }
}

impl Hook for ObsHook {
    fn on_stage(&mut self, _iter: usize, stage: Stage, dt: Duration) {
        STAGE_NS[stage.index()].record_duration(dt);
    }

    fn on_iteration(&mut self, _iter: usize) {
        ITERATIONS.inc();
    }

    fn on_record(&mut self, record: &Record) {
        RECORDS.inc();
        TRAIN_LOSS.set(record.train_loss);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hook_feeds_the_registry() {
        let mut h = ObsHook::new();
        let before = STAGE_NS[Stage::Step.index()].snapshot().count;
        h.on_stage(0, Stage::Step, Duration::from_nanos(1234));
        h.on_iteration(0);
        h.on_record(&Record {
            iteration: 0,
            seconds: 0.0,
            train_loss: 0.25,
            val_errors: Vec::new(),
        });
        let after = STAGE_NS[Stage::Step.index()].snapshot().count;
        assert_eq!(after, before + 1);
        assert_eq!(TRAIN_LOSS.value(), 0.25);
    }
}
