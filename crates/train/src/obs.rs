//! [`ObsHook`] — the bridge from the engine's [`Hook`] events to the
//! `sgm-obs` metrics registry.
//!
//! Installing it adds, per stage, one histogram record (a few relaxed
//! atomics, no locks, no allocation in steady state) — the
//! `tests/train_zero_alloc.rs` suite and the `obs_overhead` bench group
//! in `sgm-bench` pin both halves of that claim.

use crate::hooks::{Hook, Stage};
use crate::pointset::PointChanges;
use crate::result::Record;
use sgm_obs::{Counter, Gauge, Histogram};
use std::time::Duration;

/// Wall time per engine stage (nanoseconds), indexed like
/// [`Stage::index`].
static STAGE_NS: [Histogram; Stage::COUNT] = [
    Histogram::new("sgm_train_stage_refresh_ns"),
    Histogram::new("sgm_train_stage_adapt_ns"),
    Histogram::new("sgm_train_stage_draw_ns"),
    Histogram::new("sgm_train_stage_gather_ns"),
    Histogram::new("sgm_train_stage_loss_grad_ns"),
    Histogram::new("sgm_train_stage_step_ns"),
    Histogram::new("sgm_train_stage_record_ns"),
];
static ITERATIONS: Counter = Counter::new("sgm_train_iterations_total");
static RECORDS: Counter = Counter::new("sgm_train_records_total");
static TRAIN_LOSS: Gauge = Gauge::new("sgm_train_loss");
static POINTS_MOVED: Counter = Counter::new("sgm_train_points_moved_total");
static POINTS_ADDED: Counter = Counter::new("sgm_train_points_added_total");
static POINTS_DROPPED: Counter = Counter::new("sgm_train_points_dropped_total");
static POINTS: Gauge = Gauge::new("sgm_train_points");

/// A [`Hook`] that mirrors engine stage timings and convergence points
/// into the process metrics registry:
///
/// | metric | kind | meaning |
/// |---|---|---|
/// | `sgm_train_stage_<stage>_ns` | histogram | wall time of each stage |
/// | `sgm_train_iterations_total` | counter | completed iterations |
/// | `sgm_train_records_total` | counter | history records produced |
/// | `sgm_train_loss` | gauge | most recent recorded training loss |
/// | `sgm_train_points_moved_total` | counter | points moved by adapt phases |
/// | `sgm_train_points_added_total` | counter | points added by adapt phases |
/// | `sgm_train_points_dropped_total` | counter | points dropped by adapt phases |
/// | `sgm_train_points` | gauge | current collocation-set size |
#[derive(Debug, Clone, Copy, Default)]
pub struct ObsHook;

impl ObsHook {
    /// A fresh hook (stateless — all state lives in the registry).
    pub fn new() -> Self {
        ObsHook
    }
}

impl Hook for ObsHook {
    fn on_stage(&mut self, _iter: usize, stage: Stage, dt: Duration) {
        STAGE_NS[stage.index()].record_duration(dt);
    }

    fn on_iteration(&mut self, _iter: usize) {
        ITERATIONS.inc();
    }

    fn on_record(&mut self, record: &Record) {
        RECORDS.inc();
        TRAIN_LOSS.set(record.train_loss);
    }

    fn on_points(&mut self, _iter: usize, total: usize, changes: &PointChanges) {
        POINTS_MOVED.add(changes.moved.len() as u64);
        POINTS_ADDED.add(changes.added as u64);
        POINTS_DROPPED.add(changes.dropped as u64);
        POINTS.set(total as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hook_feeds_the_registry() {
        let mut h = ObsHook::new();
        let before = STAGE_NS[Stage::Step.index()].snapshot().count;
        h.on_stage(0, Stage::Step, Duration::from_nanos(1234));
        h.on_iteration(0);
        h.on_record(&Record {
            iteration: 0,
            seconds: 0.0,
            train_loss: 0.25,
            val_errors: Vec::new(),
        });
        let after = STAGE_NS[Stage::Step.index()].snapshot().count;
        assert_eq!(after, before + 1);
        assert_eq!(TRAIN_LOSS.value(), 0.25);
    }

    #[test]
    fn point_changes_feed_the_registry() {
        let mut h = ObsHook::new();
        let (m0, a0, d0) = (
            POINTS_MOVED.value(),
            POINTS_ADDED.value(),
            POINTS_DROPPED.value(),
        );
        h.on_points(
            3,
            105,
            &PointChanges {
                moved: vec![1, 4, 9],
                added: 5,
                dropped: 2,
            },
        );
        assert_eq!(POINTS_MOVED.value(), m0 + 3);
        assert_eq!(POINTS_ADDED.value(), a0 + 5);
        assert_eq!(POINTS_DROPPED.value(), d0 + 2);
        assert_eq!(POINTS.value(), 105.0);
    }
}
