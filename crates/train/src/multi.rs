//! Lockstep multi-model training through batched kernels.
//!
//! [`run_lockstep`] advances a group of same-architecture training jobs
//! one shared iteration at a time: every job draws its own batch with
//! its own RNG and sampler, but the network forward/backward and the
//! Adam update run once for the whole group through
//! [`BatchedMlp`]/[`BatchedAdam`] — one register-tiled pass instead of
//! `B` sequential ones. [`ParamSweep`] builds on it to train a whole
//! parameter family (the paper's §4.2 annular-ring sweep) to completion.
//!
//! # Bit-identity contract
//!
//! Per job, every trained parameter, Adam moment, RNG draw, recorded
//! loss and captured [`RunState`] is **bit-identical** to running that
//! job alone through [`Trainer::run_segment`](crate::Trainer) on the
//! same SIMD tier — the batched kernels evaluate the same per-element
//! chains, and the per-job stage order (refresh → draw → gather →
//! loss/grad → step → record) is preserved exactly. The only divergence
//! is *measured* wall-clock accounting: a lockstep iteration charges the
//! full group-iteration duration to every job. Under
//! [`TrainOptions::synthetic_dt`] (what every determinism test uses) the
//! clocks are bit-identical too.
//!
//! # Constraints
//!
//! All jobs in one group must share: network architecture,
//! `batch_interior`, effective boundary batch, `diff_dims`, Adam
//! `beta1`/`beta2`/`eps`, and remaining step count. Learning rates,
//! schedules, seeds, samplers, datasets and record cadences may differ
//! per job. Point-adapting samplers are not supported (probes run, point
//! mutation does not).

use crate::engine::{Segment, TrainOptions};
use crate::model::{BatchedLossModel, LossModel, ModelWorkspace, Validator};
use crate::result::{Record, TrainResult};
use crate::runstate::RunState;
use crate::sampler::{Probe, Sampler};
use sgm_linalg::dense::Matrix;
use sgm_linalg::rng::Rng64;
use sgm_nn::batched::{BatchedAdam, BatchedMlp, BatchedWorkspace};
use sgm_nn::checkpoint::Checkpoint;
use sgm_nn::mlp::{BatchDerivatives, Mlp};
use std::time::Instant;

/// One member of a lockstep group: a training job with an optional
/// resume state and a stop boundary, exactly like a
/// [`Trainer::run_segment`](crate::Trainer) call.
pub struct MultiJob<'a> {
    /// The network being trained (overwritten on restore, updated in
    /// place every iteration).
    pub net: &'a mut Mlp,
    /// The training objective.
    pub model: &'a dyn BatchedLossModel,
    /// Batch sampler (must not adapt points).
    pub sampler: &'a mut dyn Sampler,
    /// Off-clock validation, recorded with each history entry.
    pub validator: Option<&'a dyn Validator>,
    /// Loop options (iteration count, batches, Adam, seed, cadence).
    pub opts: &'a TrainOptions,
    /// Resume state from a previous segment, `None` for a fresh start.
    pub start: Option<&'a RunState>,
    /// Train up to and including iteration `stop_after - 1`, then
    /// capture state at the boundary.
    pub stop_after: usize,
}

impl std::fmt::Debug for MultiJob<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiJob")
            .field("stop_after", &self.stop_after)
            .finish_non_exhaustive()
    }
}

/// Per-job mutable loop state (mirrors the locals of the solo
/// `run_core`).
struct JobState {
    start_iter: usize,
    train_clock: f64,
    record_clock: f64,
    history: Vec<Record>,
    rng: Rng64,
    idx: Vec<usize>,
    bidx: Vec<usize>,
    derivs_i: BatchDerivatives,
    adj_i: BatchDerivatives,
    derivs_b: BatchDerivatives,
    adj_b: BatchDerivatives,
    expired: bool,
}

/// Advances every job in lockstep to its `stop_after` boundary (all
/// jobs must have the same number of remaining steps) and returns one
/// [`Segment`] per job, in order.
///
/// Each returned [`Segment::state`] is `Some` at the reached boundary.
/// If any job's `max_seconds` budget expires, the whole group stops at
/// that iteration boundary: the expired jobs report `state: None`
/// (their run is over, matching solo semantics) and the rest report the
/// early boundary in `state` — inspect `state.iteration` and regroup to
/// continue, as [`ParamSweep::run`] does.
///
/// # Errors
/// Returns a message when the group constraints are violated (mixed
/// architectures, batch shapes, `diff_dims`, Adam betas, unequal step
/// counts, an adaptive sampler, or a state mismatch).
///
/// # Panics
/// Panics on zero/oversized interior batches (as the solo engine does).
pub fn run_lockstep(jobs: &mut [MultiJob<'_>]) -> Result<Vec<Segment>, String> {
    if jobs.is_empty() {
        return Ok(Vec::new());
    }
    let cfg = jobs[0].net.config().clone();
    let bi = jobs[0].opts.batch_interior;
    let diff_dims = jobs[0].model.diff_dims();
    let bb = effective_bb(&jobs[0]);
    let adam0 = &jobs[0].opts.adam;
    for (j, job) in jobs.iter().enumerate() {
        assert!(
            job.opts.batch_interior > 0,
            "batch_interior must be positive"
        );
        assert!(
            job.opts.batch_interior <= job.model.num_interior(),
            "batch larger than dataset"
        );
        if job.net.config() != &cfg {
            return Err(format!("job {j}: network architecture differs from job 0"));
        }
        if job.opts.batch_interior != bi {
            return Err(format!("job {j}: batch_interior differs from job 0"));
        }
        if effective_bb(job) != bb {
            return Err(format!(
                "job {j}: effective boundary batch differs from job 0"
            ));
        }
        if job.model.diff_dims() != diff_dims {
            return Err(format!("job {j}: diff_dims differ from job 0"));
        }
        let a = &job.opts.adam;
        if a.beta1 != adam0.beta1 || a.beta2 != adam0.beta2 || a.eps != adam0.eps {
            return Err(format!("job {j}: Adam beta1/beta2/eps differ from job 0"));
        }
        if job.sampler.adapts_points() {
            return Err(format!(
                "job {j}: sampler {:?} adapts points, which lockstep execution \
                 does not support",
                job.sampler.name()
            ));
        }
        if job.stop_after == 0 || job.stop_after > job.opts.iterations {
            return Err(format!(
                "job {j}: stop_after {} outside 1..={}",
                job.stop_after, job.opts.iterations
            ));
        }
    }

    // Restore per-job state exactly as the solo engine does.
    let mut states: Vec<JobState> = Vec::with_capacity(jobs.len());
    let out_dim = cfg.output_dim;
    let nd = diff_dims.len();
    for (j, job) in jobs.iter_mut().enumerate() {
        let mut st = JobState {
            start_iter: 0,
            train_clock: 0.0,
            record_clock: 0.0,
            history: Vec::new(),
            rng: Rng64::new(job.opts.seed),
            idx: Vec::with_capacity(bi),
            bidx: Vec::with_capacity(bb),
            derivs_i: BatchDerivatives::zeros(bi, out_dim, nd),
            adj_i: BatchDerivatives::zeros(bi, out_dim, nd),
            derivs_b: BatchDerivatives::zeros(bb, out_dim, 0),
            adj_b: BatchDerivatives::zeros(bb, out_dim, 0),
            expired: false,
        };
        if let Some(s) = job.start {
            if s.sampler_name != job.sampler.name() {
                return Err(format!(
                    "job {j}: state saved with sampler {:?}, resuming with {:?}",
                    s.sampler_name,
                    job.sampler.name()
                ));
            }
            if s.points.is_some() {
                return Err(format!(
                    "job {j}: state carries a mutated point set, which lockstep \
                     execution does not support"
                ));
            }
            let restored = s
                .net
                .restore()
                .map_err(|e| format!("job {j}: net restore: {e}"))?;
            if restored.num_params() != job.net.num_params() {
                return Err(format!(
                    "job {j}: state has {} parameters, network has {}",
                    restored.num_params(),
                    job.net.num_params()
                ));
            }
            *job.net = restored;
            st.rng = Rng64::from_state(s.rng_state, s.rng_gauss_spare);
            job.sampler.load_state(&s.sampler_state)?;
            st.history = s.history.clone();
            st.train_clock = s.train_seconds;
            st.record_clock = s.record_seconds;
            st.start_iter = s.iteration;
        }
        if job.stop_after <= st.start_iter {
            return Err(format!(
                "job {j}: state is already at iteration {}, past stop_after {}",
                st.start_iter, job.stop_after
            ));
        }
        states.push(st);
    }
    let steps = jobs[0].stop_after - states[0].start_iter;
    for (j, (job, st)) in jobs.iter().zip(&states).enumerate() {
        if job.stop_after - st.start_iter != steps {
            return Err(format!(
                "job {j}: {} remaining steps, job 0 has {steps} — lockstep \
                 requires equal remaining step counts",
                job.stop_after - st.start_iter
            ));
        }
    }

    // Pack the group: interleaved network, optimiser, workspaces.
    let mut packed = {
        let refs: Vec<&Mlp> = jobs.iter().map(|job| &*job.net).collect();
        BatchedMlp::pack(&refs)
    };
    let cfgs: Vec<_> = jobs.iter().map(|job| job.opts.adam.clone()).collect();
    let mut badam = BatchedAdam::pack(&packed, &cfgs);
    for (j, job) in jobs.iter().enumerate() {
        if let Some(s) = job.start {
            if s.adam_m.len() != job.net.num_params() {
                return Err(format!(
                    "job {j}: state has {} Adam moments, network has {} parameters",
                    s.adam_m.len(),
                    job.net.num_params()
                ));
            }
            badam.restore_lane(j, s.adam_t, &s.adam_m, &s.adam_v);
        }
    }
    let mut bws: BatchedWorkspace = packed.make_workspace(bi, nd);
    let mut bws_b: Option<BatchedWorkspace> = (bb > 0).then(|| packed.make_workspace(bb, 0));
    let mut bgrads = packed.zero_gradients();
    let mut wss: Vec<Box<dyn ModelWorkspace>> = jobs
        .iter()
        .map(|job| job.model.make_workspace(job.net, bi, bb))
        .collect();

    // Completed lockstep steps (the early-stop boundary when a budget
    // expires mid-group).
    let mut done = 0usize;
    for step in 0..steps {
        if jobs.iter().zip(&mut states).any(|(job, st)| {
            st.expired = job
                .opts
                .max_seconds
                .is_some_and(|budget| st.train_clock >= budget);
            st.expired
        }) {
            break;
        }
        let t0 = Instant::now();
        // Refresh + draw + gather, per job in order (each on its own
        // RNG, exactly the solo stage sequence).
        for ((job, st), ws) in jobs.iter_mut().zip(&mut states).zip(&mut wss) {
            let iter = st.start_iter + step;
            {
                let probe = Probe::with_points(job.net, job.model as &dyn LossModel, None);
                job.sampler.refresh(iter, &probe, &mut st.rng);
            }
            job.sampler.fill_batch(bi, &mut st.idx, &mut st.rng);
            st.bidx.clear();
            let nb = job.model.num_boundary();
            for _ in 0..bb {
                st.bidx.push(st.rng.below(nb));
            }
            job.model.gather(&st.idx, &st.bidx, &mut **ws);
        }
        // Interior loss/grad for the whole group in one batched pass.
        {
            let xs: Vec<&Matrix> = jobs
                .iter()
                .zip(&wss)
                .map(|(job, ws)| job.model.interior_input(&**ws))
                .collect();
            packed.forward_with_derivs_batched(&xs, &diff_dims, &mut bws);
        }
        for (j, ((job, st), ws)) in jobs.iter().zip(&mut states).zip(&mut wss).enumerate() {
            bws.extract_derivs(j, &mut st.derivs_i);
            job.model
                .interior_adjoints(&mut **ws, &st.derivs_i, &mut st.adj_i);
            bws.set_adjoints(j, &st.adj_i);
        }
        bgrads.zero();
        packed.backward_batched(&mut bws, &mut bgrads);
        // Boundary term, sharing the same gradient accumulator.
        if let Some(bwsb) = bws_b.as_mut() {
            {
                let xs: Vec<&Matrix> = jobs
                    .iter()
                    .zip(&wss)
                    .map(|(job, ws)| {
                        job.model
                            .boundary_input(&**ws)
                            .expect("bb > 0 implies boundary input")
                    })
                    .collect();
                packed.forward_with_derivs_batched(&xs, &[], bwsb);
            }
            for (j, ((job, st), ws)) in jobs.iter().zip(&mut states).zip(&mut wss).enumerate() {
                bwsb.extract_derivs(j, &mut st.derivs_b);
                job.model
                    .boundary_adjoints(&mut **ws, &st.derivs_b.values, &mut st.adj_b);
                bwsb.set_adjoints(j, &st.adj_b);
            }
            packed.backward_batched(bwsb, &mut bgrads);
        }
        badam.step(&mut packed, &bgrads);
        // Write every lane back so probes/records see the stepped nets.
        for (j, job) in jobs.iter_mut().enumerate() {
            packed.extract_to(j, job.net);
        }
        let dt = t0.elapsed().as_secs_f64();
        for (job, st) in jobs.iter_mut().zip(&mut states) {
            st.train_clock += job.opts.synthetic_dt.unwrap_or(dt);
            let iter = st.start_iter + step;
            if iter % job.opts.record_every == 0 || iter + 1 == job.opts.iterations {
                let r0 = Instant::now();
                let train_loss = job.model.batch_loss(job.net, &st.idx, &st.bidx);
                let val_errors = match job.validator {
                    Some(v) => v.val_errors(job.net),
                    None => Vec::new(),
                };
                let record = Record {
                    iteration: iter,
                    seconds: st.train_clock,
                    train_loss,
                    val_errors,
                };
                if job.opts.synthetic_dt.is_none() {
                    st.record_clock += r0.elapsed().as_secs_f64();
                }
                st.history.push(record);
            }
        }
        done = step + 1;
    }

    // Capture per-job boundary states (None for budget-expired jobs,
    // matching the solo engine).
    let mut out = Vec::with_capacity(jobs.len());
    for (j, (job, st)) in jobs.iter_mut().zip(&states).enumerate() {
        let state = if st.expired {
            None
        } else {
            let (rng_state, rng_gauss_spare) = st.rng.state();
            let (adam_t, adam_m, adam_v) = badam.lane_state(j);
            Some(RunState {
                version: 1,
                iteration: st.start_iter + done,
                train_seconds: st.train_clock,
                record_seconds: st.record_clock,
                net: Checkpoint::capture(job.net),
                adam_t,
                adam_m,
                adam_v,
                rng_state,
                rng_gauss_spare,
                history: st.history.clone(),
                sampler_name: job.sampler.name().to_string(),
                sampler_state: job.sampler.save_state(),
                points: None,
            })
        };
        out.push(Segment {
            result: TrainResult {
                history: st.history.clone(),
                train_seconds: st.train_clock,
                record_seconds: st.record_clock,
                total_seconds: st.train_clock + st.record_clock,
                sampler: job.sampler.name().to_string(),
            },
            state,
        });
    }
    Ok(out)
}

/// Effective boundary batch for a job (the solo engine's clamp).
fn effective_bb(job: &MultiJob<'_>) -> usize {
    let nb = job.model.num_boundary();
    if nb > 0 {
        job.opts.batch_boundary.min(nb)
    } else {
        0
    }
}

/// One member of a [`ParamSweep`]: a full training job run to
/// completion.
pub struct SweepJob<'a> {
    /// The network being trained.
    pub net: &'a mut Mlp,
    /// The training objective (one parameter instance of the family).
    pub model: &'a dyn BatchedLossModel,
    /// Batch sampler (must not adapt points).
    pub sampler: &'a mut dyn Sampler,
    /// Off-clock validation.
    pub validator: Option<&'a dyn Validator>,
    /// Loop options.
    pub opts: &'a TrainOptions,
}

impl std::fmt::Debug for SweepJob<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepJob").finish_non_exhaustive()
    }
}

/// Trains a same-architecture parameter family as one batched group
/// instead of sequential solo runs — the batched path for the paper's
/// §4.2 annular-ring parameter sweep.
#[derive(Debug)]
pub struct ParamSweep;

impl ParamSweep {
    /// Runs every job to completion (its own `iterations` /
    /// `max_seconds`), stepping the whole family through the batched
    /// kernels in lockstep segments. Jobs with differing iteration
    /// counts or expiring budgets are regrouped at segment boundaries;
    /// each job's outcome is bit-identical to a solo
    /// [`Trainer::run`](crate::Trainer) under `synthetic_dt`.
    ///
    /// # Errors
    /// Propagates [`run_lockstep`] constraint violations.
    pub fn run(jobs: &mut [SweepJob<'_>]) -> Result<Vec<TrainResult>, String> {
        let n = jobs.len();
        let mut states: Vec<Option<RunState>> = (0..n).map(|_| None).collect();
        let mut results: Vec<Option<TrainResult>> = (0..n).map(|_| None).collect();
        let mut active: Vec<usize> = (0..n).collect();
        while !active.is_empty() {
            // Largest segment every active job can run: to the nearest
            // completion boundary.
            let steps = active
                .iter()
                .map(|&j| {
                    let cur = states[j].as_ref().map_or(0, |s| s.iteration);
                    jobs[j].opts.iterations - cur
                })
                .min()
                .expect("active set is non-empty");
            let order: Vec<usize> = active.clone();
            let mut mjobs: Vec<MultiJob<'_>> = Vec::with_capacity(order.len());
            for (j, job) in jobs.iter_mut().enumerate() {
                if !order.contains(&j) {
                    continue;
                }
                let cur = states[j].as_ref().map_or(0, |s| s.iteration);
                mjobs.push(MultiJob {
                    net: &mut *job.net,
                    model: job.model,
                    sampler: &mut *job.sampler,
                    validator: job.validator,
                    opts: job.opts,
                    start: states[j].as_ref(),
                    stop_after: cur + steps,
                });
            }
            let segs = run_lockstep(&mut mjobs)?;
            active.clear();
            for (&j, seg) in order.iter().zip(segs) {
                results[j] = Some(seg.result);
                match seg.state {
                    // Budget expired: the job is done, final result kept.
                    None => {}
                    Some(st) => {
                        if st.iteration < jobs[j].opts.iterations {
                            active.push(j);
                        }
                        states[j] = Some(st);
                    }
                }
            }
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("every job ran"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Trainer;
    use crate::sampler::UniformSampler;
    use sgm_nn::activation::Activation;
    use sgm_nn::mlp::{Gradients, MlpConfig, MlpWorkspace};
    use sgm_nn::optimizer::{AdamConfig, LrSchedule};
    use std::any::Any;

    /// Engine-level test objective with the same staged structure as a
    /// PINN model: interior loss `mean((u-y)²) + 0.1·mean((u')²)`
    /// (derivative-carrying, diff_dims = [0]) plus a boundary value
    /// term `mean(u(x_b)²)`.
    struct DerivReg {
        x: Matrix,
        y: Vec<f64>,
        bx: Matrix,
    }

    struct DerivRegWs {
        xi: Matrix,
        yi: Vec<f64>,
        nni: MlpWorkspace,
        adj_i: BatchDerivatives,
        bb: usize,
        xb: Matrix,
        nnb: MlpWorkspace,
        adj_b: BatchDerivatives,
    }

    impl ModelWorkspace for DerivRegWs {
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    impl DerivReg {
        fn new(seed: u64, n: usize, nb: usize) -> Self {
            let mut rng = Rng64::new(seed);
            let x = Matrix::gaussian(n, 1, &mut rng);
            let y = (0..n).map(|i| (2.0 * x.get(i, 0)).sin()).collect();
            let bx = Matrix::gaussian(nb, 1, &mut rng);
            DerivReg { x, y, bx }
        }

        /// Adjoint seeding shared by the solo and batched paths — both
        /// call exactly this arithmetic on bit-identical derivatives.
        fn seed_interior(
            &self,
            yi: &[f64],
            d: &BatchDerivatives,
            adj: &mut BatchDerivatives,
        ) -> f64 {
            let b = d.values.rows();
            let inv = 1.0 / b as f64;
            let mut loss = 0.0;
            adj.zero();
            for (r, &target) in yi.iter().enumerate().take(b) {
                let e = d.values.get(r, 0) - target;
                loss += e * e * inv;
                adj.values.set(r, 0, 2.0 * e * inv);
                let du = d.jac[0].get(r, 0);
                loss += 0.1 * du * du * inv;
                adj.jac[0].set(r, 0, 0.2 * du * inv);
            }
            loss
        }

        fn seed_boundary(&self, vals: &Matrix, adj: &mut BatchDerivatives) -> f64 {
            let b = vals.rows();
            let inv = 1.0 / b as f64;
            let mut loss = 0.0;
            adj.zero();
            for r in 0..b {
                let v = vals.get(r, 0);
                loss += v * v * inv;
                adj.values.set(r, 0, 2.0 * v * inv);
            }
            loss
        }
    }

    impl LossModel for DerivReg {
        fn num_interior(&self) -> usize {
            self.x.rows()
        }
        fn num_boundary(&self) -> usize {
            self.bx.rows()
        }
        fn make_workspace(
            &self,
            net: &Mlp,
            batch_interior: usize,
            batch_boundary: usize,
        ) -> Box<dyn ModelWorkspace> {
            Box::new(DerivRegWs {
                xi: Matrix::zeros(batch_interior, 1),
                yi: vec![0.0; batch_interior],
                nni: net.make_workspace(batch_interior, 1),
                adj_i: BatchDerivatives::zeros(batch_interior, 1, 1),
                bb: batch_boundary,
                xb: Matrix::zeros(batch_boundary, 1),
                nnb: net.make_workspace(batch_boundary, 0),
                adj_b: BatchDerivatives::zeros(batch_boundary, 1, 0),
            })
        }
        fn gather(
            &self,
            interior_idx: &[usize],
            boundary_idx: &[usize],
            ws: &mut dyn ModelWorkspace,
        ) {
            let ws: &mut DerivRegWs = ws.as_any_mut().downcast_mut().unwrap();
            for (r, &i) in interior_idx.iter().enumerate() {
                ws.xi.set(r, 0, self.x.get(i, 0));
                ws.yi[r] = self.y[i];
            }
            if ws.bb > 0 {
                for (r, &i) in boundary_idx.iter().enumerate() {
                    ws.xb.set(r, 0, self.bx.get(i, 0));
                }
            }
        }
        fn loss_and_grad(
            &self,
            net: &Mlp,
            ws: &mut dyn ModelWorkspace,
            grads: &mut Gradients,
        ) -> f64 {
            let ws: &mut DerivRegWs = ws.as_any_mut().downcast_mut().unwrap();
            net.forward_with_derivs_ws(&ws.xi, &[0], &mut ws.nni);
            let mut total = {
                let DerivRegWs { nni, yi, adj_i, .. } = &mut *ws;
                self.seed_interior(yi, nni.derivs(), adj_i)
            };
            net.backward_ws(&mut ws.nni, &ws.adj_i, grads);
            if ws.bb > 0 {
                net.forward_with_derivs_ws(&ws.xb, &[], &mut ws.nnb);
                total += {
                    let DerivRegWs { nnb, adj_b, .. } = &mut *ws;
                    self.seed_boundary(&nnb.derivs().values, adj_b)
                };
                net.backward_ws(&mut ws.nnb, &ws.adj_b, grads);
            }
            total
        }
        fn batch_loss(&self, net: &Mlp, interior_idx: &[usize], boundary_idx: &[usize]) -> f64 {
            // Reuse the gradient path's arithmetic on throwaway buffers
            // so record losses agree between solo and lockstep runs.
            let mut ws = self.make_workspace(net, interior_idx.len(), boundary_idx.len());
            self.gather(interior_idx, boundary_idx, &mut *ws);
            let ws: &mut DerivRegWs = ws.as_any_mut().downcast_mut().unwrap();
            net.forward_with_derivs_ws(&ws.xi, &[0], &mut ws.nni);
            let mut total = self.seed_interior(&ws.yi, ws.nni.derivs(), &mut ws.adj_i);
            if ws.bb > 0 {
                net.forward_with_derivs_ws(&ws.xb, &[], &mut ws.nnb);
                let DerivRegWs { nnb, adj_b, .. } = &mut *ws;
                total += self.seed_boundary(&nnb.derivs().values, adj_b);
            }
            total
        }
        fn sample_losses(&self, net: &Mlp, idx: &[usize]) -> Vec<f64> {
            idx.iter()
                .map(|&i| {
                    let o = net.forward(&self.inputs(&[i]));
                    let e = o.get(0, 0) - self.y[i];
                    e * e
                })
                .collect()
        }
        fn outputs(&self, net: &Mlp, idx: &[usize]) -> Matrix {
            net.forward(&self.inputs(idx))
        }
        fn inputs(&self, idx: &[usize]) -> Matrix {
            let mut m = Matrix::zeros(idx.len(), 1);
            for (r, &i) in idx.iter().enumerate() {
                m.set(r, 0, self.x.get(i, 0));
            }
            m
        }
    }

    impl BatchedLossModel for DerivReg {
        fn diff_dims(&self) -> Vec<usize> {
            vec![0]
        }
        fn interior_input<'a>(&self, ws: &'a dyn ModelWorkspace) -> &'a Matrix {
            &ws.as_any().downcast_ref::<DerivRegWs>().unwrap().xi
        }
        fn boundary_input<'a>(&self, ws: &'a dyn ModelWorkspace) -> Option<&'a Matrix> {
            let ws = ws.as_any().downcast_ref::<DerivRegWs>().unwrap();
            (ws.bb > 0).then_some(&ws.xb)
        }
        fn interior_adjoints(
            &self,
            ws: &mut dyn ModelWorkspace,
            derivs: &BatchDerivatives,
            adj: &mut BatchDerivatives,
        ) -> f64 {
            let ws: &mut DerivRegWs = ws.as_any_mut().downcast_mut().unwrap();
            self.seed_interior(&ws.yi, derivs, adj)
        }
        fn boundary_adjoints(
            &self,
            _ws: &mut dyn ModelWorkspace,
            values: &Matrix,
            adj: &mut BatchDerivatives,
        ) -> f64 {
            self.seed_boundary(values, adj)
        }
    }

    const DT: f64 = 1.0 / 1024.0;

    fn mk_net(seed: u64) -> Mlp {
        Mlp::new(
            &MlpConfig {
                input_dim: 1,
                output_dim: 1,
                hidden_width: 12,
                hidden_layers: 2,
                activation: Activation::Tanh,
                fourier: None,
            },
            &mut Rng64::new(seed),
        )
    }

    fn mk_opts(iterations: usize, lr: f64, seed: u64) -> TrainOptions {
        TrainOptions {
            iterations,
            batch_interior: 16,
            batch_boundary: 8,
            adam: AdamConfig {
                lr,
                schedule: LrSchedule::Constant,
                ..AdamConfig::default()
            },
            seed,
            record_every: 10,
            max_seconds: None,
            synthetic_dt: Some(DT),
        }
    }

    fn solo_run(model: &DerivReg, net_seed: u64, opts: &TrainOptions) -> (Mlp, TrainResult) {
        let mut net = mk_net(net_seed);
        let mut sampler = UniformSampler::new(model.num_interior());
        let result = Trainer {
            net: &mut net,
            model,
        }
        .run(&mut sampler, None, opts);
        (net, result)
    }

    fn assert_same_run(a: &TrainResult, b: &TrainResult, na: &Mlp, nb: &Mlp, tag: &str) {
        assert_eq!(a.history.len(), b.history.len(), "{tag}: history length");
        for (x, y) in a.history.iter().zip(&b.history) {
            assert_eq!(x.iteration, y.iteration, "{tag}");
            assert_eq!(x.seconds.to_bits(), y.seconds.to_bits(), "{tag}");
            assert_eq!(
                x.train_loss.to_bits(),
                y.train_loss.to_bits(),
                "{tag} iter {}",
                x.iteration
            );
        }
        assert_eq!(
            a.train_seconds.to_bits(),
            b.train_seconds.to_bits(),
            "{tag}"
        );
        for (x, y) in na.params().iter().zip(&nb.params()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{tag}: params");
        }
    }

    /// A 3-job lockstep sweep (different datasets, seeds, learning
    /// rates and schedules) reproduces each solo run bit for bit.
    #[test]
    fn sweep_matches_solo_runs_bitwise() {
        let models: Vec<DerivReg> = (0..3).map(|i| DerivReg::new(60 + i, 64, 16)).collect();
        let optses = [
            mk_opts(50, 1e-2, 3),
            mk_opts(50, 3e-3, 4),
            TrainOptions {
                adam: AdamConfig {
                    lr: 5e-3,
                    schedule: LrSchedule::Exponential {
                        gamma: 0.9,
                        decay_steps: 7,
                    },
                    ..AdamConfig::default()
                },
                ..mk_opts(50, 5e-3, 5)
            },
        ];
        let solo: Vec<(Mlp, TrainResult)> = (0..3)
            .map(|i| solo_run(&models[i], 80 + i as u64, &optses[i]))
            .collect();

        let mut nets: Vec<Mlp> = (0..3).map(|i| mk_net(80 + i as u64)).collect();
        let mut samplers: Vec<UniformSampler> = models
            .iter()
            .map(|m| UniformSampler::new(m.num_interior()))
            .collect();
        let mut jobs: Vec<SweepJob<'_>> = nets
            .iter_mut()
            .zip(&models)
            .zip(&mut samplers)
            .zip(&optses)
            .map(|(((net, model), sampler), opts)| SweepJob {
                net,
                model,
                sampler,
                validator: None,
                opts,
            })
            .collect();
        let results = ParamSweep::run(&mut jobs).unwrap();
        drop(jobs);
        for i in 0..3 {
            assert_same_run(
                &solo[i].1,
                &results[i],
                &solo[i].0,
                &nets[i],
                &format!("job {i}"),
            );
        }
    }

    /// Lockstep segments chain bit-identically: run to 23, capture,
    /// resume the whole group to 50, and compare against solo runs.
    #[test]
    fn lockstep_segments_resume_bitwise() {
        let models: Vec<DerivReg> = (0..2).map(|i| DerivReg::new(70 + i, 48, 12)).collect();
        let optses = [mk_opts(50, 1e-2, 11), mk_opts(50, 2e-3, 12)];
        let solo: Vec<(Mlp, TrainResult)> = (0..2)
            .map(|i| solo_run(&models[i], 90 + i as u64, &optses[i]))
            .collect();

        let mut nets: Vec<Mlp> = (0..2).map(|i| mk_net(90 + i as u64)).collect();
        let mut states: Vec<Option<RunState>> = vec![None, None];
        for stop in [23usize, 50] {
            let mut samplers: Vec<UniformSampler> = models
                .iter()
                .map(|m| UniformSampler::new(m.num_interior()))
                .collect();
            let mut jobs: Vec<MultiJob<'_>> = nets
                .iter_mut()
                .zip(&models)
                .zip(&mut samplers)
                .zip(&optses)
                .zip(&states)
                .map(|((((net, model), sampler), opts), start)| MultiJob {
                    net,
                    model,
                    sampler,
                    validator: None,
                    opts,
                    start: start.as_ref(),
                    stop_after: stop,
                })
                .collect();
            let segs = run_lockstep(&mut jobs).unwrap();
            drop(jobs);
            for (i, seg) in segs.into_iter().enumerate() {
                let st = seg.state.expect("boundary state");
                assert_eq!(st.iteration, stop);
                // Round-trip through JSON like the job server does.
                states[i] = Some(RunState::from_json(&st.to_json().unwrap()).unwrap());
                if stop == 50 {
                    assert_same_run(
                        &solo[i].1,
                        &seg.result,
                        &solo[i].0,
                        &nets[i],
                        &format!("job {i}"),
                    );
                }
            }
        }
    }

    /// Jobs with different iteration counts regroup at completion
    /// boundaries; each still matches its solo run.
    #[test]
    fn sweep_regroups_mixed_lengths() {
        let models: Vec<DerivReg> = (0..3).map(|i| DerivReg::new(75 + i, 48, 12)).collect();
        let optses = [
            mk_opts(20, 1e-2, 21),
            mk_opts(50, 1e-2, 22),
            mk_opts(35, 1e-2, 23),
        ];
        let solo: Vec<(Mlp, TrainResult)> = (0..3)
            .map(|i| solo_run(&models[i], 95 + i as u64, &optses[i]))
            .collect();
        let mut nets: Vec<Mlp> = (0..3).map(|i| mk_net(95 + i as u64)).collect();
        let mut samplers: Vec<UniformSampler> = models
            .iter()
            .map(|m| UniformSampler::new(m.num_interior()))
            .collect();
        let mut jobs: Vec<SweepJob<'_>> = nets
            .iter_mut()
            .zip(&models)
            .zip(&mut samplers)
            .zip(&optses)
            .map(|(((net, model), sampler), opts)| SweepJob {
                net,
                model,
                sampler,
                validator: None,
                opts,
            })
            .collect();
        let results = ParamSweep::run(&mut jobs).unwrap();
        drop(jobs);
        for i in 0..3 {
            assert_same_run(
                &solo[i].1,
                &results[i],
                &solo[i].0,
                &nets[i],
                &format!("job {i}"),
            );
        }
    }

    /// A budget-limited job expires at the same boundary as solo; the
    /// surviving job continues to completion.
    #[test]
    fn sweep_budget_expiry_matches_solo() {
        let models: Vec<DerivReg> = (0..2).map(|i| DerivReg::new(78 + i, 48, 12)).collect();
        let optses = [
            TrainOptions {
                max_seconds: Some(10.5 * DT),
                record_every: 1,
                ..mk_opts(50, 1e-2, 31)
            },
            mk_opts(50, 1e-2, 32),
        ];
        let solo: Vec<(Mlp, TrainResult)> = (0..2)
            .map(|i| solo_run(&models[i], 97 + i as u64, &optses[i]))
            .collect();
        assert_eq!(solo[0].1.history.last().unwrap().iteration, 10);
        let mut nets: Vec<Mlp> = (0..2).map(|i| mk_net(97 + i as u64)).collect();
        let mut samplers: Vec<UniformSampler> = models
            .iter()
            .map(|m| UniformSampler::new(m.num_interior()))
            .collect();
        let mut jobs: Vec<SweepJob<'_>> = nets
            .iter_mut()
            .zip(&models)
            .zip(&mut samplers)
            .zip(&optses)
            .map(|(((net, model), sampler), opts)| SweepJob {
                net,
                model,
                sampler,
                validator: None,
                opts,
            })
            .collect();
        let results = ParamSweep::run(&mut jobs).unwrap();
        drop(jobs);
        for i in 0..2 {
            assert_same_run(
                &solo[i].1,
                &results[i],
                &solo[i].0,
                &nets[i],
                &format!("job {i}"),
            );
        }
    }

    /// Constraint violations surface as errors, not corrupt runs.
    #[test]
    fn lockstep_rejects_mismatched_groups() {
        let model = DerivReg::new(85, 48, 12);
        // Mixed Adam betas.
        let o1 = mk_opts(10, 1e-2, 1);
        let o2 = TrainOptions {
            adam: AdamConfig {
                beta1: 0.8,
                ..o1.adam.clone()
            },
            ..o1.clone()
        };
        let (mut n1, mut n2) = (mk_net(1), mk_net(2));
        let (mut s1, mut s2) = (
            UniformSampler::new(model.num_interior()),
            UniformSampler::new(model.num_interior()),
        );
        let mut jobs = vec![
            MultiJob {
                net: &mut n1,
                model: &model,
                sampler: &mut s1,
                validator: None,
                opts: &o1,
                start: None,
                stop_after: 10,
            },
            MultiJob {
                net: &mut n2,
                model: &model,
                sampler: &mut s2,
                validator: None,
                opts: &o2,
                start: None,
                stop_after: 10,
            },
        ];
        let err = run_lockstep(&mut jobs).unwrap_err();
        assert!(err.contains("beta1/beta2/eps"), "{err}");
        // Unequal remaining steps.
        jobs[1].opts = &o1;
        jobs[1].stop_after = 7;
        let err = run_lockstep(&mut jobs).unwrap_err();
        assert!(err.contains("equal remaining step"), "{err}");
    }
}
