//! Per-stage instrumentation of the training pipeline.
//!
//! Every iteration the engine runs the same staged sequence; a [`Hook`]
//! observes stage boundaries without touching the hot path's allocation
//! behaviour (hook methods receive plain values and `&`-references
//! only). The bundled [`StageTimes`] hook aggregates per-stage wall
//! time — the "sampler overhead" columns of the paper's comparisons fall
//! out of its `Refresh`/`Draw` buckets.

use crate::result::Record;

/// The stages of one training iteration, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Sampler importance-state refresh (the `τ_e` probe work).
    Refresh,
    /// Mini-batch index draw (interior + boundary).
    Draw,
    /// Gathering batch rows into the workspace.
    Gather,
    /// Loss evaluation and backward pass.
    LossGrad,
    /// Optimiser update.
    Step,
    /// Off-clock recording: post-step batch loss + validation. Not part
    /// of training time.
    Record,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 6;

    /// Dense index (execution order).
    pub fn index(self) -> usize {
        match self {
            Stage::Refresh => 0,
            Stage::Draw => 1,
            Stage::Gather => 2,
            Stage::LossGrad => 3,
            Stage::Step => 4,
            Stage::Record => 5,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Refresh => "refresh",
            Stage::Draw => "draw",
            Stage::Gather => "gather",
            Stage::LossGrad => "loss_grad",
            Stage::Step => "step",
            Stage::Record => "record",
        }
    }
}

/// Observer of the staged training pipeline. All methods default to
/// no-ops so hooks implement only what they need.
pub trait Hook {
    /// Called after each stage with its measured wall time in seconds
    /// (measured even when the engine runs on a synthetic clock).
    fn on_stage(&mut self, iter: usize, stage: Stage, seconds: f64) {
        let _ = (iter, stage, seconds);
    }

    /// Called once per iteration after the optimiser step (before any
    /// recording).
    fn on_iteration(&mut self, iter: usize) {
        let _ = iter;
    }

    /// Called for every history record as it is produced.
    fn on_record(&mut self, record: &Record) {
        let _ = record;
    }
}

/// Aggregating hook: total seconds per stage and iteration count.
#[derive(Debug, Clone, Default)]
pub struct StageTimes {
    totals: [f64; Stage::COUNT],
    iterations: usize,
}

impl StageTimes {
    /// Fresh aggregator.
    pub fn new() -> Self {
        StageTimes::default()
    }

    /// Total seconds spent in `stage` so far.
    pub fn total(&self, stage: Stage) -> f64 {
        self.totals[stage.index()]
    }

    /// Iterations observed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Total *training* seconds (all stages except `Record`).
    pub fn train_total(&self) -> f64 {
        self.totals[..Stage::Record.index()].iter().sum()
    }
}

impl Hook for StageTimes {
    fn on_stage(&mut self, _iter: usize, stage: Stage, seconds: f64) {
        self.totals[stage.index()] += seconds;
    }

    fn on_iteration(&mut self, _iter: usize) {
        self.iterations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_indices_are_dense_and_ordered() {
        let stages = [
            Stage::Refresh,
            Stage::Draw,
            Stage::Gather,
            Stage::LossGrad,
            Stage::Step,
            Stage::Record,
        ];
        for (i, s) in stages.iter().enumerate() {
            assert_eq!(s.index(), i);
            assert!(!s.name().is_empty());
        }
        assert_eq!(stages.len(), Stage::COUNT);
    }

    #[test]
    fn stage_times_aggregate() {
        let mut t = StageTimes::new();
        t.on_stage(0, Stage::Refresh, 1.0);
        t.on_stage(0, Stage::Step, 2.0);
        t.on_stage(1, Stage::Record, 4.0);
        t.on_iteration(0);
        t.on_iteration(1);
        assert_eq!(t.total(Stage::Refresh), 1.0);
        assert_eq!(t.train_total(), 3.0);
        assert_eq!(t.iterations(), 2);
    }
}
