//! Per-stage instrumentation of the training pipeline.
//!
//! Every iteration the engine runs the same staged sequence; a [`Hook`]
//! observes stage boundaries without touching the hot path's allocation
//! behaviour (hook methods receive plain values and `&`-references
//! only). The bundled [`StageTimes`] hook aggregates per-stage wall
//! time — the "sampler overhead" columns of the paper's comparisons fall
//! out of its `Refresh`/`Draw` buckets.

use crate::pointset::PointChanges;
use crate::result::Record;
use std::time::Duration;

/// The stages of one training iteration, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Sampler importance-state refresh (the `τ_e` probe work).
    Refresh,
    /// Point-set mutation by an adaptive sampler (zero-cost no-op for
    /// draw-only samplers).
    Adapt,
    /// Mini-batch index draw (interior + boundary).
    Draw,
    /// Gathering batch rows into the workspace.
    Gather,
    /// Loss evaluation and backward pass.
    LossGrad,
    /// Optimiser update.
    Step,
    /// Off-clock recording: post-step batch loss + validation. Not part
    /// of training time.
    Record,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 7;

    /// All stages in execution order (`ALL[s.index()] == s`).
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Refresh,
        Stage::Adapt,
        Stage::Draw,
        Stage::Gather,
        Stage::LossGrad,
        Stage::Step,
        Stage::Record,
    ];

    /// Dense index (execution order).
    pub fn index(self) -> usize {
        match self {
            Stage::Refresh => 0,
            Stage::Adapt => 1,
            Stage::Draw => 2,
            Stage::Gather => 3,
            Stage::LossGrad => 4,
            Stage::Step => 5,
            Stage::Record => 6,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Refresh => "refresh",
            Stage::Adapt => "adapt",
            Stage::Draw => "draw",
            Stage::Gather => "gather",
            Stage::LossGrad => "loss_grad",
            Stage::Step => "step",
            Stage::Record => "record",
        }
    }
}

/// Observer of the staged training pipeline. All methods default to
/// no-ops so hooks implement only what they need.
pub trait Hook {
    /// Called after each stage with its measured wall time (measured
    /// even when the engine runs on a synthetic clock). The full
    /// [`Duration`] is passed so sub-microsecond stages keep their
    /// nanosecond resolution.
    fn on_stage(&mut self, iter: usize, stage: Stage, dt: Duration) {
        let _ = (iter, stage, dt);
    }

    /// Called once per iteration after the optimiser step (before any
    /// recording).
    fn on_iteration(&mut self, iter: usize) {
        let _ = iter;
    }

    /// Called for every history record as it is produced.
    fn on_record(&mut self, record: &Record) {
        let _ = record;
    }

    /// Called when the adapt stage mutated the collocation set, with
    /// the new set size and the drained change log.
    fn on_points(&mut self, iter: usize, total: usize, changes: &PointChanges) {
        let _ = (iter, total, changes);
    }
}

/// Aggregating hook: per-stage totals, extrema and means.
///
/// Accumulates in integer nanoseconds (`u128` totals, so ~10^22 seconds
/// before overflow) rather than `f64` seconds — summing many
/// sub-microsecond stage timings into an `f64` total loses the low bits
/// once the total grows past ~1 second.
#[derive(Debug, Clone)]
pub struct StageTimes {
    total_ns: [u128; Stage::COUNT],
    min_ns: [u64; Stage::COUNT],
    max_ns: [u64; Stage::COUNT],
    counts: [u64; Stage::COUNT],
    iterations: usize,
}

impl Default for StageTimes {
    fn default() -> Self {
        StageTimes {
            total_ns: [0; Stage::COUNT],
            min_ns: [u64::MAX; Stage::COUNT],
            max_ns: [0; Stage::COUNT],
            counts: [0; Stage::COUNT],
            iterations: 0,
        }
    }
}

impl StageTimes {
    /// Fresh aggregator.
    pub fn new() -> Self {
        StageTimes::default()
    }

    /// Total seconds spent in `stage` so far.
    pub fn total(&self, stage: Stage) -> f64 {
        self.total_ns[stage.index()] as f64 * 1e-9
    }

    /// Total time spent in `stage`, at full resolution.
    pub fn total_duration(&self, stage: Stage) -> Duration {
        let ns = self.total_ns[stage.index()];
        Duration::from_nanos(ns.min(u64::MAX as u128) as u64)
    }

    /// Observations of `stage`.
    pub fn count(&self, stage: Stage) -> u64 {
        self.counts[stage.index()]
    }

    /// Fastest observation of `stage`, if any.
    pub fn min(&self, stage: Stage) -> Option<Duration> {
        (self.counts[stage.index()] > 0).then(|| Duration::from_nanos(self.min_ns[stage.index()]))
    }

    /// Slowest observation of `stage`, if any.
    pub fn max(&self, stage: Stage) -> Option<Duration> {
        (self.counts[stage.index()] > 0).then(|| Duration::from_nanos(self.max_ns[stage.index()]))
    }

    /// Mean observation of `stage`, if any.
    pub fn mean(&self, stage: Stage) -> Option<Duration> {
        let i = stage.index();
        (self.counts[i] > 0).then(|| {
            let ns = self.total_ns[i] / self.counts[i] as u128;
            Duration::from_nanos(ns.min(u64::MAX as u128) as u64)
        })
    }

    /// Iterations observed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Total *training* seconds (all stages except `Record`).
    pub fn train_total(&self) -> f64 {
        self.total_ns[..Stage::Record.index()].iter().sum::<u128>() as f64 * 1e-9
    }
}

impl Hook for StageTimes {
    fn on_stage(&mut self, _iter: usize, stage: Stage, dt: Duration) {
        let i = stage.index();
        let ns = dt.as_nanos();
        let ns64 = ns.min(u64::MAX as u128) as u64;
        self.total_ns[i] += ns;
        self.min_ns[i] = self.min_ns[i].min(ns64);
        self.max_ns[i] = self.max_ns[i].max(ns64);
        self.counts[i] += 1;
    }

    fn on_iteration(&mut self, _iter: usize) {
        self.iterations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_indices_are_dense_and_ordered() {
        let stages = [
            Stage::Refresh,
            Stage::Adapt,
            Stage::Draw,
            Stage::Gather,
            Stage::LossGrad,
            Stage::Step,
            Stage::Record,
        ];
        for (i, s) in stages.iter().enumerate() {
            assert_eq!(s.index(), i);
            assert!(!s.name().is_empty());
        }
        assert_eq!(stages.len(), Stage::COUNT);
    }

    #[test]
    fn stage_times_aggregate() {
        let mut t = StageTimes::new();
        t.on_stage(0, Stage::Refresh, Duration::from_secs(1));
        t.on_stage(0, Stage::Step, Duration::from_secs(2));
        t.on_stage(1, Stage::Record, Duration::from_secs(4));
        t.on_iteration(0);
        t.on_iteration(1);
        assert_eq!(t.total(Stage::Refresh), 1.0);
        assert_eq!(t.train_total(), 3.0);
        assert_eq!(t.iterations(), 2);
    }

    #[test]
    fn nanosecond_timings_are_not_lost() {
        // 10^7 observations of 100ns: an f64-seconds accumulator keeps
        // this exact too, but interleaved with large values it wouldn't;
        // integer nanoseconds are exact by construction.
        let mut t = StageTimes::new();
        t.on_stage(0, Stage::Step, Duration::from_secs(1_000_000));
        for i in 0..1000 {
            t.on_stage(i, Stage::Step, Duration::from_nanos(1));
        }
        let total = t.total_ns[Stage::Step.index()];
        assert_eq!(total, 1_000_000u128 * 1_000_000_000 + 1000);
        assert_eq!(t.min(Stage::Step), Some(Duration::from_nanos(1)));
        assert_eq!(t.max(Stage::Step), Some(Duration::from_secs(1_000_000)));
        assert_eq!(t.count(Stage::Step), 1001);
    }

    #[test]
    fn extrema_and_mean_empty_stage() {
        let t = StageTimes::new();
        assert_eq!(t.min(Stage::Draw), None);
        assert_eq!(t.max(Stage::Draw), None);
        assert_eq!(t.mean(Stage::Draw), None);
        assert_eq!(t.count(Stage::Draw), 0);

        let mut t = StageTimes::new();
        t.on_stage(0, Stage::Draw, Duration::from_nanos(10));
        t.on_stage(1, Stage::Draw, Duration::from_nanos(30));
        assert_eq!(t.mean(Stage::Draw), Some(Duration::from_nanos(20)));
    }
}
