//! Reverse-mode automatic differentiation on a shared tape, with
//! higher-order support.
//!
//! Every [`Var`] is a handle to a node on a [`Tape`] (Wengert list). The
//! backward pass of [`Var::grad`] does not accumulate raw floats: it emits
//! *new tape nodes* expressing the adjoints, so the resulting gradient
//! variables can themselves be differentiated. This is how the test oracles
//! obtain exact second/third derivatives of MLP outputs with respect to
//! inputs and parameters simultaneously.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    /// Leaf: independent variable.
    Input,
    /// Leaf: constant (no gradient flows).
    Const,
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    Div(usize, usize),
    Neg(usize),
    Sin(usize),
    Cos(usize),
    Exp(usize),
    Ln(usize),
    Tanh(usize),
    Sigmoid(usize),
    Sqrt(usize),
    Powi(usize, i32),
    Abs(usize),
}

#[derive(Debug)]
struct Node {
    op: Op,
    value: f64,
}

#[derive(Debug, Default)]
struct TapeInner {
    nodes: Vec<Node>,
}

/// A growable record of scalar operations.
///
/// Cloning the handle is cheap; all clones share the same underlying
/// storage. Tapes are single-threaded by design (`Rc`); each worker thread
/// builds its own tape.
#[derive(Clone, Default)]
pub struct Tape {
    inner: Rc<RefCell<TapeInner>>,
}

impl fmt::Debug for Tape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tape({} nodes)", self.len())
    }
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push(&self, op: Op, value: f64) -> Var {
        let mut inner = self.inner.borrow_mut();
        inner.nodes.push(Node { op, value });
        Var {
            tape: self.clone(),
            idx: inner.nodes.len() - 1,
        }
    }

    /// Records an independent (differentiable) input variable.
    pub fn input(&self, value: f64) -> Var {
        self.push(Op::Input, value)
    }

    /// Records a constant (gradient does not flow into it).
    pub fn constant(&self, value: f64) -> Var {
        self.push(Op::Const, value)
    }

    fn same_tape(&self, other: &Tape) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }
}

/// A differentiable scalar variable living on a [`Tape`].
#[derive(Clone)]
pub struct Var {
    tape: Tape,
    idx: usize,
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var[{}]={}", self.idx, self.value())
    }
}

macro_rules! unary {
    ($name:ident, $op:ident, $f:expr) => {
        /// Elementwise transcendental/unary operation.
        pub fn $name(&self) -> Var {
            let v = self.value();
            #[allow(clippy::redundant_closure_call)]
            self.tape.push(Op::$op(self.idx), ($f)(v))
        }
    };
}

impl Var {
    /// Current value.
    pub fn value(&self) -> f64 {
        self.tape.inner.borrow().nodes[self.idx].value
    }

    /// The tape this variable lives on.
    pub fn tape(&self) -> &Tape {
        &self.tape
    }

    fn binary(&self, other: &Var, make: impl Fn(usize, usize) -> Op, value: f64) -> Var {
        assert!(
            self.tape.same_tape(&other.tape),
            "variables from different tapes"
        );
        self.tape.push(make(self.idx, other.idx), value)
    }

    /// Addition.
    pub fn add_v(&self, o: &Var) -> Var {
        self.binary(o, Op::Add, self.value() + o.value())
    }
    /// Subtraction.
    pub fn sub_v(&self, o: &Var) -> Var {
        self.binary(o, Op::Sub, self.value() - o.value())
    }
    /// Multiplication.
    pub fn mul_v(&self, o: &Var) -> Var {
        self.binary(o, Op::Mul, self.value() * o.value())
    }
    /// Division.
    pub fn div_v(&self, o: &Var) -> Var {
        self.binary(o, Op::Div, self.value() / o.value())
    }

    unary!(neg_v, Neg, |v: f64| -v);
    unary!(sin, Sin, f64::sin);
    unary!(cos, Cos, f64::cos);
    unary!(exp, Exp, f64::exp);
    unary!(ln, Ln, f64::ln);
    unary!(tanh, Tanh, f64::tanh);
    unary!(sqrt, Sqrt, f64::sqrt);
    unary!(abs, Abs, f64::abs);

    /// Logistic sigmoid `1 / (1 + e^{-x})`.
    pub fn sigmoid(&self) -> Var {
        let v = self.value();
        let s = 1.0 / (1.0 + (-v).exp());
        self.tape.push(Op::Sigmoid(self.idx), s)
    }

    /// SiLU (a.k.a. swish): `x · sigmoid(x)` — the activation used by the
    /// paper's networks.
    pub fn silu(&self) -> Var {
        self.mul_v(&self.sigmoid())
    }

    /// Integer power.
    pub fn powi(&self, n: i32) -> Var {
        self.tape.push(Op::Powi(self.idx, n), self.value().powi(n))
    }

    /// Squared value.
    pub fn square(&self) -> Var {
        self.powi(2)
    }

    /// Adds a plain constant.
    pub fn add_c(&self, c: f64) -> Var {
        let cv = self.tape.constant(c);
        self.add_v(&cv)
    }

    /// Multiplies by a plain constant.
    pub fn mul_c(&self, c: f64) -> Var {
        let cv = self.tape.constant(c);
        self.mul_v(&cv)
    }

    /// Reverse-mode gradient of `self` with respect to each variable in
    /// `wrt`, returned in the same order.
    ///
    /// The adjoints are emitted as new nodes on the same tape, so the
    /// returned variables can be differentiated again (higher-order AD).
    ///
    /// # Panics
    /// Panics if any `wrt` variable lives on a different tape.
    pub fn grad(&self, wrt: &[Var]) -> Vec<Var> {
        for w in wrt {
            assert!(self.tape.same_tape(&w.tape), "wrt on a different tape");
        }
        let n = self.idx + 1;
        // Adjoint per node, represented lazily: None = structurally zero.
        let mut adj: Vec<Option<Var>> = vec![None; n];
        adj[self.idx] = Some(self.tape.constant(1.0));

        // Snapshot the ops up to self.idx: backward emission appends nodes,
        // but those new nodes have indices > self.idx and are never visited.
        let ops: Vec<Op> = {
            let inner = self.tape.inner.borrow();
            inner.nodes[..n].iter().map(|nd| nd.op).collect()
        };

        let accumulate = |slot: &mut Option<Var>, contrib: Var| {
            *slot = Some(match slot.take() {
                None => contrib,
                Some(existing) => existing.add_v(&contrib),
            });
        };

        for i in (0..n).rev() {
            let Some(gi) = adj[i].clone() else { continue };
            let var_at = |idx: usize| Var {
                tape: self.tape.clone(),
                idx,
            };
            match ops[i] {
                Op::Input | Op::Const => {}
                Op::Add(a, b) => {
                    accumulate(&mut adj[a], gi.clone());
                    accumulate(&mut adj[b], gi);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut adj[a], gi.clone());
                    accumulate(&mut adj[b], gi.neg_v());
                }
                Op::Mul(a, b) => {
                    let va = var_at(a);
                    let vb = var_at(b);
                    accumulate(&mut adj[a], gi.mul_v(&vb));
                    accumulate(&mut adj[b], gi.mul_v(&va));
                }
                Op::Div(a, b) => {
                    let va = var_at(a);
                    let vb = var_at(b);
                    accumulate(&mut adj[a], gi.div_v(&vb));
                    // d/db (a/b) = -a / b²
                    let term = gi.mul_v(&va).div_v(&vb.mul_v(&vb)).neg_v();
                    accumulate(&mut adj[b], term);
                }
                Op::Neg(a) => accumulate(&mut adj[a], gi.neg_v()),
                Op::Sin(a) => {
                    let va = var_at(a);
                    accumulate(&mut adj[a], gi.mul_v(&va.cos()));
                }
                Op::Cos(a) => {
                    let va = var_at(a);
                    accumulate(&mut adj[a], gi.mul_v(&va.sin()).neg_v());
                }
                Op::Exp(a) => {
                    let vi = var_at(i);
                    accumulate(&mut adj[a], gi.mul_v(&vi));
                }
                Op::Ln(a) => {
                    let va = var_at(a);
                    accumulate(&mut adj[a], gi.div_v(&va));
                }
                Op::Tanh(a) => {
                    // d tanh = 1 - tanh²
                    let vi = var_at(i);
                    let one = self.tape.constant(1.0);
                    let d = one.sub_v(&vi.mul_v(&vi));
                    accumulate(&mut adj[a], gi.mul_v(&d));
                }
                Op::Sigmoid(a) => {
                    // d σ = σ (1 - σ)
                    let vi = var_at(i);
                    let one = self.tape.constant(1.0);
                    let d = vi.mul_v(&one.sub_v(&vi));
                    accumulate(&mut adj[a], gi.mul_v(&d));
                }
                Op::Sqrt(a) => {
                    // d √x = 1 / (2 √x)
                    let vi = var_at(i);
                    let half = self.tape.constant(0.5);
                    accumulate(&mut adj[a], gi.mul_v(&half).div_v(&vi));
                }
                Op::Powi(a, p) => {
                    let va = var_at(a);
                    let coeff = self.tape.constant(p as f64);
                    let d = coeff.mul_v(&va.powi(p - 1));
                    accumulate(&mut adj[a], gi.mul_v(&d));
                }
                Op::Abs(a) => {
                    // Subgradient: sign(x), 0 at 0.
                    let s = self.tape.constant(var_at(a).value().signum());
                    accumulate(&mut adj[a], gi.mul_v(&s));
                }
            }
        }

        wrt.iter()
            .map(|w| {
                adj[w.idx]
                    .clone()
                    .unwrap_or_else(|| self.tape.constant(0.0))
            })
            .collect()
    }
}

impl std::ops::Add for &Var {
    type Output = Var;
    fn add(self, rhs: &Var) -> Var {
        self.add_v(rhs)
    }
}
impl std::ops::Sub for &Var {
    type Output = Var;
    fn sub(self, rhs: &Var) -> Var {
        self.sub_v(rhs)
    }
}
impl std::ops::Mul for &Var {
    type Output = Var;
    fn mul(self, rhs: &Var) -> Var {
        self.mul_v(rhs)
    }
}
impl std::ops::Div for &Var {
    type Output = Var;
    fn div(self, rhs: &Var) -> Var {
        self.div_v(rhs)
    }
}
impl std::ops::Neg for &Var {
    type Output = Var;
    fn neg(self) -> Var {
        self.neg_v()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-10 * (1.0 + a.abs() + b.abs())
    }

    #[test]
    fn first_order_polynomial() {
        // f(x, y) = x²y + 3x
        let t = Tape::new();
        let x = t.input(2.0);
        let y = t.input(5.0);
        let f = &x.square().mul_v(&y) + &x.mul_c(3.0);
        let g = f.grad(&[x.clone(), y.clone()]);
        assert!(close(g[0].value(), 2.0 * 2.0 * 5.0 + 3.0)); // 2xy + 3
        assert!(close(g[1].value(), 4.0)); // x²
    }

    #[test]
    fn division_rule() {
        let t = Tape::new();
        let x = t.input(3.0);
        let y = t.input(7.0);
        let f = x.div_v(&y);
        let g = f.grad(&[x.clone(), y.clone()]);
        assert!(close(g[0].value(), 1.0 / 7.0));
        assert!(close(g[1].value(), -3.0 / 49.0));
    }

    #[test]
    fn transcendentals() {
        let t = Tape::new();
        let x = t.input(0.4);
        for (f, expect) in [
            (
                x.sin().grad(std::slice::from_ref(&x))[0].value(),
                0.4f64.cos(),
            ),
            (
                x.cos().grad(std::slice::from_ref(&x))[0].value(),
                -(0.4f64.sin()),
            ),
            (
                x.exp().grad(std::slice::from_ref(&x))[0].value(),
                0.4f64.exp(),
            ),
            (x.ln().grad(std::slice::from_ref(&x))[0].value(), 1.0 / 0.4),
            (
                x.sqrt().grad(std::slice::from_ref(&x))[0].value(),
                0.5 / 0.4f64.sqrt(),
            ),
            (
                x.tanh().grad(std::slice::from_ref(&x))[0].value(),
                1.0 - 0.4f64.tanh().powi(2),
            ),
        ] {
            assert!(close(f, expect), "{f} vs {expect}");
        }
    }

    #[test]
    fn sigmoid_and_silu() {
        let t = Tape::new();
        let x = t.input(1.2);
        let s = 1.0 / (1.0 + (-1.2f64).exp());
        assert!(close(x.sigmoid().value(), s));
        let dsilu = x.silu().grad(std::slice::from_ref(&x))[0].value();
        // d silu = σ(x) + x σ(x)(1-σ(x))
        assert!(close(dsilu, s + 1.2 * s * (1.0 - s)));
    }

    #[test]
    fn second_derivative_of_square() {
        let t = Tape::new();
        let x = t.input(3.0);
        let f = x.square();
        let d1 = f.grad(std::slice::from_ref(&x))[0].clone();
        assert!(close(d1.value(), 6.0));
        let d2 = d1.grad(std::slice::from_ref(&x))[0].clone();
        assert!(close(d2.value(), 2.0));
    }

    #[test]
    fn third_derivative_of_exp() {
        let t = Tape::new();
        let x = t.input(0.3);
        let f = x.exp();
        let d1 = f.grad(std::slice::from_ref(&x))[0].clone();
        let d2 = d1.grad(std::slice::from_ref(&x))[0].clone();
        let d3 = d2.grad(std::slice::from_ref(&x))[0].clone();
        assert!(close(d3.value(), 0.3f64.exp()));
    }

    #[test]
    fn mixed_partial_symmetry() {
        // f = x² y³ ⇒ f_xy = 6 x y²
        let t = Tape::new();
        let x = t.input(1.5);
        let y = t.input(0.8);
        let f = x.square().mul_v(&y.powi(3));
        let fx = f.grad(std::slice::from_ref(&x))[0].clone();
        let fxy = fx.grad(std::slice::from_ref(&y))[0].clone();
        let fy = f.grad(std::slice::from_ref(&y))[0].clone();
        let fyx = fy.grad(std::slice::from_ref(&x))[0].clone();
        let expect = 6.0 * 1.5 * 0.8 * 0.8;
        assert!(close(fxy.value(), expect));
        assert!(close(fyx.value(), expect));
    }

    #[test]
    fn grad_of_unused_variable_is_zero() {
        let t = Tape::new();
        let x = t.input(1.0);
        let y = t.input(2.0);
        let f = x.square();
        let g = f.grad(std::slice::from_ref(&y));
        assert_eq!(g[0].value(), 0.0);
    }

    #[test]
    fn constants_block_gradient() {
        let t = Tape::new();
        let x = t.input(2.0);
        let c = t.constant(10.0);
        let f = x.mul_v(&c);
        let g = f.grad(std::slice::from_ref(&x));
        assert!(close(g[0].value(), 10.0));
    }

    #[test]
    fn fan_out_accumulates() {
        // f = x·x + x (x used three times)
        let t = Tape::new();
        let x = t.input(4.0);
        let f = &x.mul_v(&x) + &x;
        let g = f.grad(std::slice::from_ref(&x));
        assert!(close(g[0].value(), 9.0));
    }

    #[test]
    fn laplacian_of_harmonic_function_is_zero() {
        // u = x² - y² is harmonic: u_xx + u_yy = 0.
        let t = Tape::new();
        let x = t.input(1.3);
        let y = t.input(-0.7);
        let u = &x.square() - &y.square();
        let ux = u.grad(std::slice::from_ref(&x))[0].clone();
        let uxx = ux.grad(std::slice::from_ref(&x))[0].clone();
        let uy = u.grad(std::slice::from_ref(&y))[0].clone();
        let uyy = uy.grad(std::slice::from_ref(&y))[0].clone();
        assert!(close(uxx.value() + uyy.value(), 0.0));
    }

    #[test]
    fn tiny_mlp_parameter_gradient_matches_finite_difference() {
        // One hidden neuron: f(x) = w2 · tanh(w1 x + b1) + b2, loss = f².
        let eval = |w1: f64, b1: f64, w2: f64, b2: f64, xv: f64| -> f64 {
            let f = w2 * (w1 * xv + b1).tanh() + b2;
            f * f
        };
        let (w1v, b1v, w2v, b2v, xv) = (0.7, -0.2, 1.3, 0.1, 0.5);
        let t = Tape::new();
        let w1 = t.input(w1v);
        let b1 = t.input(b1v);
        let w2 = t.input(w2v);
        let b2 = t.input(b2v);
        let x = t.constant(xv);
        let f = &w2.mul_v(&w1.mul_v(&x).add_v(&b1).tanh()) + &b2;
        let loss = f.square();
        let g = loss.grad(&[w1, b1, w2, b2]);
        let h = 1e-6;
        let fd = [
            (eval(w1v + h, b1v, w2v, b2v, xv) - eval(w1v - h, b1v, w2v, b2v, xv)) / (2.0 * h),
            (eval(w1v, b1v + h, w2v, b2v, xv) - eval(w1v, b1v - h, w2v, b2v, xv)) / (2.0 * h),
            (eval(w1v, b1v, w2v + h, b2v, xv) - eval(w1v, b1v, w2v - h, b2v, xv)) / (2.0 * h),
            (eval(w1v, b1v, w2v, b2v + h, xv) - eval(w1v, b1v, w2v, b2v - h, xv)) / (2.0 * h),
        ];
        for i in 0..4 {
            assert!(
                (g[i].value() - fd[i]).abs() < 1e-5,
                "param {i}: {} vs {}",
                g[i].value(),
                fd[i]
            );
        }
    }

    #[test]
    #[should_panic]
    fn cross_tape_operations_panic() {
        let t1 = Tape::new();
        let t2 = Tape::new();
        let a = t1.input(1.0);
        let b = t2.input(2.0);
        let _ = a.add_v(&b);
    }

    #[test]
    fn abs_subgradient() {
        let t = Tape::new();
        let x = t.input(-2.0);
        let g = x.abs().grad(std::slice::from_ref(&x))[0].value();
        assert_eq!(g, -1.0);
    }
}
