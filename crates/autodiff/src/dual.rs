//! Forward-mode automatic differentiation with dual numbers.
//!
//! [`Dual`] carries `(value, first derivative)`; [`Dual2`] carries
//! `(value, first, second derivative)` along a single input direction.
//! Forward mode is the cheapest way to obtain one Jacobian/Hessian column
//! of a low-dimensional function, and serves as an independent oracle for
//! the reverse-mode tape and the hand-coded MLP propagation.

/// First-order dual number `a + b ε` with `ε² = 0`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Dual {
    /// Primal value.
    pub v: f64,
    /// Derivative (tangent).
    pub d: f64,
}

impl Dual {
    /// A constant (zero tangent).
    pub fn constant(v: f64) -> Self {
        Dual { v, d: 0.0 }
    }

    /// The seeded variable (unit tangent).
    pub fn variable(v: f64) -> Self {
        Dual { v, d: 1.0 }
    }

    /// Sine.
    pub fn sin(self) -> Self {
        Dual {
            v: self.v.sin(),
            d: self.d * self.v.cos(),
        }
    }
    /// Cosine.
    pub fn cos(self) -> Self {
        Dual {
            v: self.v.cos(),
            d: -self.d * self.v.sin(),
        }
    }
    /// Exponential.
    pub fn exp(self) -> Self {
        let e = self.v.exp();
        Dual {
            v: e,
            d: self.d * e,
        }
    }
    /// Natural logarithm.
    pub fn ln(self) -> Self {
        Dual {
            v: self.v.ln(),
            d: self.d / self.v,
        }
    }
    /// Hyperbolic tangent.
    pub fn tanh(self) -> Self {
        let t = self.v.tanh();
        Dual {
            v: t,
            d: self.d * (1.0 - t * t),
        }
    }
    /// Logistic sigmoid.
    pub fn sigmoid(self) -> Self {
        let s = 1.0 / (1.0 + (-self.v).exp());
        Dual {
            v: s,
            d: self.d * s * (1.0 - s),
        }
    }
    /// SiLU: `x σ(x)`.
    pub fn silu(self) -> Self {
        self * self.sigmoid()
    }
    /// Square root.
    pub fn sqrt(self) -> Self {
        let r = self.v.sqrt();
        Dual {
            v: r,
            d: self.d * 0.5 / r,
        }
    }
    /// Integer power.
    pub fn powi(self, n: i32) -> Self {
        Dual {
            v: self.v.powi(n),
            d: self.d * n as f64 * self.v.powi(n - 1),
        }
    }
}

impl std::ops::Add for Dual {
    type Output = Dual;
    fn add(self, o: Dual) -> Dual {
        Dual {
            v: self.v + o.v,
            d: self.d + o.d,
        }
    }
}
impl std::ops::Sub for Dual {
    type Output = Dual;
    fn sub(self, o: Dual) -> Dual {
        Dual {
            v: self.v - o.v,
            d: self.d - o.d,
        }
    }
}
impl std::ops::Mul for Dual {
    type Output = Dual;
    fn mul(self, o: Dual) -> Dual {
        Dual {
            v: self.v * o.v,
            d: self.d * o.v + self.v * o.d,
        }
    }
}
impl std::ops::Div for Dual {
    type Output = Dual;
    fn div(self, o: Dual) -> Dual {
        Dual {
            v: self.v / o.v,
            d: (self.d * o.v - self.v * o.d) / (o.v * o.v),
        }
    }
}
impl std::ops::Neg for Dual {
    type Output = Dual;
    fn neg(self) -> Dual {
        Dual {
            v: -self.v,
            d: -self.d,
        }
    }
}
impl std::ops::Mul<f64> for Dual {
    type Output = Dual;
    fn mul(self, s: f64) -> Dual {
        Dual {
            v: self.v * s,
            d: self.d * s,
        }
    }
}
impl std::ops::Add<f64> for Dual {
    type Output = Dual;
    fn add(self, s: f64) -> Dual {
        Dual {
            v: self.v + s,
            d: self.d,
        }
    }
}

/// Second-order dual `a + b ε + c ε²/2`: tracks value, first and second
/// derivative along one direction.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Dual2 {
    /// Primal value.
    pub v: f64,
    /// First derivative.
    pub d: f64,
    /// Second derivative.
    pub dd: f64,
}

impl Dual2 {
    /// A constant.
    pub fn constant(v: f64) -> Self {
        Dual2 { v, d: 0.0, dd: 0.0 }
    }

    /// The seeded variable.
    pub fn variable(v: f64) -> Self {
        Dual2 { v, d: 1.0, dd: 0.0 }
    }

    fn chain(self, f: f64, f1: f64, f2: f64) -> Self {
        Dual2 {
            v: f,
            d: f1 * self.d,
            dd: f2 * self.d * self.d + f1 * self.dd,
        }
    }

    /// Sine.
    pub fn sin(self) -> Self {
        self.chain(self.v.sin(), self.v.cos(), -self.v.sin())
    }
    /// Cosine.
    pub fn cos(self) -> Self {
        self.chain(self.v.cos(), -self.v.sin(), -self.v.cos())
    }
    /// Exponential.
    pub fn exp(self) -> Self {
        let e = self.v.exp();
        self.chain(e, e, e)
    }
    /// Hyperbolic tangent.
    pub fn tanh(self) -> Self {
        let t = self.v.tanh();
        let s = 1.0 - t * t;
        self.chain(t, s, -2.0 * t * s)
    }
    /// Logistic sigmoid.
    pub fn sigmoid(self) -> Self {
        let s = 1.0 / (1.0 + (-self.v).exp());
        self.chain(s, s * (1.0 - s), s * (1.0 - s) * (1.0 - 2.0 * s))
    }
    /// SiLU.
    pub fn silu(self) -> Self {
        self * self.sigmoid()
    }
    /// Integer power.
    pub fn powi(self, n: i32) -> Self {
        let nf = n as f64;
        self.chain(
            self.v.powi(n),
            nf * self.v.powi(n - 1),
            nf * (nf - 1.0) * self.v.powi(n - 2),
        )
    }
    /// Square root.
    pub fn sqrt(self) -> Self {
        let r = self.v.sqrt();
        self.chain(r, 0.5 / r, -0.25 / (r * r * r))
    }
}

impl std::ops::Add for Dual2 {
    type Output = Dual2;
    fn add(self, o: Dual2) -> Dual2 {
        Dual2 {
            v: self.v + o.v,
            d: self.d + o.d,
            dd: self.dd + o.dd,
        }
    }
}
impl std::ops::Sub for Dual2 {
    type Output = Dual2;
    fn sub(self, o: Dual2) -> Dual2 {
        Dual2 {
            v: self.v - o.v,
            d: self.d - o.d,
            dd: self.dd - o.dd,
        }
    }
}
impl std::ops::Mul for Dual2 {
    type Output = Dual2;
    fn mul(self, o: Dual2) -> Dual2 {
        Dual2 {
            v: self.v * o.v,
            d: self.d * o.v + self.v * o.d,
            dd: self.dd * o.v + 2.0 * self.d * o.d + self.v * o.dd,
        }
    }
}
impl std::ops::Neg for Dual2 {
    type Output = Dual2;
    fn neg(self) -> Dual2 {
        Dual2 {
            v: -self.v,
            d: -self.d,
            dd: -self.dd,
        }
    }
}
impl std::ops::Mul<f64> for Dual2 {
    type Output = Dual2;
    fn mul(self, s: f64) -> Dual2 {
        Dual2 {
            v: self.v * s,
            d: self.d * s,
            dd: self.dd * s,
        }
    }
}
impl std::ops::Add<f64> for Dual2 {
    type Output = Dual2;
    fn add(self, s: f64) -> Dual2 {
        Dual2 {
            v: self.v + s,
            d: self.d,
            dd: self.dd,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-10 * (1.0 + a.abs() + b.abs())
    }

    #[test]
    fn dual_product_rule() {
        let x = Dual::variable(3.0);
        let f = x * x * x; // x³, f' = 3x² = 27
        assert!(close(f.v, 27.0));
        assert!(close(f.d, 27.0));
    }

    #[test]
    fn dual_quotient_rule() {
        let x = Dual::variable(2.0);
        let f = Dual::constant(1.0) / x;
        assert!(close(f.d, -0.25));
    }

    #[test]
    fn dual_transcendentals() {
        let x = Dual::variable(0.6);
        assert!(close(x.sin().d, 0.6f64.cos()));
        assert!(close(x.exp().d, 0.6f64.exp()));
        assert!(close(x.ln().d, 1.0 / 0.6));
        assert!(close(x.tanh().d, 1.0 - 0.6f64.tanh().powi(2)));
        assert!(close(x.sqrt().d, 0.5 / 0.6f64.sqrt()));
    }

    #[test]
    fn dual_silu_matches_formula() {
        let x = Dual::variable(1.1);
        let s = 1.0 / (1.0 + (-1.1f64).exp());
        assert!(close(x.silu().d, s + 1.1 * s * (1.0 - s)));
    }

    #[test]
    fn dual2_second_derivatives() {
        let x = Dual2::variable(0.8);
        let f = x.powi(4); // f'' = 12 x² = 7.68
        assert!(close(f.dd, 12.0 * 0.64));
        assert!(close(x.sin().dd, -(0.8f64.sin())));
        assert!(close(x.exp().dd, 0.8f64.exp()));
    }

    #[test]
    fn dual2_product_second_derivative() {
        // f = x² · sin(x); f'' = 2 sin x + 4x cos x − x² sin x.
        let xv = 0.9;
        let x = Dual2::variable(xv);
        let f = x * x * x.sin();
        let expect = 2.0 * xv.sin() + 4.0 * xv * xv.cos() - xv * xv * xv.sin();
        assert!(close(f.dd, expect), "{} vs {expect}", f.dd);
    }

    #[test]
    fn dual2_tanh_second_derivative() {
        let xv = 0.35;
        let x = Dual2::variable(xv);
        let t = xv.tanh();
        let expect = -2.0 * t * (1.0 - t * t);
        assert!(close(x.tanh().dd, expect));
    }

    #[test]
    fn dual2_matches_finite_difference_for_silu() {
        let xv = -0.4;
        let silu = |x: f64| x / (1.0 + (-x).exp());
        let h = 1e-5;
        let fd2 = (silu(xv + h) - 2.0 * silu(xv) + silu(xv - h)) / (h * h);
        let x = Dual2::variable(xv);
        assert!((x.silu().dd - fd2).abs() < 1e-5);
    }

    #[test]
    fn constants_have_zero_derivatives() {
        let c = Dual2::constant(5.0);
        let f = c.sin() * c;
        assert_eq!(f.d, 0.0);
        assert_eq!(f.dd, 0.0);
    }
}
