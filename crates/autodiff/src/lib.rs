//! # sgm-autodiff
//!
//! A self-contained automatic-differentiation engine.
//!
//! PINNs need derivatives of the network output with respect to its
//! *inputs* (to form PDE residuals) and then derivatives of the resulting
//! loss with respect to the network *parameters*. Mature GPU autodiff
//! frameworks provide this out of the box; this crate is the pure-Rust
//! substrate the reproduction builds on:
//!
//! * [`tape`] — reverse-mode AD over a [`tape::Tape`] of scalar operations.
//!   Crucially, [`tape::Var::grad`] builds the derivative *as new tape
//!   nodes*, so gradients can be differentiated again — second and third
//!   order derivatives (needed for Navier–Stokes residuals and their
//!   parameter gradients) come for free.
//! * [`dual`] — forward-mode dual numbers ([`dual::Dual`]) and second-order
//!   duals ([`dual::Dual2`]) used as independent oracles in tests, and for
//!   cheap Jacobian columns of low-dimensional functions.
//!
//! The fast batched MLP in `sgm-nn` hand-codes its derivative propagation
//! for speed; its correctness is property-tested against this crate.
//!
//! # Example: third derivative of `sin`
//!
//! ```
//! use sgm_autodiff::tape::Tape;
//!
//! let tape = Tape::new();
//! let x = tape.input(0.7);
//! let y = x.sin();
//! let d1 = y.grad(&[x.clone()])[0].clone(); // cos x
//! let d2 = d1.grad(&[x.clone()])[0].clone(); // -sin x
//! let d3 = d2.grad(&[x.clone()])[0].clone(); // -cos x
//! assert!((d3.value() + 0.7f64.cos()).abs() < 1e-12);
//! ```

pub mod dual;
pub mod tape;

pub use dual::{Dual, Dual2};
pub use tape::{Tape, Var};
