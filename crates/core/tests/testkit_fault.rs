//! Regression guard wiring `sgm-testkit`'s fault injection into the
//! crate that owns `BackgroundBuilder`: a scripted worker crash must
//! surface as `WorkerDied` with the panic message, never a hang.

use sgm_core::background::RebuildRequest;
use sgm_graph::knn::{KnnConfig, KnnStrategy};
use sgm_graph::lrd::LrdConfig;
use sgm_graph::points::PointCloud;
use sgm_linalg::rng::Rng64;
use sgm_testkit::fault::{FaultAction, FaultPlan};
use std::sync::Arc;

#[test]
fn scripted_crash_is_surfaced_with_its_message() {
    let mut rng = Rng64::new(0x1CE);
    let req = RebuildRequest {
        cloud: Arc::new(PointCloud::uniform_box(100, 2, 0.0, 1.0, &mut rng)),
        knn: KnnConfig {
            k: 5,
            strategy: KnnStrategy::Grid,
            ..KnnConfig::default()
        },
        lrd: LrdConfig::default(),
    };
    let mut b = FaultPlan::new([
        FaultAction::Compute,
        FaultAction::Panic("wedged in rebuild".into()),
    ])
    .spawn();

    // First request computes normally...
    assert!(b.request(req.clone()).unwrap());
    let c = b.take_blocking().expect("healthy rebuild");
    assert_eq!(c.num_nodes(), 100);

    // ...the second crashes, and the crash is reported, not swallowed.
    assert!(b.request(req).unwrap());
    let err = b.take_blocking().unwrap_err();
    assert_eq!(err.panic.as_deref(), Some("wedged in rebuild"));
    assert!(b.is_dead());
}
