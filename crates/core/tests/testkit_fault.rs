//! Regression guard wiring `sgm-testkit`'s fault injection into the
//! crate that owns `BackgroundBuilder`: a scripted worker crash must
//! surface as `WorkerDied` with the panic message, never a hang — and
//! in incremental mode a crash mid-delta-patch must leave the sampler
//! serving the last consistent clustering (no torn adjacency can cross
//! the channel: the worker's engine state dies with the thread).

use sgm_core::background::RebuildRequest;
use sgm_core::{SgmConfig, SgmSampler};
use sgm_graph::knn::{KnnConfig, KnnStrategy};
use sgm_graph::lrd::LrdConfig;
use sgm_graph::points::PointCloud;
use sgm_graph::refresh::RefreshOptions;
use sgm_linalg::rng::Rng64;
use sgm_nn::activation::Activation;
use sgm_nn::mlp::{Mlp, MlpConfig};
use sgm_physics::geometry::{Cavity, FillStrategy};
use sgm_physics::pde::{Pde, PoissonConfig};
use sgm_physics::problem::{Problem, TrainSet};
use sgm_physics::PinnModel;
use sgm_testkit::fault::{FaultAction, FaultPlan};
use sgm_train::{PointChanges, PointSet, Probe, Sampler};
use std::sync::Arc;
use std::time::Duration;

/// Draw one batch through the no-allocation `fill_batch` entry point.
fn next_batch(s: &mut dyn Sampler, batch: usize, rng: &mut Rng64) -> Vec<usize> {
    let mut out = Vec::new();
    s.fill_batch(batch, &mut out, rng);
    out
}

#[test]
fn scripted_crash_is_surfaced_with_its_message() {
    let mut rng = Rng64::new(0x1CE);
    let req = RebuildRequest {
        cloud: Arc::new(PointCloud::uniform_box(100, 2, 0.0, 1.0, &mut rng)),
        knn: KnnConfig {
            k: 5,
            strategy: KnnStrategy::Grid,
            ..KnnConfig::default()
        },
        lrd: LrdConfig::default(),
        incremental: None,
    };
    let mut b = FaultPlan::new([
        FaultAction::Compute,
        FaultAction::Panic("wedged in rebuild".into()),
    ])
    .spawn();

    // First request computes normally...
    assert!(b.request(req.clone()).unwrap());
    let out = b.take_blocking().expect("healthy rebuild");
    assert_eq!(out.clustering.num_nodes(), 100);

    // ...the second crashes, and the crash is reported, not swallowed.
    assert!(b.request(req).unwrap());
    let err = b.take_blocking().unwrap_err();
    assert_eq!(err.panic.as_deref(), Some("wedged in rebuild"));
    assert!(b.is_dead());
}

fn poisson_setup(n: usize, seed: u64) -> (Mlp, Problem, TrainSet) {
    let cav = Cavity::default();
    let mut rng = Rng64::new(seed);
    let interior = cav.sample_interior(n, FillStrategy::Halton, &mut rng);
    let data = TrainSet {
        interior,
        boundary: PointCloud::from_flat(2, vec![0.0, 0.0]),
        boundary_targets: sgm_linalg::dense::Matrix::zeros(1, 1),
    };
    let prob = Problem::new(Pde::Poisson(PoissonConfig {
        forcing: |p: &[f64]| if p[0] < 0.5 { 100.0 } else { 0.01 },
    }));
    let mlp = MlpConfig {
        input_dim: 2,
        output_dim: 1,
        hidden_width: 8,
        hidden_layers: 1,
        activation: Activation::Tanh,
        fourier: None,
    };
    let mut nrng = Rng64::new(seed + 1);
    (Mlp::new(&mlp, &mut nrng), prob, data)
}

/// Incremental mode through the scripted worker: the first τ_G request
/// warms the worker's delta engine (full build); the second crashes
/// while that engine would be mid-patch. The sampler must keep serving
/// the last applied clustering unchanged, report exactly one death, and
/// fall back to its inline delta engine for later τ_G events.
#[test]
fn crash_mid_delta_patch_keeps_serving_last_consistent_graph() {
    let (net, prob, data) = poisson_setup(400, 0xA1);
    let model = PinnModel::new(&prob, &data);
    let probe = Probe::new(&net, &model);
    let mut rng = Rng64::new(0xA2);

    let cfg = SgmConfig {
        k: 6,
        min_clusters: 8,
        max_cluster_frac: 0.2,
        tau_e: 1,
        tau_g: 2,
        incremental: Some(RefreshOptions::default()),
        ..SgmConfig::default()
    };
    let plan = FaultPlan::new([
        FaultAction::Compute,
        FaultAction::Panic("crash mid delta patch".into()),
    ]);
    let mut s = SgmSampler::with_builder(&data.interior, cfg, plan.spawn());
    s.refresh(0, &probe, &mut rng);

    // Drive until the first (healthy, full-build) worker rebuild lands.
    let mut iter = 2;
    while s.stats().rebuilds_applied == 0 {
        assert!(iter < 2000, "first worker rebuild never applied");
        s.refresh(iter, &probe, &mut rng);
        iter += 2;
        std::thread::sleep(Duration::from_millis(2));
    }
    let consistent = s.clustering().assignment().to_vec();

    // Drive until the scripted crash surfaces. Every clustering served
    // in between must be exactly the last consistent one — a dead
    // worker can never publish a torn graph.
    while s.stats().worker_deaths == 0 {
        assert!(iter < 4000, "worker death never surfaced");
        s.refresh(iter, &probe, &mut rng);
        assert_eq!(
            s.clustering().assignment(),
            &consistent[..],
            "clustering changed while the worker was crashing"
        );
        let batch = next_batch(&mut s, 64, &mut rng);
        assert_eq!(batch.len(), 64);
        assert!(batch.iter().all(|&i| i < data.interior.len()));
        iter += 2;
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(s.stats().worker_deaths, 1);
    assert_eq!(s.clustering().assignment(), &consistent[..]);

    // After retirement, τ_G events run on the sampler's own warm delta
    // engine: the static cloud makes them no-op patches, so the served
    // clustering stays consistent and rebuild bookkeeping advances.
    let applied = s.stats().rebuilds_applied;
    let rescored = s.stats().points_rescored;
    s.refresh(iter, &probe, &mut rng);
    assert!(
        s.stats().rebuilds_applied > applied,
        "no inline rebuild after worker death"
    );
    assert_eq!(
        s.stats().points_rescored,
        rescored,
        "static cloud must patch zero points inline"
    );
    assert_eq!(s.clustering().num_nodes(), data.interior.len());
    let batch = next_batch(&mut s, 64, &mut rng);
    assert_eq!(batch.len(), 64);
}

/// Test-local adaptive wrapper: moves (and optionally grows) the point
/// set on a fixed cadence while delegating draws and graph-layer
/// notifications to the wrapped [`SgmSampler`]. Stands in for an
/// adaptive sampler stacked on the SGM graph machinery, so the race
/// below exercises the production `on_points_changed` path.
struct JitterAdapter {
    inner: SgmSampler,
    tau: usize,
    grow_at: Option<usize>,
}

impl Sampler for JitterAdapter {
    fn name(&self) -> &str {
        "sgm_jitter"
    }

    fn fill_batch(&mut self, batch_size: usize, out: &mut Vec<usize>, rng: &mut Rng64) {
        self.inner.fill_batch(batch_size, out, rng);
    }

    fn refresh(&mut self, iter: usize, probe: &Probe<'_>, rng: &mut Rng64) {
        self.inner.refresh(iter, probe, rng);
    }

    fn adapts_points(&self) -> bool {
        true
    }

    fn adapt(&mut self, points: &mut PointSet, iter: usize, _probe: &Probe<'_>, rng: &mut Rng64) {
        if iter == 0 || !iter.is_multiple_of(self.tau) {
            return;
        }
        if self.grow_at == Some(iter) {
            for _ in 0..5 {
                let p = [rng.uniform(), rng.uniform()];
                points.push(&p);
            }
        }
        for _ in 0..8 {
            let i = rng.below(points.len());
            let mut p = points.point(i).to_vec();
            for c in &mut p {
                *c = 0.5 + (*c - 0.5) * 0.95;
            }
            points.set_point(i, &p);
        }
    }

    fn on_points_changed(&mut self, points: &PointSet, changes: &PointChanges) {
        self.inner.on_points_changed(points, changes);
    }

    fn sync_points(&mut self, points: &PointSet) {
        self.inner.sync_points(points);
    }
}

/// The adapt stage racing a background rebuild: a gated worker holds a
/// τ_G rebuild in flight while adapt keeps moving points — and then the
/// set *grows*, so the held result was computed on a snapshot of the
/// wrong shape. The sampler must keep serving valid batches throughout,
/// rebuild inline at the new size, and *discard* the stale-shaped
/// result when it finally lands instead of desynchronising its
/// clustering from the grown point set.
#[test]
fn adapt_racing_background_rebuild_discards_stale_shape() {
    let (net, prob, data) = poisson_setup(300, 0xB1);
    let model = PinnModel::new(&prob, &data);
    let mut rng = Rng64::new(0xB2);
    let cfg = SgmConfig {
        k: 6,
        min_clusters: 8,
        max_cluster_frac: 0.2,
        tau_e: 1,
        tau_g: 2,
        incremental: Some(RefreshOptions::default()),
        ..SgmConfig::default()
    };
    let (gate, held) = FaultAction::gated();
    let plan = FaultPlan::new([held]);
    let grow_at = 6;
    let mut s = JitterAdapter {
        inner: SgmSampler::with_builder(&data.interior, cfg, plan.spawn()),
        tau: 2,
        grow_at: Some(grow_at),
    };
    let mut points = PointSet::new(data.interior.clone());
    let mut changes = PointChanges::default();

    // One engine stage sequence: refresh → adapt → drain/notify → draw.
    let step = |s: &mut JitterAdapter,
                points: &mut PointSet,
                changes: &mut PointChanges,
                iter: usize,
                rng: &mut Rng64| {
        {
            let probe = Probe::with_points(&net, &model, Some(points));
            s.refresh(iter, &probe, rng);
        }
        {
            let probe = Probe::new(&net, &model);
            s.adapt(points, iter, &probe, rng);
        }
        if points.drain_changes(changes) {
            s.on_points_changed(points, changes);
        }
        let batch = next_batch(s, 64, rng);
        assert_eq!(batch.len(), 64);
        assert!(
            batch.iter().all(|&i| i < points.len()),
            "iteration {iter}: batch index out of range for {} points",
            points.len()
        );
    };

    // Iterations 0..6: the τ_G request at iteration 2 is held by the
    // gate; adapt keeps moving points under it. Served clusterings must
    // keep matching the (unchanged) point count.
    for iter in 0..grow_at {
        step(&mut s, &mut points, &mut changes, iter, &mut rng);
        assert_eq!(s.inner.clustering().num_nodes(), points.len());
    }
    assert!(
        s.inner.stats().rebuilds_requested > 0,
        "gated worker never received the τ_G request"
    );
    let applied_pre = s.inner.stats().rebuilds_applied;

    // Iteration 6 grows the set by 5 points: the resync rebuilds inline
    // at the new size while the worker still holds the old-shape result.
    step(&mut s, &mut points, &mut changes, grow_at, &mut rng);
    assert_eq!(points.len(), 305);
    assert_eq!(s.inner.clustering().num_nodes(), 305);
    let applied_grow = s.inner.stats().rebuilds_applied;
    assert!(
        applied_grow > applied_pre,
        "size change must trigger an inline rebuild"
    );
    let completed_grow = s.inner.stats().rebuilds_completed;

    // Release the gate: the stale 300-node result lands and must be
    // discarded — completed but never applied.
    gate.release();
    let mut iter = grow_at + 1;
    while s.inner.stats().rebuilds_completed == completed_grow {
        assert!(iter < 2000, "held rebuild never completed");
        step(&mut s, &mut points, &mut changes, iter, &mut rng);
        assert_eq!(
            s.inner.clustering().num_nodes(),
            points.len(),
            "stale-shaped rebuild was applied over the grown point set"
        );
        iter += 1;
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(
        s.inner.stats().rebuilds_applied,
        applied_grow,
        "stale-shaped result must be discarded, not applied"
    );

    // The pipeline recovers: the next τ_G request is computed on the
    // grown cloud and applies cleanly.
    while s.inner.stats().rebuilds_applied == applied_grow {
        assert!(iter < 4000, "post-race rebuild never applied");
        step(&mut s, &mut points, &mut changes, iter, &mut rng);
        iter += 1;
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(s.inner.clustering().num_nodes(), points.len());
}
