//! Regression guard wiring `sgm-testkit`'s fault injection into the
//! crate that owns `BackgroundBuilder`: a scripted worker crash must
//! surface as `WorkerDied` with the panic message, never a hang — and
//! in incremental mode a crash mid-delta-patch must leave the sampler
//! serving the last consistent clustering (no torn adjacency can cross
//! the channel: the worker's engine state dies with the thread).

use sgm_core::background::RebuildRequest;
use sgm_core::{SgmConfig, SgmSampler};
use sgm_graph::knn::{KnnConfig, KnnStrategy};
use sgm_graph::lrd::LrdConfig;
use sgm_graph::points::PointCloud;
use sgm_graph::refresh::RefreshOptions;
use sgm_linalg::rng::Rng64;
use sgm_nn::activation::Activation;
use sgm_nn::mlp::{Mlp, MlpConfig};
use sgm_physics::geometry::{Cavity, FillStrategy};
use sgm_physics::pde::{Pde, PoissonConfig};
use sgm_physics::problem::{Problem, TrainSet};
use sgm_physics::PinnModel;
use sgm_testkit::fault::{FaultAction, FaultPlan};
use sgm_train::{Probe, Sampler};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn scripted_crash_is_surfaced_with_its_message() {
    let mut rng = Rng64::new(0x1CE);
    let req = RebuildRequest {
        cloud: Arc::new(PointCloud::uniform_box(100, 2, 0.0, 1.0, &mut rng)),
        knn: KnnConfig {
            k: 5,
            strategy: KnnStrategy::Grid,
            ..KnnConfig::default()
        },
        lrd: LrdConfig::default(),
        incremental: None,
    };
    let mut b = FaultPlan::new([
        FaultAction::Compute,
        FaultAction::Panic("wedged in rebuild".into()),
    ])
    .spawn();

    // First request computes normally...
    assert!(b.request(req.clone()).unwrap());
    let out = b.take_blocking().expect("healthy rebuild");
    assert_eq!(out.clustering.num_nodes(), 100);

    // ...the second crashes, and the crash is reported, not swallowed.
    assert!(b.request(req).unwrap());
    let err = b.take_blocking().unwrap_err();
    assert_eq!(err.panic.as_deref(), Some("wedged in rebuild"));
    assert!(b.is_dead());
}

fn poisson_setup(n: usize, seed: u64) -> (Mlp, Problem, TrainSet) {
    let cav = Cavity::default();
    let mut rng = Rng64::new(seed);
    let interior = cav.sample_interior(n, FillStrategy::Halton, &mut rng);
    let data = TrainSet {
        interior,
        boundary: PointCloud::from_flat(2, vec![0.0, 0.0]),
        boundary_targets: sgm_linalg::dense::Matrix::zeros(1, 1),
    };
    let prob = Problem::new(Pde::Poisson(PoissonConfig {
        forcing: |p: &[f64]| if p[0] < 0.5 { 100.0 } else { 0.01 },
    }));
    let mlp = MlpConfig {
        input_dim: 2,
        output_dim: 1,
        hidden_width: 8,
        hidden_layers: 1,
        activation: Activation::Tanh,
        fourier: None,
    };
    let mut nrng = Rng64::new(seed + 1);
    (Mlp::new(&mlp, &mut nrng), prob, data)
}

/// Incremental mode through the scripted worker: the first τ_G request
/// warms the worker's delta engine (full build); the second crashes
/// while that engine would be mid-patch. The sampler must keep serving
/// the last applied clustering unchanged, report exactly one death, and
/// fall back to its inline delta engine for later τ_G events.
#[test]
fn crash_mid_delta_patch_keeps_serving_last_consistent_graph() {
    let (net, prob, data) = poisson_setup(400, 0xA1);
    let model = PinnModel::new(&prob, &data);
    let probe = Probe {
        net: &net,
        model: &model,
    };
    let mut rng = Rng64::new(0xA2);

    let cfg = SgmConfig {
        k: 6,
        min_clusters: 8,
        max_cluster_frac: 0.2,
        tau_e: 1,
        tau_g: 2,
        incremental: Some(RefreshOptions::default()),
        ..SgmConfig::default()
    };
    let plan = FaultPlan::new([
        FaultAction::Compute,
        FaultAction::Panic("crash mid delta patch".into()),
    ]);
    let mut s = SgmSampler::with_builder(&data.interior, cfg, plan.spawn());
    s.refresh(0, &probe, &mut rng);

    // Drive until the first (healthy, full-build) worker rebuild lands.
    let mut iter = 2;
    while s.stats().rebuilds_applied == 0 {
        assert!(iter < 2000, "first worker rebuild never applied");
        s.refresh(iter, &probe, &mut rng);
        iter += 2;
        std::thread::sleep(Duration::from_millis(2));
    }
    let consistent = s.clustering().assignment().to_vec();

    // Drive until the scripted crash surfaces. Every clustering served
    // in between must be exactly the last consistent one — a dead
    // worker can never publish a torn graph.
    while s.stats().worker_deaths == 0 {
        assert!(iter < 4000, "worker death never surfaced");
        s.refresh(iter, &probe, &mut rng);
        assert_eq!(
            s.clustering().assignment(),
            &consistent[..],
            "clustering changed while the worker was crashing"
        );
        let batch = s.next_batch(64, &mut rng);
        assert_eq!(batch.len(), 64);
        assert!(batch.iter().all(|&i| i < data.interior.len()));
        iter += 2;
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(s.stats().worker_deaths, 1);
    assert_eq!(s.clustering().assignment(), &consistent[..]);

    // After retirement, τ_G events run on the sampler's own warm delta
    // engine: the static cloud makes them no-op patches, so the served
    // clustering stays consistent and rebuild bookkeeping advances.
    let applied = s.stats().rebuilds_applied;
    let rescored = s.stats().points_rescored;
    s.refresh(iter, &probe, &mut rng);
    assert!(
        s.stats().rebuilds_applied > applied,
        "no inline rebuild after worker death"
    );
    assert_eq!(
        s.stats().points_rescored,
        rescored,
        "static cloud must patch zero points inline"
    );
    assert_eq!(s.clustering().num_nodes(), data.interior.len());
    let batch = s.next_batch(64, &mut rng);
    assert_eq!(batch.len(), 64);
}
